//! Cross-crate integration: workloads driving both runtimes.
//!
//! These tests exercise the full stack — workload generator → runtime →
//! FPGA/coherence (or MMU/TLB) → RDMA fabric → memory nodes — and check
//! the paper's qualitative claims end to end.

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime, VmProfile, VmRuntime};
use kona_types::{ByteSize, MemAccess, Nanos};
use kona_workloads::{RedisWorkload, Workload, WorkloadProfile};

fn small_profile() -> WorkloadProfile {
    WorkloadProfile::default()
        .with_windows(1)
        .with_ops_per_window(1_500)
        .with_scale_divisor(1024)
}

fn cluster_for(footprint: u64, cache_pages: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::small().timing_only();
    cfg.node_capacity = ByteSize((footprint * 2).max(4 << 20));
    cfg.local_cache_pages = cache_pages - cache_pages % 4;
    cfg
}

#[test]
fn kona_beats_kona_vm_on_redis_rand() {
    let wl = RedisWorkload::rand().with_profile(small_profile());
    let trace = wl.generate(42);
    let footprint = wl.footprint().bytes();
    let cache_pages = (footprint / 4096 / 2) as usize; // 50% local cache

    let mut kona = KonaRuntime::new(cluster_for(footprint, cache_pages)).unwrap();
    kona.allocate(footprint).unwrap();
    let t_kona = kona.run_trace(trace.as_slice()).unwrap();

    let mut vm = VmRuntime::new(cluster_for(footprint, cache_pages), VmProfile::kona_vm())
        .unwrap();
    vm.allocate(footprint).unwrap();
    let t_vm = vm.run_trace(trace.as_slice()).unwrap();

    assert!(
        t_vm > t_kona * 2,
        "Kona should be at least 2x faster: kona={t_kona} vm={t_vm}"
    );
    assert_eq!(kona.stats().major_faults, 0);
    assert!(vm.stats().major_faults > 0);
}

#[test]
fn infiniswap_profile_slower_than_legoos_profile() {
    let wl = RedisWorkload::rand().with_profile(small_profile());
    let trace = wl.generate(7);
    let footprint = wl.footprint().bytes();
    let cache_pages = (footprint / 4096 / 4) as usize; // 25% cache

    let run = |profile: VmProfile| {
        let mut rt = VmRuntime::new(cluster_for(footprint, cache_pages), profile).unwrap();
        rt.allocate(footprint).unwrap();
        rt.run_trace(trace.as_slice()).unwrap()
    };
    let t_lego = run(VmProfile::legoos());
    let t_inf = run(VmProfile::infiniswap());
    // Paper: Infiniswap is consistently 2.3-3.7X worse than LegoOS.
    let ratio = t_inf.as_ns() as f64 / t_lego.as_ns() as f64;
    assert!(ratio > 1.5, "Infiniswap/LegoOS ratio {ratio:.2}");
}

#[test]
fn same_trace_same_allocation_layout() {
    // Both runtimes must lay out allocations identically so traces are
    // comparable (the §6.1 methodology requirement).
    let mut kona = KonaRuntime::new(ClusterConfig::small()).unwrap();
    let mut vm = VmRuntime::new(ClusterConfig::small(), VmProfile::kona_vm()).unwrap();
    for bytes in [100u64, 4096, 64, 2 << 20, 256] {
        let a = kona.allocate(bytes).unwrap();
        let b = vm.allocate(bytes).unwrap();
        assert_eq!(a, b, "layout diverged for {bytes}-byte allocation");
    }
}

#[test]
fn write_amplification_gap_on_sparse_writes() {
    // One 8-byte write per page: Kona ships ~64 B/page, VM ships 4096.
    let pages = 256u64;
    let cfg = cluster_for(pages * 4096, 64);

    let mut kona = KonaRuntime::new(cfg.clone()).unwrap();
    let base = kona.allocate(pages * 4096).unwrap();
    for p in 0..pages {
        kona.access(MemAccess::write(base + p * 4096, 8)).unwrap();
    }
    kona.sync().unwrap();

    let mut vm = VmRuntime::new(cfg, VmProfile::kona_vm()).unwrap();
    let base = vm.allocate(pages * 4096).unwrap();
    for p in 0..pages {
        vm.access(MemAccess::write(base + p * 4096, 8)).unwrap();
    }
    vm.sync().unwrap();

    let kona_amp = kona.stats().write_amplification();
    let vm_amp = vm.stats().write_amplification();
    assert!(
        vm_amp > kona_amp * 20.0,
        "VM amplification {vm_amp:.1} should dwarf Kona's {kona_amp:.1}"
    );
    // Kona tracks at line granularity: 64 B shipped per 8 B written = 8x.
    assert!((4.0..16.0).contains(&kona_amp), "kona amp {kona_amp}");
    // VM tracks at page granularity: 4096/8 = 512x.
    assert!(vm_amp > 200.0, "vm amp {vm_amp}");
}

#[test]
fn kona_warm_accesses_are_nanoseconds() {
    let mut rt = KonaRuntime::new(ClusterConfig::small()).unwrap();
    let addr = rt.allocate(1 << 16).unwrap();
    rt.access(MemAccess::read(addr, 64)).unwrap();
    // Everything warm: cache-hit latencies only.
    let mut total = Nanos::ZERO;
    for _ in 0..100 {
        total += rt.access(MemAccess::read(addr, 8)).unwrap();
    }
    assert!(total < Nanos::micros(1), "warm accesses too slow: {total}");
}

#[test]
fn stats_are_consistent_across_the_stack() {
    let wl = RedisWorkload::seq().with_profile(small_profile());
    let trace = wl.generate(3);
    let footprint = wl.footprint().bytes();
    let mut rt = KonaRuntime::new(cluster_for(footprint, 128)).unwrap();
    rt.allocate(footprint).unwrap();
    rt.run_trace(trace.as_slice()).unwrap();
    rt.sync().unwrap();

    let s = rt.stats();
    assert!(s.remote_fetches > 0);
    assert_eq!(s.remote_fetches, rt.fpga().stats().remote_fetches + s.mce_events);
    assert!(s.app_time > Nanos::ZERO);
    assert!(s.wall_time() >= s.app_time);
    // The FPGA observed every writeback that produced shipped bytes.
    assert!(rt.fpga().stats().writebacks_observed >= s.writeback_bytes / 4096);
}
