//! End-to-end differential fuzzing: both runtimes against a reference
//! model, plus the "life of a memory access" invariants of the paper's
//! Fig 1.

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime, VmProfile, VmRuntime};
use kona_types::{ByteSize, MemAccess, VirtAddr};
use std::collections::HashMap;

/// Simple deterministic PRNG (no external deps needed here).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

/// Random writes + reads against a byte-accurate mirror; every read must
/// observe the latest write regardless of caching and eviction.
fn differential_run(rt: &mut dyn RemoteMemoryRuntime, seed: u64, ops: usize) {
    let pages = 96u64;
    let base = rt.allocate(pages * 4096).unwrap();
    let mut rng = Lcg(seed);
    let mut mirror: HashMap<u64, Vec<u8>> = HashMap::new();

    for op in 0..ops {
        let slot = rng.next() % (pages * 16); // 256 B slots
        let addr = base + slot * 256;
        match rng.next() % 3 {
            0 | 1 => {
                let len = (rng.next() % 200 + 1) as usize;
                let byte = (rng.next() % 255 + 1) as u8;
                rt.write_bytes(addr, &vec![byte; len]).unwrap();
                mirror.insert(slot, vec![byte; len]);
            }
            _ => {
                if let Some(expected) = mirror.get(&slot) {
                    let mut buf = vec![0u8; expected.len()];
                    rt.read_bytes(addr, &mut buf).unwrap();
                    assert_eq!(&buf, expected, "op {op}: slot {slot} diverged");
                }
            }
        }
    }
    // Durability: after sync, the mirror must be readable even through a
    // cold cache (reads go to the remote copy eventually).
    rt.sync().unwrap();
    for (slot, expected) in &mirror {
        let mut buf = vec![0u8; expected.len()];
        rt.read_bytes(base + slot * 256, &mut buf).unwrap();
        assert_eq!(&buf, expected, "slot {slot} lost after sync");
    }
}

fn pressured() -> ClusterConfig {
    let mut cfg = ClusterConfig::small().with_local_cache_pages(12);
    cfg.cpu_cache_lines = 128;
    cfg.node_capacity = ByteSize::mib(8);
    cfg
}

#[test]
fn kona_differential_fuzz() {
    for seed in [1u64, 99, 2026] {
        let mut rt = KonaRuntime::new(pressured()).unwrap();
        differential_run(&mut rt, seed, 1_500);
    }
}

#[test]
fn vm_differential_fuzz() {
    for seed in [1u64, 99, 2026] {
        let mut rt = VmRuntime::new(pressured(), VmProfile::kona_vm()).unwrap();
        differential_run(&mut rt, seed, 1_500);
    }
}

#[test]
fn kona_replicated_differential_fuzz() {
    let mut cfg = pressured().with_replicas(2);
    cfg.memory_nodes = 2;
    let mut rt = KonaRuntime::new(cfg).unwrap();
    differential_run(&mut rt, 7, 1_200);
}

/// Fig 1's life-of-an-access invariants, VM side: TLB hit → no walk; page
/// present → no fault; write to protected page → exactly one minor fault;
/// eviction → TLB invalidation.
#[test]
fn fig1_lifecycle_vm() {
    let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
    cfg.cpu_cache_lines = 64;
    let mut rt = VmRuntime::new(cfg, VmProfile::kona_vm()).unwrap();
    let base = rt.allocate(32 * 4096).unwrap();

    // Step 5-6: first touch faults and installs translation.
    rt.access(MemAccess::read(base, 8)).unwrap();
    assert_eq!(rt.stats().major_faults, 1);

    // Step 1: second touch is TLB/cache hit, no new faults.
    rt.access(MemAccess::read(base, 8)).unwrap();
    assert_eq!(rt.stats().major_faults, 1);

    // Step 9-10: dirty the page, force eviction, re-fetch sees the data.
    rt.write_bytes(base, &[9; 8]).unwrap();
    assert_eq!(rt.stats().minor_faults, 1);
    for p in 1..32u64 {
        rt.access(MemAccess::read(base + p * 4096, 8)).unwrap();
    }
    assert!(rt.stats().tlb_invalidations > 0);
    let mut buf = [0u8; 8];
    rt.read_bytes(base, &mut buf).unwrap();
    assert_eq!(buf, [9; 8]);
}

/// Fig 1's lifecycle, Kona side: no step 5/6/9 (no faults, no TLB work);
/// the FPGA serves fills and observes writebacks instead.
#[test]
fn fig1_lifecycle_kona() {
    let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
    cfg.cpu_cache_lines = 64;
    let mut rt = KonaRuntime::new(cfg).unwrap();
    let base = rt.allocate(32 * 4096).unwrap();

    rt.write_bytes(base, &[7; 8]).unwrap();
    for p in 1..32u64 {
        rt.access(MemAccess::read(base + p * 4096, 8)).unwrap();
    }
    let mut buf = [0u8; 8];
    rt.read_bytes(base, &mut buf).unwrap();
    assert_eq!(buf, [7; 8]);

    let s = rt.stats();
    assert_eq!(s.major_faults + s.minor_faults, 0);
    assert_eq!(s.tlb_invalidations, 0);
    assert!(rt.fpga().stats().writebacks_observed > 0);
    assert!(rt.fpga().stats().remote_fetches > 0);
}

/// Mixed object sizes spanning line, page and slab boundaries.
#[test]
fn boundary_spanning_objects() {
    let mut rt = KonaRuntime::new(pressured()).unwrap();
    let sizes: &[u64] = &[1, 63, 64, 65, 4095, 4096, 4097, 100_000, 2 << 20];
    let mut addrs = Vec::new();
    for &size in sizes {
        let addr = rt.allocate(size).unwrap();
        let pattern = (size % 251) as u8 + 1;
        let data = vec![pattern; size.min(10_000) as usize];
        rt.write_bytes(addr, &data).unwrap();
        addrs.push((addr, data));
    }
    rt.sync().unwrap();
    for (addr, expected) in addrs {
        let mut buf = vec![0u8; expected.len()];
        rt.read_bytes(addr, &mut buf).unwrap();
        assert_eq!(buf, expected);
    }
}

/// The paper's transparency claim: the same application code (differential
/// run) works on both runtimes without modification.
#[test]
fn transparency_across_runtimes() {
    let drive = |rt: &mut dyn RemoteMemoryRuntime| {
        let addr = rt.allocate(8192).unwrap();
        rt.write_bytes(addr, b"transparent").unwrap();
        let mut buf = [0u8; 11];
        rt.read_bytes(addr, &mut buf).unwrap();
        buf
    };
    let mut kona = KonaRuntime::new(ClusterConfig::small()).unwrap();
    let mut vm = VmRuntime::new(ClusterConfig::small(), VmProfile::legoos()).unwrap();
    assert_eq!(&drive(&mut kona), b"transparent");
    assert_eq!(&drive(&mut vm), b"transparent");
}

#[test]
fn virt_addr_sanity() {
    assert_eq!(VirtAddr::new(4096).page_number().raw(), 1);
}
