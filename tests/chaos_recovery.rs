//! Chaos integration: every bundled fault plan must leave a replicated
//! workload complete and byte-correct, deterministically.
//!
//! The fault injector, retry jitter and workload generator are all seeded,
//! so one seed defines a run bit for bit — including across `par_map`
//! worker counts (PR 2's `--jobs` determinism contract). The seed comes
//! from `CHAOS_SEED` (default 42) so CI can sweep seeds cheaply.

use kona::{ClusterConfig, FailurePolicy, KonaRuntime, RemoteMemoryRuntime};
use kona_net::FaultPlan;
use kona_types::rng::{Rng, StdRng};
use kona_types::{par_map, Jobs};

const PAGES: u64 = 48;
const OPS: u64 = 900;
const VICTIM: u32 = 0;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn cluster(plan: FaultPlan) -> ClusterConfig {
    let mut cfg = ClusterConfig::small().with_local_cache_pages(8).with_replicas(2);
    cfg.cpu_cache_lines = 64;
    cfg.memory_nodes = 3;
    cfg.fault_plan = Some(plan);
    cfg
}

/// Runs the seeded workload under `plan` and returns a fingerprint line:
/// counters that cover every nondeterminism-sensitive path (fault draws,
/// retry jitter, failover order, degraded transitions). Asserts that the
/// workload completes and that all surviving data is byte-exact.
fn run_chaos(plan: FaultPlan, seed: u64) -> String {
    let name = plan.name;
    let mut rt = KonaRuntime::new(cluster(plan)).expect("valid chaos config");
    rt.set_failure_policy(FailurePolicy::PageFaultFallback);
    let base = rt.allocate(PAGES * 4096).expect("allocate");
    let mut model = vec![0u8; (PAGES * 4096) as usize];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut completed = 0u64;
    for _ in 0..OPS {
        let page = rng.gen_range(0..PAGES);
        let off = (page * 4096 + rng.gen_range(0..64) * 64) as usize;
        if rng.gen_bool(0.5) {
            let byte: u8 = rng.gen();
            if rt.write_bytes(base + off as u64, &[byte; 64]).is_ok() {
                model[off..off + 64].fill(byte);
                completed += 1;
            }
        } else {
            let mut buf = [0u8; 64];
            if rt.read_bytes(base + off as u64, &mut buf).is_ok() {
                assert_eq!(&buf[..], &model[off..off + 64], "stale read under {name}");
                completed += 1;
            }
        }
    }
    assert!(
        completed >= OPS * 9 / 10,
        "{name}: only {completed}/{OPS} accesses completed"
    );
    rt.sync().expect("final sync must succeed (losses within budget)");
    // Every page must read back exactly as the model predicts — possibly
    // from a replica, never from a node with an abandoned writeback.
    for page in 0..PAGES {
        let mut buf = [0u8; 4096];
        rt.read_bytes(base + page * 4096, &mut buf)
            .unwrap_or_else(|e| panic!("{name}: page {page} unreadable: {e}"));
        let off = (page * 4096) as usize;
        assert_eq!(&buf[..], &model[off..off + 4096], "{name}: page {page} diverged");
    }
    let s = rt.stats();
    let ev = rt.eviction_stats();
    let faults = rt.fabric_mut().fault_stats();
    format!(
        "{name}: completed={completed} fetches={} retries={} backoff={} failovers={} \
         fallback_waits={} degraded={} flush_retries={} abandoned={} \
         dropped={} corrupted={} timed_out={} node_down={}",
        s.remote_fetches,
        s.retries,
        s.backoff_time,
        s.failovers,
        s.fallback_waits,
        s.degraded_entries,
        ev.flush_retries,
        ev.abandoned_flushes,
        faults.dropped,
        faults.corrupted,
        faults.timed_out,
        faults.node_down_rejections,
    )
}

#[test]
fn every_bundled_plan_completes_with_correct_data() {
    let seed = chaos_seed();
    let plans = FaultPlan::bundled(seed, VICTIM);
    let expected = plans.len();
    let lines = par_map(Jobs::available(), plans, |_, plan| run_chaos(plan, seed));
    assert_eq!(lines.len(), expected, "all bundled plans ran");
    assert!(expected >= 9, "bundle includes the partition plans");
}

#[test]
fn identical_seeds_are_byte_identical_across_job_counts() {
    let seed = chaos_seed();
    let run = |jobs: usize| {
        par_map(Jobs::new(jobs), FaultPlan::bundled(seed, VICTIM), |_, plan| {
            run_chaos(plan, seed)
        })
        .join("\n")
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel, "fingerprints must not depend on --jobs");
    // And a fresh serial run replays the exact same history.
    assert_eq!(serial, run(1), "same seed must replay bit for bit");
}

#[test]
fn different_seeds_change_fault_histories() {
    // Sanity check that the fingerprint actually captures fault activity:
    // the lossy plan with two different seeds draws different faults.
    let a = run_chaos(FaultPlan::bundled(1, VICTIM).swap_remove(1), 1);
    let b = run_chaos(FaultPlan::bundled(2, VICTIM).swap_remove(1), 2);
    assert_ne!(a, b, "seeds must steer the injected fault history");
}
