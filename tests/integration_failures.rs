//! Integration: failure handling (§4.5) across the stack.

use kona::{ClusterConfig, FailurePolicy, KonaRuntime, RemoteMemoryRuntime, VmProfile, VmRuntime};
use kona_types::{KonaError, MemAccess, Nanos};

fn cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::small().with_local_cache_pages(8);
    cfg.cpu_cache_lines = 64;
    cfg.memory_nodes = 3;
    cfg
}

/// Write a marker, push the page out of the cache, and return the primary
/// node backing it.
fn displace(rt: &mut KonaRuntime, base: kona_types::VirtAddr) -> u32 {
    rt.write_bytes(base, &[0xAB; 64]).unwrap();
    rt.sync().unwrap();
    for p in 1..40u64 {
        rt.access(MemAccess::read(base + p * 4096, 8)).unwrap();
    }
    rt.sync().unwrap();
    rt.fpga().translate_page(base.page_number()).unwrap().node()
}

#[test]
fn mce_policy_surfaces_coherence_timeout() {
    let mut rt = KonaRuntime::new(cfg()).unwrap();
    let base = rt.allocate(64 * 4096).unwrap();
    let node = displace(&mut rt, base);
    rt.fabric_mut().fail_node(node).unwrap();
    let err = rt.access(MemAccess::read(base, 8)).unwrap_err();
    assert!(matches!(err, KonaError::CoherenceTimeout { .. }));
    assert_eq!(rt.mce_events().len(), 1);
    assert_eq!(rt.mce_events()[0].addr.raw(), base.raw() & !4095);
    assert!(rt.stats().mce_events >= 1);
}

#[test]
fn fallback_policy_charges_fault_and_recovers() {
    let mut rt = KonaRuntime::new(cfg()).unwrap();
    rt.set_failure_policy(FailurePolicy::PageFaultFallback);
    let base = rt.allocate(64 * 4096).unwrap();
    let node = displace(&mut rt, base);
    rt.fabric_mut().fail_node(node).unwrap();

    let before = rt.stats().app_time;
    assert!(rt.access(MemAccess::read(base, 8)).is_err());
    // The fallback charged a fault's worth of time but raised no MCE.
    assert!(rt.stats().app_time >= before + Nanos::micros(3));
    assert!(rt.mce_events().is_empty());

    rt.fabric_mut().recover_node(node);
    let mut buf = [0u8; 64];
    rt.read_bytes(base, &mut buf).unwrap();
    assert_eq!(buf, [0xAB; 64], "data must survive the outage");
}

#[test]
fn replica_failover_is_transparent_and_correct() {
    let mut rt = KonaRuntime::new(cfg().with_replicas(2)).unwrap();
    let base = rt.allocate(64 * 4096).unwrap();
    let node = displace(&mut rt, base);
    rt.fabric_mut().fail_node(node).unwrap();

    // No error at all: the fetch silently fails over.
    let mut buf = [0u8; 64];
    rt.read_bytes(base, &mut buf).unwrap();
    assert_eq!(buf, [0xAB; 64]);
    assert!(rt.stats().mce_events >= 1, "failover recorded");
    assert!(rt.mce_events().is_empty(), "but no MCE raised");
}

#[test]
fn double_failure_with_two_replicas_is_fatal() {
    let mut rt = KonaRuntime::new(cfg().with_replicas(2)).unwrap();
    let base = rt.allocate(64 * 4096).unwrap();
    let node = displace(&mut rt, base);
    // Fail every node: nothing can serve the data.
    for n in 0..3 {
        rt.fabric_mut().fail_node(n).unwrap();
    }
    let err = rt.access(MemAccess::read(base, 8)).unwrap_err();
    assert!(matches!(err, KonaError::CoherenceTimeout { .. }));
    let _ = node;
}

#[test]
fn slow_network_inflates_fetch_latency_but_not_correctness() {
    let mut rt = KonaRuntime::new(cfg()).unwrap();
    let base = rt.allocate(64 * 4096).unwrap();
    displace(&mut rt, base);
    rt.fabric_mut().inject_delay(Nanos::millis(1));
    let t = rt.access(MemAccess::read(base, 8)).unwrap();
    assert!(t >= Nanos::millis(1), "delay must surface: {t}");
    let mut buf = [0u8; 64];
    rt.read_bytes(base, &mut buf).unwrap();
    assert_eq!(buf, [0xAB; 64]);
}

#[test]
fn vm_runtime_surfaces_node_failure_too() {
    let mut vm_cfg = cfg();
    vm_cfg.local_cache_pages = 8;
    let mut rt = VmRuntime::new(vm_cfg, VmProfile::kona_vm()).unwrap();
    let base = rt.allocate(64 * 4096).unwrap();
    rt.write_bytes(base, &[1; 8]).unwrap();
    for p in 1..40u64 {
        rt.access(MemAccess::read(base + p * 4096, 8)).unwrap();
    }
    // Fail all nodes; the next fetch of page 0 must error.
    for n in 0..3 {
        rt.fabric_mut().fail_node(n).unwrap();
    }
    let err = rt.access(MemAccess::read(base, 8)).unwrap_err();
    assert!(matches!(err, KonaError::MemoryNodeFailed(_)));
}

#[test]
fn allocation_fails_cleanly_when_rack_is_full() {
    let mut rt = KonaRuntime::new(cfg()).unwrap();
    // Exhaust the rack: 3 nodes x 32 MiB.
    let mut allocated = 0u64;
    loop {
        match rt.allocate(1 << 20) {
            Ok(_) => allocated += 1,
            Err(KonaError::OutOfRemoteMemory { .. }) => break,
            Err(other) => panic!("unexpected error: {other}"),
        }
        assert!(allocated < 1000, "allocation should eventually fail");
    }
    assert!(allocated >= 90, "should fit ~96 slabs, got {allocated}");
    // The runtime still works for already-allocated memory.
    rt.write_bytes(kona_types::VirtAddr::new(0), &[5; 8]).unwrap();
}
