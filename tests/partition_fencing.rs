//! Partition tolerance integration: lease/epoch fencing and integrity
//! scrubbing under the bundled partition fault plans.
//!
//! Invariants pinned here (the PR's acceptance gates):
//! - With fencing on, a partitioned-then-healed cluster keeps 100%
//!   availability, applies zero stale-epoch log entries, and ends with
//!   zero divergent replica copies.
//! - With fencing off, the naive heal provably goes stale — and the
//!   integrity scrub detects *and repairs* every divergent copy.
//! - Whole runs are deterministic: identical stats across replays and
//!   `par_map` job counts, and byte-identical sharded fingerprints at
//!   any worker width.

use kona::{
    seeded_script, ClusterConfig, FailurePolicy, RemoteMemoryRuntime, ShardedRun,
};
use kona_cluster::{ClusterRuntime, ControlPlaneConfig};
use kona_net::FaultPlan;
use kona_telemetry::{Telemetry, DEFAULT_WINDOW_NS};
use kona_types::rng::{Rng, StdRng};
use kona_types::{par_map, Jobs, Nanos, ShardPlan, Shards};

const PAGES: u64 = 64;
const OPS: u64 = 1_500;
const SEED: u64 = 42;
const VICTIM: u32 = 0;
/// Past every scheduled heal (2.5 ms) and the late crash (5 ms).
const HORIZON: Nanos = Nanos::from_ns(6_000_000);

fn partition_plans(seed: u64) -> Vec<FaultPlan> {
    let plans: Vec<FaultPlan> = FaultPlan::bundled(seed, VICTIM)
        .into_iter()
        .filter(|p| p.name == "partitioned" || p.name == "partition_then_crash")
        .collect();
    assert_eq!(plans.len(), 2, "both partition plans are bundled");
    plans
}

struct PartitionRun {
    ok: u64,
    failed: u64,
    stale_reads: u64,
    verify_errors: u64,
    stats: kona_cluster::ClusterStats,
    /// Divergence found by a second full scrub after the catch-up pass.
    end_divergence: u64,
}

impl PartitionRun {
    /// Everything determinism-sensitive, as one comparable line.
    fn fingerprint(&self, plan: &str, fencing: bool) -> String {
        format!(
            "{plan} fencing={fencing} ok={} failed={} stale_reads={} stats={:?}",
            self.ok, self.failed, self.stale_reads, self.stats
        )
    }
}

/// The fig_partition workload: seeded reads/writes with a periodic
/// durability sync (flushing mid-partition is what exposes the cut),
/// then an epilogue past every heal, then a two-pass scrub audit.
fn run_partition(plan: FaultPlan, fencing: bool) -> PartitionRun {
    let mut cfg = ClusterConfig::small().with_local_cache_pages(8).with_replicas(2);
    cfg.cpu_cache_lines = 64;
    cfg.memory_nodes = 3;
    cfg.fault_plan = Some(plan);
    let plane = ControlPlaneConfig {
        tick_ops: 16,
        fencing,
        ..ControlPlaneConfig::default()
    };
    let mut rt = ClusterRuntime::with_telemetry(cfg, plane, Telemetry::disabled())
        .expect("valid config");
    rt.inner_mut().set_failure_policy(FailurePolicy::PageFaultFallback);
    let base = rt.allocate(PAGES * 4096).expect("allocate");
    let mut model = vec![0u8; (PAGES * 4096) as usize];
    let mut rng = StdRng::seed_from_u64(SEED);
    let (mut ok, mut failed, mut stale_reads) = (0u64, 0u64, 0u64);
    let step = |rt: &mut ClusterRuntime,
                    rng: &mut StdRng,
                    model: &mut Vec<u8>,
                    ok: &mut u64,
                    failed: &mut u64,
                    stale: &mut u64| {
        let page = rng.gen_range(0..PAGES);
        let off = (page * 4096 + rng.gen_range(0..64) * 64) as usize;
        if rng.gen_bool(0.5) {
            let byte: u8 = rng.gen();
            match rt.write_bytes(base + off as u64, &[byte; 64]) {
                Ok(_) => {
                    model[off..off + 64].fill(byte);
                    *ok += 1;
                }
                Err(_) => *failed += 1,
            }
        } else {
            let mut buf = [0u8; 64];
            match rt.read_bytes(base + off as u64, &mut buf) {
                Ok(_) => {
                    if buf[..] != model[off..off + 64] {
                        *stale += 1;
                    }
                    *ok += 1;
                }
                Err(_) => *failed += 1,
            }
        }
    };
    for i in 0..OPS {
        step(&mut rt, &mut rng, &mut model, &mut ok, &mut failed, &mut stale_reads);
        if i % 8 == 7 {
            let _ = rt.sync();
        }
    }
    let mut rounds = 0u64;
    while rt.inner_mut().fabric_mut().now() < HORIZON && rounds < 50_000 {
        step(&mut rt, &mut rng, &mut model, &mut ok, &mut failed, &mut stale_reads);
        if rounds % 64 == 0 {
            let _ = rt.sync();
        }
        rounds += 1;
    }
    let _ = rt.sync();

    rt.scrub_all();
    let mid = rt.scrub_stats();
    rt.scrub_all();
    let fin = rt.scrub_stats();
    let end_divergence = fin.divergence_found - mid.divergence_found;

    let mut verify_errors = 0u64;
    for page in 0..PAGES {
        let mut buf = [0u8; 4096];
        match rt.read_bytes(base + page * 4096, &mut buf) {
            Ok(_) => {
                let off = (page * 4096) as usize;
                if buf[..] != model[off..off + 4096] {
                    verify_errors += 1;
                }
            }
            Err(_) => verify_errors += 1,
        }
    }
    PartitionRun {
        ok,
        failed,
        stale_reads,
        verify_errors,
        stats: rt.cluster_stats(),
        end_divergence,
    }
}

/// Fencing on: full availability, zero stale-epoch applies, zero stale
/// reads, a clean scrub, and a restored replication budget — for both
/// partition plans.
#[test]
fn fencing_holds_availability_and_rejects_every_stale_write() {
    for plan in partition_plans(SEED) {
        let name = plan.name;
        let r = run_partition(plan, true);
        assert_eq!(r.failed, 0, "{name}: availability below 100%");
        assert!(r.ok > 0, "{name}: workload ran");
        assert_eq!(r.stats.stale_applied, 0, "{name}: stale epoch entries applied");
        assert_eq!(r.stale_reads, 0, "{name}: stale reads served");
        assert_eq!(r.verify_errors, 0, "{name}: final verify failed");
        assert_eq!(
            r.stats.scrub_divergence_found, 0,
            "{name}: scrub found divergence under fencing"
        );
        assert_eq!(r.end_divergence, 0, "{name}: divergent copies at end of run");
        assert_eq!(r.stats.under_replicated, 0, "{name}: under-replicated at end");
        assert!(
            r.stats.lease_expirations >= 1,
            "{name}: the cut-off node was never fenced: {:?}",
            r.stats
        );
        assert!(
            r.stats.lease_rejoins >= 1,
            "{name}: the healed node never rejoined: {:?}",
            r.stats
        );
    }
}

/// Fencing off: the naive heal serves and applies stale state; the
/// integrity scrub detects and repairs every divergent copy.
#[test]
fn naive_heal_goes_stale_and_scrub_repairs_it() {
    let mut total_divergence = 0;
    let mut total_stale_applied = 0;
    for plan in partition_plans(SEED) {
        let name = plan.name;
        let r = run_partition(plan, false);
        assert_eq!(r.failed, 0, "{name}: availability below 100%");
        assert!(
            r.stats.scrub_divergence_found >= 1,
            "{name}: naive heal produced no divergence: {:?}",
            r.stats
        );
        assert_eq!(
            r.stats.scrub_divergence_repaired, r.stats.scrub_divergence_found,
            "{name}: scrub failed to repair what it found"
        );
        assert_eq!(r.end_divergence, 0, "{name}: repair did not converge");
        assert_eq!(r.verify_errors, 0, "{name}: final verify failed");
        total_divergence += r.stats.scrub_divergence_found;
        total_stale_applied += r.stats.stale_applied;
    }
    assert!(total_divergence >= 2, "both plans diverge without fencing");
    assert!(
        total_stale_applied >= 1,
        "stale-epoch batches were applied somewhere in the naive demo"
    );
}

/// Every (plan, fencing) combination replays bit-for-bit and is
/// invariant under `par_map` job counts.
#[test]
fn partition_runs_are_deterministic_across_jobs_and_replay() {
    let combos: Vec<(FaultPlan, bool)> = partition_plans(SEED)
        .into_iter()
        .flat_map(|p| [(p.clone(), true), (p, false)])
        .collect();
    let fingerprint = |(plan, fencing): &(FaultPlan, bool)| {
        let name = plan.name;
        run_partition(plan.clone(), *fencing).fingerprint(name, *fencing)
    };
    let serial: Vec<String> = combos.iter().map(fingerprint).collect();
    let parallel = par_map(Jobs::new(4), combos.clone(), |_, c| fingerprint(&c));
    assert_eq!(serial, parallel, "job count changed partition histories");
    let replay: Vec<String> = combos.iter().map(fingerprint).collect();
    assert_eq!(serial, replay, "replay diverged");
}

/// The shard engine stays byte-deterministic under the partition plans:
/// serial, 2-wide and 8-wide execution (and a replay) produce identical
/// merged fingerprints.
#[test]
fn sharded_fingerprints_survive_partitions_at_any_width() {
    let script = seeded_script(PAGES, 800, SEED);
    for plan in partition_plans(SEED) {
        let name = plan.name;
        let mut cfg = ClusterConfig::small().with_replicas(2);
        cfg.memory_nodes = 3;
        cfg.local_cache_pages = 64;
        cfg.cpu_cache_lines = 512;
        cfg.fault_plan = Some(plan);
        let sharded = ShardedRun::new(cfg, PAGES)
            .with_plan(ShardPlan::new(8))
            .with_windows(DEFAULT_WINDOW_NS)
            .with_failure_policy(FailurePolicy::PageFaultFallback);
        let base = sharded
            .execute(&script, Shards::serial())
            .unwrap_or_else(|e| panic!("serial run under {name}: {e:?}"))
            .fingerprint();
        for workers in [2usize, 8] {
            let wide = sharded
                .execute(&script, Shards::new(workers))
                .unwrap_or_else(|e| panic!("{workers}-wide run under {name}: {e:?}"))
                .fingerprint();
            assert_eq!(base, wide, "worker count changed history under {name}");
        }
        let replay = sharded
            .execute(&script, Shards::serial())
            .expect("replay")
            .fingerprint();
        assert_eq!(base, replay, "replay diverged under {name}");
    }
}
