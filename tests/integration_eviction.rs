//! Integration: the dirty-data path from CPU write to remote byte.
//!
//! Verifies that Kona's coherence-observed dirty tracking, cache-line log
//! and log receiver move exactly the right bytes to exactly the right
//! remote locations — under cache pressure, replication and interleaved
//! reads.

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime};
use kona_types::{ByteSize, MemAccess, VirtAddr};

fn pressured_config() -> ClusterConfig {
    let mut cfg = ClusterConfig::small().with_local_cache_pages(8);
    cfg.cpu_cache_lines = 64;
    cfg
}

#[test]
fn every_written_byte_reaches_its_remote_home() {
    let mut rt = KonaRuntime::new(pressured_config()).unwrap();
    let pages = 64u64;
    let base = rt.allocate(pages * 4096).unwrap();

    // Distinct pattern at a distinct offset in every page.
    for p in 0..pages {
        let off = (p % 60) * 64 + 8;
        rt.write_bytes(base + p * 4096 + off, &[(p + 1) as u8; 40])
            .unwrap();
    }
    rt.sync().unwrap();

    // Check the actual bytes on the memory nodes.
    for p in 0..pages {
        let page = (base + p * 4096).page_number();
        let remote = rt.fpga().translate_page(page).unwrap();
        let off = (p % 60) * 64 + 8;
        let node = rt.fabric_mut().node(remote.node()).unwrap();
        let bytes = node.read_bytes(remote.offset() + off, 40);
        assert_eq!(bytes, &[(p + 1) as u8; 40][..], "page {p} not durable");
    }
}

#[test]
fn unwritten_neighbour_lines_stay_clean_remotely() {
    // Kona must ship only dirty lines: bytes adjacent to a write (in other
    // lines of the same page) must remain zero remotely.
    let mut rt = KonaRuntime::new(pressured_config()).unwrap();
    let base = rt.allocate(64 * 4096).unwrap();
    rt.write_bytes(base + 128, &[0xEE; 64]).unwrap(); // line 2 only
    rt.sync().unwrap();

    let remote = rt.fpga().translate_page(base.page_number()).unwrap();
    let node = rt.fabric_mut().node(remote.node()).unwrap();
    assert_eq!(node.read_bytes(remote.offset() + 128, 64), &[0xEE; 64][..]);
    assert_eq!(node.read_bytes(remote.offset(), 64), &[0u8; 64][..]);
    assert_eq!(node.read_bytes(remote.offset() + 192, 64), &[0u8; 64][..]);
}

#[test]
fn eviction_under_pressure_preserves_interleaved_read_write() {
    let mut rt = KonaRuntime::new(pressured_config()).unwrap();
    let pages = 48u64;
    let base = rt.allocate(pages * 4096).unwrap();

    // Interleave writes with reads of previously-written pages, far enough
    // apart that the 8-page cache has evicted them.
    for round in 0..3u64 {
        for p in 0..pages {
            rt.write_bytes(base + p * 4096, &[(round * 100 + p % 90) as u8 + 1; 16])
                .unwrap();
            if p >= 20 {
                let q = p - 20;
                let mut buf = [0u8; 16];
                rt.read_bytes(base + q * 4096, &mut buf).unwrap();
                assert_eq!(
                    buf,
                    [(round * 100 + q % 90) as u8 + 1; 16],
                    "round {round} page {q}"
                );
            }
        }
    }
    assert!(rt.stats().pages_evicted > pages, "pressure must recycle pages");
}

#[test]
fn rewriting_same_line_ships_latest_value() {
    let mut rt = KonaRuntime::new(pressured_config()).unwrap();
    let base = rt.allocate(64 * 4096).unwrap();
    for value in [1u8, 2, 3] {
        rt.write_bytes(base, &[value; 64]).unwrap();
        // Evict by touching other pages.
        for p in 1..32u64 {
            rt.access(MemAccess::read(base + p * 4096, 8)).unwrap();
        }
    }
    rt.sync().unwrap();
    let mut buf = [0u8; 64];
    rt.read_bytes(base, &mut buf).unwrap();
    assert_eq!(buf, [3u8; 64]);
}

#[test]
fn replicated_eviction_keeps_replicas_identical() {
    let mut cfg = pressured_config().with_replicas(2);
    cfg.memory_nodes = 2;
    cfg.node_capacity = ByteSize::mib(32);
    let mut rt = KonaRuntime::new(cfg).unwrap();
    let pages = 32u64;
    let base = rt.allocate(pages * 4096).unwrap();
    for p in 0..pages {
        rt.write_bytes(base + p * 4096 + 256, &[(p + 3) as u8; 32])
            .unwrap();
    }
    rt.sync().unwrap();

    for p in 0..pages {
        let page = (base + p * 4096).page_number();
        let primary = rt.fpga().translate_page(page).unwrap();
        let primary_bytes = rt
            .fabric_mut()
            .node(primary.node())
            .unwrap()
            .read_bytes(primary.offset() + 256, 32)
            .to_vec();
        assert_eq!(primary_bytes, vec![(p + 3) as u8; 32], "primary page {p}");
        // Replica node: the other node at the mirrored offset.
        let replica_node = 1 - primary.node();
        let replica_bytes = rt
            .fabric_mut()
            .node(replica_node)
            .unwrap()
            .read_bytes(primary.offset() + 256, 32)
            .to_vec();
        assert_eq!(replica_bytes, primary_bytes, "replica diverged for page {p}");
    }
}

#[test]
fn fmem_eviction_candidates_are_resident() {
    let mut rt = KonaRuntime::new(pressured_config()).unwrap();
    let base = rt.allocate(64 * 4096).unwrap();
    for p in 0..16u64 {
        rt.access(MemAccess::read(base + p * 4096, 8)).unwrap();
    }
    let candidate = rt.fpga().eviction_candidate().expect("cache non-empty");
    assert!(rt.fpga().fmem_resident(candidate));
    assert!(rt.fpga().fmem_resident_pages() <= 8);
}

#[test]
fn timing_mode_matches_tracked_mode_timing() {
    // Data handling must not change simulated timing.
    let run = |cfg: ClusterConfig| {
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let base = rt.allocate(64 * 4096).unwrap();
        let mut total = kona_types::Nanos::ZERO;
        for p in 0..64u64 {
            total += rt.access(MemAccess::write(base + p * 4096, 8)).unwrap();
        }
        total
    };
    let tracked = run(pressured_config());
    let timing = run(pressured_config().timing_only());
    assert_eq!(tracked, timing);
}

#[test]
fn addr_page_helper() {
    // Guard for the test helpers themselves.
    let a = VirtAddr::new(5 * 4096 + 17);
    assert_eq!(a.page_number().raw(), 5);
}
