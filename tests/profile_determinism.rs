//! Cross-crate integration tests for the deterministic profiling layer:
//! byte-identity of folded profiles across worker counts and replays,
//! exact conservation of simulated time (per-path self sums equal
//! per-track totals), regression blame via `ProfileDiff`, and the
//! queueing/occupancy fold (`QueueStats`).

use kona_bench::profile_scenario;
use kona_cluster::MemoryNodeRuntime;
use kona_telemetry::{
    host_profile_start, host_profile_stop, host_scope, Profile, ProfileDiff, QueueStats,
    Telemetry,
};
use kona_types::{Nanos, Shards};

/// Span-ring capacity for the scenario runs — large enough that the
/// quick scenario never drops (drops are tolerated by the fold, but a
/// drop-free run makes conservation checks maximally strict).
const CAPACITY: usize = 1 << 16;

const SEED: u64 = 42;

fn scenario(shards: Shards, slow_wire: Nanos) -> (String, String, String) {
    let report = profile_scenario(SEED, true, shards, CAPACITY, slow_wire);
    let profile = report.profile.as_ref().expect("tracing enabled");
    let series = report.series.as_ref().expect("windows enabled");
    let queues = QueueStats::from_series(series);
    let mut queue_text = String::new();
    for (id, link) in &queues.links {
        queue_text.push_str(&format!(
            "link{id} wrs={} inflight={} chain={}\n",
            link.wrs, link.inflight_ns, link.peak_chain_depth
        ));
    }
    (profile.to_json(), profile.to_collapsed(), queue_text)
}

#[test]
fn profiles_are_byte_identical_across_shard_counts_and_replay() {
    let serial = scenario(Shards::serial(), Nanos::ZERO);
    for workers in [1usize, 2, 8] {
        let wide = scenario(Shards::new(workers), Nanos::ZERO);
        assert_eq!(serial.0, wide.0, "profile JSON diverged at {workers} workers");
        assert_eq!(serial.1, wide.1, "collapsed stacks diverged at {workers} workers");
        assert_eq!(serial.2, wide.2, "queue fold diverged at {workers} workers");
    }
    // Replay: the same configuration reproduces the same bytes.
    let again = scenario(Shards::serial(), Nanos::ZERO);
    assert_eq!(serial, again, "replay diverged");
}

#[test]
fn self_times_sum_exactly_to_track_totals() {
    // Property over seeds: conservation is exact, not approximate —
    // same-charge children are sequential on the charge clock, so
    // parent duration covers them and self = duration − Σ(children).
    for seed in [7u64, 42, 1234] {
        let report = profile_scenario(seed, true, Shards::new(2), CAPACITY, Nanos::ZERO);
        let profile = report.profile.as_ref().expect("tracing enabled");
        assert_eq!(
            profile.conservation_violations(),
            0,
            "seed {seed}: per-path self times must sum to per-track totals"
        );
        for (track, &total) in profile.track_totals() {
            assert_eq!(
                profile.self_total(track),
                total,
                "seed {seed}: track {track} self-sum != root total"
            );
        }
    }
}

#[test]
fn profile_json_round_trips() {
    let report = profile_scenario(SEED, true, Shards::serial(), CAPACITY, Nanos::ZERO);
    let profile = report.profile.as_ref().expect("tracing enabled");
    let json = profile.to_json();
    let parsed = Profile::from_json(&json).expect("own JSON parses");
    assert_eq!(parsed.to_json(), json, "round trip must be byte-exact");
    assert_eq!(parsed.to_collapsed(), profile.to_collapsed());
}

#[test]
fn diff_blames_the_congested_wire_path() {
    // A fabric spike is the deliberate slowdown: wire time grows, so
    // blame must land on a `;verb` leaf, and the rendered diff must be
    // deterministic across renders.
    let base = profile_scenario(SEED, true, Shards::serial(), CAPACITY, Nanos::ZERO);
    let slow = profile_scenario(
        SEED,
        true,
        Shards::serial(),
        CAPACITY,
        Nanos::from_ns(3_000),
    );
    let base_p = base.profile.as_ref().expect("profile");
    let slow_p = slow.profile.as_ref().expect("profile");
    let diff = ProfileDiff::between(base_p, slow_p);
    let worst = diff.worst_regression(10_000).expect("the spike must show");
    assert!(
        worst.path.ends_with(";verb"),
        "wire slowdown must blame a verb leaf, got {}",
        worst.path
    );
    assert!(worst.ratio > 1.0);
    assert_eq!(diff.render(10), diff.render(10));
    // Identical inputs never blame.
    assert!(ProfileDiff::between(base_p, base_p).worst_regression(0).is_none());
}

#[test]
fn queue_stats_fold_links_from_the_scenario_and_nodes_from_a_runtime() {
    // Links: the shard scenario's fabric traffic must surface per-link
    // WR counts and in-flight time.
    let report = profile_scenario(SEED, true, Shards::serial(), CAPACITY, Nanos::ZERO);
    let series = report.series.as_ref().expect("windows enabled");
    let queues = QueueStats::from_series(series);
    assert!(!queues.links.is_empty(), "fabric traffic must appear per link");
    let total_wrs: u64 = queues.links.values().map(|l| l.wrs).sum();
    assert!(total_wrs > 0);
    assert!(queues.links.values().any(|l| l.inflight_ns > 0));

    // Nodes: a memory-node runtime ingesting batches must surface its
    // backlog peak even when apply drains it before the window closes
    // (the ingest-time histograms carry the peak).
    let tel = Telemetry::disabled();
    tel.enable_timeseries(1_000);
    let mut node = MemoryNodeRuntime::with_telemetry(3, Default::default(), tel.clone());
    let mut log = kona::CacheLineLog::new(1 << 16);
    for i in 0..4u64 {
        log.append(kona::LogEntry {
            remote: kona_types::RemoteAddr::new(3, i * 64),
            data: vec![i as u8; 64],
        });
        node.ingest(Nanos::from_ns(100 + i), log.drain_encoded());
    }
    node.apply();
    tel.observe_time(Nanos::from_ns(1_000_000));
    let q = QueueStats::from_series(&tel.series().expect("series enabled"));
    let nq = q.nodes.get(&3).expect("node 3 must have a row");
    assert_eq!(nq.peak_backlog_batches, 4, "peak depth reached before apply");
    assert!(nq.peak_backlog_bytes > 0);
}

#[test]
fn host_scopes_accumulate_across_a_profiled_run() {
    // Wall-clock values are nondeterministic — assert presence and call
    // counts only, never timing.
    host_profile_start();
    {
        let _outer = host_scope("itest_outer");
        let _inner = host_scope("itest_inner");
    }
    let _ = profile_scenario(SEED, true, Shards::serial(), CAPACITY, Nanos::ZERO);
    let rows = host_profile_stop();
    let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
    assert!(names.contains(&"itest_outer"));
    assert!(names.contains(&"itest_inner"));
    // The scenario drives eviction and the shard merge under the hood.
    assert!(names.contains(&"shard_merge"), "scenario must time its merge");
    assert!(
        rows.iter().all(|r| r.calls > 0),
        "every reported scope was entered"
    );
    // Stopped: further scopes are not recorded.
    {
        let _late = host_scope("itest_late");
    }
    assert!(host_profile_stop().is_empty());
}
