//! Shard-engine determinism: `--shards N` must be a pure execution-width
//! knob. The logical decomposition ([`ShardPlan`]) fixes the model, so
//! any worker count, any `par_map` job count, and any replay of the same
//! inputs must produce byte-identical merged output — fingerprints,
//! time-series JSON, span streams and metrics dumps — including under
//! every bundled fault plan.

use kona::{seeded_script, ClusterConfig, FailurePolicy, ShardOp, ShardedRun};
use kona_net::FaultPlan;
use kona_telemetry::DEFAULT_WINDOW_NS;
use kona_types::rng::{Rng, StdRng};
use kona_types::{par_map, sequence_streams, Jobs, Nanos, ShardPlan, Shards};

const PAGES: u64 = 64;
const OPS: usize = 800;
const SEED: u64 = 0x5EED;
const VICTIM: u32 = 0;

/// The chaos-test cluster shape: triple-node, 2-way replicated, with a
/// local cache small enough that per-shard slices still evict.
fn config(plan: Option<FaultPlan>) -> ClusterConfig {
    let mut cfg = ClusterConfig::small().with_replicas(2);
    cfg.memory_nodes = 3;
    cfg.local_cache_pages = 64;
    cfg.cpu_cache_lines = 512;
    cfg.fault_plan = plan;
    cfg
}

fn run(plan: Option<FaultPlan>) -> ShardedRun {
    ShardedRun::new(config(plan), PAGES)
        .with_plan(ShardPlan::new(8))
        .with_windows(DEFAULT_WINDOW_NS)
        .with_failure_policy(FailurePolicy::PageFaultFallback)
}

/// Worker count and replay never change the merged history, under every
/// bundled fault plan.
#[test]
fn fingerprints_identical_across_worker_counts_and_replay() {
    let script = seeded_script(PAGES, OPS, SEED);
    for plan in FaultPlan::bundled(SEED, VICTIM) {
        let name = plan.name;
        let sharded = run(Some(plan));
        let base = sharded
            .execute(&script, Shards::serial())
            .unwrap_or_else(|e| panic!("serial run under {name}: {e:?}"))
            .fingerprint();
        for workers in [2usize, 8] {
            let wide = sharded
                .execute(&script, Shards::new(workers))
                .unwrap_or_else(|e| panic!("{workers}-worker run under {name}: {e:?}"))
                .fingerprint();
            assert_eq!(base, wide, "worker count changed history under {name}");
        }
        let replay = sharded
            .execute(&script, Shards::serial())
            .expect("replay")
            .fingerprint();
        assert_eq!(base, replay, "replay diverged under {name}");
    }
}

/// Sweeping plans through `par_map` at different job counts preserves
/// input order: each plan's report is identical to its serial run.
#[test]
fn plan_sweep_is_job_count_invariant() {
    let script = seeded_script(PAGES, OPS, SEED);
    let serial: Vec<String> = FaultPlan::bundled(SEED, VICTIM)
        .into_iter()
        .map(|plan| {
            run(Some(plan))
                .execute(&script, Shards::serial())
                .expect("serial sweep")
                .fingerprint()
        })
        .collect();
    let parallel: Vec<String> = par_map(
        Jobs::new(4),
        FaultPlan::bundled(SEED, VICTIM),
        |_, plan| {
            run(Some(plan))
                .execute(&script, Shards::new(2))
                .expect("parallel sweep")
                .fingerprint()
        },
    );
    assert_eq!(serial, parallel, "par_map reordered or perturbed results");
}

/// The windowed series, span stream and metrics dump merge identically
/// at any worker count (the observability outputs, not just counters).
#[test]
fn series_spans_and_dump_merge_deterministically() {
    let script = seeded_script(PAGES, OPS, SEED);
    let sharded = ShardedRun::new(config(None), PAGES)
        .with_plan(ShardPlan::new(8))
        .with_windows(DEFAULT_WINDOW_NS)
        .with_tracing(4096);
    let serial = sharded.execute(&script, Shards::serial()).expect("serial");
    let wide = sharded.execute(&script, Shards::new(8)).expect("wide");
    assert_eq!(
        serial.series.as_ref().expect("series").to_json(),
        wide.series.as_ref().expect("series").to_json(),
        "series JSON diverged"
    );
    assert_eq!(serial.events, wide.events, "span streams diverged");
    assert_eq!(
        format!("{:?}", serial.dump),
        format!("{:?}", wide.dump),
        "metrics dump diverged"
    );
    assert!(
        !serial.events.is_empty(),
        "tracing produced no spans to compare"
    );
    // Per-shard ops counters surface in the merged dump.
    for shard in 0..8u32 {
        assert!(
            serial.dump.counters.contains_key(&format!("shard.{shard}.ops")),
            "shard.{shard}.ops missing from merged dump"
        );
    }
}

/// A `Sync` broadcast reaches every shard; per-shard op totals account
/// for the whole script exactly.
#[test]
fn sync_broadcast_and_op_accounting() {
    let script = seeded_script(PAGES, OPS, SEED);
    let syncs = script.iter().filter(|op| matches!(op, ShardOp::Sync)).count() as u64;
    let report = run(None)
        .execute(&script, Shards::new(2))
        .expect("run completes");
    let expected = (script.len() as u64 - syncs) + syncs * 8;
    assert_eq!(report.total_ops(), expected, "op accounting leaked");
    assert_eq!(report.shard_ops.len(), 8);
    assert!(report.shard_ops.iter().all(|&o| o > 0), "idle shard");
}

/// Property: `sequence_streams` is a total order — output is sorted by
/// (time, shard), within-shard order is preserved, and nothing is lost —
/// for arbitrary seeded stream shapes.
#[test]
fn prop_sequence_streams_merge_is_total_order() {
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for case in 0..64 {
        let streams: Vec<Vec<(Nanos, u64)>> = (0..rng.gen_range(1..6))
            .map(|shard| {
                let len = rng.gen_range(0..20);
                let mut t = 0u64;
                (0..len)
                    .map(|i| {
                        // Non-decreasing within a stream, with frequent
                        // exact ties across streams.
                        t += rng.gen_range(0..3);
                        (Nanos::from_ns(t), shard << 32 | i)
                    })
                    .collect()
            })
            .collect();
        let total: usize = streams.iter().map(Vec::len).sum();
        let merged = sequence_streams(streams.clone());
        assert_eq!(merged.len(), total, "case {case}: items lost or invented");
        for pair in merged.windows(2) {
            let (ta, sa, _) = pair[0];
            let (tb, sb, _) = pair[1];
            assert!(
                (ta, sa) <= (tb, sb),
                "case {case}: merge not ordered by (time, shard)"
            );
        }
        for (shard, stream) in streams.iter().enumerate() {
            let replayed: Vec<u64> = merged
                .iter()
                .filter(|(_, s, _)| *s == shard as u32)
                .map(|(_, _, v)| *v)
                .collect();
            let original: Vec<u64> = stream.iter().map(|(_, v)| *v).collect();
            assert_eq!(
                replayed, original,
                "case {case}: within-shard order perturbed"
            );
        }
    }
}
