//! End-to-end telemetry checks: the metrics registry is the single source
//! of truth for [`kona::RuntimeStats`], and a traced run exports a valid
//! Chrome trace-event timeline with both simulated threads on it.

use kona::metrics::names;
use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime, VmProfile, VmRuntime};
use kona_telemetry::Telemetry;
use kona_types::MemAccess;

/// A cluster small enough that the access pattern below forces evictions.
fn tight_cluster() -> ClusterConfig {
    let mut cfg = ClusterConfig::small().with_local_cache_pages(8);
    cfg.cpu_cache_lines = 64;
    cfg
}

/// Touches enough pages to exercise fetch, hit, eviction and writeback.
fn drive(rt: &mut dyn RemoteMemoryRuntime) {
    let base = rt.allocate(64 * 4096).expect("allocate");
    for p in 0..48u64 {
        rt.write_bytes(base + p * 4096, &[p as u8; 128]).expect("write");
    }
    for p in 0..48u64 {
        let mut buf = [0u8; 64];
        rt.read_bytes(base + p * 4096, &mut buf).expect("read");
    }
    rt.sync().expect("sync");
}

#[test]
fn snapshot_counters_match_runtime_stats_exactly() {
    let tel = Telemetry::disabled();
    let mut rt = KonaRuntime::with_telemetry(tight_cluster(), tel.clone()).expect("config");
    drive(&mut rt);

    let stats = rt.stats();
    assert!(stats.remote_fetches > 0, "workload must fetch remotely");
    assert!(stats.pages_evicted > 0, "workload must evict");
    assert!(stats.writeback_bytes > 0, "workload must write back");

    let snap = tel.snapshot();
    assert_eq!(snap.counter(names::REMOTE_FETCHES), Some(stats.remote_fetches));
    assert_eq!(snap.counter(names::PAGES_EVICTED), Some(stats.pages_evicted));
    assert_eq!(snap.counter(names::WRITEBACK_BYTES), Some(stats.writeback_bytes));
    assert_eq!(snap.counter(names::LOCAL_HITS), Some(stats.local_hits));
    assert_eq!(snap.counter(names::APP_DIRTY_BYTES), Some(stats.app_dirty_bytes));
    assert_eq!(snap.counter(names::APP_TIME_NS), Some(stats.app_time.as_ns()));
    assert_eq!(
        snap.counter(names::BACKGROUND_TIME_NS),
        Some(stats.background_time.as_ns())
    );
}

#[test]
fn snapshot_mirrors_fabric_net_stats() {
    let tel = Telemetry::disabled();
    let mut rt = KonaRuntime::with_telemetry(tight_cluster(), tel.clone()).expect("config");
    drive(&mut rt);

    let net = rt.fabric_mut().stats();
    let snap = tel.snapshot();
    let verbs = snap.counter("net.verbs.read").unwrap_or(0)
        + snap.counter("net.verbs.write").unwrap_or(0)
        + snap.counter("net.verbs.send").unwrap_or(0);
    assert_eq!(verbs, net.requests);
    assert_eq!(snap.counter("net.posts"), Some(net.posts));
    assert_eq!(snap.counter("net.wire_bytes"), Some(net.wire_bytes));
    assert_eq!(snap.counter("net.completions"), Some(net.completions));
}

#[test]
fn vm_runtime_stats_are_registry_backed_too() {
    let tel = Telemetry::disabled();
    let mut rt = VmRuntime::with_telemetry(tight_cluster(), VmProfile::kona_vm(), tel.clone())
        .expect("config");
    drive(&mut rt);

    let stats = rt.stats();
    assert!(stats.major_faults > 0);
    assert!(stats.minor_faults > 0);
    let snap = tel.snapshot();
    assert_eq!(snap.counter(names::MAJOR_FAULTS), Some(stats.major_faults));
    assert_eq!(snap.counter(names::MINOR_FAULTS), Some(stats.minor_faults));
    assert_eq!(snap.counter(names::PAGES_EVICTED), Some(stats.pages_evicted));
    assert_eq!(snap.counter(names::WRITEBACK_BYTES), Some(stats.writeback_bytes));
    // The MMU's own vm.mmu.* counters land in the same registry.
    assert!(snap.counter("vm.mmu.major_faults").unwrap_or(0) > 0);
}

#[test]
fn chrome_trace_has_both_threads_and_is_balanced() {
    let tel = Telemetry::with_tracing(1 << 16);
    let mut rt = KonaRuntime::with_telemetry(tight_cluster(), tel.clone()).expect("config");
    drive(&mut rt);

    let json = tel.chrome_trace();
    // Both simulated threads are named on the timeline.
    assert!(json.contains("\"application\""), "app thread missing");
    assert!(json.contains("\"eviction/poller\""), "background thread missing");
    // Foreground and background span kinds both appear.
    assert!(json.contains("\"remote_fetch\""), "no remote_fetch spans");
    assert!(json.contains("\"evict\""), "no evict spans");
    assert!(json.contains("\"writeback\""), "no writeback spans");
    // Structurally valid: balanced braces and brackets, no trailing comma.
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "unbalanced braces");
    let obrackets = json.matches('[').count();
    let cbrackets = json.matches(']').count();
    assert_eq!(obrackets, cbrackets, "unbalanced brackets");
    assert!(!json.contains(",]") && !json.contains(",}"), "trailing comma");
}

#[test]
fn vm_trace_contains_fault_and_shootdown_spans() {
    let tel = Telemetry::with_tracing(1 << 16);
    let mut rt = VmRuntime::with_telemetry(tight_cluster(), VmProfile::kona_vm(), tel.clone())
        .expect("config");
    drive(&mut rt);

    let json = tel.chrome_trace();
    assert!(json.contains("\"page_fault\""), "no page_fault spans");
    assert!(json.contains("\"tlb_shootdown\""), "no tlb_shootdown spans");
}

#[test]
fn disabled_telemetry_runs_record_no_events() {
    let mut rt = KonaRuntime::new(tight_cluster()).expect("config");
    drive(&mut rt);
    assert!(rt.telemetry().events().is_empty());
    assert!(rt.stats().remote_fetches > 0);
}

#[test]
fn metrics_exports_are_parseable() {
    let tel = Telemetry::disabled();
    let mut rt = KonaRuntime::with_telemetry(tight_cluster(), tel.clone()).expect("config");
    drive(&mut rt);
    // Sanity access pattern variation so histograms are populated.
    let base = rt.allocate(4096).expect("allocate");
    rt.access(MemAccess::read(base, 8)).expect("access");

    let json = tel.metrics_json();
    assert!(json.contains(names::REMOTE_FETCHES));
    assert!(json.contains(names::FETCH_NS));
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    let csv = tel.metrics_csv();
    let mut lines = csv.lines();
    assert!(lines.next().is_some_and(|h| h.contains("name")));
    assert!(csv.lines().count() > 5);
}
