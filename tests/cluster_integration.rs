//! Integration tests for the cluster control plane: allocator safety
//! properties, capacity-aware placement, slab reclaim and migration,
//! post-crash re-replication, and whole-cluster determinism.

use kona::{
    ClusterConfig, KonaRuntime, PlacementKind, RemoteMemoryRuntime, SlabAllocator,
};
use kona_cluster::{ClusterRuntime, ControlPlaneConfig};
use kona_net::FaultPlan;
use kona_telemetry::Telemetry;
use kona_types::rng::{Rng, StdRng};
use kona_types::{ByteSize, Nanos, VfMemAddr};

const MIB: u64 = 1 << 20;

fn three_nodes() -> ClusterConfig {
    let mut cfg = ClusterConfig::small();
    cfg.memory_nodes = 3;
    cfg
}

// ---------------------------------------------------------------------
// SlabAllocator safety properties (AllocLib's size-class allocator).
// ---------------------------------------------------------------------

/// Random allocate/free interleavings never hand out overlapping
/// objects, frees always make the address reusable, and exhaustion is a
/// clean error that leaves the allocator usable.
#[test]
fn prop_allocator_no_overlap_across_interleavings() {
    let mut rng = StdRng::seed_from_u64(0x00A1_10C8);
    for case in 0..32 {
        let mut alloc = SlabAllocator::new();
        for s in 0..4u64 {
            alloc.add_slab(VfMemAddr::new(s * MIB), MIB);
        }
        // (address, size class) of live objects.
        let mut live: Vec<(u64, u64)> = Vec::new();
        for step in 0..200 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let bytes = rng.gen_range(1u64..16384);
                let class = bytes.max(64).next_power_of_two();
                match alloc.allocate(bytes) {
                    Ok(addr) => {
                        for &(a, c) in &live {
                            assert!(
                                addr.raw() + class <= a || a + c <= addr.raw(),
                                "case {case} step {step}: {addr:?}+{class} overlaps {a}+{c}"
                            );
                        }
                        live.push((addr.raw(), class));
                    }
                    // Exhaustion must not corrupt state; the next free
                    // makes progress possible again.
                    Err(kona_types::KonaError::OutOfLocalReservation) => {}
                    Err(e) => panic!("case {case} step {step}: unexpected error {e}"),
                }
            } else {
                let idx = rng.gen_range(0..live.len());
                let (addr, class) = live.swap_remove(idx);
                assert!(
                    alloc.free(VfMemAddr::new(addr), class),
                    "case {case} step {step}: valid free rejected"
                );
            }
        }
        assert_eq!(alloc.live_objects(), live.len());
        assert_eq!(alloc.double_frees(), 0);
    }
}

#[test]
fn allocator_free_reallocate_roundtrip_and_double_free() {
    let mut alloc = SlabAllocator::new();
    alloc.add_slab(VfMemAddr::new(0), MIB);
    let a = alloc.allocate(128).unwrap();
    assert!(alloc.free(a, 128));
    // The freed address is reissued for the same size class.
    assert_eq!(alloc.allocate(128).unwrap(), a);
    // A second free of the same object is rejected and counted.
    let b = alloc.allocate(64).unwrap();
    assert!(alloc.free(b, 64));
    assert!(!alloc.free(b, 64));
    assert_eq!(alloc.double_frees(), 1);
    // Freeing with the wrong size class is rejected too.
    let c = alloc.allocate(256).unwrap();
    assert!(!alloc.free(c, 64));
    assert!(alloc.free(c, 256));
}

#[test]
fn allocator_exhaustion_is_clean() {
    let mut alloc = SlabAllocator::new();
    alloc.add_slab(VfMemAddr::new(0), 4096);
    let mut got = Vec::new();
    while let Ok(a) = alloc.allocate(1024) {
        got.push(a);
    }
    assert_eq!(got.len(), 4);
    assert!(alloc.allocate(1024).is_err());
    // Recovers after a free.
    assert!(alloc.free(got.pop().unwrap(), 1024));
    assert!(alloc.allocate(1024).is_ok());
}

// ---------------------------------------------------------------------
// Placement, reclaim, migration, rebalancing.
// ---------------------------------------------------------------------

#[test]
fn capacity_aware_placement_touches_every_node() {
    for kind in [PlacementKind::CapacityWeighted, PlacementKind::PowerOfTwoChoices] {
        let mut cfg = ClusterConfig::small().with_placement(kind);
        cfg.memory_nodes = 4;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        for _ in 0..16 {
            rt.allocate(MIB).unwrap();
        }
        let occ = rt.node_occupancy();
        assert_eq!(occ.len(), 4);
        assert!(
            occ.iter().all(|o| o.used > 0),
            "{kind:?} starved a node: {occ:?}"
        );
    }
}

#[test]
fn freed_slabs_return_to_their_nodes() {
    let mut rt = KonaRuntime::new(three_nodes()).unwrap();
    let total = ByteSize::mib(32).bytes() * 3;
    let a = rt.allocate(MIB).unwrap();
    let b = rt.allocate(MIB).unwrap();
    assert_eq!(
        rt.node_occupancy().iter().map(|o| o.free()).sum::<u64>(),
        total - 2 * MIB
    );
    rt.free(a, MIB);
    rt.free(b, MIB);
    assert_eq!(
        rt.node_occupancy().iter().map(|o| o.free()).sum::<u64>(),
        total,
        "reclaimed slabs must count as free capacity again"
    );
    // The reclaimed capacity is reusable.
    rt.allocate(MIB).unwrap();
}

#[test]
fn migrate_slab_preserves_data() {
    // Tiny cache so the written page is evicted (and its log flushed)
    // before migration; the read afterwards must fetch from the slab's
    // new home.
    let cfg = ClusterConfig::small().with_local_cache_pages(4);
    let mut rt = KonaRuntime::new(cfg).unwrap();
    let addr = rt.allocate(MIB).unwrap();
    rt.write_bytes(addr, &[0xAB; 4096]).unwrap();
    for page in 1..9u64 {
        rt.write_bytes(addr + page * 4096, &[0x11; 64]).unwrap();
    }
    rt.sync().unwrap();
    assert!(
        !rt.fpga().fmem_resident(kona_types::PageNumber(addr.raw() / 4096)),
        "page 0 must have been evicted for the post-migration read to hit the fabric"
    );
    let moved = rt.migrate_slab(addr.raw()).unwrap();
    assert_eq!(moved, MIB);
    assert_eq!(rt.stats().migration_bytes, MIB);
    let mut buf = [0u8; 4096];
    rt.read_bytes(addr, &mut buf).unwrap();
    assert_eq!(buf, [0xAB; 4096]);
}

#[test]
fn rebalance_moves_slabs_toward_empty_nodes() {
    let mut rt = KonaRuntime::new(three_nodes()).unwrap();
    // Round-robin lands a..f on nodes 0,1,2,0,1,2; freeing b,c,e,f
    // leaves node 0 with two slabs and nodes 1,2 empty.
    let slabs: Vec<_> = (0..6).map(|_| rt.allocate(MIB).unwrap()).collect();
    for &s in &slabs[1..3] {
        rt.free(s, MIB);
    }
    for &s in &slabs[4..6] {
        rt.free(s, MIB);
    }
    let used_of = |rt: &KonaRuntime, id: u32| {
        rt.node_occupancy().iter().find(|o| o.id == id).unwrap().used
    };
    assert_eq!(used_of(&rt, 0), 2 * MIB);
    assert_eq!(used_of(&rt, 1), 0);
    let moved = rt.rebalance(1).unwrap();
    assert_eq!(moved, MIB, "one move reaches the one-slab balance floor");
    assert_eq!(used_of(&rt, 0), MIB);
    // Data on both surviving slabs is intact.
    let mut buf = [0u8; 64];
    rt.read_bytes(slabs[0], &mut buf).unwrap();
    rt.read_bytes(slabs[3], &mut buf).unwrap();
}

// ---------------------------------------------------------------------
// Crash repair: re-replication restores the K-way budget.
// ---------------------------------------------------------------------

fn crash_config(victim: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig::small()
        .with_replicas(2)
        .with_fault_plan(FaultPlan::calm(7).with_crash(victim, Nanos::micros(40)));
    cfg.memory_nodes = 3;
    cfg
}

fn drive(rt: &mut ClusterRuntime) {
    let addr = rt.allocate(MIB).unwrap();
    for page in 0..32u64 {
        rt.write_bytes(addr + page * 4096, &[page as u8; 256]).unwrap();
    }
    rt.sync().unwrap();
    // Keep dirtying and syncing so evictions hit the crashed node after
    // the fault fires, then give the control plane ticks to repair.
    for round in 0..4u64 {
        for page in 0..32u64 {
            rt.write_bytes(addr + page * 4096, &[(round + page) as u8; 64])
                .unwrap();
        }
        rt.sync().unwrap();
    }
}

#[test]
fn permanent_crash_is_repaired_by_rereplication() {
    let mut rt = ClusterRuntime::new(crash_config(0)).unwrap();
    drive(&mut rt);
    let stats = rt.cluster_stats();
    assert_eq!(
        stats.under_replicated, 0,
        "repair must restore the K-way budget: {stats:?}"
    );
    assert!(stats.rereplications >= 1, "stats: {stats:?}");
    assert!(
        stats.migration_bytes >= MIB,
        "each re-replication copies a whole slab: {stats:?}"
    );
    // The lost node is out of the grant pool; survivors carry the load.
    let occ = rt.occupancy();
    assert!(occ.iter().all(|o| o.id != 0), "occupancy: {occ:?}");
    assert_eq!(rt.stats().rereplications, stats.rereplications);
}

#[test]
fn cluster_runs_are_deterministic() {
    let run = || {
        let mut rt = ClusterRuntime::with_telemetry(
            crash_config(0),
            ControlPlaneConfig {
                tick_ops: 8,
                rebalance_skew_slabs: 1,
                ..ControlPlaneConfig::default()
            },
            Telemetry::disabled(),
        )
        .unwrap();
        drive(&mut rt);
        (rt.stats(), rt.cluster_stats(), rt.ticks())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical runs must produce identical stats");
    assert!(a.0.app_time > Nanos::ZERO);
}

#[test]
fn shipped_logs_rebuild_node_page_stores() {
    let mut rt = ClusterRuntime::new(three_nodes()).unwrap();
    let addr = rt.allocate(MIB).unwrap();
    rt.write_bytes(addr, &[0xC4; 4096]).unwrap();
    rt.sync().unwrap();
    let stats = rt.cluster_stats();
    assert!(stats.bytes_applied >= 4096, "stats: {stats:?}");
    assert_eq!(stats.backlog_bytes, 0, "sync drains every backlog");
    // Exactly one node (the slab's primary; replicas=1 means no copies)
    // applied the page image, and its store holds the written bytes.
    let applied: Vec<_> = rt
        .nodes()
        .iter()
        .filter(|n| n.stats().bytes_applied > 0)
        .collect();
    assert_eq!(applied.len(), 1);
    let node = applied[0];
    let page = node
        .page(0)
        .expect("slab offset 0 on the primary holds the written page");
    assert_eq!(&page[..64], &[0xC4; 64]);
}
