//! Causal-tracing integration checks (PR 4): every traced run of the real
//! Kona runtime must produce well-formed trace trees (one root, parents
//! containing their same-charge children), critical-path components that
//! sum exactly to end-to-end latency, and byte-identical trees and
//! attribution across `par_map` worker counts and across replays.

use kona::{ClusterConfig, FailurePolicy, KonaRuntime, RemoteMemoryRuntime};
use kona_net::FaultPlan;
use kona_telemetry::{
    analyze_trace, traces_to_json, EventKind, SpanEvent, SpanId, Telemetry, TraceRecord, Track,
};
use kona_types::{par_map, Jobs};
use std::collections::HashMap;

/// A cluster small enough that the access pattern below forces evictions,
/// writebacks and remote fetches inside nearly every access trace.
fn tight_cluster() -> ClusterConfig {
    let mut cfg = ClusterConfig::small().with_local_cache_pages(8);
    cfg.cpu_cache_lines = 64;
    cfg
}

/// Touches enough pages to exercise fetch, hit, eviction and writeback.
fn drive(rt: &mut KonaRuntime) {
    let base = rt.allocate(64 * 4096).expect("allocate");
    for p in 0..48u64 {
        rt.write_bytes(base + p * 4096, &[p as u8; 128]).expect("write");
    }
    for p in 0..48u64 {
        let mut buf = [0u8; 64];
        rt.read_bytes(base + p * 4096, &mut buf).expect("read");
    }
    rt.sync().expect("sync");
}

/// Runs the standard workload with full causal telemetry (flight ring
/// large enough to retain every completed trace) and returns the handle.
fn traced_run() -> Telemetry {
    let tel = Telemetry::with_causal(1 << 18, 1 << 12);
    let mut rt = KonaRuntime::with_telemetry(tight_cluster(), tel.clone()).expect("config");
    drive(&mut rt);
    tel
}

/// Recomputes each span's charge (App or Background) from the public
/// tree: Background if the parent charges Background or the span displays
/// on the Background track, App otherwise. Mirrors `charge_of`.
fn charges(spans: &[SpanEvent]) -> HashMap<SpanId, Track> {
    let mut out: HashMap<SpanId, Track> = HashMap::new();
    // Spans arrive children-before-parents; walk in reverse so every
    // parent's charge is known before its children are visited.
    for s in spans.iter().rev() {
        let parent_bg = out.get(&s.parent) == Some(&Track::Background);
        let charge = if parent_bg || s.track == Track::Background {
            Track::Background
        } else {
            Track::App
        };
        out.insert(s.span, charge);
    }
    out
}

#[test]
fn every_trace_is_a_tree_with_contained_same_charge_children() {
    let tel = traced_run();
    let traces = tel.flight();
    assert_eq!(tel.flight_dropped(), 0, "flight ring must hold every trace");
    assert!(traces.len() > 50, "workload must complete many traces");

    let mut saw_fetch = false;
    for t in &traces {
        let roots: Vec<&SpanEvent> =
            t.spans.iter().filter(|s| s.parent == SpanId::NONE).collect();
        assert_eq!(roots.len(), 1, "trace {} must have exactly one root", t.id.0);
        assert_eq!(roots[0].duration, t.duration());

        let by_id: HashMap<SpanId, &SpanEvent> =
            t.spans.iter().map(|s| (s.span, s)).collect();
        let charge = charges(&t.spans);
        for s in &t.spans {
            assert_eq!(s.trace, t.id, "span carries its trace id");
            assert!(s.span.is_some(), "causal spans have identities");
            if s.kind == EventKind::RemoteFetch {
                saw_fetch = true;
            }
            if !s.parent.is_some() {
                continue;
            }
            let p = by_id.get(&s.parent).expect("parent span is in the trace");
            if charge[&s.span] == charge[&p.span] {
                assert!(
                    s.start >= p.start && s.end() <= p.end(),
                    "trace {}: {} [{}, {}] escapes parent {} [{}, {}]",
                    t.id.0,
                    s.kind.name(),
                    s.start.as_ns(),
                    s.end().as_ns(),
                    p.kind.name(),
                    p.start.as_ns(),
                    p.end().as_ns(),
                );
            }
        }
    }
    assert!(saw_fetch, "tight cache must force remote fetches into traces");
}

#[test]
fn critical_components_sum_exactly_to_end_to_end_latency() {
    let tel = traced_run();
    let engine = tel.attribution().expect("with_causal installs the engine");
    assert!(engine.traces() > 50);
    assert_eq!(engine.violations(), 0, "exact-sum invariant must hold");

    // Re-derive the invariant per retained trace from the public API.
    let mut total = 0u64;
    for t in tel.flight() {
        let a = analyze_trace(&t).expect("well-formed trace");
        assert!(
            a.exact,
            "trace {}: components {} != duration {}",
            t.id.0,
            a.critical.total(),
            t.duration().as_ns()
        );
        assert_eq!(a.critical.total(), t.duration().as_ns());
        total += t.duration().as_ns();
    }
    // The engine saw the same traces the flight ring retained.
    assert_eq!(engine.overall().total_ns, total);
    assert_eq!(engine.overall().count, engine.traces());
}

/// One worker's full observable output: the trace trees and the
/// attribution tables, both as deterministic JSON.
fn worker_fingerprint(idx: usize, seed_pages: u64) -> String {
    let tel = Telemetry::with_causal(1 << 18, 1 << 12);
    tel.set_trace_id_base((idx as u64) << 32);
    let mut rt = KonaRuntime::with_telemetry(tight_cluster(), tel.clone()).expect("config");
    let base = rt.allocate(64 * 4096).expect("allocate");
    for p in 0..seed_pages {
        rt.write_bytes(base + (p % 48) * 4096, &[p as u8; 96]).expect("write");
    }
    rt.sync().expect("sync");
    let engine = tel.attribution().expect("engine");
    assert_eq!(engine.violations(), 0);
    format!("{}{}", tel.flight_json(), engine.to_json())
}

#[test]
fn trees_and_attribution_are_identical_across_job_counts() {
    let items: Vec<(usize, u64)> = vec![(0, 40), (1, 56), (2, 32)];
    let serial = par_map(Jobs::serial(), items.clone(), |_, (i, n)| {
        worker_fingerprint(i, n)
    });
    let parallel = par_map(Jobs::new(3), items, |_, (i, n)| worker_fingerprint(i, n));
    assert_eq!(serial, parallel, "trace trees must not depend on --jobs");
    // Worker id bases keep trace ids globally unique across workers.
    assert!(serial[0].contains("\"trace\":1"));
    assert!(serial[1].contains(&format!("\"trace\":{}", (1u64 << 32) + 1)));
}

#[test]
fn replaying_the_same_workload_reproduces_traces_byte_for_byte() {
    let a = traced_run();
    let b = traced_run();
    assert_eq!(a.flight_json(), b.flight_json());
    assert_eq!(
        a.attribution().expect("engine").to_json(),
        b.attribution().expect("engine").to_json()
    );
    assert_eq!(a.chrome_trace(), b.chrome_trace());
    assert_eq!(a.dropped_events(), b.dropped_events());
}

#[test]
fn injected_faults_appear_as_net_instants_inside_traces() {
    let plan = FaultPlan::calm(7).named("causality-lossy").with_drop_prob(0.2);
    let mut cfg = tight_cluster().with_replicas(2);
    cfg.memory_nodes = 3;
    cfg.fault_plan = Some(plan);
    let tel = Telemetry::with_causal(1 << 18, 1 << 12);
    let mut rt = KonaRuntime::with_telemetry(cfg, tel.clone()).expect("config");
    rt.set_failure_policy(FailurePolicy::PageFaultFallback);
    let base = rt.allocate(64 * 4096).expect("allocate");
    for p in 0..48u64 {
        // Dropped verbs may surface as access errors; the traces (and the
        // fault instants inside them) are the subject here, not the data.
        let _ = rt.write_bytes(base + p * 4096, &[p as u8; 128]);
    }
    let _ = rt.sync();

    let traces: Vec<TraceRecord> = tel.flight();
    let faults: Vec<&SpanEvent> = traces
        .iter()
        .flat_map(|t| t.spans.iter())
        .filter(|s| matches!(s.kind, EventKind::Fault(_)))
        .collect();
    assert!(!faults.is_empty(), "20% drop probability must fire");
    for f in &faults {
        assert_eq!(f.track, Track::Net, "fault markers live on the Net track");
        assert!(f.is_instant());
        assert!(f.trace.is_some() && f.parent.is_some(), "faults nest causally");
    }
    // Every trace still satisfies the exact-sum invariant under faults.
    assert_eq!(tel.attribution().expect("engine").violations(), 0);
    let json = traces_to_json(&traces);
    assert!(json.contains("\"fault\":\"drop\""));
}
