//! Integration tests for the `kona-serve` multi-tenant front end:
//! cross-tenant isolation, exact quota enforcement, noisy-neighbor QoS,
//! balloon round-trips, and byte-level replay determinism across
//! worker counts.

use kona::ClusterConfig;
use kona_cluster::ControlPlaneConfig;
use kona_serve::{Admission, ServeConfig, ServeRuntime, TenantConfig};
use kona_telemetry::Telemetry;
use kona_types::rng::{Rng, StdRng};
use kona_types::{derive_shard_seed, par_map, Jobs, KonaError, Nanos, VirtAddr};

/// The pressured fixed-capacity cluster the fig uses: FMem squeezed to
/// 256 pages, small CPU cache.
fn cluster_config() -> ClusterConfig {
    let mut cfg = ClusterConfig::small().with_local_cache_pages(256);
    cfg.cpu_cache_lines = 512;
    cfg
}

fn serve_with(qos: bool) -> ServeRuntime {
    ServeRuntime::with_telemetry(
        cluster_config(),
        ControlPlaneConfig::default(),
        ServeConfig {
            qos,
            ..ServeConfig::default()
        },
        Telemetry::disabled(),
    )
    .expect("valid config")
}

#[test]
fn cross_tenant_access_fails_typed() {
    let mut s = serve_with(true);
    let slab = s.slab_bytes();
    for id in [1u32, 2] {
        s.register_tenant(TenantConfig::new(id).with_quota_bytes(2 * slab))
            .unwrap();
    }
    let a = s.grow_tenant(1, slab).unwrap();
    let b = s.grow_tenant(2, slab).unwrap();
    s.write(1, a, &[0xAA; 64]).unwrap();
    s.write(2, b, &[0xBB; 64]).unwrap();

    // Tenant 2's namespace starts at the same tenant-local base as
    // tenant 1's — the *translation* keeps them apart. An address past
    // a tenant's own mappings must fault typed, never read through.
    let probe = VirtAddr::new(a.raw() + slab);
    let mut buf = [0u8; 8];
    match s.read(1, probe, &mut buf) {
        Err(KonaError::TenantFault { tenant, addr, len }) => {
            assert_eq!(tenant, 1);
            assert_eq!(addr, probe);
            assert_eq!(len, 8);
        }
        other => panic!("expected TenantFault, got {other:?}"),
    }
    match s.write(1, probe, &[0xCC; 8]) {
        Err(KonaError::TenantFault { tenant, .. }) => assert_eq!(tenant, 1),
        other => panic!("expected TenantFault, got {other:?}"),
    }
    // The same tenant-local address is valid for each tenant and
    // resolves to *different* bytes — no cross-tenant bleed.
    let mut got_a = [0u8; 64];
    let mut got_b = [0u8; 64];
    s.read(1, a, &mut got_a).unwrap();
    s.read(2, b, &mut got_b).unwrap();
    assert_eq!(got_a, [0xAA; 64]);
    assert_eq!(got_b, [0xBB; 64]);
    assert_eq!(s.report().isolation_faults, 2);
}

#[test]
fn quota_is_enforced_exactly() {
    let mut s = serve_with(true);
    let slab = s.slab_bytes();
    s.register_tenant(TenantConfig::new(7).with_quota_bytes(3 * slab))
        .unwrap();
    // Sub-slab requests round up to whole slabs before the check.
    s.grow_tenant(7, 1).unwrap();
    s.grow_tenant(7, slab + 1).unwrap(); // rounds to 2 slabs: now at quota
    assert_eq!(s.tenant_used(7).unwrap(), 3 * slab);
    match s.grow_tenant(7, 1) {
        Err(KonaError::QuotaExceeded {
            tenant,
            requested,
            quota,
            used,
        }) => {
            assert_eq!(tenant, 7);
            assert_eq!(requested, slab);
            assert_eq!(quota, 3 * slab);
            assert_eq!(used, 3 * slab);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // Rejected grows move nothing: still exactly at quota, and a
    // shrink opens exactly the headroom it releases.
    assert_eq!(s.tenant_used(7).unwrap(), 3 * slab);
    let released = s.shrink_tenant(7, slab).unwrap();
    assert_eq!(released, slab);
    s.grow_tenant(7, slab).unwrap();
    assert_eq!(s.tenant_used(7).unwrap(), 3 * slab);
    assert_eq!(s.report().quota_rejections, 1);
}

#[test]
fn balloon_round_trips_bytes_and_evacuates_coldest() {
    let mut s = serve_with(true);
    let slab = s.slab_bytes();
    s.register_tenant(TenantConfig::new(3).with_quota_bytes(4 * slab))
        .unwrap();
    let hot = s.grow_tenant(3, slab).unwrap();
    // Make the first region hot.
    for i in 0..32u64 {
        s.write(3, hot + i * 4096, &[i as u8; 64]).unwrap();
    }
    let cold = s.grow_tenant(3, slab).unwrap();
    s.write(3, cold, &[0x5A; 64]).unwrap();
    let mut buf = [0u8; 64];
    s.read(3, cold, &mut buf).unwrap();
    assert_eq!(buf, [0x5A; 64], "ballooned-in region round-trips bytes");

    // Shrink one slab: the cold region goes, the hot region survives
    // with its bytes intact.
    let released = s.shrink_tenant(3, slab).unwrap();
    assert_eq!(released, slab);
    for i in 0..32u64 {
        s.read(3, hot + i * 4096, &mut buf).unwrap();
        assert_eq!(buf, [i as u8; 64], "hot region intact after evacuation");
    }
    // The evacuated region's addresses now fault typed — stale pointers
    // cannot silently land in someone else's re-used slab.
    match s.read(3, cold, &mut buf) {
        Err(KonaError::TenantFault { tenant, .. }) => assert_eq!(tenant, 3),
        other => panic!("expected TenantFault after shrink, got {other:?}"),
    }
    let report = s.report();
    assert_eq!(report.balloon_grows, 2);
    assert_eq!(report.balloon_shrinks, 1);
    assert_eq!(report.balloon_errors, 0);
}

/// A compact version of the fig's noisy-neighbor scenario. The victim
/// issues the identical seeded op stream in every mode; only the
/// aggressor's presence and the QoS switch vary.
fn noisy_victim_p99(with_aggressor: bool, qos: bool) -> u64 {
    let mut s = serve_with(qos);
    let slab = s.slab_bytes();
    s.register_tenant(
        TenantConfig::new(1)
            .with_quota_bytes(2 * slab)
            .with_slo(Nanos::micros(1))
            .with_qos_class(2),
    )
    .unwrap();
    let vbase = s.grow_tenant(1, slab).unwrap();
    let mut abase = VirtAddr::new(0);
    if with_aggressor {
        s.register_tenant(
            TenantConfig::new(2)
                .with_quota_bytes(8 * slab)
                .with_slo(Nanos::millis(10))
                .with_rate(20, 8)
                .with_qos_class(0),
        )
        .unwrap();
        abase = s.grow_tenant(2, 8 * slab).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(derive_shard_seed(99, 1));
    let mut cursor = 0u64;
    for _ in 0..2_000u64 {
        // Victim: 8 hot pages, 64-byte ops.
        let off = rng.gen_range(0..8u64) * 4096 + rng.gen_range(0..64u64) * 64;
        if rng.gen_bool(0.3) {
            s.write(1, vbase + off, &[1u8; 64]).unwrap();
        } else {
            let mut buf = [0u8; 64];
            s.read(1, vbase + off, &mut buf).unwrap();
        }
        if with_aggressor {
            for _ in 0..4 {
                let off = (cursor % (8 * 256)) * 4096;
                cursor += 1;
                s.write(2, abase + off, &[0xEE; 64]).unwrap();
            }
        }
    }
    s.report()
        .tenants
        .iter()
        .find(|t| t.id == 1)
        .expect("victim row")
        .p99
}

#[test]
fn qos_isolates_noisy_neighbor_victim() {
    let solo = noisy_victim_p99(false, true);
    let qos = noisy_victim_p99(true, true);
    let noqos = noisy_victim_p99(true, false);
    assert!(
        qos <= solo + solo / 2,
        "victim p99 with QoS ({qos} ns) must stay within 1.5× solo baseline ({solo} ns)"
    );
    assert!(
        noqos > qos,
        "QoS off ({noqos} ns) must be worse than QoS on ({qos} ns)"
    );
}

/// One seeded multi-tenant run, returning the serve fingerprint. Used
/// by the determinism test below under several worker counts.
fn seeded_run(seed: u64) -> u64 {
    let mut s = serve_with(true);
    let slab = s.slab_bytes();
    for id in 1..=4u32 {
        s.register_tenant(TenantConfig::new(id).with_quota_bytes(2 * slab))
            .unwrap();
        s.grow_tenant(id, slab).unwrap();
    }
    let mut rngs: Vec<StdRng> = (1..=4u32)
        .map(|id| StdRng::seed_from_u64(derive_shard_seed(seed, id)))
        .collect();
    for round in 0..800u64 {
        for id in 1..=4u32 {
            let rng = &mut rngs[id as usize - 1];
            let off = rng.gen_range(0..96u64) * 4096 + rng.gen_range(0..64u64) * 64;
            let base = VirtAddr::new(0);
            if rng.gen_bool(0.3) {
                let b: u8 = rng.gen();
                s.write(id, base + off, &[b; 64]).unwrap();
            } else {
                let mut buf = [0u8; 64];
                s.read(id, base + off, &mut buf).unwrap();
            }
            if round == 400 {
                // Mid-run balloon traffic is part of the fingerprinted
                // timeline too.
                s.grow_tenant(id, slab).unwrap();
                s.shrink_tenant(id, slab).unwrap();
            }
        }
    }
    s.sync().unwrap();
    s.fingerprint()
}

#[test]
fn fingerprints_identical_across_jobs_shards_and_replay() {
    let serial = seeded_run(1234);
    // Replay: same seed, same timeline, same fingerprint.
    assert_eq!(serial, seeded_run(1234), "replay must be byte-identical");
    // Fan the identical run out under different worker counts — the
    // fingerprint must not depend on scheduling.
    for workers in [1usize, 2, 4] {
        let fps = par_map(Jobs::new(workers), vec![1234u64; 3], |_, seed| {
            seeded_run(seed)
        });
        assert!(
            fps.iter().all(|&f| f == serial),
            "fingerprint diverged at {workers} workers: {fps:x?} vs {serial:x}"
        );
    }
    // And a different seed genuinely changes the timeline.
    assert_ne!(serial, seeded_run(4321), "seed must matter");
}

#[test]
fn throttled_ops_do_not_run_and_are_counted() {
    let mut s = serve_with(true);
    let slab = s.slab_bytes();
    s.register_tenant(
        TenantConfig::new(1)
            .with_quota_bytes(slab)
            .with_rate(1, 1), // 1 op/ms, burst 1: nearly everything throttles
    )
    .unwrap();
    let base = s.grow_tenant(1, slab).unwrap();
    s.write(1, base, &[7u8; 64]).unwrap(); // burst token
    let mut throttled = 0u64;
    for _ in 0..64 {
        match s.write(1, base, &[9u8; 64]).unwrap() {
            Admission::Throttled => throttled += 1,
            Admission::Ran(_) => {}
        }
    }
    assert!(throttled > 0, "tight bucket must throttle");
    // Throttled writes never landed: the first write's bytes survive
    // unless some later write was admitted and overwrote them.
    let report = s.report();
    assert_eq!(report.throttled, throttled);
    assert_eq!(
        report.admitted as usize + throttled as usize,
        1 + 64,
        "every op is either admitted or throttled"
    );
}
