//! Randomized tests over the full runtime stack.
//!
//! The central property: under *any* interleaving of allocations, writes,
//! reads and syncs, both runtimes behave like plain local memory — reads
//! observe the latest write, and synced data survives arbitrary cache
//! pressure. A second property checks the paper's invariant that Kona's
//! wire writeback never exceeds a page-granularity evictor's.
//!
//! Each test draws many op sequences from the deterministic in-repo
//! generator ([`kona_types::rng`]), so runs are reproducible.

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime, VmProfile, VmRuntime};
use kona_types::rng::{Rng, StdRng};
use kona_types::ByteSize;

#[derive(Debug, Clone)]
enum Op {
    Write { slot: u64, len: usize, byte: u8 },
    Read { slot: u64 },
    Sync,
}

fn random_ops(rng: &mut StdRng, max_len: usize) -> Vec<Op> {
    let n = rng.gen_range(1..=max_len);
    (0..n)
        .map(|_| match rng.gen_range(0u32..6) {
            // Weights mirror the original strategy: 3 writes : 2 reads : 1 sync.
            0..=2 => Op::Write {
                slot: rng.gen_range(0u64..512),
                len: rng.gen_range(1usize..200),
                byte: rng.gen_range(1u8..255),
            },
            3..=4 => Op::Read {
                slot: rng.gen_range(0u64..512),
            },
            _ => Op::Sync,
        })
        .collect()
}

fn pressured() -> ClusterConfig {
    let mut cfg = ClusterConfig::small().with_local_cache_pages(8);
    cfg.cpu_cache_lines = 64;
    cfg.node_capacity = ByteSize::mib(8);
    cfg
}

fn check_memory_semantics(rt: &mut dyn RemoteMemoryRuntime, ops: &[Op]) {
    let base = rt.allocate(512 * 256).unwrap();
    let mut mirror: std::collections::BTreeMap<u64, Vec<u8>> = std::collections::BTreeMap::new();
    for op in ops {
        match op {
            Op::Write { slot, len, byte } => {
                let data = vec![*byte; *len];
                rt.write_bytes(base + slot * 256, &data).unwrap();
                mirror.insert(*slot, data);
            }
            Op::Read { slot } => {
                if let Some(expected) = mirror.get(slot) {
                    let mut buf = vec![0u8; expected.len()];
                    rt.read_bytes(base + slot * 256, &mut buf).unwrap();
                    assert_eq!(&buf, expected, "slot {slot} diverged");
                }
            }
            Op::Sync => {
                rt.sync().unwrap();
            }
        }
    }
    rt.sync().unwrap();
    for (slot, expected) in &mirror {
        let mut buf = vec![0u8; expected.len()];
        rt.read_bytes(base + slot * 256, &mut buf).unwrap();
        assert_eq!(&buf, expected, "slot {slot} lost after final sync");
    }
}

#[test]
fn prop_kona_is_memory() {
    let mut rng = StdRng::seed_from_u64(0x404A);
    for _ in 0..24 {
        let ops = random_ops(&mut rng, 120);
        let mut rt = KonaRuntime::new(pressured()).unwrap();
        check_memory_semantics(&mut rt, &ops);
    }
}

#[test]
fn prop_kona_vm_is_memory() {
    let mut rng = StdRng::seed_from_u64(0x404B);
    for _ in 0..24 {
        let ops = random_ops(&mut rng, 120);
        let mut rt = VmRuntime::new(pressured(), VmProfile::kona_vm()).unwrap();
        check_memory_semantics(&mut rt, &ops);
    }
}

#[test]
fn prop_kona_replicated_is_memory() {
    let mut rng = StdRng::seed_from_u64(0x404C);
    for _ in 0..24 {
        let ops = random_ops(&mut rng, 80);
        let mut rt = KonaRuntime::new(pressured().with_replicas(2)).unwrap();
        check_memory_semantics(&mut rt, &ops);
    }
}

/// Kona never takes a fault and never ships more writeback bytes than
/// the page-granularity equivalent would.
#[test]
fn prop_kona_granularity_advantage() {
    let mut rng = StdRng::seed_from_u64(0x404D);
    for _ in 0..24 {
        let ops = random_ops(&mut rng, 100);
        let mut rt = KonaRuntime::new(pressured()).unwrap();
        check_memory_semantics(&mut rt, &ops);
        let s = rt.stats();
        assert_eq!(s.major_faults + s.minor_faults, 0);
        assert_eq!(s.tlb_invalidations, 0);
        // Page-granularity equivalent: every dirty page eviction ships 4 KiB.
        if s.pages_evicted > 0 {
            assert!(s.writeback_bytes <= s.pages_evicted * 4096);
        }
    }
}

/// Timing determinism: the same op sequence always costs the same
/// simulated time.
#[test]
fn prop_timing_deterministic() {
    let mut rng = StdRng::seed_from_u64(0x404E);
    for _ in 0..12 {
        let ops = random_ops(&mut rng, 60);
        let run = |ops: &[Op]| {
            let mut rt = KonaRuntime::new(pressured()).unwrap();
            check_memory_semantics(&mut rt, ops);
            rt.stats().app_time
        };
        assert_eq!(run(&ops), run(&ops));
    }
}
