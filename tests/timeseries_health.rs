//! Cross-crate integration tests for windowed time-series collection and
//! the SLO health monitor: conservation (per-window deltas sum exactly to
//! end-of-run registry totals), cross-`--jobs` byte-identity of series
//! and health reports, merge determinism, and fire/resolve behaviour
//! under a bundled fault plan.

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime};
use kona_net::FaultPlan;
use kona_telemetry::{HealthMonitor, Rule, SeriesData, Telemetry};
use kona_types::rng::{Rng, StdRng};
use kona_types::{par_map, Jobs};

const PAGES: u64 = 16;
const WINDOW_NS: u64 = 100_000;

/// Runs the seeded read/write workload under `plan` with time-series
/// collection on, returning the telemetry handle for inspection.
fn run_with_series(plan: FaultPlan, seed: u64, ops: u64) -> Telemetry {
    let mut cfg = ClusterConfig::small().with_local_cache_pages(4).with_replicas(2);
    cfg.cpu_cache_lines = 64;
    cfg.memory_nodes = 3;
    cfg.fault_plan = Some(plan);
    let tel = Telemetry::disabled();
    tel.enable_timeseries(WINDOW_NS);
    let mut rt = KonaRuntime::with_telemetry(cfg, tel.clone()).expect("valid config");
    let base = rt.allocate(PAGES * 4096).expect("allocate");
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..ops {
        let page = rng.gen_range(0..PAGES);
        let off = (page * 4096 + rng.gen_range(0..64) * 64) as u64;
        if rng.gen_bool(0.5) {
            let _ = rt.write_bytes(base + off, &[rng.gen::<u8>(); 64]);
        } else {
            let mut buf = [0u8; 64];
            let _ = rt.read_bytes(base + off, &mut buf);
        }
    }
    let _ = rt.sync();
    tel
}

/// Property: for every counter in the registry, the sum of its per-window
/// deltas equals the end-of-run total exactly — nothing is lost or double
/// counted by windowing. Histogram count/sum conserve the same way.
#[test]
fn window_deltas_sum_to_registry_totals() {
    for (plan_idx, plan) in FaultPlan::bundled(7, 0).into_iter().enumerate() {
        let tel = run_with_series(plan, 7 + plan_idx as u64, 400);
        let series = tel.series().expect("series enabled");
        let dump = tel.dump();
        assert!(!dump.counters.is_empty(), "run must register counters");
        for (name, total) in &dump.counters {
            assert_eq!(
                series.counter_total(name),
                *total,
                "counter {name} deltas must sum to the registry total"
            );
        }
        for (name, data) in &dump.histograms {
            let (mut count, mut sum) = (0u64, 0u64);
            for w in &series.windows {
                if let Some(d) = w.histograms.get(name) {
                    count += d.count();
                    sum += d.sum();
                }
            }
            assert_eq!(count, data.count(), "histogram {name} count must conserve");
            assert_eq!(sum, data.sum(), "histogram {name} sum must conserve");
        }
    }
}

/// Shards one plan-sweep over worker threads and merges in input order;
/// the merged series and health reports must be byte-identical to the
/// sequential run at any job count — the determinism contract behind
/// `fig_health --jobs N`.
#[test]
fn series_and_health_are_byte_identical_across_jobs() {
    let rules = || {
        vec![
            Rule::above("slo.fail", "nonexistent.counter", 0.5).critical(),
            Rule::above("obs.retries", "kona.retries", 5.0),
        ]
    };
    let run_all = |jobs: Jobs| {
        let plans = FaultPlan::bundled(42, 0);
        let shards = par_map(jobs, plans, |_, plan| {
            let name = plan.name;
            let tel = run_with_series(plan, 42, 300);
            let series = tel.series().expect("series enabled");
            let health = HealthMonitor::evaluate(rules(), &series);
            (series.prefixed(name), health.to_json())
        });
        let mut merged = SeriesData::new(WINDOW_NS);
        let mut health_json = String::new();
        for (series, health) in &shards {
            merged.merge(series);
            health_json.push_str(health);
            health_json.push('\n');
        }
        (merged.to_json(), merged.to_csv(), health_json)
    };
    let (json1, csv1, health1) = run_all(Jobs::serial());
    let (json4, csv4, health4) = run_all(Jobs::new(4));
    assert_eq!(json1, json4, "series JSON must not depend on --jobs");
    assert_eq!(csv1, csv4, "series CSV must not depend on --jobs");
    assert_eq!(health1, health4, "health reports must not depend on --jobs");
    assert!(json1.contains("\"windows\""));
}

/// Merging shards is associative and insensitive to grouping: (a⊕b)⊕c
/// equals a⊕(b⊕c) byte for byte.
#[test]
fn shard_merge_is_associative() {
    let plans = FaultPlan::bundled(11, 0);
    let shards: Vec<SeriesData> = plans
        .into_iter()
        .take(3)
        .map(|p| {
            let name = p.name;
            run_with_series(p, 11, 200)
                .series()
                .expect("series enabled")
                .prefixed(name)
        })
        .collect();
    let mut left = shards[0].clone();
    left.merge(&shards[1]);
    left.merge(&shards[2]);
    let mut right_tail = shards[1].clone();
    right_tail.merge(&shards[2]);
    let mut right = shards[0].clone();
    right.merge(&right_tail);
    assert_eq!(left.to_json(), right.to_json());
}

/// The congested plan's injected latency spike must fire the fetch-p99
/// rule and the alert must resolve once the spike passes — the bundled
/// demonstration that alerts are not one-way latches.
#[test]
fn congested_plan_fires_and_resolves_latency_alert() {
    let plan = FaultPlan::bundled(42, 0)
        .into_iter()
        .find(|p| p.name == "congested")
        .expect("bundled plans include congested");
    let tel = run_with_series(plan, 42, 600);
    let series = tel.series().expect("series enabled");
    let report = HealthMonitor::evaluate(
        vec![
            Rule::above("obs.fetch_p99", "kona.fetch_ns:p99", 20_000.0),
            Rule::above("slo.fail", "fig.ops_failed", 0.5).critical(),
        ],
        &series,
    );
    assert!(report.alerts_fired() >= 1, "spike must fire the p99 rule");
    assert!(
        report.alerts_resolved() >= 1,
        "alert must resolve after the spike"
    );
    assert!(!report.slo_breached(), "no critical rule may fire");
    let alert = &report.alerts[0];
    assert_eq!(alert.rule, "obs.fetch_p99");
    assert!(alert.worst_value > 20_000.0);
}

/// An installed monitor emits firing/resolved instants on the span
/// timeline as the runtime crosses window boundaries (not only at
/// end-of-run evaluation).
#[test]
fn installed_monitor_emits_alert_spans_during_run() {
    let plan = FaultPlan::bundled(42, 0)
        .into_iter()
        .find(|p| p.name == "congested")
        .expect("bundled plans include congested");
    let mut cfg = ClusterConfig::small().with_local_cache_pages(4).with_replicas(2);
    cfg.cpu_cache_lines = 64;
    cfg.memory_nodes = 3;
    cfg.fault_plan = Some(plan);
    let tel = Telemetry::with_tracing(1 << 14);
    tel.enable_timeseries(WINDOW_NS);
    tel.install_monitor(vec![Rule::above(
        "obs.fetch_p99",
        "kona.fetch_ns:p99",
        20_000.0,
    )]);
    let mut rt = KonaRuntime::with_telemetry(cfg, tel.clone()).expect("valid config");
    let base = rt.allocate(PAGES * 4096).expect("allocate");
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..600 {
        let page = rng.gen_range(0..PAGES);
        let off = (page * 4096 + rng.gen_range(0..64) * 64) as u64;
        let mut buf = [0u8; 64];
        let _ = rt.read_bytes(base + off, &mut buf);
    }
    let _ = rt.sync();
    let report = tel.health_report().expect("monitor installed");
    assert!(report.alerts_fired() >= 1);
    let fired = tel
        .events()
        .iter()
        .filter(|e| e.kind.name() == "alert_firing")
        .count();
    let resolved = tel
        .events()
        .iter()
        .filter(|e| e.kind.name() == "alert_resolved")
        .count();
    assert_eq!(fired, report.alerts_fired());
    assert_eq!(resolved, report.alerts_resolved());
    let snap = tel.snapshot();
    assert_eq!(snap.counter("mon.alerts_fired"), Some(fired as u64));
    assert_eq!(snap.counter("mon.alerts_resolved"), Some(resolved as u64));
}
