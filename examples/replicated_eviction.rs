//! Replication and failure handling (§4.5).
//!
//! ```bash
//! cargo run --release --example replicated_eviction
//! ```
//!
//! Runs the same workload twice: once without replication (a memory-node
//! failure loses the data and surfaces as a machine-check event) and once
//! with 2-way replicated eviction (reads transparently fail over to the
//! replica). Also demonstrates the page-fault fallback policy for slow
//! networks.

use kona::{ClusterConfig, FailurePolicy, KonaRuntime, RemoteMemoryRuntime};
use kona_types::{KonaError, MemAccess, Nanos, VirtAddr};

/// Write recognizable data, force it out of the local cache, and return
/// the node that holds the primary copy of `addr`.
fn write_and_displace(
    rt: &mut KonaRuntime,
    addr: VirtAddr,
    region_pages: u64,
) -> Result<u32, Box<dyn std::error::Error>> {
    rt.write_bytes(addr, &[0xC0; 64])?;
    rt.sync()?;
    // Touch enough other pages to push `addr`'s page out of FMem.
    for p in 1..region_pages {
        rt.access(MemAccess::read(addr + p * 4096, 8))?;
    }
    rt.sync()?;
    let node = rt
        .fpga()
        .translate_page(addr.page_number())
        .expect("translated")
        .node();
    Ok(node)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base_cfg = {
        let mut cfg = ClusterConfig::small().with_local_cache_pages(8);
        cfg.cpu_cache_lines = 64;
        cfg.memory_nodes = 3;
        cfg
    };

    // --- Without replication: the failure is fatal for that data. ---
    println!("=== replicas = 1 (no replication) ===");
    let mut rt = KonaRuntime::new(base_cfg.clone())?;
    let addr = rt.allocate(64 * 4096)?;
    let primary = write_and_displace(&mut rt, addr, 64)?;
    rt.fabric_mut().fail_node(primary)?;
    match rt.read_bytes(addr, &mut [0u8; 64]) {
        Err(KonaError::CoherenceTimeout { .. }) => {
            println!(
                "primary node {primary} failed -> machine check exception ({} recorded)",
                rt.mce_events().len()
            );
        }
        other => panic!("expected a coherence timeout, got {other:?}"),
    }

    // --- The page-fault fallback policy instead keeps software in control.
    println!("\n=== page-fault fallback for slow networks ===");
    let mut rt = KonaRuntime::new(base_cfg.clone())?;
    rt.set_failure_policy(FailurePolicy::PageFaultFallback);
    let addr = rt.allocate(64 * 4096)?;
    let primary = write_and_displace(&mut rt, addr, 64)?;
    rt.fabric_mut().fail_node(primary)?;
    assert!(rt.read_bytes(addr, &mut [0u8; 64]).is_err());
    println!("outage hit: access failed softly (no MCE: {})", rt.mce_events().is_empty());
    rt.fabric_mut().recover_node(primary);
    rt.fabric_mut().inject_delay(Nanos::micros(50)); // congested, but alive
    let mut buf = [0u8; 64];
    rt.read_bytes(addr, &mut buf)?;
    assert_eq!(buf, [0xC0; 64]);
    println!("after recovery the retried access succeeds, data intact");

    // --- With 2-way replication: reads fail over transparently. ---
    println!("\n=== replicas = 2 (replicated eviction) ===");
    let mut rt = KonaRuntime::new(base_cfg.with_replicas(2))?;
    let addr = rt.allocate(64 * 4096)?;
    let primary = write_and_displace(&mut rt, addr, 64)?;
    rt.fabric_mut().fail_node(primary)?;
    let mut buf = [0u8; 64];
    rt.read_bytes(addr, &mut buf)?;
    assert_eq!(buf, [0xC0; 64]);
    println!("primary node {primary} failed, read served from the replica");
    println!(
        "failover fetches recorded: {}",
        rt.stats().mce_events
    );
    println!(
        "\nNote (§4.5): replication costs eviction bandwidth, not application\n\
         time — eviction is off the critical path, and Kona's cache-line\n\
         granularity shrinks each replica's write stream."
    );
    Ok(())
}
