//! A Redis-like key-value store running on disaggregated memory.
//!
//! ```bash
//! cargo run --release --example remote_kv_store
//! ```
//!
//! Builds a small open-addressing hash table whose buckets and values live
//! entirely in remote memory, then runs the same randomly-keyed workload on
//! the Kona runtime and the page-fault (Kona-VM) baseline. Because the
//! store writes small values at random locations — the paper's worst case
//! (Redis-Rand, 31x dirty amplification at 4 KiB) — the runtimes diverge
//! exactly as §6 predicts: same results, very different time and wire
//! traffic.

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime, VmProfile, VmRuntime};
use kona_types::{Nanos, VirtAddr};

/// Fixed-size slots: 8-byte key hash, 2-byte value length, value bytes.
const SLOT_BYTES: u64 = 256;
const MAX_VALUE: usize = 160;

/// An open-addressing (linear-probing) hash table over a remote region.
struct RemoteKvStore<'rt> {
    runtime: &'rt mut dyn RemoteMemoryRuntime,
    base: VirtAddr,
    slots: u64,
}

impl<'rt> RemoteKvStore<'rt> {
    fn create(
        runtime: &'rt mut dyn RemoteMemoryRuntime,
        slots: u64,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let base = runtime.allocate(slots * SLOT_BYTES)?;
        Ok(RemoteKvStore {
            runtime,
            base,
            slots,
        })
    }

    fn hash(key: &str) -> u64 {
        // FNV-1a.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h | 1 // never zero: zero marks an empty slot
    }

    fn slot_addr(&self, index: u64) -> VirtAddr {
        self.base + (index % self.slots) * SLOT_BYTES
    }

    fn put(&mut self, key: &str, value: &[u8]) -> Result<(), Box<dyn std::error::Error>> {
        assert!(value.len() <= MAX_VALUE, "value too large");
        let h = Self::hash(key);
        for probe in 0..self.slots {
            let addr = self.slot_addr(h.wrapping_add(probe));
            let mut header = [0u8; 10];
            self.runtime.read_bytes(addr, &mut header)?;
            let stored = u64::from_le_bytes(header[..8].try_into()?);
            if stored == 0 || stored == h {
                let mut record = Vec::with_capacity(10 + value.len());
                record.extend_from_slice(&h.to_le_bytes());
                record.extend_from_slice(&(value.len() as u16).to_le_bytes());
                record.extend_from_slice(value);
                self.runtime.write_bytes(addr, &record)?;
                return Ok(());
            }
        }
        Err("table full".into())
    }

    fn get(&mut self, key: &str) -> Result<Option<Vec<u8>>, Box<dyn std::error::Error>> {
        let h = Self::hash(key);
        for probe in 0..self.slots {
            let addr = self.slot_addr(h.wrapping_add(probe));
            let mut header = [0u8; 10];
            self.runtime.read_bytes(addr, &mut header)?;
            let stored = u64::from_le_bytes(header[..8].try_into()?);
            if stored == 0 {
                return Ok(None);
            }
            if stored == h {
                let len = usize::from(u16::from_le_bytes(header[8..10].try_into()?));
                let mut value = vec![0u8; len];
                self.runtime.read_bytes(addr + 10, &mut value)?;
                return Ok(Some(value));
            }
        }
        Ok(None)
    }
}

fn drive(runtime: &mut dyn RemoteMemoryRuntime) -> Result<Nanos, Box<dyn std::error::Error>> {
    let name = runtime.name().to_string();
    let mut store = RemoteKvStore::create(runtime, 8192)?;
    // Insert and verify 2000 keys with value sizes like the paper's
    // Redis-Rand (48-144 B).
    for i in 0..2000u32 {
        let key = format!("user:{i}");
        let value = vec![(i % 251) as u8; 48 + (i as usize % 96)];
        store.put(&key, &value)?;
    }
    for i in (0..2000u32).step_by(17) {
        let key = format!("user:{i}");
        let got = store.get(&key)?.expect("key must exist");
        assert_eq!(got[0], (i % 251) as u8);
    }
    assert!(store.get("missing")?.is_none());
    let time = runtime.sync()? + runtime.stats().app_time;
    let stats = runtime.stats();
    println!(
        "{name:<10} app time {:>12}  faults {:>5}  writeback {:>9} B  amplification {:>6.2}",
        format!("{time}"),
        stats.major_faults + stats.minor_faults,
        stats.writeback_bytes,
        stats.write_amplification(),
    );
    Ok(time)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8192 slots x 256 B = 2 MiB of table; cache only 1 MiB of it locally
    // so the runtimes constantly fetch and evict.
    let cfg = ClusterConfig::small().with_local_cache_pages(256);

    println!("running the same KV workload on both runtimes:\n");
    let mut kona = KonaRuntime::new(cfg.clone())?;
    let t_kona = drive(&mut kona)?;

    let mut vm = VmRuntime::new(cfg, VmProfile::kona_vm())?;
    let t_vm = drive(&mut vm)?;

    println!(
        "\nKona speedup: {:.1}x (paper §6.1 reports 4-6.6x on its microbenchmark)",
        t_vm.as_ns() as f64 / t_kona.as_ns() as f64
    );
    Ok(())
}
