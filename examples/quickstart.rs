//! Quickstart: transparently allocate, write and read disaggregated memory.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small simulated rack (two memory nodes plus a compute node with
//! a 4 MiB local FMem cache), allocates remote memory through the Kona
//! runtime, and shows that the application never takes a page fault even
//! though its data lives across the network.

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime};
use kona_types::MemAccess;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A laptop-scale rack: 2 memory nodes x 32 MiB, 1 MiB slabs,
    // 1024-page (4 MiB) local cache.
    let mut runtime = KonaRuntime::new(ClusterConfig::small())?;

    // Allocation is transparent: the Resource Manager grabs slabs from the
    // rack controller off the critical path, AllocLib carves objects out.
    let greeting = runtime.allocate(64)?;
    let big_buffer = runtime.allocate(8 << 20)?; // spans multiple slabs

    // Writes and reads look like local memory...
    runtime.write_bytes(greeting, b"hello disaggregated world")?;
    let mut back = [0u8; 25];
    runtime.read_bytes(greeting, &mut back)?;
    assert_eq!(&back, b"hello disaggregated world");
    println!("roundtrip: {}", String::from_utf8_lossy(&back));

    // ...including data far larger than what is cached locally.
    for mib in 0..8u64 {
        let addr = big_buffer + mib * (1 << 20);
        runtime.write_bytes(addr, &[mib as u8; 128])?;
    }
    let t = runtime.access(MemAccess::read(big_buffer, 64))?;
    println!("one 64 B read took {t} of simulated time");

    // Durability: push all dirty cache lines to the memory nodes.
    runtime.sync()?;

    let stats = runtime.stats();
    println!("remote fetches:    {}", stats.remote_fetches);
    println!("pages evicted:     {}", stats.pages_evicted);
    println!("writeback bytes:   {}", stats.writeback_bytes);
    println!("app dirty bytes:   {}", stats.app_dirty_bytes);
    println!(
        "write amplification: {:.2} (a page-granularity runtime would be ~{:.0}x)",
        stats.write_amplification(),
        4096.0 / 128.0
    );
    println!(
        "page faults: {} major, {} minor  <- the whole point of Kona",
        stats.major_faults, stats.minor_faults
    );
    Ok(())
}
