//! PageRank over a graph stored in disaggregated memory.
//!
//! ```bash
//! cargo run --release --example graph_analytics
//! ```
//!
//! Stores a synthetic power-law graph (CSR layout) in remote memory and
//! runs real PageRank iterations through the Kona runtime — adjacency
//! scans, random neighbour reads and per-vertex rank writes, the access
//! pattern of the paper's GraphLab workloads. The working set exceeds the
//! local cache, so the run exercises fetch, dirty tracking and cache-line
//! eviction end to end, and verifies the ranks converge to a probability
//! distribution.

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime};
use kona_types::VirtAddr;

const VERTICES: usize = 4096;
const EDGES_PER_VERTEX: usize = 8;
const ITERATIONS: usize = 5;
const DAMPING: f64 = 0.85;

struct RemoteGraph {
    /// CSR offsets (u32 per vertex + 1).
    offsets: VirtAddr,
    /// CSR edge targets (u32 per edge).
    edges: VirtAddr,
    /// f64 rank per vertex, double-buffered.
    ranks: [VirtAddr; 2],
    vertex_count: usize,
}

impl RemoteGraph {
    fn build(
        rt: &mut KonaRuntime,
        vertices: usize,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let offsets = rt.allocate(((vertices + 1) * 4) as u64)?;
        let edges = rt.allocate((vertices * EDGES_PER_VERTEX * 4) as u64)?;
        let ranks = [
            rt.allocate((vertices * 8) as u64)?,
            rt.allocate((vertices * 8) as u64)?,
        ];

        // Power-law-ish edges: half the targets land on the first 10% of
        // vertices (hubs), the rest uniform.
        let mut cursor = 0u32;
        let mut x = 88172645463325252u64;
        for v in 0..vertices {
            rt.write_bytes(offsets + (v * 4) as u64, &cursor.to_le_bytes())?;
            for e in 0..EDGES_PER_VERTEX {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let target = if e % 2 == 0 {
                    (x % (vertices as u64 / 10).max(1)) as u32
                } else {
                    (x % vertices as u64) as u32
                };
                rt.write_bytes(edges + u64::from(cursor) * 4, &target.to_le_bytes())?;
                cursor += 1;
            }
        }
        rt.write_bytes(offsets + (vertices * 4) as u64, &cursor.to_le_bytes())?;

        // Uniform initial ranks.
        let init = 1.0f64 / vertices as f64;
        for v in 0..vertices {
            rt.write_bytes(ranks[0] + (v * 8) as u64, &init.to_le_bytes())?;
        }
        Ok(RemoteGraph {
            offsets,
            edges,
            ranks,
            vertex_count: vertices,
        })
    }

    fn read_u32(&self, rt: &mut KonaRuntime, addr: VirtAddr) -> Result<u32, Box<dyn std::error::Error>> {
        let mut b = [0u8; 4];
        rt.read_bytes(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_f64(&self, rt: &mut KonaRuntime, addr: VirtAddr) -> Result<f64, Box<dyn std::error::Error>> {
        let mut b = [0u8; 8];
        rt.read_bytes(addr, &mut b)?;
        Ok(f64::from_le_bytes(b))
    }

    /// One synchronous PageRank iteration: ranks[src] -> ranks[dst].
    fn iterate(
        &self,
        rt: &mut KonaRuntime,
        src: usize,
    ) -> Result<(), Box<dyn std::error::Error>> {
        let n = self.vertex_count;
        // Zero the destination buffer with the teleport term.
        let teleport = (1.0 - DAMPING) / n as f64;
        for v in 0..n {
            rt.write_bytes(self.ranks[1 - src] + (v * 8) as u64, &teleport.to_le_bytes())?;
        }
        // Scatter each vertex's rank share along its out-edges.
        for v in 0..n {
            let begin = self.read_u32(rt, self.offsets + (v * 4) as u64)?;
            let end = self.read_u32(rt, self.offsets + ((v + 1) * 4) as u64)?;
            let degree = (end - begin).max(1) as f64;
            let share =
                DAMPING * self.read_f64(rt, self.ranks[src] + (v * 8) as u64)? / degree;
            for e in begin..end {
                let target = self.read_u32(rt, self.edges + u64::from(e) * 4)? as usize;
                let addr = self.ranks[1 - src] + (target * 8) as u64;
                let current = self.read_f64(rt, addr)?;
                rt.write_bytes(addr, &(current + share).to_le_bytes())?;
            }
        }
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Local cache of 64 pages (256 KiB) against a ~420 KiB working set.
    let cfg = ClusterConfig::small().with_local_cache_pages(64);
    let mut rt = KonaRuntime::new(cfg)?;

    let graph = RemoteGraph::build(&mut rt, VERTICES)?;
    println!(
        "graph: {} vertices, {} edges (CSR in remote memory)",
        VERTICES,
        VERTICES * EDGES_PER_VERTEX
    );

    let mut src = 0usize;
    for it in 0..ITERATIONS {
        graph.iterate(&mut rt, src)?;
        src = 1 - src;
        println!("iteration {} done at simulated t={}", it + 1, rt.stats().app_time);
    }

    // Ranks must form a probability distribution and favour the hubs.
    let mut total = 0.0;
    let mut hub_mass = 0.0;
    for v in 0..VERTICES {
        let r = graph.read_f64(&mut rt, graph.ranks[src] + (v * 8) as u64)?;
        total += r;
        if v < VERTICES / 10 {
            hub_mass += r;
        }
    }
    assert!((total - 1.0).abs() < 1e-6, "ranks must sum to 1, got {total}");
    assert!(hub_mass > 0.3, "hubs should accumulate rank, got {hub_mass:.2}");
    println!("rank mass on the 10% hub vertices: {:.1}%", hub_mass * 100.0);

    rt.sync()?;
    let stats = rt.stats();
    println!("\nremote fetches: {}", stats.remote_fetches);
    println!("pages evicted:  {}", stats.pages_evicted);
    println!(
        "bytes written back / bytes written: {:.2} (cache-line tracking also\n\
         deduplicates rewrites; page-granularity tracking would resend whole pages)",
        stats.write_amplification()
    );
    println!("page faults: {} (Kona takes none)", stats.major_faults);
    Ok(())
}
