//! Metis map-reduce workloads: Linear Regression and Histogram.
//!
//! Both of the paper's Metis workloads stream a 40 GB input (§2.1). Linear
//! Regression writes partial results sequentially into an output region
//! (lowest amplification after Redis-Seq); Histogram scatters small
//! increments into a bin array (moderate amplification, strong reuse).

use crate::config::WorkloadProfile;
use crate::Workload;
use kona_trace::{Trace, TraceEvent};
use kona_types::{ByteSize, MemAccess, VirtAddr};
use kona_types::rng::{Rng, StdRng};

const PAPER_INPUT_BYTES: u64 = 40u64 << 30;

/// Linear Regression over a streamed input: sequential 4 KiB reads of the
/// input, with ~900 B partial-result records written sequentially into 2 KiB
/// output slots (leaving the rest of each slot clean, which reproduces the
/// paper's 2.3× page-granularity amplification).
///
/// # Examples
///
/// ```
/// # use kona_workloads::{LinearRegressionWorkload, Workload};
/// let wl = LinearRegressionWorkload::default();
/// assert_eq!(wl.name(), "Linear Regression");
/// ```
#[derive(Debug, Clone)]
pub struct LinearRegressionWorkload {
    profile: WorkloadProfile,
    input_bytes: u64,
    output_slots: u64,
}

const LINREG_SLOT: u64 = 2048;
const LINREG_RECORD: u32 = 886;

impl LinearRegressionWorkload {
    /// Creates the workload with an explicit profile.
    pub fn with_profile(profile: WorkloadProfile) -> Self {
        let input_bytes = profile.scaled(PAPER_INPUT_BYTES);
        LinearRegressionWorkload {
            profile,
            input_bytes,
            output_slots: (input_bytes / 1024 / LINREG_SLOT).max(64),
        }
    }

    fn output_base(&self) -> u64 {
        self.input_bytes + (1 << 20)
    }
}

impl Default for LinearRegressionWorkload {
    fn default() -> Self {
        Self::with_profile(WorkloadProfile::default())
    }
}

impl Workload for LinearRegressionWorkload {
    fn name(&self) -> &str {
        "Linear Regression"
    }

    fn footprint(&self) -> ByteSize {
        ByteSize(self.output_base() + self.output_slots * LINREG_SLOT)
    }

    fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = Trace::with_capacity(self.profile.total_ops() * 2);
        let mut in_cursor = 0u64;
        let mut out_cursor = 0u64;
        for window in 0..self.profile.windows {
            for op in 0..self.profile.ops_per_window {
                let time = self.profile.op_time(window, op);
                // Stream a 4 KiB chunk of input.
                trace.push(TraceEvent::new(
                    time,
                    MemAccess::read(VirtAddr::new(in_cursor), 4096),
                ));
                in_cursor = (in_cursor + 4096) % self.input_bytes.saturating_sub(4096).max(4096);
                // Write a partial-result record into the next output slot,
                // with a small jitter in the start offset so records are not
                // perfectly line-aligned.
                let slot = out_cursor % self.output_slots;
                out_cursor += 1;
                let jitter = rng.gen_range(0..32u64);
                trace.push(TraceEvent::new(
                    time,
                    MemAccess::write(
                        VirtAddr::new(self.output_base() + slot * LINREG_SLOT + jitter),
                        LINREG_RECORD,
                    ),
                ));
            }
        }
        trace
    }
}

/// Histogram over a streamed input: sequential 4 KiB reads, with 8-byte
/// counter increments scattered Zipf-free (uniformly) over a bin array.
/// The bin array is small and hot, reproducing the paper's moderate
/// amplification and strong locality.
///
/// # Examples
///
/// ```
/// # use kona_workloads::{HistogramWorkload, Workload};
/// let wl = HistogramWorkload::default();
/// assert_eq!(wl.name(), "Histogram");
/// ```
#[derive(Debug, Clone)]
pub struct HistogramWorkload {
    profile: WorkloadProfile,
    input_bytes: u64,
    bins: u64,
}

const BIN_SIZE: u64 = 8;
const INCREMENTS_PER_OP: usize = 2;

impl HistogramWorkload {
    /// Creates the workload with an explicit profile.
    pub fn with_profile(profile: WorkloadProfile) -> Self {
        HistogramWorkload {
            input_bytes: profile.scaled(PAPER_INPUT_BYTES),
            // Sized so a window's increments dirty roughly a third of each
            // bin page — the paper's 3.6× amplification point.
            bins: (profile.ops_per_window as u64 * INCREMENTS_PER_OP as u64 * 8 / 3).max(512),
            profile,
        }
    }

    fn bin_base(&self) -> u64 {
        self.input_bytes + (1 << 20)
    }
}

impl Default for HistogramWorkload {
    fn default() -> Self {
        Self::with_profile(WorkloadProfile::default())
    }
}

impl Workload for HistogramWorkload {
    fn name(&self) -> &str {
        "Histogram"
    }

    fn footprint(&self) -> ByteSize {
        ByteSize(self.bin_base() + self.bins * BIN_SIZE)
    }

    fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = Trace::with_capacity(self.profile.total_ops() * 4);
        let mut in_cursor = 0u64;
        for window in 0..self.profile.windows {
            for op in 0..self.profile.ops_per_window {
                let time = self.profile.op_time(window, op);
                trace.push(TraceEvent::new(
                    time,
                    MemAccess::read(VirtAddr::new(in_cursor), 4096),
                ));
                in_cursor = (in_cursor + 4096) % self.input_bytes.saturating_sub(4096).max(4096);
                // Input values cluster, so consecutive increments hit
                // *adjacent* bins — the within-line locality behind the
                // paper's modest 1.84x cache-line amplification.
                let base = rng.gen_range(0..self.bins.saturating_sub(INCREMENTS_PER_OP as u64));
                for i in 0..INCREMENTS_PER_OP as u64 {
                    let addr = VirtAddr::new(self.bin_base() + (base + i) * BIN_SIZE);
                    // Read-modify-write of the counter.
                    trace.push(TraceEvent::new(time, MemAccess::read(addr, 8)));
                    trace.push(TraceEvent::new(time, MemAccess::write(addr, 8)));
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_trace::amplification::AmplificationAnalysis;

    fn profile() -> WorkloadProfile {
        WorkloadProfile::default()
            .with_windows(2)
            .with_ops_per_window(2000)
            .with_scale_divisor(256)
    }

    #[test]
    fn linreg_low_line_amplification() {
        let wl = LinearRegressionWorkload::with_profile(profile());
        let amp = AmplificationAnalysis::over_events(wl.generate(3).iter().copied());
        let al = amp.amplification_line();
        assert!((1.0..1.4).contains(&al), "line amp {al}");
        let a4 = amp.amplification_4k();
        assert!((1.5..4.0).contains(&a4), "4k amp {a4}");
    }

    #[test]
    fn linreg_streams_input_sequentially() {
        let wl = LinearRegressionWorkload::with_profile(profile());
        let t = wl.generate(3);
        let reads: Vec<u64> = t
            .iter()
            .filter(|e| e.access.kind.is_read())
            .take(3)
            .map(|e| e.access.addr.raw())
            .collect();
        assert_eq!(reads, vec![0, 4096, 8192]);
    }

    #[test]
    fn histogram_bins_hot_and_small() {
        let wl = HistogramWorkload::with_profile(profile());
        assert!(wl.bins * BIN_SIZE < wl.input_bytes / 8);
        let t = wl.generate(3);
        // All writes land in the bin region.
        for e in t.iter().filter(|e| e.access.kind.is_write()) {
            assert!(e.access.addr.raw() >= wl.bin_base());
            assert_eq!(e.access.len, 8);
        }
    }

    #[test]
    fn histogram_amplification_moderate() {
        let wl = HistogramWorkload::with_profile(profile());
        let amp = AmplificationAnalysis::over_events(wl.generate(3).iter().copied());
        let a4 = amp.amplification_4k();
        assert!((1.5..12.0).contains(&a4), "4k amp {a4}");
    }

    #[test]
    fn footprints_scale_with_profile() {
        let big = LinearRegressionWorkload::with_profile(
            WorkloadProfile::default().with_scale_divisor(16),
        );
        let small = LinearRegressionWorkload::with_profile(
            WorkloadProfile::default().with_scale_divisor(256),
        );
        assert!(big.footprint() > small.footprint());
    }
}
