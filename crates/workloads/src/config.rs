//! Shared workload profile parameters.

use kona_types::Nanos;

/// Pacing and sizing parameters shared by all workload generators.
///
/// A trace consists of `windows` measurement windows of `window_width`
/// simulated time each (the paper uses 10 s windows for the Table 2 study
/// and 1 s windows for KTracker), with `ops_per_window` application
/// operations spread uniformly through each window.
///
/// # Examples
///
/// ```
/// # use kona_workloads::WorkloadProfile;
/// let p = WorkloadProfile::default().with_windows(4).with_ops_per_window(1000);
/// assert_eq!(p.windows, 4);
/// assert_eq!(p.total_ops(), 4000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadProfile {
    /// Number of measurement windows to generate.
    pub windows: usize,
    /// Simulated width of each window.
    pub window_width: Nanos,
    /// Application operations per window.
    pub ops_per_window: usize,
    /// Footprint divisor relative to the paper's full-size run (16 means
    /// the trace touches 1/16 of the paper's memory).
    pub scale_divisor: u64,
}

impl WorkloadProfile {
    /// The default profile: 12 windows of 10 s, 6000 ops per window,
    /// footprints scaled to 1/16 of the paper's.
    pub fn new() -> Self {
        WorkloadProfile {
            windows: 12,
            window_width: Nanos::secs(10),
            ops_per_window: 6_000,
            scale_divisor: 16,
        }
    }

    /// Returns the profile with a different window count.
    #[must_use]
    pub fn with_windows(mut self, windows: usize) -> Self {
        self.windows = windows;
        self
    }

    /// Returns the profile with a different window width.
    #[must_use]
    pub fn with_window_width(mut self, width: Nanos) -> Self {
        self.window_width = width;
        self
    }

    /// Returns the profile with a different per-window operation count.
    #[must_use]
    pub fn with_ops_per_window(mut self, ops: usize) -> Self {
        self.ops_per_window = ops;
        self
    }

    /// Returns the profile with a different footprint scale divisor.
    #[must_use]
    pub fn with_scale_divisor(mut self, divisor: u64) -> Self {
        self.scale_divisor = divisor.max(1);
        self
    }

    /// Total operations across all windows.
    pub fn total_ops(&self) -> usize {
        self.windows * self.ops_per_window
    }

    /// Scales a paper-reported footprint (in bytes) by the divisor,
    /// rounding up to at least one 4 KiB page.
    pub fn scaled(&self, paper_bytes: u64) -> u64 {
        (paper_bytes / self.scale_divisor).max(4096)
    }

    /// The simulated timestamp of operation `op` within window `window`.
    pub fn op_time(&self, window: usize, op: usize) -> Nanos {
        let w = self.window_width.as_ns();
        Nanos::from_ns(window as u64 * w + (op as u64 * w) / self.ops_per_window.max(1) as u64)
    }
}

impl Default for WorkloadProfile {
    fn default() -> Self {
        WorkloadProfile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let p = WorkloadProfile::default();
        assert_eq!(p.windows, 12);
        assert_eq!(p.window_width, Nanos::secs(10));
        assert_eq!(p.total_ops(), 72_000);
    }

    #[test]
    fn builders() {
        let p = WorkloadProfile::default()
            .with_windows(3)
            .with_window_width(Nanos::secs(1))
            .with_ops_per_window(10)
            .with_scale_divisor(0);
        assert_eq!(p.windows, 3);
        assert_eq!(p.scale_divisor, 1); // clamped
        assert_eq!(p.total_ops(), 30);
    }

    #[test]
    fn scaled_footprint_has_floor() {
        let p = WorkloadProfile::default().with_scale_divisor(1 << 40);
        assert_eq!(p.scaled(4096), 4096);
        let p = WorkloadProfile::default().with_scale_divisor(16);
        assert_eq!(p.scaled(16 << 30), 1 << 30);
    }

    #[test]
    fn op_times_monotone_within_and_across_windows() {
        let p = WorkloadProfile::default()
            .with_windows(2)
            .with_ops_per_window(100)
            .with_window_width(Nanos::secs(10));
        assert_eq!(p.op_time(0, 0), Nanos::ZERO);
        assert!(p.op_time(0, 99) < Nanos::secs(10));
        assert_eq!(p.op_time(1, 0), Nanos::secs(10));
        assert!(p.op_time(0, 50) < p.op_time(0, 51));
    }
}
