//! Redis-like key-value workloads (Redis-Rand, Redis-Seq).
//!
//! The paper's two extreme workloads (§2.2): uniformly-random keyed SET/GET
//! against a 4 GB dataset (highest dirty-data amplification, 31× at 4 KiB)
//! and sequentially keyed SET against a 133 MB dataset (among the lowest,
//! 2.76×).
//!
//! The generator models a Redis heap as fixed-size slots, one per key, each
//! holding a small header (dict entry / robj metadata) followed by the
//! value. A `SET` writes header + value; a `GET` reads them. Random-mode
//! values are small (48–144 B) and start at a slightly misaligned offset —
//! this reproduces the paper's measured cache-line amplification of ~1.5
//! (partial lines at both ends of the value). Sequential mode uses ~1 KiB
//! values that tile pages densely, plus a periodic small dictionary-update
//! write that reproduces the residual page-granularity amplification the
//! paper measures for Redis-Seq.

use crate::config::WorkloadProfile;
use crate::zipf::Zipf;
use crate::Workload;
use kona_trace::{Trace, TraceEvent};
use kona_types::{ByteSize, MemAccess, VirtAddr};
use kona_types::rng::{Rng, StdRng};

/// Key ordering mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Uniformly random keys with Zipfian popularity (Redis-Rand).
    Rand,
    /// Sequentially increasing keys (Redis-Seq).
    Seq,
}

/// A Redis-like workload; construct with [`RedisWorkload::rand`] or
/// [`RedisWorkload::seq`].
///
/// # Examples
///
/// ```
/// # use kona_workloads::{RedisWorkload, Workload};
/// let t = RedisWorkload::seq().with_windows(1).generate(3);
/// assert!(t.write_count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct RedisWorkload {
    profile: WorkloadProfile,
    mode: Mode,
    slot_size: u64,
    n_keys: u64,
    /// Fraction of operations that are SETs (the rest are GETs).
    write_fraction: f64,
}

/// Per-slot header modelling Redis dict entry + robj metadata.
const HEADER_BYTES: u32 = 16;
/// Sequential mode issues one small dictionary write every this many SETs.
const SEQ_DICT_PERIOD: usize = 3;

impl RedisWorkload {
    /// The Redis-Rand workload: paper footprint 4 GB, uniformly random keys.
    pub fn rand() -> Self {
        Self::with_profile_and_mode(WorkloadProfile::default(), Mode::Rand)
    }

    /// The Redis-Seq workload: paper footprint 133 MB, sequential keys.
    pub fn seq() -> Self {
        Self::with_profile_and_mode(WorkloadProfile::default(), Mode::Seq)
    }

    fn with_profile_and_mode(profile: WorkloadProfile, mode: Mode) -> Self {
        let (paper_bytes, slot_size, write_fraction) = match mode {
            Mode::Rand => (4u64 << 30, 256, 0.5),
            Mode::Seq => (133u64 << 20, 1024, 0.9),
        };
        let footprint = profile.scaled(paper_bytes);
        RedisWorkload {
            profile,
            mode,
            slot_size,
            n_keys: (footprint / slot_size).max(16),
            write_fraction,
        }
    }

    /// Replaces the workload profile.
    #[must_use]
    pub fn with_profile(self, profile: WorkloadProfile) -> Self {
        Self::with_profile_and_mode(profile, self.mode)
    }

    /// Convenience: sets the number of measurement windows.
    #[must_use]
    pub fn with_windows(self, windows: usize) -> Self {
        let profile = self.profile.with_windows(windows);
        Self::with_profile_and_mode(profile, self.mode)
    }

    fn slot_addr(&self, key: u64) -> VirtAddr {
        VirtAddr::new(key * self.slot_size)
    }
}

impl Workload for RedisWorkload {
    fn name(&self) -> &str {
        match self.mode {
            Mode::Rand => "Redis-Rand",
            Mode::Seq => "Redis-Seq",
        }
    }

    fn footprint(&self) -> ByteSize {
        ByteSize(self.n_keys * self.slot_size)
    }

    fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = Trace::with_capacity(self.profile.total_ops() * 2);
        let zipf = Zipf::new(self.n_keys, 0.99);
        let mut seq_cursor: u64 = 0;
        let mut set_counter: usize = 0;

        for window in 0..self.profile.windows {
            for op in 0..self.profile.ops_per_window {
                let time = self.profile.op_time(window, op);
                let key = match self.mode {
                    Mode::Rand => {
                        // Zipf gives popularity rank; scatter ranks across the
                        // keyspace with a multiplicative hash so hot keys are
                        // not physically adjacent.
                        let rank = zipf.sample(&mut rng) - 1;
                        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.n_keys
                    }
                    Mode::Seq => {
                        let k = seq_cursor % self.n_keys;
                        seq_cursor += 1;
                        k
                    }
                };
                let slot = self.slot_addr(key);
                let is_set = rng.gen::<f64>() < self.write_fraction;

                let (val_off, val_len) = match self.mode {
                    // Misaligned small values: 48-144 B starting 8-56 B
                    // into the slot (after the header).
                    Mode::Rand => (
                        u64::from(HEADER_BYTES) + rng.gen_range(0..48),
                        rng.gen_range(48..=144u32),
                    ),
                    // Large values filling most of the slot.
                    Mode::Seq => (
                        u64::from(HEADER_BYTES),
                        (self.slot_size - u64::from(HEADER_BYTES) - 8) as u32,
                    ),
                };

                if is_set {
                    trace.push(TraceEvent::new(
                        time,
                        MemAccess::write(slot, HEADER_BYTES),
                    ));
                    trace.push(TraceEvent::new(
                        time,
                        MemAccess::write(slot + val_off, val_len),
                    ));
                    set_counter += 1;
                    if self.mode == Mode::Seq && set_counter.is_multiple_of(SEQ_DICT_PERIOD) {
                        // Dictionary bucket update at a random location.
                        let bucket = rng.gen_range(0..self.n_keys);
                        trace.push(TraceEvent::new(
                            time,
                            MemAccess::write(self.slot_addr(bucket), 24),
                        ));
                    }
                } else {
                    trace.push(TraceEvent::new(time, MemAccess::read(slot, HEADER_BYTES)));
                    trace.push(TraceEvent::new(
                        time,
                        MemAccess::read(slot + val_off, val_len),
                    ));
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_trace::amplification::AmplificationAnalysis;

    fn small(mode: fn() -> RedisWorkload) -> RedisWorkload {
        mode().with_profile(
            WorkloadProfile::default()
                .with_windows(2)
                .with_ops_per_window(2_000),
        )
    }

    #[test]
    fn rand_traces_stay_in_footprint() {
        let wl = small(RedisWorkload::rand);
        let t = wl.generate(1);
        assert!(t.address_span() <= wl.footprint().bytes());
    }

    #[test]
    fn seq_mode_walks_keys_in_order() {
        let wl = small(RedisWorkload::seq);
        let t = wl.generate(1);
        // First two SET ops write to slot 0 then slot 1.
        let writes: Vec<_> = t
            .iter()
            .filter(|e| e.access.kind.is_write() && e.access.len > 100)
            .take(2)
            .collect();
        assert!(writes[1].access.addr.raw() > writes[0].access.addr.raw());
    }

    #[test]
    fn rand_has_much_higher_page_amplification_than_seq() {
        let rand_amp = AmplificationAnalysis::over_events(
            small(RedisWorkload::rand).generate(5).iter().copied(),
        );
        let seq_amp = AmplificationAnalysis::over_events(
            small(RedisWorkload::seq).generate(5).iter().copied(),
        );
        assert!(
            rand_amp.amplification_4k() > 4.0 * seq_amp.amplification_4k(),
            "rand {} vs seq {}",
            rand_amp.amplification_4k(),
            seq_amp.amplification_4k()
        );
    }

    #[test]
    fn rand_page_amplification_in_paper_ballpark() {
        let amp = AmplificationAnalysis::over_events(
            small(RedisWorkload::rand).generate(5).iter().copied(),
        );
        let a4 = amp.amplification_4k();
        // Paper: 31.4 for the full-size run; accept a generous band.
        assert!((10.0..60.0).contains(&a4), "4k amplification {a4}");
        let al = amp.amplification_line();
        assert!((1.0..2.5).contains(&al), "line amplification {al}");
    }

    #[test]
    fn seq_line_amplification_close_to_one() {
        let amp = AmplificationAnalysis::over_events(
            small(RedisWorkload::seq).generate(5).iter().copied(),
        );
        let al = amp.amplification_line();
        assert!((1.0..1.4).contains(&al), "line amplification {al}");
    }

    #[test]
    fn mixed_reads_and_writes_present() {
        let t = small(RedisWorkload::rand).generate(9);
        assert!(t.read_count() > 0);
        assert!(t.write_count() > 0);
    }
}
