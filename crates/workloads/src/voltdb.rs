//! A VoltDB-style in-memory OLTP workload running TPC-C-like transactions.
//!
//! The paper's VoltDB row (§2.1): 11.5 GB footprint, amplification 3.74 at
//! 4 KiB and 1.17 at cache-line tracking. The generator models a row store
//! of 256 B row slots; each transaction point-reads a handful of rows and
//! updates one to three of them with a ~200 B contiguous field write.
//! Row selection is Zipfian (hot warehouses/districts, s = 1.25), which
//! concentrates updates on hot pages and keeps page-granularity
//! amplification moderate — the mechanism behind the paper's 3.74×.

use crate::config::WorkloadProfile;
use crate::zipf::Zipf;
use crate::Workload;
use kona_trace::{Trace, TraceEvent};
use kona_types::{ByteSize, MemAccess, VirtAddr};
use kona_types::rng::{Rng, StdRng};

const PAPER_BYTES: u64 = 12_348_030_976; // 11.5 GiB
const ROW_SLOT: u64 = 256;

/// The VoltDB / TPC-C workload.
///
/// # Examples
///
/// ```
/// # use kona_workloads::{VoltDbWorkload, Workload};
/// let wl = VoltDbWorkload::default();
/// assert_eq!(wl.name(), "VoltDB");
/// assert!(!wl.generate(1).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct VoltDbWorkload {
    profile: WorkloadProfile,
    rows: u64,
}

impl VoltDbWorkload {
    /// Creates the workload with an explicit profile.
    pub fn with_profile(profile: WorkloadProfile) -> Self {
        VoltDbWorkload {
            rows: (profile.scaled(PAPER_BYTES) / ROW_SLOT).max(64),
            profile,
        }
    }

    fn row_addr(&self, row: u64) -> VirtAddr {
        VirtAddr::new(row * ROW_SLOT)
    }
}

impl Default for VoltDbWorkload {
    fn default() -> Self {
        Self::with_profile(WorkloadProfile::default())
    }
}

impl Workload for VoltDbWorkload {
    fn name(&self) -> &str {
        "VoltDB"
    }

    fn footprint(&self) -> ByteSize {
        ByteSize(self.rows * ROW_SLOT)
    }

    fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = Trace::with_capacity(self.profile.total_ops() * 5);
        let zipf = Zipf::new(self.rows, 1.25);
        for window in 0..self.profile.windows {
            for op in 0..self.profile.ops_per_window {
                let time = self.profile.op_time(window, op);
                // Point-read 3 rows of the transaction's read set.
                for _ in 0..3 {
                    let row = zipf.sample(&mut rng) - 1;
                    trace.push(TraceEvent::new(
                        time,
                        MemAccess::read(self.row_addr(row), 200),
                    ));
                }
                // Update 1-3 rows: contiguous ~200 B field write starting
                // shortly after the row header.
                let updates = rng.gen_range(1..=3);
                for _ in 0..updates {
                    let row = zipf.sample(&mut rng) - 1;
                    let len = rng.gen_range(180..=220u32);
                    trace.push(TraceEvent::new(
                        time,
                        MemAccess::write(self.row_addr(row) + 8, len),
                    ));
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_trace::amplification::AmplificationAnalysis;

    fn small() -> VoltDbWorkload {
        VoltDbWorkload::with_profile(
            WorkloadProfile::default()
                .with_windows(2)
                .with_ops_per_window(2000)
                .with_scale_divisor(256),
        )
    }

    #[test]
    fn line_amplification_near_paper_value() {
        let amp = AmplificationAnalysis::over_events(small().generate(3).iter().copied());
        let al = amp.amplification_line();
        // Paper: 1.17 — contiguous ~200 B writes touch mostly-full lines.
        assert!((1.0..1.6).contains(&al), "line amp {al}");
    }

    #[test]
    fn page_amplification_moderate() {
        let amp = AmplificationAnalysis::over_events(small().generate(3).iter().copied());
        let a4 = amp.amplification_4k();
        // Paper: 3.74 — hot rows cluster updates on hot pages.
        assert!((2.0..14.0).contains(&a4), "4k amp {a4}");
    }

    #[test]
    fn traces_stay_in_footprint() {
        let wl = small();
        let t = wl.generate(9);
        assert!(t.address_span() <= wl.footprint().bytes() + ROW_SLOT);
    }

    #[test]
    fn reads_outnumber_writes() {
        let t = small().generate(5);
        assert!(t.read_count() > t.write_count());
    }
}
