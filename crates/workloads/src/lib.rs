//! Synthetic application workloads for the Kona evaluation.
//!
//! The paper evaluates Kona on memory-access traces of real applications
//! collected with Intel Pin (§2.1): Redis under uniform-random and
//! sequential workloads, GraphLab (PageRank, Graph Coloring, Connected
//! Components, Label Propagation), Metis map-reduce (Linear Regression,
//! Histogram) and VoltDB running TPC-C. We cannot ship those proprietary
//! traces, so this crate regenerates *synthetic* traces whose published
//! statistics — footprints, spatial locality (Fig 2), dirty-line contiguity
//! (Fig 3) and dirty-data amplification (Table 2) — match the paper's
//! measurements. Every downstream experiment consumes traces through the
//! same [`Workload`] interface, so substituting real Pin traces would be a
//! drop-in change.
//!
//! Footprints are linearly scaled down (default 1/16) so simulations run on
//! laptop-scale hosts; the scale factor never changes per-page statistics
//! because object sizes and per-window operation counts scale together.
//!
//! # Examples
//!
//! ```
//! use kona_workloads::{RedisWorkload, Workload};
//!
//! let wl = RedisWorkload::rand().with_windows(2);
//! let trace = wl.generate(42);
//! assert!(!trace.is_empty());
//! assert_eq!(wl.name(), "Redis-Rand");
//! // Deterministic given the seed.
//! assert_eq!(trace.len(), wl.generate(42).len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod graph;
mod mapreduce;
mod microbench;
mod redis;
mod voltdb;
mod zipf;

pub use config::WorkloadProfile;
pub use graph::{GraphAlgorithm, GraphWorkload};
pub use mapreduce::{HistogramWorkload, LinearRegressionWorkload};
pub use microbench::{LinePattern, PerPageWriter};
pub use redis::RedisWorkload;
pub use voltdb::VoltDbWorkload;
pub use zipf::Zipf;

use kona_trace::Trace;
use kona_types::ByteSize;

/// A deterministic synthetic workload: given a seed, produces the same
/// memory-access trace every time.
pub trait Workload {
    /// Human-readable name matching the paper's tables (e.g. `"Redis-Rand"`).
    fn name(&self) -> &str;

    /// The (scaled) memory footprint the trace touches.
    fn footprint(&self) -> ByteSize;

    /// Generates the access trace. The same seed always yields the same
    /// trace.
    fn generate(&self, seed: u64) -> Trace;
}

/// All nine Table 2 workloads with default (scaled) parameters, in the
/// paper's row order.
pub fn table2_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(RedisWorkload::rand()),
        Box::new(RedisWorkload::seq()),
        Box::new(LinearRegressionWorkload::default()),
        Box::new(HistogramWorkload::default()),
        Box::new(GraphWorkload::new(GraphAlgorithm::PageRank)),
        Box::new(GraphWorkload::new(GraphAlgorithm::GraphColoring)),
        Box::new(GraphWorkload::new(GraphAlgorithm::ConnectedComponents)),
        Box::new(GraphWorkload::new(GraphAlgorithm::LabelPropagation)),
        Box::new(VoltDbWorkload::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_nine_workloads_in_paper_order() {
        let wls = table2_workloads();
        let names: Vec<_> = wls.iter().map(|w| w.name().to_string()).collect();
        assert_eq!(
            names,
            vec![
                "Redis-Rand",
                "Redis-Seq",
                "Linear Regression",
                "Histogram",
                "Page Rank",
                "Graph Coloring",
                "Connected Components",
                "Label Propagation",
                "VoltDB",
            ]
        );
    }

    #[test]
    fn all_workloads_generate_nonempty_deterministic_traces() {
        for wl in table2_workloads() {
            let t1 = wl.generate(7);
            let t2 = wl.generate(7);
            assert!(!t1.is_empty(), "{} produced empty trace", wl.name());
            assert_eq!(t1.len(), t2.len(), "{} not deterministic", wl.name());
            assert_eq!(
                t1.as_slice()[t1.len() / 2],
                t2.as_slice()[t2.len() / 2],
                "{} not deterministic",
                wl.name()
            );
            assert!(wl.footprint().bytes() > 0);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let wl = RedisWorkload::rand();
        let a = wl.generate(1);
        let b = wl.generate(2);
        assert_ne!(a.as_slice()[0], b.as_slice()[0]);
    }
}
