//! GraphLab-style graph-analytics workloads.
//!
//! The paper runs four GraphLab algorithms: Page Rank, Graph Coloring,
//! Connected Components and Label Propagation (§2.1). All four share the
//! same structure — iterative sweeps over a vertex array with per-vertex
//! state updates and neighbour reads over an edge array — and differ in
//! the size of the per-vertex record, the fraction of vertices updated per
//! sweep (convergence behaviour), and total footprint.
//!
//! The generator models one measurement window as one sweep: vertices are
//! visited in order, each vertex's record is read, its adjacency run in the
//! edge region is scanned sequentially, a couple of random neighbour
//! records are read, and with probability `update_prob` the record is
//! written back. The update probability is calibrated per algorithm so the
//! 4 KiB dirty-data amplification lands near the paper's Table 2 row
//! (amplification ≈ 1 / update_prob for densely-packed records).

use crate::config::WorkloadProfile;
use crate::Workload;
use kona_trace::{Trace, TraceEvent};
use kona_types::{ByteSize, MemAccess, Nanos, VirtAddr};
use kona_types::rng::{Rng, StdRng};

/// Which GraphLab algorithm to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphAlgorithm {
    /// Page Rank: 32 B vertex records (rank, delta, degree, flags), ~23% of
    /// vertices updated per sweep. Paper footprint 4.2 GB, amp 4.38.
    PageRank,
    /// Graph Coloring: 32 B records, ~18% updated. Paper 8.2 GB, amp 5.57.
    GraphColoring,
    /// Connected Components: 32 B records, ~17.6% updated. Paper 5.2 GB,
    /// amp 5.67.
    ConnectedComponents,
    /// Label Propagation: 24 B records, ~12.3% updated. Paper 5.6 GB,
    /// amp 8.14.
    LabelPropagation,
}

impl GraphAlgorithm {
    fn params(self) -> AlgoParams {
        match self {
            GraphAlgorithm::PageRank => AlgoParams {
                name: "Page Rank",
                paper_bytes: 4_508_876_800, // 4.2 GiB
                record_size: 32,
                update_prob: 0.23,
            },
            GraphAlgorithm::GraphColoring => AlgoParams {
                name: "Graph Coloring",
                paper_bytes: 8_804_682_956, // 8.2 GiB
                record_size: 32,
                update_prob: 0.18,
            },
            GraphAlgorithm::ConnectedComponents => AlgoParams {
                name: "Connected Components",
                paper_bytes: 5_583_457_484, // 5.2 GiB
                record_size: 32,
                update_prob: 0.176,
            },
            GraphAlgorithm::LabelPropagation => AlgoParams {
                name: "Label Propagation",
                paper_bytes: 6_012_954_214, // 5.6 GiB
                record_size: 24,
                update_prob: 0.123,
            },
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct AlgoParams {
    name: &'static str,
    paper_bytes: u64,
    record_size: u64,
    update_prob: f64,
}

/// A graph-analytics workload for one [`GraphAlgorithm`].
///
/// # Examples
///
/// ```
/// # use kona_workloads::{GraphAlgorithm, GraphWorkload, Workload};
/// let wl = GraphWorkload::new(GraphAlgorithm::PageRank);
/// assert_eq!(wl.name(), "Page Rank");
/// assert!(!wl.generate(1).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct GraphWorkload {
    algorithm: GraphAlgorithm,
    profile: WorkloadProfile,
    /// Number of vertices in the synthetic graph.
    vertices: u64,
    /// Bytes of the edge region (the bulk of the footprint).
    edge_region: u64,
}

/// The vertex array starts at offset 0; the edge region follows.
const EDGE_REGION_GAP: u64 = 1 << 20;

impl GraphWorkload {
    /// Creates a workload for `algorithm` with the default profile.
    pub fn new(algorithm: GraphAlgorithm) -> Self {
        Self::with_profile(algorithm, WorkloadProfile::default())
    }

    /// Creates a workload with an explicit profile.
    pub fn with_profile(algorithm: GraphAlgorithm, profile: WorkloadProfile) -> Self {
        let p = algorithm.params();
        let footprint = profile.scaled(p.paper_bytes);
        // ~5% of the footprint is vertex state, the rest is edges, mirroring
        // typical adjacency-list layouts; cap vertices to keep traces small.
        let vertices = ((footprint / 20) / p.record_size).clamp(1_024, 131_072);
        let edge_region = footprint.saturating_sub(vertices * p.record_size).max(1 << 20);
        GraphWorkload {
            algorithm,
            profile,
            vertices,
            edge_region,
        }
    }

    /// The modelled algorithm.
    pub fn algorithm(&self) -> GraphAlgorithm {
        self.algorithm
    }

    fn vertex_addr(&self, v: u64) -> VirtAddr {
        VirtAddr::new(v * self.algorithm.params().record_size)
    }

    fn edge_base(&self) -> u64 {
        self.vertices * self.algorithm.params().record_size + EDGE_REGION_GAP
    }
}

impl Workload for GraphWorkload {
    fn name(&self) -> &str {
        self.algorithm.params().name
    }

    fn footprint(&self) -> ByteSize {
        ByteSize(self.edge_base() + self.edge_region)
    }

    fn generate(&self, seed: u64) -> Trace {
        let p = self.algorithm.params();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = Trace::new();
        let edge_base = self.edge_base();

        // Pre-compute a power-law-ish degree per vertex: most vertices have
        // small adjacency runs, a few have large ones.
        let degree = |v: u64| -> u64 {
            let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48;
            match h % 100 {
                0..=79 => 4,
                80..=94 => 16,
                95..=98 => 64,
                _ => 256,
            }
        };

        for window in 0..self.profile.windows {
            // One sweep per window; visit vertices in chunks so read events
            // coalesce into line-sized runs.
            let chunk_records = (256 / p.record_size).max(1);
            let chunks = self.vertices.div_ceil(chunk_records).max(1);
            let window_start = self.profile.window_width * window as u64;
            let mut v = 0u64;
            let mut op = 0u64;
            while v < self.vertices {
                let time =
                    window_start + Nanos::from_ns(op * self.profile.window_width.as_ns() / chunks);
                op += 1;
                let chunk_end = (v + chunk_records).min(self.vertices);
                // Sequential read of this chunk of vertex records.
                let chunk_bytes = ((chunk_end - v) * p.record_size) as u32;
                trace.push(TraceEvent::new(
                    time,
                    MemAccess::read(self.vertex_addr(v), chunk_bytes),
                ));
                for vertex in v..chunk_end {
                    // Scan the vertex's adjacency run in the edge region.
                    let deg = degree(vertex);
                    let adj_off = (vertex.wrapping_mul(0x2545_F491_4F6C_DD1D))
                        % self.edge_region.saturating_sub(deg * 8).max(1);
                    trace.push(TraceEvent::new(
                        time,
                        MemAccess::read(VirtAddr::new(edge_base + adj_off), (deg * 8) as u32),
                    ));
                    // Read two random neighbour records.
                    for _ in 0..2 {
                        let n = rng.gen_range(0..self.vertices);
                        trace.push(TraceEvent::new(
                            time,
                            MemAccess::read(self.vertex_addr(n), p.record_size as u32),
                        ));
                    }
                    // Update own record with the calibrated probability.
                    if rng.gen::<f64>() < p.update_prob {
                        trace.push(TraceEvent::new(
                            time,
                            MemAccess::write(self.vertex_addr(vertex), p.record_size as u32),
                        ));
                    }
                }
                v = chunk_end;
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_trace::amplification::AmplificationAnalysis;

    fn small(algo: GraphAlgorithm) -> GraphWorkload {
        GraphWorkload::with_profile(
            algo,
            WorkloadProfile::default()
                .with_windows(1)
                .with_scale_divisor(256),
        )
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(small(GraphAlgorithm::PageRank).name(), "Page Rank");
        assert_eq!(
            small(GraphAlgorithm::LabelPropagation).name(),
            "Label Propagation"
        );
    }

    #[test]
    fn footprint_dominated_by_edges() {
        let wl = small(GraphAlgorithm::PageRank);
        assert!(wl.footprint().bytes() > wl.vertices * 32 * 2);
    }

    #[test]
    fn amplification_ordering_matches_paper() {
        // Paper Table 2 ordering at 4 KiB tracking:
        // PageRank (4.38) < Coloring (5.57) ≈ ConnComp (5.67) < LabelProp (8.14).
        let amp = |algo| {
            AmplificationAnalysis::over_events(small(algo).generate(11).iter().copied())
                .amplification_4k()
        };
        let pr = amp(GraphAlgorithm::PageRank);
        let lp = amp(GraphAlgorithm::LabelPropagation);
        assert!(pr < lp, "pagerank {pr} should amplify less than labelprop {lp}");
        assert!((2.0..12.0).contains(&pr), "pagerank amp {pr}");
        assert!((4.0..20.0).contains(&lp), "labelprop amp {lp}");
    }

    #[test]
    fn writes_are_record_sized() {
        let t = small(GraphAlgorithm::PageRank).generate(3);
        for e in t.iter().filter(|e| e.access.kind.is_write()) {
            assert_eq!(e.access.len, 32);
        }
    }

    #[test]
    fn deterministic() {
        let wl = small(GraphAlgorithm::GraphColoring);
        assert_eq!(wl.generate(5).len(), wl.generate(5).len());
    }

    #[test]
    fn one_sweep_touches_all_vertices() {
        let wl = small(GraphAlgorithm::ConnectedComponents);
        let t = wl.generate(1);
        // Every vertex chunk is read, so sequential reads must cover the
        // whole vertex array.
        let max_vertex_read = t
            .iter()
            .filter(|e| e.access.kind.is_read() && e.access.addr.raw() < wl.vertices * 32)
            .map(|e| e.access.end().raw())
            .max()
            .unwrap();
        assert_eq!(max_vertex_read, wl.vertices * 32);
    }
}
