//! Microbenchmark access patterns used by the paper's §6.1 and §6.4
//! experiments.
//!
//! * Fig 7's benchmark "reads and writes 1 cache-line in every page" of a
//!   4 GB-per-thread region.
//! * Fig 11's benchmark "continuously writes N cache-lines out of each 4 KB
//!   page in a 1 GB region", with N contiguous or alternate lines.
//!
//! [`PerPageWriter`] generates both shapes.

use crate::Workload;
use kona_trace::{Trace, TraceEvent};
use kona_types::{ByteSize, MemAccess, Nanos, VirtAddr, CACHE_LINE_SIZE, PAGE_SIZE_4K};

/// How dirty lines are placed within each page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinePattern {
    /// Lines 0..n of each page (the paper's "contiguous" case).
    Contiguous,
    /// Every other line starting at 0 (the paper's "alternate" case,
    /// representing random placement).
    Alternate,
}

/// Writes (optionally after reading) `lines_per_page` cache lines in every
/// 4 KiB page of a region — the canonical remote-memory stress pattern.
///
/// # Examples
///
/// ```
/// # use kona_workloads::{LinePattern, PerPageWriter, Workload};
/// let wl = PerPageWriter::new(4, 2, LinePattern::Contiguous).with_read_before_write(true);
/// let t = wl.generate(0);
/// // 4 pages × 2 lines × (1 read + 1 write).
/// assert_eq!(t.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct PerPageWriter {
    pages: u64,
    lines_per_page: usize,
    pattern: LinePattern,
    read_before_write: bool,
    base: VirtAddr,
}

impl PerPageWriter {
    /// Creates a writer over `pages` pages touching `lines_per_page` lines
    /// in each.
    ///
    /// # Panics
    ///
    /// Panics if `lines_per_page` is 0 or exceeds 64, or (for
    /// [`LinePattern::Alternate`]) exceeds 32.
    pub fn new(pages: u64, lines_per_page: usize, pattern: LinePattern) -> Self {
        assert!(
            (1..=64).contains(&lines_per_page),
            "lines_per_page must be 1..=64"
        );
        if pattern == LinePattern::Alternate {
            assert!(
                lines_per_page <= 32,
                "alternate placement fits at most 32 lines per page"
            );
        }
        PerPageWriter {
            pages,
            lines_per_page,
            pattern,
            read_before_write: false,
            base: VirtAddr::new(0),
        }
    }

    /// Also issue a read of each line before writing it (the Fig 7
    /// benchmark reads and writes each line).
    #[must_use]
    pub fn with_read_before_write(mut self, yes: bool) -> Self {
        self.read_before_write = yes;
        self
    }

    /// Places the region at `base` instead of address 0 (used to give each
    /// benchmark thread a distinct region).
    #[must_use]
    pub fn with_base(mut self, base: VirtAddr) -> Self {
        self.base = base;
        self
    }

    /// Line indices touched within each page.
    pub fn line_indices(&self) -> Vec<usize> {
        match self.pattern {
            LinePattern::Contiguous => (0..self.lines_per_page).collect(),
            LinePattern::Alternate => (0..self.lines_per_page).map(|i| i * 2).collect(),
        }
    }

    /// Number of pages covered.
    pub fn pages(&self) -> u64 {
        self.pages
    }
}

impl Workload for PerPageWriter {
    fn name(&self) -> &str {
        match self.pattern {
            LinePattern::Contiguous => "per-page-writer-contiguous",
            LinePattern::Alternate => "per-page-writer-alternate",
        }
    }

    fn footprint(&self) -> ByteSize {
        ByteSize(self.pages * PAGE_SIZE_4K)
    }

    fn generate(&self, _seed: u64) -> Trace {
        let mut trace = Trace::with_capacity(
            self.pages as usize * self.lines_per_page * if self.read_before_write { 2 } else { 1 },
        );
        let indices = self.line_indices();
        let mut t = 0u64;
        for page in 0..self.pages {
            let page_base = self.base + page * PAGE_SIZE_4K;
            for &line in &indices {
                let addr = page_base + line as u64 * CACHE_LINE_SIZE;
                if self.read_before_write {
                    trace.push(TraceEvent::new(
                        Nanos::from_ns(t),
                        MemAccess::read(addr, CACHE_LINE_SIZE as u32),
                    ));
                    t += 1;
                }
                trace.push(TraceEvent::new(
                    Nanos::from_ns(t),
                    MemAccess::write(addr, CACHE_LINE_SIZE as u32),
                ));
                t += 1;
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_trace::amplification::AmplificationAnalysis;
    use kona_trace::contiguity::ContiguityAnalysis;

    #[test]
    fn contiguous_indices() {
        let w = PerPageWriter::new(1, 4, LinePattern::Contiguous);
        assert_eq!(w.line_indices(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn alternate_indices() {
        let w = PerPageWriter::new(1, 4, LinePattern::Alternate);
        assert_eq!(w.line_indices(), vec![0, 2, 4, 6]);
    }

    #[test]
    #[should_panic]
    fn alternate_rejects_more_than_32() {
        PerPageWriter::new(1, 33, LinePattern::Alternate);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_lines() {
        PerPageWriter::new(1, 0, LinePattern::Contiguous);
    }

    #[test]
    fn amplification_is_64_over_n() {
        for n in [1usize, 4, 16, 64] {
            let w = PerPageWriter::new(8, n, LinePattern::Contiguous);
            let amp = AmplificationAnalysis::over_events(w.generate(0).iter().copied());
            let expected = 64.0 / n as f64;
            assert!((amp.amplification_4k() - expected).abs() < 1e-9);
            assert_eq!(amp.amplification_line(), 1.0);
        }
    }

    #[test]
    fn contiguous_forms_one_segment_per_page() {
        let w = PerPageWriter::new(4, 8, LinePattern::Contiguous);
        let ca = ContiguityAnalysis::over_events(w.generate(0).iter().copied());
        let cdf = ca.write_segment_cdf();
        assert_eq!(cdf.total(), 4);
        assert_eq!(cdf.quantile(1.0), Some(8));
    }

    #[test]
    fn alternate_forms_n_singleton_segments() {
        let w = PerPageWriter::new(4, 8, LinePattern::Alternate);
        let ca = ContiguityAnalysis::over_events(w.generate(0).iter().copied());
        let cdf = ca.write_segment_cdf();
        assert_eq!(cdf.total(), 32);
        assert_eq!(cdf.quantile(1.0), Some(1));
    }

    #[test]
    fn read_before_write_doubles_events() {
        let a = PerPageWriter::new(2, 2, LinePattern::Contiguous).generate(0);
        let b = PerPageWriter::new(2, 2, LinePattern::Contiguous)
            .with_read_before_write(true)
            .generate(0);
        assert_eq!(b.len(), a.len() * 2);
        assert_eq!(b.read_count(), a.len());
    }

    #[test]
    fn base_offset_applied() {
        let w = PerPageWriter::new(1, 1, LinePattern::Contiguous)
            .with_base(VirtAddr::new(1 << 30));
        let t = w.generate(0);
        assert_eq!(t.as_slice()[0].access.addr, VirtAddr::new(1 << 30));
    }
}
