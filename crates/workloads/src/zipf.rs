//! A Zipfian sampler.
//!
//! Key-value and OLTP workloads are famously skewed; we use a Zipf
//! distribution for key popularity (Redis) and warehouse selection (TPC-C).
//! `rand` does not ship one, so this is a small implementation of the
//! standard rejection-inversion method (Hörmann & Derflinger 1996), the
//! same algorithm `rand_distr::Zipf` uses.

use kona_types::rng::Rng;

/// Zipf distribution over `1..=n` with exponent `s > 0`.
///
/// # Examples
///
/// ```
/// use kona_workloads::Zipf;
/// use kona_types::rng::StdRng;
///
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = StdRng::seed_from_u64(1);
/// let v = zipf.sample(&mut rng);
/// assert!((1..=1000).contains(&v));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants for rejection-inversion sampling.
    h_x1: f64,
    h_n: f64,
    one_minus_s_inv: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `s <= 0`, or `s == 1` exactly (use `0.999…`; the
    /// harmonic special case is not needed by any workload here).
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf n must be positive");
        assert!(s > 0.0 && (s - 1.0).abs() > 1e-9, "zipf exponent must be > 0 and != 1");
        let one_minus_s = 1.0 - s;
        let h = |x: f64| (x.powf(one_minus_s)) / one_minus_s;
        Zipf {
            n,
            s,
            h_x1: h(1.5) - 1.0,
            h_n: h(n as f64 + 0.5),
            one_minus_s_inv: 1.0 / one_minus_s,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `1..=n`; rank 1 is the most popular.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let one_minus_s = 1.0 - self.s;
        let h_inv = |x: f64| (one_minus_s * x).powf(self.one_minus_s_inv);
        loop {
            let u = self.h_x1 + rng.gen::<f64>() * (self.h_n - self.h_x1);
            let x = h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            // Acceptance test.
            let h_k = (k + 0.5).powf(one_minus_s) / one_minus_s;
            if u >= h_k - k.powf(-self.s) {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::rng::StdRng;

    #[test]
    fn samples_in_range() {
        let zipf = Zipf::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = zipf.sample(&mut rng);
            assert!((1..=100).contains(&v));
        }
    }

    #[test]
    fn skew_favors_low_ranks() {
        let zipf = Zipf::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut top10 = 0;
        let total = 20_000;
        for _ in 0..total {
            if zipf.sample(&mut rng) <= 10 {
                top10 += 1;
            }
        }
        // With s≈1 over 1000 ranks, the top-10 ranks carry roughly 40% of
        // the mass; assert a loose lower bound.
        assert!(
            top10 as f64 / total as f64 > 0.25,
            "top-10 fraction {} too small",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn near_uniform_when_s_small() {
        let zipf = Zipf::new(10, 0.01);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[(zipf.sample(&mut rng) - 1) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.5, "distribution too skewed for s=0.01");
    }

    #[test]
    fn n_one_always_returns_one() {
        let zipf = Zipf::new(1, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_n() {
        Zipf::new(0, 0.5);
    }

    #[test]
    #[should_panic]
    fn rejects_s_equal_one() {
        Zipf::new(10, 1.0);
    }
}
