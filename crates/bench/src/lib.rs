//! Shared plumbing for the Kona experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md`'s per-experiment index). This library provides the
//! common table formatting, argument handling and workload profiles so
//! the binaries stay focused on the experiment logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kona::{seeded_script, ClusterConfig, FailurePolicy, ShardReport, ShardedRun};
use kona_net::FaultPlan;
use kona_telemetry::{Profile, SeriesData, Telemetry, DEFAULT_WINDOW_NS};
use kona_types::{Jobs, Nanos, ShardPlan, Shards};
use kona_workloads::{
    GraphAlgorithm, GraphWorkload, HistogramWorkload, LinearRegressionWorkload, RedisWorkload,
    VoltDbWorkload, Workload, WorkloadProfile,
};

pub mod micro;
pub use micro::{BenchGroup, ContentionModel};

/// Span events kept in the trace ring during instrumented runs.
pub const TRACE_RING_CAPACITY: usize = 1 << 18;

/// Names accepted by [`workload_by_name`], in canonical order.
pub const WORKLOAD_NAMES: [&str; 9] = [
    "redis-rand",
    "redis-seq",
    "linreg",
    "histogram",
    "pagerank",
    "coloring",
    "concomp",
    "labelprop",
    "voltdb",
];

/// Builds the named Table 2 workload with `profile`. Trait objects are
/// not `Send`, so parallel workers construct their own by name.
pub fn workload_by_name(name: &str, profile: WorkloadProfile) -> Option<Box<dyn Workload>> {
    Some(match name {
        "redis-rand" => Box::new(RedisWorkload::rand().with_profile(profile)),
        "redis-seq" => Box::new(RedisWorkload::seq().with_profile(profile)),
        "linreg" => Box::new(LinearRegressionWorkload::with_profile(profile)),
        "histogram" => Box::new(HistogramWorkload::with_profile(profile)),
        "pagerank" => Box::new(GraphWorkload::with_profile(GraphAlgorithm::PageRank, profile)),
        "coloring" => Box::new(GraphWorkload::with_profile(
            GraphAlgorithm::GraphColoring,
            profile,
        )),
        "concomp" => Box::new(GraphWorkload::with_profile(
            GraphAlgorithm::ConnectedComponents,
            profile,
        )),
        "labelprop" => Box::new(GraphWorkload::with_profile(
            GraphAlgorithm::LabelPropagation,
            profile,
        )),
        "voltdb" => Box::new(VoltDbWorkload::with_profile(profile)),
        _ => return None,
    })
}

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Reduce problem sizes for a fast smoke run.
    pub quick: bool,
    /// Worker threads for parallel experiment points (`--jobs N`; defaults
    /// to the machine's available parallelism). Results are merged in
    /// input order, so every job count prints identical output.
    pub jobs: Jobs,
    /// Extra free-form arguments (e.g. `--panel a`).
    pub args: Vec<String>,
}

impl ExpOptions {
    /// Parses `std::env::args`.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        ExpOptions {
            quick: args.iter().any(|a| a == "--quick"),
            jobs: Jobs::from_args(&args),
            args,
        }
    }

    /// The value following `--<key>`, if present.
    pub fn value_of(&self, key: &str) -> Option<&str> {
        let flag = format!("--{key}");
        self.args
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// The Table 2 / Fig 9 workload profile: 10 windows for full runs,
    /// 3 for quick ones.
    pub fn table_profile(&self) -> WorkloadProfile {
        let windows = if self.quick { 3 } else { 10 };
        WorkloadProfile::default().with_windows(windows)
    }

    /// `--metrics-out <path>`: metrics snapshot JSON destination.
    pub fn metrics_out(&self) -> Option<&str> {
        self.value_of("metrics-out")
    }

    /// `--trace-out <path>`: Chrome trace-event JSON destination.
    pub fn trace_out(&self) -> Option<&str> {
        self.value_of("trace-out")
    }

    /// `--series-out <path>`: windowed time-series destination (`.csv`
    /// writes CSV, anything else JSON).
    pub fn series_out(&self) -> Option<&str> {
        self.value_of("series-out")
    }

    /// `--health-out <path>`: health-report JSON destination.
    pub fn health_out(&self) -> Option<&str> {
        self.value_of("health-out")
    }

    /// `--profile-out <path>`: folded simulated-time profile JSON
    /// destination (the format `prof_diff` and [`Profile::from_json`]
    /// read).
    pub fn profile_out(&self) -> Option<&str> {
        self.value_of("profile-out")
    }

    /// `--flame-out <path>`: collapsed-stack destination
    /// (flamegraph.pl/inferno input, weighted by self simulated ns).
    pub fn flame_out(&self) -> Option<&str> {
        self.value_of("flame-out")
    }

    /// Whether any profile artifact was requested (`--profile-out` or
    /// `--flame-out`) — this turns span tracing on just like
    /// `--trace-out` does, since profiles fold from the span stream.
    pub fn profiling(&self) -> bool {
        self.profile_out().is_some() || self.flame_out().is_some()
    }

    /// `--shards N`: worker threads for the shard-parallel engine
    /// (default 1 — sharded execution stays opt-in and `--shards 1`
    /// reproduces the serial merge byte-for-byte).
    pub fn shards(&self) -> Shards {
        Shards::from_args(&self.args)
    }

    /// `--seed N`: base RNG seed for the experiment (default 42).
    pub fn seed(&self) -> u64 {
        self.value_of("seed")
            .map(|s| s.parse().expect("--seed takes an integer"))
            .unwrap_or(42)
    }

    /// `--tenants N`: tenant count for multi-tenant serving experiments
    /// (default 8, the ROADMAP experiment's floor).
    pub fn tenants(&self) -> u32 {
        self.value_of("tenants")
            .map(|s| s.parse().expect("--tenants takes an integer"))
            .unwrap_or(8)
    }

    /// `--tenant-quota N`: per-tenant remote-memory quota in slabs
    /// (default 2).
    pub fn tenant_quota(&self) -> u64 {
        self.value_of("tenant-quota")
            .map(|s| s.parse().expect("--tenant-quota takes an integer"))
            .unwrap_or(2)
    }

    /// `--no-balloon`: skips the live balloon grow/shrink demo inside
    /// serving experiments (on by default).
    pub fn balloon(&self) -> bool {
        !self.args.iter().any(|a| a == "--no-balloon")
    }

    /// `--trace-capacity N`: span-ring capacity for instrumented runs
    /// (default [`TRACE_RING_CAPACITY`]). Spans beyond the capacity drop
    /// oldest-first and are counted in `tel.spans_dropped`.
    pub fn trace_capacity(&self) -> usize {
        self.value_of("trace-capacity")
            .map(|s| s.parse().expect("--trace-capacity takes an integer"))
            .unwrap_or(TRACE_RING_CAPACITY)
    }

    /// `--window-ns N`: explicit time-series window width in simulated
    /// nanoseconds.
    pub fn window_ns(&self) -> Option<u64> {
        self.value_of("window-ns")
            .map(|s| s.parse().expect("--window-ns takes an integer"))
    }

    /// The window width to collect time series at, if any output wants
    /// them: `Some` when `--window-ns` or `--series-out` is present
    /// (explicit width, or [`DEFAULT_WINDOW_NS`]).
    pub fn series_window_ns(&self) -> Option<u64> {
        match self.window_ns() {
            Some(w) => Some(w),
            None if self.series_out().is_some() => Some(DEFAULT_WINDOW_NS),
            None => None,
        }
    }

    /// Telemetry for the run: span tracing is enabled only when
    /// `--trace-out` asks for a timeline or `--profile-out`/`--flame-out`
    /// ask for a profile (the metrics registry records either way), and
    /// windowed series collection only when `--window-ns`/`--series-out`
    /// ask for it.
    pub fn telemetry(&self) -> Telemetry {
        let tel = if self.trace_out().is_some() || self.profiling() {
            Telemetry::with_tracing(self.trace_capacity())
        } else {
            Telemetry::disabled()
        };
        if let Some(window) = self.series_window_ns() {
            tel.enable_timeseries(window);
        }
        tel
    }

    /// Writes the windowed series to `--series-out` (CSV for `.csv`
    /// paths, JSON otherwise).
    pub fn write_series(&self, series: &SeriesData) {
        if let Some(path) = self.series_out() {
            let body = if path.ends_with(".csv") {
                series.to_csv()
            } else {
                series.to_json()
            };
            std::fs::write(path, body).expect("write series");
            println!("\ntime series written to {path}");
        }
    }

    /// Writes the folded profile to `--profile-out` (line-oriented JSON)
    /// and/or `--flame-out` (collapsed stacks). Both artifacts are
    /// deterministic: byte-identical across `--jobs` and `--shards`
    /// values for the same experiment.
    pub fn write_profile(&self, profile: &Profile) {
        if let Some(path) = self.profile_out() {
            std::fs::write(path, profile.to_json()).expect("write profile");
            println!("\nprofile written to {path}");
        }
        if let Some(path) = self.flame_out() {
            std::fs::write(path, profile.to_collapsed()).expect("write flame stacks");
            println!("\nflame stacks written to {path}");
        }
    }

    /// Writes the `--metrics-out` / `--trace-out` artifacts, warning when
    /// the trace ring wrapped (`tel.spans_dropped` in the snapshot).
    pub fn write_outputs(&self, tel: &Telemetry) {
        self.write_outputs_with_series(tel, None);
    }

    /// [`ExpOptions::write_outputs`] plus `--series-out`; when both a
    /// trace and a series are requested the Chrome trace also carries the
    /// series as counter tracks.
    pub fn write_outputs_with_series(&self, tel: &Telemetry, series: Option<&SeriesData>) {
        if let Some(path) = self.metrics_out() {
            std::fs::write(path, tel.metrics_json()).expect("write metrics");
            println!("\nmetrics snapshot written to {path}");
        }
        if let Some(path) = self.trace_out() {
            let trace = match series {
                Some(s) => {
                    kona_telemetry::spans_to_chrome_trace_with_series(&tel.events(), Some(s))
                }
                None => tel.chrome_trace(),
            };
            std::fs::write(path, trace).expect("write trace");
            println!("\nchrome trace written to {path}");
            let dropped = tel.dropped_events();
            if dropped > 0 {
                println!(
                    "warning: trace ring wrapped, {dropped} oldest spans dropped \
                     (tel.spans_dropped)"
                );
            }
        }
        if let Some(series) = series {
            self.write_series(series);
        }
    }
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            quick: true,
            jobs: Jobs::serial(),
            args: Vec::new(),
        }
    }
}

/// Global pages in the canonical profiling scenario's page space.
pub const PROFILE_SCENARIO_PAGES: u64 = 256;
/// Logical shards in the canonical profiling scenario.
pub const PROFILE_SCENARIO_LOGICAL: u32 = 8;

/// Runs the canonical profiling scenario: the fig_shard shrunken-cache
/// cluster (3 memory nodes, replication 2, caches smaller than the page
/// stripe so eviction/writeback paths stay hot) over a seeded mixed
/// read/write script, with span tracing and windowed series on.
///
/// The logical decomposition is fixed at [`PROFILE_SCENARIO_LOGICAL`], so
/// the merged report — profile included — is byte-identical at any
/// `shards` worker count. `fig_profile`, `bench_report` and the
/// determinism tests all fold profiles from this one scenario, which is
/// what makes the committed `PROFILE_BASELINE.json` comparable across
/// all of them.
///
/// `slow_wire_extra` adds a deterministic congestion window covering the
/// whole run (every posted chain pays the extra latency) — the CI blame
/// demo uses it to inject a regression that `prof_diff` must attribute
/// to the verb path.
///
/// # Panics
///
/// Panics if the sharded run fails — the calm plan injects no faults, so
/// any error is a simulator bug.
pub fn profile_scenario(
    seed: u64,
    quick: bool,
    shards: Shards,
    trace_capacity: usize,
    slow_wire_extra: Nanos,
) -> ShardReport {
    let ops = if quick { 2_000 } else { 12_000 };
    let script = seeded_script(PROFILE_SCENARIO_PAGES, ops, seed);
    let mut plan = FaultPlan::calm(seed);
    if slow_wire_extra > Nanos::ZERO {
        // One long congestion window instead of a point spike: the demo
        // regression must be visible regardless of where simulated time
        // lands, and a whole-run window keeps the blame unambiguous.
        plan = plan
            .named("slow-wire")
            .with_spike(Nanos::ZERO, Nanos::secs(3_600), slow_wire_extra);
    }
    let mut cfg = ClusterConfig::small().with_replicas(2);
    cfg.memory_nodes = 3;
    cfg.local_cache_pages = 64;
    cfg.cpu_cache_lines = 512;
    cfg.fault_plan = Some(plan);
    ShardedRun::new(cfg, PROFILE_SCENARIO_PAGES)
        .with_plan(ShardPlan::new(PROFILE_SCENARIO_LOGICAL))
        .with_windows(DEFAULT_WINDOW_NS)
        .with_tracing(trace_capacity)
        .with_failure_policy(FailurePolicy::PageFaultFallback)
        .execute(&script, shards)
        .expect("profile scenario completes")
}

/// A fixed-width text table, printed in the paper's row/column structure.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a nanosecond quantity with 1 decimal.
pub fn ns(t: Nanos) -> String {
    format!("{:.1}", t.as_ns() as f64)
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Prints an experiment banner.
pub fn banner(title: &str, source: &str) {
    println!("================================================================");
    println!("{title}");
    println!("(reproduces {source} of the ASPLOS'21 Kona paper)");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn options_parsing() {
        let opts = ExpOptions {
            quick: false,
            jobs: Jobs::from_args(&["--panel".into(), "a".into(), "--jobs".into(), "3".into()]),
            args: vec!["--panel".into(), "a".into(), "--jobs".into(), "3".into()],
        };
        assert_eq!(opts.value_of("panel"), Some("a"));
        assert_eq!(opts.value_of("missing"), None);
        assert_eq!(opts.table_profile().windows, 10);
        assert_eq!(opts.jobs.get(), 3);
    }

    #[test]
    fn tenant_knobs_parse_with_defaults() {
        let opts = ExpOptions {
            quick: true,
            jobs: Jobs::serial(),
            args: vec![],
        };
        assert_eq!(opts.tenants(), 8);
        assert_eq!(opts.tenant_quota(), 2);
        assert!(opts.balloon());
        let opts = ExpOptions {
            quick: true,
            jobs: Jobs::serial(),
            args: vec![
                "--tenants".into(),
                "12".into(),
                "--tenant-quota".into(),
                "4".into(),
                "--no-balloon".into(),
            ],
        };
        assert_eq!(opts.tenants(), 12);
        assert_eq!(opts.tenant_quota(), 4);
        assert!(!opts.balloon());
    }

    #[test]
    fn formatters() {
        assert_eq!(ns(Nanos::from_ns(1500)), "1500.0");
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f1(1.26), "1.3");
    }

    #[test]
    fn every_workload_name_resolves() {
        for name in WORKLOAD_NAMES {
            let wl = workload_by_name(name, WorkloadProfile::default().with_windows(1));
            assert!(wl.is_some(), "{name} must resolve");
        }
        assert!(workload_by_name("nope", WorkloadProfile::default()).is_none());
    }

    #[test]
    fn output_flags_parse_and_pick_telemetry() {
        let opts = ExpOptions {
            quick: true,
            jobs: Jobs::serial(),
            args: vec![
                "--metrics-out".into(),
                "m.json".into(),
                "--trace-out".into(),
                "t.json".into(),
            ],
        };
        assert_eq!(opts.metrics_out(), Some("m.json"));
        assert_eq!(opts.trace_out(), Some("t.json"));
        assert!(opts.telemetry().tracing_enabled());
        assert!(!ExpOptions::default().telemetry().tracing_enabled());
    }
}
