//! Failure recovery under deterministic fault injection (§4.5).
//!
//! Runs the same seeded read/write workload over a 2-way replicated Kona
//! cluster under every bundled [`FaultPlan`] — calm, lossy, timeouts,
//! congested, flappy, crash and chaos — and reports availability (the
//! fraction of application accesses that completed), retry/failover
//! activity and degraded-mode transitions. The fault decisions, retry
//! jitter and workload are all seeded, so a given `--seed` reproduces the
//! run bit for bit at any `--jobs` count.
//!
//! ```bash
//! cargo run --release --bin fig_failure -- --quick
//! cargo run --release --bin fig_failure -- --seed 7 --metrics-out failure.json
//! ```

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime};
use kona_bench::{banner, f2, ExpOptions, TextTable};
use kona_net::FaultPlan;
use kona_types::rng::{Rng, StdRng};
use kona_types::par_map;

/// Pages in the remote working set (the local cache holds 8).
const PAGES: u64 = 64;
/// Memory node the bundled plans flap/crash.
const VICTIM: u32 = 0;

struct Outcome {
    plan: &'static str,
    ok: u64,
    failed: u64,
    stats: kona::RuntimeStats,
    eviction: kona::EvictionStats,
    verb_faults: u64,
    verify_errors: u64,
    series: Option<kona_telemetry::SeriesData>,
}

impl Outcome {
    fn availability(&self) -> f64 {
        let total = self.ok + self.failed;
        if total == 0 {
            return 0.0;
        }
        self.ok as f64 / total as f64
    }
}

/// Drives `ops` single-line accesses against a cluster running `plan`,
/// checking every read against a local model of the memory.
fn run_plan(plan: FaultPlan, seed: u64, ops: u64, series_window: Option<u64>) -> Outcome {
    let name = plan.name;
    let mut cfg = ClusterConfig::small().with_local_cache_pages(8).with_replicas(2);
    cfg.cpu_cache_lines = 64;
    cfg.memory_nodes = 3;
    cfg.fault_plan = Some(plan);
    let tel = kona_telemetry::Telemetry::disabled();
    if let Some(window) = series_window {
        tel.enable_timeseries(window);
    }
    let mut rt = KonaRuntime::with_telemetry(cfg, tel.clone()).expect("valid config");
    let base = rt.allocate(PAGES * 4096).expect("allocate");
    let mut model = vec![0u8; (PAGES * 4096) as usize];
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut ok, mut failed) = (0u64, 0u64);
    for _ in 0..ops {
        let page = rng.gen_range(0..PAGES);
        let off = (page * 4096 + rng.gen_range(0..64) * 64) as usize;
        if rng.gen_bool(0.5) {
            let byte: u8 = rng.gen();
            match rt.write_bytes(base + off as u64, &[byte; 64]) {
                Ok(_) => {
                    model[off..off + 64].fill(byte);
                    ok += 1;
                }
                Err(_) => failed += 1,
            }
        } else {
            let mut buf = [0u8; 64];
            match rt.read_bytes(base + off as u64, &mut buf) {
                Ok(_) => {
                    assert_eq!(&buf[..], &model[off..off + 64], "stale read under {name}");
                    ok += 1;
                }
                Err(_) => failed += 1,
            }
        }
    }
    // Final sweep: every line the model knows must still be readable
    // (possibly from a replica) and byte-exact.
    let mut verify_errors = 0u64;
    let _ = rt.sync();
    for page in 0..PAGES {
        let mut buf = [0u8; 4096];
        match rt.read_bytes(base + page * 4096, &mut buf) {
            Ok(_) => {
                let off = (page * 4096) as usize;
                assert_eq!(&buf[..], &model[off..off + 4096], "page {page} diverged under {name}");
            }
            Err(_) => verify_errors += 1,
        }
    }
    Outcome {
        plan: name,
        ok,
        failed,
        stats: rt.stats(),
        eviction: rt.eviction_stats(),
        verb_faults: rt.fabric_mut().fault_stats().total_verb_faults(),
        verify_errors,
        series: tel.series().map(|s| s.prefixed(name)),
    }
}

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "Failure recovery: availability under injected faults (§4.5)",
        "fault-injection fabric + retry/failover/degraded-mode runtime",
    );
    let seed: u64 = opts.seed();
    let ops: u64 = if opts.quick { 600 } else { 6_000 };
    println!("seed: {seed}, ops per plan: {ops}, replicas: 2, victim node: {VICTIM}\n");

    let plans = FaultPlan::bundled(seed, VICTIM);
    let series_window = opts.series_window_ns();
    let results = par_map(opts.jobs, plans, |_, plan| {
        run_plan(plan, seed, ops, series_window)
    });

    let tel = opts.telemetry();
    let mut table = TextTable::new(&[
        "Plan",
        "Avail %",
        "Faults",
        "Retries",
        "Failovers",
        "MCE",
        "Degraded",
        "Abandoned",
        "Verify errs",
    ]);
    for r in &results {
        table.row(vec![
            r.plan.to_string(),
            f2(r.availability() * 100.0),
            r.verb_faults.to_string(),
            r.stats.retries.to_string(),
            r.stats.failovers.to_string(),
            r.stats.mce_events.to_string(),
            r.stats.degraded_entries.to_string(),
            r.eviction.abandoned_flushes.to_string(),
            r.verify_errors.to_string(),
        ]);
        let g = |k: &str| format!("fig_failure.{}.{k}", r.plan);
        tel.gauge(&g("availability")).set(r.availability());
        tel.gauge(&g("retries")).set(r.stats.retries as f64);
        tel.gauge(&g("failovers")).set(r.stats.failovers as f64);
        tel.gauge(&g("mce_events")).set(r.stats.mce_events as f64);
        tel.gauge(&g("fallback_waits")).set(r.stats.fallback_waits as f64);
        tel.gauge(&g("degraded_entries")).set(r.stats.degraded_entries as f64);
        tel.gauge(&g("abandoned_flushes")).set(r.eviction.abandoned_flushes as f64);
        tel.gauge(&g("flush_retries")).set(r.eviction.flush_retries as f64);
        tel.gauge(&g("verb_faults")).set(r.verb_faults as f64);
        tel.gauge(&g("verify_errors")).set(r.verify_errors as f64);
    }
    table.print();

    println!(
        "\nExpected shape: availability stays at (or near) 100% on every plan —\n\
         retries absorb transient verb faults, replica failover masks the\n\
         crash, and degraded mode sheds prefetches while the victim flaps.\n\
         Data is verified byte-exact against a host-side model throughout."
    );

    let merged = series_window.map(|window| {
        let mut all = kona_telemetry::SeriesData::new(window);
        for r in &results {
            if let Some(s) = &r.series {
                all.merge(s);
            }
        }
        all
    });
    opts.write_outputs_with_series(&tel, merged.as_ref());
}
