//! Multi-tenant serving: p99 per-tenant latency vs tenant count, plus a
//! noisy-neighbor isolation demo.
//!
//! Drives the `kona-serve` front end over one fixed-capacity cluster:
//!
//! * **Scale sweep** — 2 → N tenants (N ≥ 8), each a seeded workload
//!   with its own private address space, multiplexed over the same
//!   cluster. With capacity fixed, per-tenant p99 rises with tenant
//!   count as working sets start fighting over FMem — the ROADMAP
//!   figure. Every row self-checks isolation: per-tenant byte models
//!   must match every read, deliberate cross-tenant probes must fail
//!   typed (`TenantFault`), over-quota grows must fail typed
//!   (`QuotaExceeded`), and the balloon must round-trip bytes.
//! * **Noisy neighbor** — a victim tenant with a tight SLO shares the
//!   cluster with a streaming aggressor. With QoS on (admission
//!   throttling + SLO-aware eviction protection + prefetch shedding)
//!   the victim's p99 stays within 1.5× its solo baseline; the same
//!   scenario with QoS off is provably worse. The `mon.tenant_slo`
//!   health rule fires when SLO protection engages.
//!
//! Everything is seeded and driven in simulated time; output is
//! byte-identical at any `--jobs` / `--shards` (shards only change the
//! worker count of the replay determinism check, whose merged output is
//! order-stable). Exits non-zero when a gate fails.
//!
//! ```bash
//! cargo run --release --bin fig_tenants -- --quick
//! cargo run --release --bin fig_tenants -- --tenants 12 --tenant-quota 4
//! cargo run --release --bin fig_tenants -- --quick --no-qos
//! ```

use kona::ClusterConfig;
use kona_bench::{banner, f2, ExpOptions, TextTable};
use kona_cluster::ControlPlaneConfig;
use kona_serve::{Admission, ServeConfig, ServeReport, ServeRuntime, TenantConfig};
use kona_telemetry::{Profile, Rule, Telemetry, DEFAULT_WINDOW_NS};
use kona_types::rng::{Rng, StdRng};
use kona_types::{derive_shard_seed, par_map, Jobs, KonaError, Nanos, VirtAddr};
use std::process::ExitCode;

/// Pages per slab (4 KiB pages, 1 MiB slabs in `ClusterConfig::small`).
const PAGES_PER_SLAB: u64 = 256;
/// Sweep tenants' working set inside their first slab, in pages.
const WS_PAGES: u64 = 96;
/// Hot subset of the working set (90% of accesses land here).
const HOT_PAGES: u64 = 16;
/// Victim's hot working set in the noisy-neighbor scenario, in pages —
/// small enough that remote misses stay under 1% of ops when isolated,
/// so the victim's p99 sits on the FMem-hit step of the latency
/// distribution rather than the remote-fetch step.
const VICTIM_WS_PAGES: u64 = 8;
/// Aggressor stream span, in pages (8 slabs).
const AGGR_WS_PAGES: u64 = 8 * PAGES_PER_SLAB;
/// Aggressor demand ops issued per victim op.
const AGGR_OPS_PER_ROUND: u64 = 4;
/// Victim p99 SLO — the cold-fill phase burns it (engaging eviction
/// protection), the steady state under QoS does not.
const VICTIM_SLO: Nanos = Nanos::micros(1);
/// Aggressor admission rate under QoS, ops per simulated millisecond.
const AGGR_RATE_PER_MS: u64 = 20;
/// Replay replicas for the determinism self-check.
const REPLAY_RUNS: usize = 3;

/// The fixed-capacity cluster every scenario shares: 2×32 MiB nodes,
/// 1 MiB slabs, but FMem squeezed to 1 MiB (256 pages) and a small CPU
/// cache so tenant working sets genuinely compete.
fn cluster_config() -> ClusterConfig {
    let mut cfg = ClusterConfig::small().with_local_cache_pages(256);
    cfg.cpu_cache_lines = 512;
    cfg
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum NoisyMode {
    Solo,
    Qos,
    NoQos,
}

impl NoisyMode {
    fn label(self) -> &'static str {
        match self {
            NoisyMode::Solo => "solo",
            NoisyMode::Qos => "qos",
            NoisyMode::NoQos => "no-qos",
        }
    }
}

#[derive(Clone, Copy)]
enum Point {
    Scale(u32),
    Noisy(NoisyMode),
}

/// Scalar knobs shared by every point.
#[derive(Clone, Copy)]
struct Knobs {
    seed: u64,
    ops: u64,
    quota_slabs: u64,
    balloon: bool,
    window_ns: u64,
    trace_capacity: usize,
}

struct Outcome {
    label: String,
    tenants: u32,
    report: ServeReport,
    fingerprint: u64,
    /// Reads that came back with bytes differing from the tenant's own
    /// model — true isolation violations. Must be zero everywhere.
    violations: u64,
    cross_probes: u64,
    cross_faults_typed: u64,
    quota_probes: u64,
    quota_typed: u64,
    balloon_released: u64,
    balloon_roundtrip_errors: u64,
    /// Worst and mean per-tenant p99, ns.
    p99_max: u64,
    p99_mean: u64,
    /// Victim / aggressor p99 (noisy rows; 0 elsewhere).
    victim_p99: u64,
    aggressor_p99: u64,
    tenant_slo_fired: u64,
    profile: Option<Profile>,
    /// `tenant.<id>.*` counter rows of the shared registry (attribution
    /// table, printed for the QoS noisy row).
    attribution: Vec<(String, u64)>,
}

fn telemetry_for(knobs: Knobs) -> Telemetry {
    let tel = if knobs.trace_capacity > 0 {
        Telemetry::with_tracing(knobs.trace_capacity)
    } else {
        Telemetry::disabled()
    };
    tel.enable_timeseries(knobs.window_ns);
    tel.install_monitor(vec![
        // Fires in any window where a compliant tenant burns its SLO —
        // i.e. whenever SLO-aware eviction protection engages.
        Rule::above("mon.tenant_slo", "serve.slo_breaches", 0.5).critical(),
    ]);
    tel
}

/// One sweep point: `n` symmetric tenants over the shared cluster.
fn run_scale(n: u32, knobs: Knobs) -> Outcome {
    let tel = telemetry_for(knobs);
    let mut serve = ServeRuntime::with_telemetry(
        cluster_config(),
        ControlPlaneConfig::default(),
        ServeConfig::default(),
        tel.clone(),
    )
    .expect("valid config");
    let slab = serve.slab_bytes();
    let quota = knobs.quota_slabs * slab;
    let mut rngs = Vec::new();
    let mut bases = Vec::new();
    let mut models = Vec::new();
    for id in 1..=n {
        serve
            .register_tenant(TenantConfig::new(id).with_quota_bytes(quota))
            .expect("register");
        bases.push(serve.grow_tenant(id, slab).expect("initial grow"));
        rngs.push(StdRng::seed_from_u64(derive_shard_seed(knobs.seed, id)));
        models.push(vec![0u8; slab as usize]);
    }

    let mut violations = 0u64;
    let (mut cross_probes, mut cross_faults_typed) = (0u64, 0u64);
    for round in 0..knobs.ops {
        for idx in 0..n as usize {
            let id = idx as u32 + 1;
            let base = bases[idx];
            if round % 64 == 63 {
                // Deliberate cross-tenant probe: an address past this
                // tenant's whole quota can only belong to someone else's
                // slice of the shared runtime — it must fault typed.
                cross_probes += 1;
                let mut buf = [0u8; 8];
                match serve.read(id, VirtAddr::new(quota + 4096 * id as u64), &mut buf) {
                    Err(KonaError::TenantFault { tenant, .. }) if tenant == id => {
                        cross_faults_typed += 1;
                    }
                    Ok(_) | Err(_) => {}
                }
            }
            let rng = &mut rngs[idx];
            let page = if rng.gen_bool(0.9) {
                rng.gen_range(0..HOT_PAGES)
            } else {
                rng.gen_range(0..WS_PAGES)
            };
            let off = (page * 4096 + rng.gen_range(0..64) * 64) as usize;
            if rng.gen_bool(0.3) {
                let byte: u8 = rng.gen();
                if let Admission::Ran(_) = serve
                    .write(id, base + off as u64, &[byte; 64])
                    .expect("demand write")
                {
                    models[idx][off..off + 64].fill(byte);
                }
            } else {
                let mut buf = [0u8; 64];
                if let Admission::Ran(_) =
                    serve.read(id, base + off as u64, &mut buf).expect("demand read")
                {
                    if buf[..] != models[idx][off..off + 64] {
                        violations += 1;
                    }
                }
            }
        }
    }

    // Balloon demo: grow a second region, round-trip bytes through it,
    // then shrink — the cold new region is evacuated, the hot first
    // region survives untouched.
    let mut balloon_released = 0u64;
    let mut balloon_roundtrip_errors = 0u64;
    let (mut quota_probes, mut quota_typed) = (0u64, 0u64);
    for idx in 0..n as usize {
        let id = idx as u32 + 1;
        if knobs.balloon {
            let extra = serve.grow_tenant(id, slab).expect("balloon grow");
            let pattern = [id as u8 ^ 0x5A; 64];
            serve.write(id, extra, &pattern).expect("balloon write");
            let mut buf = [0u8; 64];
            serve.read(id, extra, &mut buf).expect("balloon read");
            if buf != pattern {
                balloon_roundtrip_errors += 1;
            }
            balloon_released += serve.shrink_tenant(id, slab).expect("balloon shrink");
            // The hot region must have survived the evacuation intact.
            let mut check = [0u8; 64];
            serve.read(id, bases[idx], &mut check).expect("post-shrink read");
            if check[..] != models[idx][..64] {
                balloon_roundtrip_errors += 1;
            }
        }
        // Over-quota probe: must be rejected typed, before any slab
        // moves.
        quota_probes += 1;
        let used = serve.tenant_used(id).expect("registered");
        match serve.grow_tenant(id, quota - used + slab) {
            Err(KonaError::QuotaExceeded { tenant, .. }) if tenant == id => quota_typed += 1,
            Ok(_) | Err(_) => {}
        }
    }
    serve.sync().expect("final sync");

    let report = serve.report();
    let p99s: Vec<u64> = report.tenants.iter().map(|t| t.p99).collect();
    let p99_max = p99s.iter().copied().max().unwrap_or(0);
    let p99_mean = if p99s.is_empty() {
        0
    } else {
        p99s.iter().sum::<u64>() / p99s.len() as u64
    };
    let health = tel.health_report().expect("monitor installed");
    let tenant_slo_fired = health
        .rules
        .iter()
        .find(|o| o.rule == "mon.tenant_slo")
        .map_or(0, |o| o.fired);
    let profile = (knobs.trace_capacity > 0).then(|| Profile::from_spans(&tel.events()));
    Outcome {
        label: format!("scale{n}"),
        tenants: n,
        fingerprint: serve.fingerprint(),
        report,
        violations,
        cross_probes,
        cross_faults_typed,
        quota_probes,
        quota_typed,
        balloon_released,
        balloon_roundtrip_errors,
        p99_max,
        p99_mean,
        victim_p99: 0,
        aggressor_p99: 0,
        tenant_slo_fired,
        profile,
        attribution: Vec::new(),
    }
}

/// The noisy-neighbor scenario. The victim issues the identical seeded
/// op stream in all three modes; only the aggressor's presence and the
/// QoS switch vary.
fn run_noisy(mode: NoisyMode, knobs: Knobs) -> Outcome {
    let tel = telemetry_for(knobs);
    let serve_cfg = ServeConfig {
        qos: mode != NoisyMode::NoQos,
        ..ServeConfig::default()
    };
    let mut serve = ServeRuntime::with_telemetry(
        cluster_config(),
        ControlPlaneConfig::default(),
        serve_cfg,
        tel.clone(),
    )
    .expect("valid config");
    let slab = serve.slab_bytes();

    const VICTIM: u32 = 1;
    const AGGR: u32 = 2;
    serve
        .register_tenant(
            TenantConfig::new(VICTIM)
                .with_quota_bytes(2 * slab)
                .with_slo(VICTIM_SLO)
                .with_qos_class(2),
        )
        .expect("victim");
    let vbase = serve.grow_tenant(VICTIM, slab).expect("victim grow");
    let mut vmodel = vec![0u8; slab as usize];
    let mut vrng = StdRng::seed_from_u64(derive_shard_seed(knobs.seed, VICTIM));

    let with_aggr = mode != NoisyMode::Solo;
    let mut abase = VirtAddr::new(0);
    if with_aggr {
        serve
            .register_tenant(
                TenantConfig::new(AGGR)
                    .with_quota_bytes(8 * slab)
                    .with_slo(Nanos::millis(10))
                    .with_rate(AGGR_RATE_PER_MS, 8)
                    .with_qos_class(0),
            )
            .expect("aggressor");
        abase = serve.grow_tenant(AGGR, 8 * slab).expect("aggressor grow");
    }

    let mut violations = 0u64;
    let mut aggr_cursor = 0u64;
    // Twice the sweep round count: the victim's cold fill must be a
    // sub-1% sliver of its histogram for p99 to sit on the hit step.
    for _ in 0..knobs.ops * 2 {
        // One victim op per round: small accesses over a hot set that
        // fits FMem comfortably when alone.
        let page = vrng.gen_range(0..VICTIM_WS_PAGES);
        let off = (page * 4096 + vrng.gen_range(0..64) * 64) as usize;
        if vrng.gen_bool(0.3) {
            let byte: u8 = vrng.gen();
            if let Admission::Ran(_) = serve
                .write(VICTIM, vbase + off as u64, &[byte; 64])
                .expect("victim write")
            {
                vmodel[off..off + 64].fill(byte);
            }
        } else {
            let mut buf = [0u8; 64];
            if let Admission::Ran(_) = serve
                .read(VICTIM, vbase + off as u64, &mut buf)
                .expect("victim read")
            {
                if buf[..] != vmodel[off..off + 64] {
                    violations += 1;
                }
            }
        }
        // A burst of streaming aggressor ops: maximal cache pollution.
        // Under QoS most of these are throttled at the front door.
        if with_aggr {
            for _ in 0..AGGR_OPS_PER_ROUND {
                let off = (aggr_cursor % AGGR_WS_PAGES) * 4096;
                aggr_cursor += 1;
                let _ = serve
                    .write(AGGR, abase + off, &[0xEE; 64])
                    .expect("aggressor write");
            }
        }
    }
    serve.sync().expect("final sync");

    let report = serve.report();
    let victim_row = report
        .tenants
        .iter()
        .find(|t| t.id == VICTIM)
        .expect("victim row");
    let victim_p99 = victim_row.p99;
    let aggressor_p99 = report
        .tenants
        .iter()
        .find(|t| t.id == AGGR)
        .map_or(0, |t| t.p99);
    let health = tel.health_report().expect("monitor installed");
    let tenant_slo_fired = health
        .rules
        .iter()
        .find(|o| o.rule == "mon.tenant_slo")
        .map_or(0, |o| o.fired);
    let attribution = tel
        .snapshot()
        .with_prefix("tenant.")
        .counters;
    let profile = (knobs.trace_capacity > 0).then(|| Profile::from_spans(&tel.events()));
    Outcome {
        label: format!("noisy.{}", mode.label()),
        tenants: if with_aggr { 2 } else { 1 },
        fingerprint: serve.fingerprint(),
        report,
        violations,
        cross_probes: 0,
        cross_faults_typed: 0,
        quota_probes: 0,
        quota_typed: 0,
        balloon_released: 0,
        balloon_roundtrip_errors: 0,
        p99_max: victim_p99.max(aggressor_p99),
        p99_mean: victim_p99,
        victim_p99,
        aggressor_p99,
        tenant_slo_fired,
        profile,
        attribution,
    }
}

fn run_point(p: Point, knobs: Knobs) -> Outcome {
    match p {
        Point::Scale(n) => run_scale(n, knobs),
        Point::Noisy(m) => run_noisy(m, knobs),
    }
}

fn main() -> ExitCode {
    let opts = ExpOptions::from_env();
    banner(
        "Multi-tenant serving: per-tenant p99 vs tenant count + noisy neighbor",
        "tenant isolation, token-bucket admission, SLO-aware QoS and live ballooning over one cluster",
    );
    let seed = opts.seed();
    let ops: u64 = if opts.quick { 1_200 } else { 3_000 };
    let max_tenants = opts.tenants().max(8);
    let no_qos_only = opts.args.iter().any(|a| a == "--no-qos");
    let knobs = Knobs {
        seed,
        ops,
        quota_slabs: opts.tenant_quota().max(2),
        balloon: opts.balloon(),
        window_ns: opts.window_ns().unwrap_or(DEFAULT_WINDOW_NS),
        trace_capacity: if opts.profiling() { opts.trace_capacity() } else { 0 },
    };
    println!(
        "seed: {seed}, ops per tenant per row: {ops}, quota: {} slabs, balloon demo: {}, \
         victim SLO: {} ns\n",
        knobs.quota_slabs,
        if knobs.balloon { "on" } else { "off" },
        VICTIM_SLO.as_ns()
    );

    let mut counts: Vec<u32> = vec![2, 4, 8];
    if max_tenants > 8 {
        counts.push(max_tenants);
    }
    let mut points: Vec<Point> = counts.iter().map(|&n| Point::Scale(n)).collect();
    // The noisy trio always runs (the QoS rows are the figure's second
    // panel); --no-qos drops the QoS row to showcase the unprotected
    // runtime on its own.
    points.push(Point::Noisy(NoisyMode::Solo));
    if !no_qos_only {
        points.push(Point::Noisy(NoisyMode::Qos));
    }
    points.push(Point::Noisy(NoisyMode::NoQos));
    let results = par_map(opts.jobs, points, move |_, p| run_point(p, knobs));

    let tel = opts.telemetry();
    let mut gate_failures = 0u64;

    // ---- Scale sweep table -------------------------------------------------
    let mut table = TextTable::new(&[
        "Tenants",
        "Ops",
        "p99 max µs",
        "p99 mean µs",
        "Cross-faults",
        "Quota rej",
        "Balloon MiB",
        "Violations",
        "Fingerprint",
    ]);
    for r in results.iter().filter(|r| r.label.starts_with("scale")) {
        table.row(vec![
            r.tenants.to_string(),
            r.report.admitted.to_string(),
            f2(r.p99_max as f64 / 1_000.0),
            f2(r.p99_mean as f64 / 1_000.0),
            format!("{}/{}", r.cross_faults_typed, r.cross_probes),
            format!("{}/{}", r.quota_typed, r.quota_probes),
            f2(r.balloon_released as f64 / (1 << 20) as f64),
            r.violations.to_string(),
            format!("{:016x}", r.fingerprint),
        ]);
        let g = |k: &str| format!("fig_tenants.{}.{k}", r.label);
        tel.gauge(&g("p99_max_ns")).set(r.p99_max as f64);
        tel.gauge(&g("p99_mean_ns")).set(r.p99_mean as f64);
        tel.gauge(&g("admitted")).set(r.report.admitted as f64);
        tel.gauge(&g("violations")).set(r.violations as f64);
        tel.gauge(&g("quota_rejections")).set(r.report.quota_rejections as f64);
        tel.gauge(&g("balloon_errors")).set(r.report.balloon_errors as f64);

        let mut fail = |why: &str| {
            gate_failures += 1;
            eprintln!("GATE FAILED [{}]: {why}", r.label);
        };
        if r.violations > 0 {
            fail(&format!("{} isolation violations (bytes crossed tenants)", r.violations));
        }
        if r.cross_faults_typed != r.cross_probes {
            fail(&format!(
                "only {}/{} cross-tenant probes failed typed",
                r.cross_faults_typed, r.cross_probes
            ));
        }
        if r.quota_typed != r.quota_probes {
            fail(&format!(
                "only {}/{} over-quota grows rejected typed",
                r.quota_typed, r.quota_probes
            ));
        }
        if r.balloon_roundtrip_errors > 0 {
            fail(&format!("{} balloon round-trip errors", r.balloon_roundtrip_errors));
        }
        if knobs.balloon && r.balloon_released != r.tenants as u64 * (1 << 20) {
            fail(&format!(
                "balloon released {} bytes, expected one slab per tenant",
                r.balloon_released
            ));
        }
        if r.report.balloon_errors > 0 {
            fail(&format!("{} balloon evacuation errors", r.report.balloon_errors));
        }
    }
    table.print();
    let max_row = results
        .iter()
        .filter(|r| r.label.starts_with("scale"))
        .map(|r| r.tenants)
        .max()
        .unwrap_or(0);
    if max_row < 8 {
        gate_failures += 1;
        eprintln!("GATE FAILED [sweep]: largest row has {max_row} tenants, need ≥ 8");
    }

    // ---- Replay determinism (uses --shards as its worker count) -----------
    let replay = par_map(
        Jobs::new(opts.shards().get()),
        vec![max_row; REPLAY_RUNS],
        move |_, n| run_scale(n, knobs).fingerprint,
    );
    let sweep_fp = results
        .iter()
        .find(|r| r.tenants == max_row && r.label.starts_with("scale"))
        .map_or(0, |r| r.fingerprint);
    if replay.iter().any(|&f| f != sweep_fp) {
        gate_failures += 1;
        eprintln!("GATE FAILED [replay]: fingerprints diverged across replays/worker counts");
    } else {
        println!(
            "\nreplay determinism: {max_row}-tenant row fingerprint {sweep_fp:016x} stable \
             across replays and worker counts"
        );
    }

    // ---- Noisy-neighbor table ---------------------------------------------
    let mut noisy = TextTable::new(&[
        "Mode",
        "Victim p99 µs",
        "Victim ops",
        "Aggr p99 µs",
        "Aggr ops",
        "Aggr throttled",
        "Shed wnd",
        "Prot wnd",
        "mon.tenant_slo",
    ]);
    let row_of = |m: NoisyMode| results.iter().find(|r| r.label == format!("noisy.{}", m.label()));
    for r in results.iter().filter(|r| r.label.starts_with("noisy")) {
        let victim = r.report.tenants.first().expect("victim row");
        let aggr = r.report.tenants.get(1);
        noisy.row(vec![
            r.label["noisy.".len()..].to_string(),
            f2(r.victim_p99 as f64 / 1_000.0),
            victim.ops.to_string(),
            f2(r.aggressor_p99 as f64 / 1_000.0),
            aggr.map_or(0, |t| t.ops).to_string(),
            aggr.map_or(0, |t| t.throttled).to_string(),
            aggr.map_or(0, |t| t.shed_windows).to_string(),
            victim.protected_windows.to_string(),
            r.tenant_slo_fired.to_string(),
        ]);
        let g = |k: &str| format!("fig_tenants.{}.{k}", r.label);
        tel.gauge(&g("victim_p99_ns")).set(r.victim_p99 as f64);
        tel.gauge(&g("aggressor_p99_ns")).set(r.aggressor_p99 as f64);
        tel.gauge(&g("victim_protected_windows")).set(victim.protected_windows as f64);
        tel.gauge(&g("tenant_slo_fired")).set(r.tenant_slo_fired as f64);
        if r.violations > 0 {
            gate_failures += 1;
            eprintln!(
                "GATE FAILED [{}]: {} isolation violations",
                r.label, r.violations
            );
        }
    }
    noisy.print();

    let solo = row_of(NoisyMode::Solo).expect("solo row");
    let noqos = row_of(NoisyMode::NoQos).expect("no-qos row");
    if let Some(qos) = row_of(NoisyMode::Qos) {
        let bound = solo.victim_p99 + solo.victim_p99 / 2;
        if qos.victim_p99 > bound {
            gate_failures += 1;
            eprintln!(
                "GATE FAILED [noisy.qos]: victim p99 {} ns exceeds 1.5× solo baseline {} ns",
                qos.victim_p99, solo.victim_p99
            );
        }
        if noqos.victim_p99 <= qos.victim_p99 {
            gate_failures += 1;
            eprintln!(
                "GATE FAILED [noisy]: QoS off ({} ns) not worse than QoS on ({} ns)",
                noqos.victim_p99, qos.victim_p99
            );
        }
        let aggr = qos.report.tenants.get(1).expect("aggressor row");
        if aggr.throttled == 0 {
            gate_failures += 1;
            eprintln!("GATE FAILED [noisy.qos]: admission gate never throttled the aggressor");
        }
        let victim = qos.report.tenants.first().expect("victim row");
        if victim.protected_windows == 0 && qos.tenant_slo_fired == 0 {
            gate_failures += 1;
            eprintln!("GATE FAILED [noisy.qos]: SLO protection never engaged");
        }

        // Per-tenant attribution table for the QoS row: every
        // `tenant.<id>.*` counter of the shared registry, interned names
        // resolved once at registration.
        let mut attr = TextTable::new(&["Metric", "Value"]);
        for (name, v) in &qos.attribution {
            attr.row(vec![name.clone(), v.to_string()]);
        }
        println!("\nPer-tenant attribution (noisy.qos):");
        attr.print();
    }
    if noqos
        .report
        .tenants
        .get(1)
        .map_or(0, |t| t.throttled)
        > 0
    {
        gate_failures += 1;
        eprintln!("GATE FAILED [noisy.no-qos]: throttling happened with QoS off");
    }

    println!(
        "\nExpected shape: per-tenant p99 rises with tenant count at fixed\n\
         capacity as working sets overflow shared FMem. Cross-tenant probes\n\
         all fail typed (TenantFault), over-quota grows all fail typed\n\
         (QuotaExceeded), the balloon releases exactly the cold slab it\n\
         grew, and no read ever observes another tenant's bytes. In the\n\
         noisy-neighbor panel, QoS (throttling + eviction protection +\n\
         prefetch shedding) keeps the victim's p99 within 1.5× of its solo\n\
         baseline while the same scenario without QoS is strictly worse."
    );

    opts.write_outputs(&tel);
    if opts.profiling() {
        let mut profile: Option<Profile> = None;
        for r in &results {
            let p = r
                .profile
                .as_ref()
                .expect("tracing enabled when profiling")
                .prefixed(&r.label);
            match &mut profile {
                Some(all) => all.merge(&p),
                None => profile = Some(p),
            }
        }
        if let Some(p) = &profile {
            opts.write_profile(p);
        }
    }
    if gate_failures > 0 {
        eprintln!("\n{gate_failures} tenant gate(s) FAILED");
        return ExitCode::FAILURE;
    }
    println!("\nall tenant gates passed");
    ExitCode::SUCCESS
}
