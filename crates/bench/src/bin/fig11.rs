//! Fig 11: eviction goodput with cache-line granularity.
//!
//! A microbenchmark "continuously writes N cache-lines out of each 4KB
//! page in a 1GB region" and ships the dirty data to a remote host. Kona's
//! cache-line log is compared against Kona-VM's full-page RDMA writes and
//! two idealized no-copy baselines (§6.4). Panel (c) breaks Kona's time
//! into Bitmap / Copy / RDMA write / Ack wait.
//!
//! The per-N eviction runs fan out over `--jobs` worker threads. Telemetry
//! handles are thread-local, so each worker runs with a private registry
//! and returns a [`MetricsDump`]; the coordinator absorbs the dumps in
//! input order, making the merged registry (and the printed tables)
//! identical for every job count.

use kona::{EvictionHandler, Poller};
use kona_bench::{banner, f2, ExpOptions, TextTable};
use kona_fpga::VictimPage;
use kona_net::{CopyModel, Fabric, NetworkModel};
use kona_telemetry::{MetricsDump, Telemetry};
use kona_types::{
    par_map, Jobs, LineBitmap, Nanos, PageNumber, RemoteAddr, LINES_PER_PAGE_4K, PAGE_SIZE_4K,
};

/// Pages batched per RDMA chain for the page-granularity baselines.
const BATCH: u64 = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Placement {
    Contiguous,
    Alternate,
}

fn victim(page: u64, n: usize, placement: Placement) -> VictimPage {
    let mut bm = LineBitmap::new(LINES_PER_PAGE_4K);
    for i in 0..n {
        let idx = match placement {
            Placement::Contiguous => i,
            Placement::Alternate => i * 2,
        };
        bm.set(idx);
    }
    VictimPage {
        page: PageNumber(page),
        dirty_lines: bm,
    }
}

/// Runs Kona's real eviction handler over the whole region and returns
/// total time. All runs publish into the shared telemetry registry.
fn kona_cl_log(pages: u64, n: usize, placement: Placement, tel: &Telemetry) -> Nanos {
    let mut fabric = Fabric::new(NetworkModel::connectx5());
    let data = pages * PAGE_SIZE_4K;
    fabric.add_node(0, data + 65536);
    fabric.register(0, 0, data).expect("register data");
    fabric.register(0, data, 65536).expect("register log");
    fabric.set_telemetry(tel);
    let mut handler = EvictionHandler::new(data, 65536);
    handler.set_telemetry(tel);
    let mut poller = Poller::new();
    for p in 0..pages {
        handler
            .evict_page(
                &victim(p, n, placement),
                None,
                RemoteAddr::new(0, p * PAGE_SIZE_4K),
                &[],
                &mut fabric,
                &mut poller,
            )
            .expect("evict");
    }
    handler
        .flush_all(&mut fabric, &mut poller)
        .expect("flush");
    handler.breakdown().total()
}

/// Kona-VM: copy each dirty page into an RDMA buffer, then 4 KiB writes in
/// linked chains.
fn kona_vm(pages: u64) -> Nanos {
    let net = NetworkModel::connectx5();
    let copy = CopyModel::skylake();
    let copies = copy.avx_copy(PAGE_SIZE_4K) * pages;
    let chains = net.chain_time(&vec![PAGE_SIZE_4K; BATCH as usize], 1) * (pages / BATCH).max(1);
    copies + chains
}

/// Idealized: 4 KiB writes straight from registered memory (no copy).
fn page_writes_no_copy(pages: u64) -> Nanos {
    let net = NetworkModel::connectx5();
    net.chain_time(&vec![PAGE_SIZE_4K; BATCH as usize], 1) * (pages / BATCH).max(1)
}

/// Idealized: one RDMA write per dirty-line *segment*, no copy, no remote
/// thread. Contiguous N = one write of N lines per page; alternate N = N
/// single-line writes per page.
fn cl_writes_no_copy(pages: u64, n: usize, placement: Placement) -> Nanos {
    let net = NetworkModel::connectx5();
    let (wr_per_page, wr_bytes) = match placement {
        Placement::Contiguous => (1u64, n as u64 * 64),
        Placement::Alternate => (n as u64, 64),
    };
    let total_wrs = pages * wr_per_page;
    let chains = total_wrs.div_ceil(BATCH);
    net.chain_time(&vec![wr_bytes; BATCH as usize], 1) * chains
}

fn goodput_gbps(dirty_bytes: u64, time: Nanos) -> f64 {
    dirty_bytes as f64 / time.as_ns() as f64 // bytes per ns == GB/s
}

fn panel_goodput(pages: u64, placement: Placement, ns_list: &[usize], jobs: Jobs, tel: &Telemetry) {
    let title = match placement {
        Placement::Contiguous => "contiguous",
        Placement::Alternate => "alternate",
    };
    println!("\n--- Goodput relative to Kona-VM ({title} dirty cache-lines) ---");
    let mut table = TextTable::new(&[
        "N",
        "Kona CL log",
        "4KB no-copy",
        "CL no-copy",
        "KonaVM GB/s",
        "Kona GB/s",
    ]);
    // Each worker evicts with a private registry; dumps merge in input
    // order below, so the shared registry matches a sequential run.
    let rows: Vec<(Vec<String>, MetricsDump)> =
        par_map(jobs, ns_list.to_vec(), |_, n| {
            let local = Telemetry::disabled();
            let dirty = pages * n as u64 * 64;
            let vm = goodput_gbps(dirty, kona_vm(pages));
            let kona = goodput_gbps(dirty, kona_cl_log(pages, n, placement, &local));
            let pnc = goodput_gbps(dirty, page_writes_no_copy(pages));
            let clnc = goodput_gbps(dirty, cl_writes_no_copy(pages, n, placement));
            let row = vec![
                n.to_string(),
                f2(kona / vm),
                f2(pnc / vm),
                f2(clnc / vm),
                f2(vm),
                f2(kona),
            ];
            (row, local.dump())
        });
    for (row, dump) in rows {
        tel.absorb(&dump);
        table.row(row);
    }
    table.print();
}

fn main() {
    let opts = ExpOptions::from_env();
    banner("Fig 11: eviction goodput with cache-line granularity", "Figure 11");
    // Paper: 1 GiB region; scaled by default.
    let pages: u64 = if opts.quick { 2_048 } else { 16_384 };
    println!("region: {} pages ({} MiB; paper used 1 GiB)", pages, (pages * 4096) >> 20);

    let panels = opts.value_of("panel").unwrap_or("abc").to_string();
    // One registry for the whole invocation: every eviction run's fabric
    // and handler publish into it, so `--metrics-out` reflects all panels.
    let tel = opts.telemetry();

    if panels.contains('a') {
        panel_goodput(pages, Placement::Contiguous, &[1, 2, 4, 6, 8, 12, 16, 32, 64], opts.jobs, &tel);
        println!(
            "Expected: Kona 4-5X for 1-4 contiguous lines; parity when the\n\
             whole page is dirty; 4KB no-copy ~1.5X over Kona-VM."
        );
    }
    if panels.contains('b') {
        panel_goodput(pages, Placement::Alternate, &[1, 2, 4, 8, 12, 16, 32], opts.jobs, &tel);
        println!(
            "Expected: Kona 2-3X for 2-4 alternate lines; CL no-copy collapses\n\
             (one verb per line); Kona falls below Kona-VM only past ~16\n\
             discontiguous lines."
        );
    }
    if panels.contains('c') {
        println!("\n--- Panel (c): Kona CL log time breakdown ---");
        let mut table = TextTable::new(&[
            "Contiguous lines",
            "Bitmap %",
            "Copy %",
            "RDMA write %",
            "Ack wait %",
            "Total (ms)",
        ]);
        let rows: Vec<(Vec<String>, MetricsDump)> =
            par_map(opts.jobs, vec![1usize, 8], |_, n| {
                let local = Telemetry::disabled();
                let mut fabric = Fabric::new(NetworkModel::connectx5());
                let data = pages * PAGE_SIZE_4K;
                fabric.add_node(0, data + 65536);
                fabric.register(0, 0, data).expect("register");
                fabric.register(0, data, 65536).expect("register log");
                fabric.set_telemetry(&local);
                let mut handler = EvictionHandler::new(data, 65536);
                handler.set_telemetry(&local);
                let mut poller = Poller::new();
                for p in 0..pages {
                    handler
                        .evict_page(
                            &victim(p, n, Placement::Contiguous),
                            None,
                            RemoteAddr::new(0, p * PAGE_SIZE_4K),
                            &[],
                            &mut fabric,
                            &mut poller,
                        )
                        .expect("evict");
                }
                handler.flush_all(&mut fabric, &mut poller).expect("flush");
                let b = handler.breakdown();
                let s = b.shares();
                let row = vec![
                    n.to_string(),
                    f2(s[0]),
                    f2(s[1]),
                    f2(s[2]),
                    f2(s[3]),
                    f2(b.total().as_millis_f64()),
                ];
                (row, local.dump())
            });
        for (row, dump) in rows {
            tel.absorb(&dump);
            table.row(row);
        }
        table.print();
        println!(
            "Expected: Copy dominates; RDMA write and Bitmap each 15-20%;\n\
             Ack wait small (paper Fig 11c)."
        );
    }

    opts.write_outputs(&tel);
}
