//! Cluster control plane under deterministic fault injection.
//!
//! Runs the same seeded read/write workload through the full cluster
//! stack — per-node apply/compaction workers, capacity-aware placement,
//! rebalancing, and post-crash re-replication — under every bundled
//! [`FaultPlan`], and reports availability plus the rebalance traffic
//! the control plane generated. Fault decisions, retry jitter, placement
//! lotteries and the workload are all seeded, so a given `--seed`
//! reproduces the run bit for bit at any `--jobs` count.
//!
//! The run exits non-zero if any plan drops below 100% availability or
//! leaves a slab under-replicated — the CI cluster-smoke gate.
//!
//! ```bash
//! cargo run --release --bin fig_cluster -- --quick
//! cargo run --release --bin fig_cluster -- --nodes 4 --placement p2c
//! ```

use kona::{ClusterConfig, PlacementKind, RemoteMemoryRuntime};
use kona_bench::{banner, f2, ExpOptions, TextTable};
use kona_cluster::{ClusterRuntime, ClusterStats, ControlPlaneConfig};
use kona_net::FaultPlan;
use kona_types::par_map;
use kona_types::rng::{Rng, StdRng};

/// Pages in the remote working set (the local cache holds 8).
const PAGES: u64 = 64;
/// Memory node the bundled plans flap/crash.
const VICTIM: u32 = 0;

struct Outcome {
    plan: &'static str,
    ok: u64,
    failed: u64,
    stats: kona::RuntimeStats,
    cluster: ClusterStats,
    abandoned: u64,
    verify_errors: u64,
    series: Option<kona_telemetry::SeriesData>,
}

impl Outcome {
    fn availability(&self) -> f64 {
        let total = self.ok + self.failed;
        if total == 0 {
            return 0.0;
        }
        self.ok as f64 / total as f64
    }
}

/// Drives `ops` accesses against a cluster running `plan`, checking
/// every read against a host-side model.
fn run_plan(
    plan: FaultPlan,
    seed: u64,
    ops: u64,
    nodes: u32,
    placement: PlacementKind,
    series_window: Option<u64>,
) -> Outcome {
    let name = plan.name;
    let mut cfg = ClusterConfig::small()
        .with_local_cache_pages(8)
        .with_replicas(2)
        .with_placement(placement);
    cfg.cpu_cache_lines = 64;
    cfg.memory_nodes = nodes;
    cfg.fault_plan = Some(plan);
    let tel = kona_telemetry::Telemetry::disabled();
    if let Some(window) = series_window {
        tel.enable_timeseries(window);
    }
    let mut rt = ClusterRuntime::with_telemetry(cfg, ControlPlaneConfig::default(), tel.clone())
        .expect("valid config");
    let base = rt.allocate(PAGES * 4096).expect("allocate");
    let mut model = vec![0u8; (PAGES * 4096) as usize];
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut ok, mut failed) = (0u64, 0u64);
    for _ in 0..ops {
        let page = rng.gen_range(0..PAGES);
        let off = (page * 4096 + rng.gen_range(0..64) * 64) as usize;
        if rng.gen_bool(0.5) {
            let byte: u8 = rng.gen();
            match rt.write_bytes(base + off as u64, &[byte; 64]) {
                Ok(_) => {
                    model[off..off + 64].fill(byte);
                    ok += 1;
                }
                Err(_) => failed += 1,
            }
        } else {
            let mut buf = [0u8; 64];
            match rt.read_bytes(base + off as u64, &mut buf) {
                Ok(_) => {
                    assert_eq!(&buf[..], &model[off..off + 64], "stale read under {name}");
                    ok += 1;
                }
                Err(_) => failed += 1,
            }
        }
    }
    // Final sweep: every page must still read byte-exact — after a crash
    // that means from a promoted or re-replicated copy.
    let mut verify_errors = 0u64;
    let _ = rt.sync();
    for page in 0..PAGES {
        let mut buf = [0u8; 4096];
        match rt.read_bytes(base + page * 4096, &mut buf) {
            Ok(_) => {
                let off = (page * 4096) as usize;
                assert_eq!(
                    &buf[..],
                    &model[off..off + 4096],
                    "page {page} diverged under {name}"
                );
            }
            Err(_) => verify_errors += 1,
        }
    }
    let abandoned = rt.inner().eviction_stats().abandoned_flushes;
    Outcome {
        plan: name,
        ok,
        failed,
        stats: rt.stats(),
        cluster: rt.cluster_stats(),
        abandoned,
        verify_errors,
        series: tel.series().map(|s| s.prefixed(name)),
    }
}

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "Cluster control plane: availability and rebalance traffic",
        "per-node apply/compaction + placement, migration, re-replication",
    );
    let seed: u64 = opts.seed();
    let nodes: u32 = opts.value_of("nodes").and_then(|s| s.parse().ok()).unwrap_or(3);
    let placement = opts
        .value_of("placement")
        .map(|s| PlacementKind::parse(s).expect("--placement: round-robin | capacity | p2c"))
        .unwrap_or_default();
    let ops: u64 = if opts.quick { 600 } else { 6_000 };
    println!(
        "seed: {seed}, ops per plan: {ops}, nodes: {nodes}, replicas: 2, \
         placement: {placement:?}, victim node: {VICTIM}\n"
    );

    let plans = FaultPlan::bundled(seed, VICTIM);
    let series_window = opts.series_window_ns();
    let results = par_map(opts.jobs, plans, |_, plan| {
        run_plan(plan, seed, ops, nodes, placement, series_window)
    });

    let tel = opts.telemetry();
    let mut table = TextTable::new(&[
        "Plan",
        "Avail %",
        "Abandoned",
        "Rerepl",
        "UnderRepl",
        "Migr KiB",
        "Backlog B",
        "Applied",
        "Folded",
        "Compact %",
        "Verify errs",
    ]);
    let mut gate_failures = 0u64;
    for r in &results {
        table.row(vec![
            r.plan.to_string(),
            f2(r.availability() * 100.0),
            r.abandoned.to_string(),
            r.cluster.rereplications.to_string(),
            r.cluster.under_replicated.to_string(),
            (r.cluster.migration_bytes / 1024).to_string(),
            r.cluster.backlog_bytes.to_string(),
            r.cluster.entries_applied.to_string(),
            r.cluster.pages_folded.to_string(),
            f2(r.cluster.compaction_ratio() * 100.0),
            r.verify_errors.to_string(),
        ]);
        let g = |k: &str| format!("fig_cluster.{}.{k}", r.plan);
        tel.gauge(&g("availability")).set(r.availability());
        tel.gauge(&g("abandoned_flushes")).set(r.abandoned as f64);
        tel.gauge(&g("rereplications")).set(r.cluster.rereplications as f64);
        tel.gauge(&g("under_replicated")).set(r.cluster.under_replicated as f64);
        tel.gauge(&g("migration_bytes")).set(r.cluster.migration_bytes as f64);
        tel.gauge(&g("backlog_bytes")).set(r.cluster.backlog_bytes as f64);
        tel.gauge(&g("entries_applied")).set(r.cluster.entries_applied as f64);
        tel.gauge(&g("entries_deduped")).set(r.cluster.entries_deduped as f64);
        tel.gauge(&g("pages_folded")).set(r.cluster.pages_folded as f64);
        tel.gauge(&g("compaction_ratio")).set(r.cluster.compaction_ratio());
        tel.gauge(&g("retries")).set(r.stats.retries as f64);
        tel.gauge(&g("failovers")).set(r.stats.failovers as f64);
        tel.gauge(&g("verify_errors")).set(r.verify_errors as f64);
        if r.availability() < 1.0 || r.cluster.under_replicated > 0 || r.verify_errors > 0 {
            gate_failures += 1;
        }
    }
    table.print();

    println!(
        "\nExpected shape: availability holds at 100% on every plan. The\n\
         crash plans abandon the victim's log flushes, and the control\n\
         plane re-replicates its slabs onto healthy nodes (Rerepl > 0,\n\
         UnderRepl = 0) — the K-way budget is restored, not just spent.\n\
         Backlogs drain to zero and reads verify byte-exact throughout."
    );

    let merged = series_window.map(|window| {
        let mut all = kona_telemetry::SeriesData::new(window);
        for r in &results {
            if let Some(s) = &r.series {
                all.merge(s);
            }
        }
        all
    });
    opts.write_outputs_with_series(&tel, merged.as_ref());
    if gate_failures > 0 {
        eprintln!("\ncluster gate FAILED for {gate_failures} plan(s)");
        std::process::exit(1);
    }
}
