//! Fig 3: CDF of contiguous accessed cache-line segment lengths (Redis).
//!
//! Dirty-line contiguity determines how efficiently Kona's eviction
//! handler can aggregate lines into large RDMA writes (§6.4).

use kona_bench::{banner, f2, ExpOptions, TextTable};
use kona_trace::contiguity::ContiguityAnalysis;
use kona_workloads::{RedisWorkload, Workload};

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "Fig 3: contiguous cache-line segments in a page (Redis)",
        "Figure 3",
    );
    let profile = opts.table_profile();

    let rand = RedisWorkload::rand().with_profile(profile);
    let seq = RedisWorkload::seq().with_profile(profile);
    let ca_rand = ContiguityAnalysis::over_events(rand.generate(42));
    let ca_seq = ContiguityAnalysis::over_events(seq.generate(42));

    let series = [
        ("Reads (Rand)", ca_rand.read_segment_cdf()),
        ("Writes (Rand)", ca_rand.write_segment_cdf()),
        ("Reads (Seq)", ca_seq.read_segment_cdf()),
        ("Writes (Seq)", ca_seq.write_segment_cdf()),
    ];

    let mut table = TextTable::new(&[
        "Segment len",
        "Reads(Rand)",
        "Writes(Rand)",
        "Reads(Seq)",
        "Writes(Seq)",
    ]);
    for n in [1u64, 2, 3, 4, 6, 8, 16, 32, 48, 63, 64] {
        let mut row = vec![n.to_string()];
        for (_, cdf) in &series {
            row.push(f2(cdf.fraction_le(n)));
        }
        table.row(row);
    }
    table.print();

    println!();
    println!(
        "Rand: fraction of write segments with length <= 4: {:.2} (paper: most)",
        ca_rand.write_segment_cdf().fraction_le(4)
    );
    println!(
        "Seq: fraction of write segments that span a whole page: {:.2} (paper: large)",
        ca_seq.page_length_write_fraction()
    );

    let tel = opts.telemetry();
    tel.gauge("fig3.rand.write_seg_le4")
        .set(ca_rand.write_segment_cdf().fraction_le(4));
    tel.gauge("fig3.seq.full_page_write_fraction")
        .set(ca_seq.page_length_write_fraction());
    opts.write_outputs(&tel);
}
