//! Machine-readable perf snapshot: `BENCH_PR7.json`.
//!
//! Times the hot paths the data-structure overhaul targets (coherence
//! touches, dirty-line marks, FMem translation, eviction-log packing,
//! bitmap word-scans, slab-LRU touches) plus the sweep engine's wall
//! clock at `--jobs 1` vs `--jobs N` and the shard-parallel engine's
//! wall clock at `--shards 1` vs `--shards N`, and writes the results
//! as JSON so subsequent PRs have a perf trajectory to diff against.
//!
//! ```text
//! bench_report [--quick] [--jobs N] [--out PATH] [--baseline PATH]
//! ```
//!
//! With `--baseline`, each micro-bench is compared against the committed
//! snapshot and the process exits non-zero if any ns/op regressed more
//! than 2x — the CI `bench-smoke` gate. Wall-clock sweep numbers are
//! recorded but never gated: they depend on the runner's core count.
//! The shard speedup *is* gated — on a multi-core runner the engine
//! must hit > 0.7·N at N workers (single-core runners skip the gate,
//! since N = 1 has nothing to parallelize).
//!
//! On any gate failure the report diffs a fresh quick profile-scenario
//! run against the committed `PROFILE_BASELINE.json` (override with
//! `--profile-baseline PATH`) and prints the blamed simulated-time
//! path — "something regressed" upgraded to "path X grew N×". The
//! host-scope wall-clock table (eviction_pack, shard_merge, ...) prints
//! on every run for the host-side view.

use kona::{
    seeded_script, ClusterConfig, EvictionHandler, Poller, RetryPolicy, ShardedRun,
};
use kona_bench::{profile_scenario, ExpOptions};
use kona_coherence::{AgentId, CoherenceSystem};
use kona_fpga::{DirtyTracker, RemoteTranslation, VictimPage};
use kona_kcachesim::{sweep_cache_size_jobs, SystemModel};
use kona_net::{Fabric, FaultInjector, FaultPlan, NetworkModel, Opcode};
use kona_types::rng::{Rng, StdRng};
use kona_telemetry::{host_profile_start, host_profile_stop, Profile, ProfileDiff};
use kona_types::{
    Jobs, LineBitmap, LineIndex, Nanos, PageNumber, RemoteAddr, ShardPlan, Shards, SlabLru,
    VfMemAddr, LINES_PER_PAGE_4K, PAGE_SIZE_4K,
};
use kona_workloads::{RedisWorkload, Workload, WorkloadProfile};
use std::time::Instant;

/// One timed hot path: name plus mean ns per operation.
struct Micro {
    name: &'static str,
    ns_per_op: f64,
}

/// Times `body` (which performs `ops` operations per call) until the
/// measurement budget is spent and returns mean ns/op.
///
/// `--quick` shrinks only the budget, never a case's per-call work:
/// per-call setup (fresh system, fabric, tracker) amortizes over the
/// same op count in both modes, so quick CI runs are comparable with a
/// full-mode committed baseline.
fn time_ns_per_op<O>(quick: bool, ops: u64, mut body: impl FnMut() -> O) -> f64 {
    let budget_ms = if quick { 60 } else { 250 };
    // Warm-up: one call primes caches and the allocator.
    std::hint::black_box(body());
    let start = Instant::now();
    let mut calls = 0u32;
    while start.elapsed().as_millis() < budget_ms || calls == 0 {
        std::hint::black_box(body());
        calls += 1;
    }
    start.elapsed().as_nanos() as f64 / (f64::from(calls) * ops as f64)
}

/// MESI touches: a two-agent read/write mix over a shared line set —
/// exercises the Fx-hashed agent/directory maps and the slab LRU.
fn coherence_touch(quick: bool) -> f64 {
    let ops = 20_000;
    let mut rng = StdRng::seed_from_u64(11);
    time_ns_per_op(quick, ops, || {
        let mut sys = CoherenceSystem::new(2, 1024);
        for _ in 0..ops {
            let line = LineIndex(rng.next_u64() % 4096);
            if rng.next_u64().is_multiple_of(4) {
                sys.write(AgentId(0), line);
            } else {
                sys.read(AgentId((rng.next_u64() % 2) as u32), line);
            }
        }
        sys.drain_writebacks().len()
    })
}

/// Dirty-line marks plus count queries — exercises the Fx-hashed page map
/// and the incrementally-cached per-page counts.
fn dirty_set(quick: bool) -> f64 {
    let ops = 32_000;
    let mut rng = StdRng::seed_from_u64(12);
    time_ns_per_op(quick, ops, || {
        let mut tracker = DirtyTracker::new();
        let mut acc = 0usize;
        for i in 0..ops {
            let line = LineIndex(rng.next_u64() % (512 * LINES_PER_PAGE_4K as u64));
            tracker.mark(line);
            if i % 16 == 0 {
                acc += tracker.total_dirty_lines();
            }
        }
        acc
    })
}

/// FMem remote translations over 64 registered slabs, with runs of
/// same-slab lookups — exercises the MRU slot plus the range map.
fn fmem_lookup(quick: bool) -> f64 {
    let ops = 32_000;
    let mut xl = RemoteTranslation::new();
    let slab = 64 * PAGE_SIZE_4K;
    for s in 0..64u64 {
        xl.register(VfMemAddr::new(s * slab), slab, RemoteAddr::new(0, s * slab))
            .expect("register slab");
    }
    let mut rng = StdRng::seed_from_u64(13);
    time_ns_per_op(quick, ops, || {
        let mut acc = 0u64;
        let mut base = 0u64;
        for i in 0..ops {
            if i % 8 == 0 {
                base = (rng.next_u64() % 64) * slab;
            }
            let addr = VfMemAddr::new(base + (rng.next_u64() % slab));
            acc = acc.wrapping_add(xl.translate(addr).expect("mapped").offset());
        }
        acc
    })
}

/// Cache-line-log eviction of dirty pages through the handler — exercises
/// log packing, the Fx-hashed receiver maps and bitmap segment walks.
///
/// Fabric and handler are built once outside the timed body (like
/// `fmem_lookup`'s translation table): zeroing the 4 MiB node arena is
/// setup, not the pack path this micro times. Each timed call packs 256
/// pages of 8 single-line segments and flushes, so logs drain and the
/// recycled buffers make every call identical steady-state work.
fn eviction_pack(quick: bool) -> f64 {
    let pages = 256u64;
    let data = 1024 * PAGE_SIZE_4K;
    let mut bm = LineBitmap::new(LINES_PER_PAGE_4K);
    for i in (0..16).step_by(2) {
        bm.set(i);
    }
    let mut fabric = Fabric::new(NetworkModel::connectx5());
    fabric.add_node(0, data + 65536);
    fabric.register(0, 0, data).expect("register data");
    fabric.register(0, data, 65536).expect("register log");
    let mut handler = EvictionHandler::new(data, 65536);
    let mut poller = Poller::new();
    time_ns_per_op(quick, pages, || {
        for p in 0..pages {
            let victim = VictimPage {
                page: PageNumber(p),
                dirty_lines: bm.clone(),
            };
            handler
                .evict_page(
                    &victim,
                    None,
                    RemoteAddr::new(0, p * PAGE_SIZE_4K),
                    &[],
                    &mut fabric,
                    &mut poller,
                )
                .expect("evict");
        }
        handler.flush_all(&mut fabric, &mut poller).expect("flush");
        handler.breakdown().total()
    })
}

/// Word-at-a-time scans of sparse per-page bitmaps.
fn bitmap_scan(quick: bool) -> f64 {
    let reps = 8_000u64;
    let mut bm = LineBitmap::new(LINES_PER_PAGE_4K);
    for i in [0usize, 7, 8, 31, 32, 33, 63] {
        bm.set(i);
    }
    time_ns_per_op(quick, reps, || {
        let mut acc = 0usize;
        for _ in 0..reps {
            acc += std::hint::black_box(&bm).iter_set().sum::<usize>();
        }
        acc
    })
}

/// Slab-LRU touches with periodic evictions — the per-access recency
/// update both cache layers perform.
fn lru_touch(quick: bool) -> f64 {
    let ops = 32_000;
    let mut rng = StdRng::seed_from_u64(14);
    let mut lru = SlabLru::with_capacity(4096);
    for k in 0..4096u64 {
        lru.touch(k);
    }
    time_ns_per_op(quick, ops, || {
        let mut acc = 0u64;
        for i in 0..ops {
            lru.touch(rng.next_u64() % 8192);
            if i % 64 == 0 {
                acc = acc.wrapping_add(lru.pop_lru().unwrap_or(0));
            }
        }
        acc
    })
}

/// The slab-LRU workload replayed on the pre-overhaul structure (a
/// `VecDeque` recency queue with linear reordering) — the denominator for
/// the report's `improvement.lru_touch` ratio.
fn lru_touch_vecdeque(quick: bool) -> f64 {
    use std::collections::VecDeque;
    let ops = 2_000;
    let mut rng = StdRng::seed_from_u64(14);
    let mut q: VecDeque<u64> = (0..4096).collect();
    time_ns_per_op(quick, ops, || {
        let mut acc = 0u64;
        for i in 0..ops {
            let key = rng.next_u64() % 8192;
            if let Some(pos) = q.iter().position(|&k| k == key) {
                q.remove(pos);
            }
            q.push_back(key);
            if i % 64 == 0 {
                acc = acc.wrapping_add(q.pop_front().unwrap_or(0));
            }
        }
        acc
    })
}

/// Map probes with the given hasher: the line-map access pattern shared
/// by the coherence agent, directory, dirty tracker and eviction log.
fn hash_probe<H: std::hash::BuildHasher + Default>(quick: bool) -> f64 {
    let ops = 32_000;
    let mut map: std::collections::HashMap<u64, u64, H> = Default::default();
    for k in 0..4096u64 {
        map.insert(k * 64, k);
    }
    let mut rng = StdRng::seed_from_u64(15);
    time_ns_per_op(quick, ops, || {
        let mut acc = 0u64;
        for _ in 0..ops {
            let k = (rng.next_u64() % 8192) * 64;
            acc = acc.wrapping_add(map.get(&k).copied().unwrap_or(1));
        }
        acc
    })
}

/// The bitmap workload replayed with per-line `get` probing (the
/// pre-overhaul scan) — denominator for `improvement.bitmap_scan`.
fn bitmap_scan_probe(quick: bool) -> f64 {
    let reps = 8_000u64;
    let mut bm = LineBitmap::new(LINES_PER_PAGE_4K);
    for i in [0usize, 7, 8, 31, 32, 33, 63] {
        bm.set(i);
    }
    time_ns_per_op(quick, reps, || {
        let mut acc = 0usize;
        for _ in 0..reps {
            let b = std::hint::black_box(&bm);
            for i in 0..b.len() {
                if b.get(i) {
                    acc += i;
                }
            }
        }
        acc
    })
}

/// Per-verb fault decisions on a lossy plan — the tax every posted work
/// request pays once a fault plan is installed on the fabric.
fn fault_decide(quick: bool) -> f64 {
    let ops = 32_000;
    time_ns_per_op(quick, ops, || {
        let plan = FaultPlan::calm(21)
            .with_drop_prob(0.01)
            .with_corrupt_prob(0.005)
            .with_timeout_prob(0.01);
        let mut inj = FaultInjector::new(plan);
        let mut faults = 0u64;
        for i in 0..ops {
            let op = match i % 3 {
                0 => Opcode::Read,
                1 => Opcode::Write,
                _ => Opcode::Send,
            };
            if inj.decide(op).is_some() {
                faults += 1;
            }
        }
        faults
    })
}

/// Jittered exponential backoff computation — runs once per retry on the
/// fetch and flush recovery paths.
fn retry_backoff(quick: bool) -> f64 {
    let ops = 32_000;
    let policy = RetryPolicy::default();
    let mut rng = StdRng::seed_from_u64(16);
    time_ns_per_op(quick, ops, || {
        let mut acc = 0u64;
        for i in 0..ops {
            acc = acc.wrapping_add(policy.backoff_for((i % 4) as u32, &mut rng).as_ns());
        }
        acc
    })
}

/// Wall-clock of one cache-size sweep at the given job count, in ms.
fn sweep_wall_ms(quick: bool, jobs: Jobs) -> f64 {
    let profile = if quick {
        WorkloadProfile::default()
            .with_windows(1)
            .with_ops_per_window(4_000)
            .with_scale_divisor(2048)
    } else {
        WorkloadProfile::default()
            .with_windows(2)
            .with_ops_per_window(20_000)
            .with_scale_divisor(512)
    };
    let trace = RedisWorkload::rand().with_profile(profile).generate(42);
    let percents = [10u32, 20, 30, 40, 50, 60, 70, 80];
    let start = Instant::now();
    let pts = sweep_cache_size_jobs(&trace, &SystemModel::kona(), &percents, 4096, 4, jobs);
    std::hint::black_box(pts.len());
    start.elapsed().as_secs_f64() * 1e3
}

/// Wall-clock of one shard-parallel run at the given worker count, in ms.
///
/// The logical plan matches the worker count so every worker owns exactly
/// one shard — the configuration the 0.7·N scaling gate is defined over.
/// No windows, tracing or fault plan: this times the engine itself.
fn shard_wall_ms(quick: bool, workers: usize) -> f64 {
    let pages = 512u64;
    let ops = if quick { 60_000 } else { 240_000 };
    let mut cfg = ClusterConfig::small().with_replicas(2);
    cfg.memory_nodes = 3;
    cfg.local_cache_pages = 128;
    cfg.cpu_cache_lines = 1024;
    let run = ShardedRun::new(cfg, pages).with_plan(ShardPlan::new(workers as u32));
    let script = seeded_script(pages, ops, 42);
    let start = Instant::now();
    let report = run
        .execute(&script, Shards::new(workers))
        .expect("shard bench run");
    std::hint::black_box(report.total_ops());
    start.elapsed().as_secs_f64() * 1e3
}

/// Renders the report as JSON (hand-rolled: the workspace has no deps).
#[allow(clippy::too_many_arguments)]
fn to_json(
    micros: &[Micro],
    improvements: &[Micro],
    quick: bool,
    jobs_n: usize,
    wall_1: f64,
    wall_n: f64,
    shards_n: usize,
    shard_wall_1: f64,
    shard_wall_n: f64,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"kona-bench-report-v1\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"micro_ns_per_op\": {\n");
    for (i, m) in micros.iter().enumerate() {
        let comma = if i + 1 == micros.len() { "" } else { "," };
        s.push_str(&format!("    \"{}\": {:.1}{comma}\n", m.name, m.ns_per_op));
    }
    s.push_str("  },\n");
    s.push_str("  \"improvement_vs_naive\": {\n");
    for (i, m) in improvements.iter().enumerate() {
        let comma = if i + 1 == improvements.len() { "" } else { "," };
        s.push_str(&format!("    \"{}\": {:.2}{comma}\n", m.name, m.ns_per_op));
    }
    s.push_str("  },\n");
    s.push_str("  \"sweep_wall_ms\": {\n");
    s.push_str(&format!("    \"jobs_1\": {wall_1:.1},\n"));
    s.push_str(&format!("    \"jobs_n\": {wall_n:.1},\n"));
    s.push_str(&format!("    \"n\": {jobs_n},\n"));
    s.push_str(&format!("    \"speedup\": {:.2}\n", wall_1 / wall_n.max(1e-9)));
    s.push_str("  },\n");
    s.push_str("  \"shard_wall_ms\": {\n");
    s.push_str(&format!("    \"shards_1\": {shard_wall_1:.1},\n"));
    s.push_str(&format!("    \"shards_n\": {shard_wall_n:.1},\n"));
    s.push_str(&format!("    \"n\": {shards_n},\n"));
    s.push_str(&format!(
        "    \"shard_speedup\": {:.2}\n",
        shard_wall_1 / shard_wall_n.max(1e-9)
    ));
    s.push_str("  }\n}\n");
    s
}

/// Pulls `"name": <number>` out of a baseline report. A full JSON parser
/// is overkill for a file this binary itself writes.
fn baseline_value(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Noise floor for blame: paths below this current self time never blame.
const BLAME_MIN_SELF_NS: u64 = 10_000;

/// On gate failure, names the simulated-time path that regressed: diffs
/// a fresh quick profile-scenario run (deterministic, host-independent)
/// against the committed profile baseline. When no simulated path grew,
/// the regression is host-side — the host-scope table is the lead.
fn print_blame(opts: &ExpOptions) {
    let path = opts.value_of("profile-baseline").unwrap_or("PROFILE_BASELINE.json");
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("  blame: no profile baseline at {path} — run fig_profile --quick --profile-out {path}");
        return;
    };
    let Some(base) = Profile::from_json(&text) else {
        eprintln!("  blame: {path} is not a folded profile JSON");
        return;
    };
    // Always quick + serial: the baseline is committed from
    // `fig_profile --quick`, and the profile is deterministic at any
    // shard count anyway.
    let report = profile_scenario(opts.seed(), true, Shards::serial(), opts.trace_capacity(), Nanos::ZERO);
    let current = report.profile.expect("profile_scenario traces spans");
    let diff = ProfileDiff::between(&base, &current);
    match diff.worst_regression(BLAME_MIN_SELF_NS) {
        Some(w) => eprintln!(
            "  blame: {} grew {:.2}x ({} -> {} ns self) vs {path}",
            w.path, w.ratio, w.base_self_ns, w.current_self_ns
        ),
        None => eprintln!(
            "  blame: no simulated-time path grew vs {path} — regression is \
             host-side (see the host-scope table above)"
        ),
    }
}

/// Prints the wall-clock host-scope table accumulated across the run.
fn print_host_scopes() {
    let rows = host_profile_stop();
    if rows.is_empty() {
        return;
    }
    println!("  host scopes (wall clock, informational — never gated):");
    for r in &rows {
        println!(
            "    {:<16} {:>8} calls {:>12} ns total {:>10} ns max",
            r.name, r.calls, r.total_ns, r.max_ns
        );
    }
}

fn main() {
    let opts = ExpOptions::from_env();
    let quick = opts.quick;
    println!("bench_report: timing hot paths ({} mode)", if quick { "quick" } else { "full" });
    host_profile_start();

    let micros = [
        Micro { name: "coherence_touch", ns_per_op: coherence_touch(quick) },
        Micro { name: "dirty_set", ns_per_op: dirty_set(quick) },
        Micro { name: "fmem_lookup", ns_per_op: fmem_lookup(quick) },
        Micro { name: "eviction_pack", ns_per_op: eviction_pack(quick) },
        Micro { name: "bitmap_scan", ns_per_op: bitmap_scan(quick) },
        Micro { name: "lru_touch", ns_per_op: lru_touch(quick) },
        // Failure-path micros (PR 3): absent from older baselines, which
        // the gate tolerates ("no baseline entry"); once a snapshot with
        // them is committed they regress-gate like every other hot path.
        Micro { name: "fault_decide", ns_per_op: fault_decide(quick) },
        Micro { name: "retry_backoff", ns_per_op: retry_backoff(quick) },
    ];
    for m in &micros {
        println!("  {:<18} {:>10.1} ns/op", m.name, m.ns_per_op);
    }

    // Replay three hot paths on the structures they replaced; the ratios
    // quantify the overhaul independent of host speed.
    let lru_old = lru_touch_vecdeque(quick);
    let fx = hash_probe::<std::hash::BuildHasherDefault<kona_types::FxHasher>>(quick);
    let std_h = hash_probe::<std::collections::hash_map::RandomState>(quick);
    let probe = bitmap_scan_probe(quick);
    let improvements = [
        Micro { name: "lru_touch", ns_per_op: lru_old / micros[5].ns_per_op.max(1e-9) },
        Micro { name: "hash_probe", ns_per_op: std_h / fx.max(1e-9) },
        Micro { name: "bitmap_scan", ns_per_op: probe / micros[4].ns_per_op.max(1e-9) },
    ];
    for m in &improvements {
        println!("  {:<18} {:>10.2}x vs pre-overhaul structure", m.name, m.ns_per_op);
    }

    let jobs_n = Jobs::available().get();
    let wall_1 = sweep_wall_ms(quick, Jobs::serial());
    let wall_n = sweep_wall_ms(quick, Jobs::available());
    println!(
        "  sweep wall-clock: jobs=1 {:.1} ms, jobs={} {:.1} ms ({:.2}x)",
        wall_1,
        jobs_n,
        wall_n,
        wall_1 / wall_n.max(1e-9)
    );

    let shards_n = Shards::available().get();
    let shard_wall_1 = shard_wall_ms(quick, 1);
    let shard_wall_n = shard_wall_ms(quick, shards_n);
    let shard_speedup = shard_wall_1 / shard_wall_n.max(1e-9);
    println!(
        "  shard wall-clock: shards=1 {shard_wall_1:.1} ms, shards={shards_n} \
         {shard_wall_n:.1} ms ({shard_speedup:.2}x)"
    );

    let json = to_json(
        &micros,
        &improvements,
        quick,
        jobs_n,
        wall_1,
        wall_n,
        shards_n,
        shard_wall_1,
        shard_wall_n,
    );
    let out = opts.value_of("out").unwrap_or("BENCH_PR7.json");
    std::fs::write(out, &json).expect("write report");
    println!("report written to {out}");
    print_host_scopes();

    // Scaling gate: only meaningful with >1 hardware thread (on a
    // single-core runner both walls time the same serial path).
    if shards_n > 1 && shard_speedup < 0.7 * shards_n as f64 {
        eprintln!(
            "bench_report: shard speedup {shard_speedup:.2}x < 0.7*{shards_n} at \
             {shards_n} workers"
        );
        print_blame(&opts);
        std::process::exit(1);
    }

    if let Some(path) = opts.value_of("baseline") {
        let base = std::fs::read_to_string(path).expect("read baseline");
        let mut regressed = false;
        for m in &micros {
            match baseline_value(&base, m.name) {
                Some(b) if b > 0.0 => {
                    let ratio = m.ns_per_op / b;
                    let flag = if ratio > 2.0 { "  REGRESSION" } else { "" };
                    println!("  vs baseline {:<18} {ratio:.2}x{flag}", m.name);
                    regressed |= ratio > 2.0;
                }
                _ => println!("  vs baseline {:<18} (no baseline entry)", m.name),
            }
        }
        if regressed {
            eprintln!("bench_report: micro-bench regressed >2x vs {path}");
            print_blame(&opts);
            std::process::exit(1);
        }
    }
}
