//! Fig 10: dirty-tracking speedup relative to write-protection.
//!
//! For each workload, KTracker runs once in coherence mode (no tracking
//! overhead on the app) and once in write-protect mode (a minor fault per
//! first write to each page per window plus re-protection work); the
//! speedup is the relative reduction in total time.
//!
//! Workloads fan out over `--jobs` worker threads; rows come back in
//! workload order, so output is identical for every job count.

use kona_bench::{banner, f1, ExpOptions, TextTable};
use kona_ktracker::{speedup_percent, KTracker, TrackingMode};
use kona_types::{par_map, Nanos};
use kona_workloads::{
    GraphAlgorithm, GraphWorkload, HistogramWorkload, LinearRegressionWorkload, RedisWorkload,
    Workload, WorkloadProfile,
};

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "Fig 10: tracking speedup relative to write-protection (KTracker)",
        "Figure 10",
    );
    // 1-second windows; a high op rate models the full-speed applications
    // the paper traces (write-protect overhead scales with dirty pages per
    // second — real Redis under memtier sustains hundreds of kops/s).
    let ops = if opts.quick { 30_000 } else { 250_000 };
    let windows = if opts.quick { 2 } else { 3 };
    let scale = if opts.quick { 64 } else { 16 };
    let profile = WorkloadProfile::default()
        .with_windows(windows)
        .with_window_width(Nanos::secs(1))
        .with_ops_per_window(ops)
        .with_scale_divisor(scale);

    // (name, constructor, paper speedup %). Constructors, not trait
    // objects: each parallel worker builds its own workload.
    type Make = fn(WorkloadProfile) -> Box<dyn Workload>;
    let workloads: Vec<(&str, Make, f64)> = vec![
        (
            "Redis-Rand",
            (|p| Box::new(RedisWorkload::rand().with_profile(p))) as Make,
            35.0,
        ),
        (
            "Redis-Seq",
            |p| Box::new(RedisWorkload::seq().with_profile(p)),
            1.0,
        ),
        (
            "Histogram",
            |p| Box::new(HistogramWorkload::with_profile(p)),
            1.0,
        ),
        (
            "Lin-regr",
            |p| Box::new(LinearRegressionWorkload::with_profile(p)),
            8.0,
        ),
        (
            "Concomp",
            |p| {
                Box::new(GraphWorkload::with_profile(
                    GraphAlgorithm::ConnectedComponents,
                    p,
                ))
            },
            13.0,
        ),
        (
            "Graphcol",
            |p| Box::new(GraphWorkload::with_profile(GraphAlgorithm::GraphColoring, p)),
            12.0,
        ),
        (
            "Labelprop",
            |p| {
                Box::new(GraphWorkload::with_profile(
                    GraphAlgorithm::LabelPropagation,
                    p,
                ))
            },
            15.0,
        ),
        (
            "Pagerank",
            |p| Box::new(GraphWorkload::with_profile(GraphAlgorithm::PageRank, p)),
            10.0,
        ),
    ];

    let rows = par_map(opts.jobs, workloads, |_, (name, make, paper)| {
        let tracker = KTracker::new(Nanos::secs(1));
        let trace = make(profile).generate(42);
        let coh = tracker.run(&trace, TrackingMode::Coherence);
        let wp = tracker.run(&trace, TrackingMode::WriteProtect);
        // Extension: Intel PML (related work §8) removes the write faults
        // but keeps page granularity; coherence tracking still wins.
        let pml = tracker.run(&trace, TrackingMode::Pml);
        vec![
            name.to_string(),
            f1(speedup_percent(&coh, &wp)),
            f1(paper),
            f1(speedup_percent(&coh, &pml)),
        ]
    });
    let tel = opts.telemetry();
    let mut table = TextTable::new(&[
        "Workload",
        "Speedup %",
        "Paper % (approx)",
        "vs PML %",
    ]);
    for row in rows {
        let slug = row[0].to_lowercase().replace('-', "_");
        if let Ok(pct) = row[1].parse::<f64>() {
            tel.gauge(&format!("fig10.{slug}.speedup_pct")).set(pct);
        }
        table.row(row);
    }
    table.print();
    println!(
        "\nExpected shape: speedup scales with dirty pages per second —\n\
         Redis-Rand highest (paper: 35%), sequential/hot-bin workloads\n\
         lowest (paper: ~1%)."
    );
    opts.write_outputs(&tel);
}
