//! Fig 10: dirty-tracking speedup relative to write-protection.
//!
//! For each workload, KTracker runs once in coherence mode (no tracking
//! overhead on the app) and once in write-protect mode (a minor fault per
//! first write to each page per window plus re-protection work); the
//! speedup is the relative reduction in total time.

use kona_bench::{banner, f1, ExpOptions, TextTable};
use kona_ktracker::{speedup_percent, KTracker, TrackingMode};
use kona_types::Nanos;
use kona_workloads::{
    GraphAlgorithm, GraphWorkload, HistogramWorkload, LinearRegressionWorkload, RedisWorkload,
    Workload, WorkloadProfile,
};

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "Fig 10: tracking speedup relative to write-protection (KTracker)",
        "Figure 10",
    );
    // 1-second windows; a high op rate models the full-speed applications
    // the paper traces (write-protect overhead scales with dirty pages per
    // second — real Redis under memtier sustains hundreds of kops/s).
    let ops = if opts.quick { 30_000 } else { 250_000 };
    let windows = if opts.quick { 2 } else { 3 };
    let scale = if opts.quick { 64 } else { 16 };
    let profile = WorkloadProfile::default()
        .with_windows(windows)
        .with_window_width(Nanos::secs(1))
        .with_ops_per_window(ops)
        .with_scale_divisor(scale);

    let workloads: Vec<(&str, Box<dyn Workload>, f64)> = vec![
        (
            "Redis-Rand",
            Box::new(RedisWorkload::rand().with_profile(profile)),
            35.0,
        ),
        (
            "Redis-Seq",
            Box::new(RedisWorkload::seq().with_profile(profile)),
            1.0,
        ),
        (
            "Histogram",
            Box::new(HistogramWorkload::with_profile(profile)),
            1.0,
        ),
        (
            "Lin-regr",
            Box::new(LinearRegressionWorkload::with_profile(profile)),
            8.0,
        ),
        (
            "Concomp",
            Box::new(GraphWorkload::with_profile(
                GraphAlgorithm::ConnectedComponents,
                profile,
            )),
            13.0,
        ),
        (
            "Graphcol",
            Box::new(GraphWorkload::with_profile(
                GraphAlgorithm::GraphColoring,
                profile,
            )),
            12.0,
        ),
        (
            "Labelprop",
            Box::new(GraphWorkload::with_profile(
                GraphAlgorithm::LabelPropagation,
                profile,
            )),
            15.0,
        ),
        (
            "Pagerank",
            Box::new(GraphWorkload::with_profile(GraphAlgorithm::PageRank, profile)),
            10.0,
        ),
    ];

    let tracker = KTracker::new(Nanos::secs(1));
    let mut table = TextTable::new(&[
        "Workload",
        "Speedup %",
        "Paper % (approx)",
        "vs PML %",
    ]);
    for (name, wl, paper) in workloads {
        let trace = wl.generate(42);
        let coh = tracker.run(&trace, TrackingMode::Coherence);
        let wp = tracker.run(&trace, TrackingMode::WriteProtect);
        // Extension: Intel PML (related work §8) removes the write faults
        // but keeps page granularity; coherence tracking still wins.
        let pml = tracker.run(&trace, TrackingMode::Pml);
        table.row(vec![
            name.to_string(),
            f1(speedup_percent(&coh, &wp)),
            f1(paper),
            f1(speedup_percent(&coh, &pml)),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: speedup scales with dirty pages per second —\n\
         Redis-Rand highest (paper: 35%), sequential/hot-bin workloads\n\
         lowest (paper: ~1%)."
    );
}
