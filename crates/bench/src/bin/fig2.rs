//! Fig 2: CDF of accessed cache-lines within a page (Redis).
//!
//! Shows the bimodal spatial locality of Redis: under the random workload
//! most pages have only a few lines accessed; under the sequential
//! workload most pages are fully accessed.

use kona_bench::{banner, f2, ExpOptions, TextTable};
use kona_trace::spatial::SpatialAnalysis;
use kona_workloads::{RedisWorkload, Workload};

fn main() {
    let opts = ExpOptions::from_env();
    banner("Fig 2: accessed cache-lines in a page (Redis)", "Figure 2");
    let profile = opts.table_profile();

    let rand = RedisWorkload::rand().with_profile(profile);
    let seq = RedisWorkload::seq().with_profile(profile);
    let sp_rand = SpatialAnalysis::over_events(rand.generate(42));
    let sp_seq = SpatialAnalysis::over_events(seq.generate(42));

    let series = [
        ("Reads (Rand)", sp_rand.read_cdf()),
        ("Writes (Rand)", sp_rand.write_cdf()),
        ("Reads (Seq)", sp_seq.read_cdf()),
        ("Writes (Seq)", sp_seq.write_cdf()),
    ];

    let mut table = TextTable::new(&[
        "N lines",
        "Reads(Rand)",
        "Writes(Rand)",
        "Reads(Seq)",
        "Writes(Seq)",
    ]);
    for n in [1u64, 2, 4, 8, 16, 24, 32, 48, 56, 63, 64] {
        let mut row = vec![n.to_string()];
        for (_, cdf) in &series {
            row.push(f2(cdf.fraction_le(n)));
        }
        table.row(row);
    }
    table.print();

    println!();
    let tel = opts.telemetry();
    for (name, cdf) in &series {
        println!(
            "{name}: pages={}, p50={} lines, mean={:.1} lines",
            cdf.total(),
            cdf.quantile(0.5).unwrap_or(0),
            cdf.mean()
        );
        let slug = name.to_lowercase().replace([' ', '(', ')'], "");
        tel.gauge(&format!("fig2.{slug}.mean_lines")).set(cdf.mean());
        tel.gauge(&format!("fig2.{slug}.pages"))
            .set(cdf.total() as f64);
    }
    println!(
        "\nExpected shape: Rand skewed to 1-8 lines/page; Seq skewed to all 64\n\
         lines/page (paper §2.2: \"pages have either a small number of\n\
         cache-lines accessed (1-8), or all 64\")."
    );
    opts.write_outputs(&tel);
}
