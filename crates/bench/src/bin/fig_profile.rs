//! Deterministic simulated-time profiles + queueing/occupancy tables.
//!
//! Two parts, both folded from span streams by `kona_telemetry::Profile`:
//!
//! 1. **Per-workload profiles** — every Table 2 workload replays through
//!    a traced Kona runtime and its span stream folds into a weighted
//!    call-path tree (self/total simulated ns per `track;frame;...`
//!    path). Workloads fan out over `--jobs` workers and fold in
//!    workload order, so output is byte-identical at every job count.
//! 2. **The canonical shard scenario** — the fig_shard shrunken-cache
//!    cluster through the shard-parallel engine, per-shard profiles
//!    merged by path key in shard order (byte-identical at every
//!    `--shards`), plus the queueing table: per-fabric-link in-flight
//!    depth and per-memory-node apply backlog folded from the windowed
//!    series. `--profile-out`/`--flame-out` export this scenario's
//!    profile — the same scenario `bench_report` regenerates, which is
//!    what makes the committed `PROFILE_BASELINE.json` comparable.
//!
//! The run self-gates: per-path self times must sum exactly to per-track
//! root totals (conservation violations == 0), and an in-process replay
//! re-runs the scenario serially and byte-compares the JSON, collapsed
//! stacks and queueing table against the `--shards`-wide run. Exit is
//! non-zero on any violation.
//!
//! `--slow-wire N` adds N ns to every posted chain (a deterministic
//! whole-run congestion window) — the CI blame demo runs this and
//! expects `prof_diff` to attribute the regression to the verb path.
//!
//! Host wall-clock scope totals (eviction pack, shipment apply,
//! compaction, shard merge) print to **stderr**: they are real time and
//! nondeterministic, so they never enter the byte-compared transcript.
//!
//! ```bash
//! cargo run --release --bin fig_profile -- --quick
//! cargo run --release --bin fig_profile -- --quick --shards 8 --jobs 4 \
//!     --profile-out profile.json --flame-out profile.folded
//! ```

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime};
use kona_bench::{
    banner, profile_scenario, workload_by_name, ExpOptions, TextTable, WORKLOAD_NAMES,
};
use kona_cluster::{ClusterRuntime, ControlPlaneConfig};
use kona_net::FaultPlan;
use kona_telemetry::{
    host_profile_start, host_profile_stop, Profile, QueueStats, Telemetry, DEFAULT_WINDOW_NS,
};
use kona_types::rng::{Rng, StdRng};
use kona_types::{align_up, par_map, ByteSize, Nanos, Shards, PAGE_SIZE_4K};
use kona_workloads::WorkloadProfile;
use std::process::ExitCode;

/// Hot paths shown per profile table (override with `--top N`).
const TOP_K: usize = 5;

struct WorkloadRun {
    name: String,
    profile: Profile,
    dropped: u64,
}

/// Replays workload `name` with tracing on and folds its span stream.
/// `idx` seeds the trace-id base so ids stay deterministic across job
/// counts (the fold itself only needs per-instance span ids).
fn run_workload(idx: usize, name: &str, quick: bool, capacity: usize) -> WorkloadRun {
    let windows = if quick { 2 } else { 4 };
    let profile = WorkloadProfile::default().with_windows(windows);
    let wl = workload_by_name(name, profile).expect("known workload");
    let trace = wl.generate(42);
    let span = align_up(trace.address_span() + PAGE_SIZE_4K, PAGE_SIZE_4K);
    let pages = span / PAGE_SIZE_4K;

    // Cache half the footprint so eviction and writeback paths are hot.
    let mut cfg = ClusterConfig::small().timing_only();
    cfg.node_capacity = ByteSize((span * 2).max(1 << 22));
    let cache_pages = ((pages / 2).max(4)) as usize;
    cfg.local_cache_pages = cache_pages - cache_pages % 4;

    let tel = Telemetry::with_tracing(capacity);
    tel.set_trace_id_base((idx as u64) << 32);
    let mut rt = KonaRuntime::with_telemetry(cfg, tel.clone()).expect("config valid");
    rt.allocate(span).expect("allocation fits");
    rt.run_trace(trace.as_slice()).expect("trace runs");
    rt.sync().expect("sync");

    WorkloadRun {
        name: wl.name().to_string(),
        profile: Profile::from_spans(&tel.events()),
        dropped: tel.dropped_events(),
    }
}

/// Drives a calm-plan workload through the full cluster control plane
/// with tracing and windows on: the remote-CPU side (log apply,
/// compaction) shows up as Cluster-track spans in the profile, and the
/// per-memory-node `backlog_bytes`/`backlog_batches` gauges populate the
/// node half of the queueing table. Single-threaded and seeded, so the
/// output is identical at any `--jobs`/`--shards` value.
fn run_cluster_segment(seed: u64, quick: bool, capacity: usize) -> (Profile, QueueStats, u64) {
    const PAGES: u64 = 64;
    let ops = if quick { 600 } else { 6_000 };
    let mut cfg = ClusterConfig::small().with_local_cache_pages(8).with_replicas(2);
    cfg.cpu_cache_lines = 64;
    cfg.memory_nodes = 3;
    cfg.fault_plan = Some(FaultPlan::calm(seed));
    let tel = Telemetry::with_tracing(capacity);
    tel.enable_timeseries(DEFAULT_WINDOW_NS);
    // A lazy control plane (long tick) lets the apply backlog pile up
    // across several window boundaries, so the sampled occupancy is
    // visibly nonzero — the congestion the queueing table exists to show.
    let plane = ControlPlaneConfig {
        tick_ops: 256,
        ..ControlPlaneConfig::default()
    };
    let mut rt =
        ClusterRuntime::with_telemetry(cfg, plane, tel.clone()).expect("valid config");
    let base = rt.allocate(PAGES * 4096).expect("allocate");
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..ops {
        let page = rng.gen_range(0..PAGES);
        let addr = base + page * 4096 + rng.gen_range(0..64) * 64;
        if rng.gen_bool(0.5) {
            let byte: u8 = rng.gen();
            rt.write_bytes(addr, &[byte; 64]).expect("calm write");
        } else {
            let mut buf = [0u8; 64];
            rt.read_bytes(addr, &mut buf).expect("calm read");
        }
        if i % 256 == 255 {
            rt.sync().expect("calm sync");
        }
    }
    rt.sync().expect("final sync");
    let profile = Profile::from_spans(&tel.events());
    let queues = QueueStats::from_series(&tel.series().expect("series enabled"));
    (profile, queues, tel.dropped_events())
}

/// Prints one profile's hottest paths (self-time desc, path asc).
fn print_top_paths(profile: &Profile, top: usize) {
    let mut table = TextTable::new(&["Path", "Count", "Total(ns)", "Self(ns)", "Self%"]);
    let self_sum: u64 = profile.track_totals().values().sum();
    for (path, stats) in profile.top_by_self(top) {
        let pct = if self_sum > 0 {
            100.0 * stats.self_ns as f64 / self_sum as f64
        } else {
            0.0
        };
        table.row(vec![
            path.to_string(),
            stats.count.to_string(),
            stats.total_ns.to_string(),
            stats.self_ns.to_string(),
            format!("{pct:.1}"),
        ]);
    }
    table.print();
}

/// Renders the queueing/occupancy tables folded from the windowed
/// series — the congestion view the event-queue scheduler refactor will
/// be validated against.
fn render_queue_tables(queues: &QueueStats) -> String {
    let mut out = String::new();
    out.push_str("per-link in-flight depth (fabric link = initiator -> memory node):\n");
    let mut links = TextTable::new(&[
        "Link", "WRs", "Inflight(WR*ns)", "PeakMeanDepth", "PeakChainDepth",
    ]);
    for (id, link) in &queues.links {
        links.row(vec![
            format!("node{id}"),
            link.wrs.to_string(),
            link.inflight_ns.to_string(),
            format!("{:.3}", link.peak_mean_depth),
            link.peak_chain_depth.to_string(),
        ]);
    }
    out.push_str(&links.render());
    out.push_str("\nper-node apply backlog (ingest peaks + window boundaries):\n");
    if queues.nodes.is_empty() {
        out.push_str("(none — this engine applies shipments inline, no node runtimes)\n");
        return out;
    }
    let mut nodes = TextTable::new(&["Node", "PeakBacklogBytes", "PeakBacklogBatches"]);
    for (id, node) in &queues.nodes {
        nodes.row(vec![
            format!("node{id}"),
            node.peak_backlog_bytes.to_string(),
            node.peak_backlog_batches.to_string(),
        ]);
    }
    out.push_str(&nodes.render());
    out
}

fn main() -> ExitCode {
    let opts = ExpOptions::from_env();
    banner(
        "Deterministic profiling: simulated-time flame profiles + queueing tables",
        "where simulated time goes, path-wise; §4/§6 companion",
    );
    let seed = opts.seed();
    let quick = opts.quick;
    let capacity = opts.trace_capacity();
    let top = opts
        .value_of("top")
        .map(|s| s.parse().expect("--top takes an integer"))
        .unwrap_or(TOP_K);
    let slow_wire = Nanos::from_ns(
        opts.value_of("slow-wire")
            .map(|s| s.parse().expect("--slow-wire takes nanoseconds"))
            .unwrap_or(0),
    );
    println!("seed: {seed}, trace ring: {capacity}, top: {top}");
    if slow_wire > Nanos::ZERO {
        println!("slow-wire: +{} ns per posted chain (blame demo)", slow_wire.as_ns());
    }

    let mut violations = 0u64;
    let mut dropped = 0u64;

    // Part 1: per-workload simulated-time profiles, folded in workload
    // order regardless of --jobs scheduling.
    let items: Vec<(usize, String)> = WORKLOAD_NAMES
        .iter()
        .map(ToString::to_string)
        .enumerate()
        .collect();
    let runs = par_map(opts.jobs, items, move |_, (idx, name)| {
        run_workload(idx, &name, quick, capacity)
    });
    for run in &runs {
        println!("\n--- {} ---", run.name);
        print_top_paths(&run.profile, top);
        violations += run.profile.conservation_violations();
        dropped += run.dropped;
        if run.dropped > 0 {
            println!("warning: {} spans dropped (ring wrapped)", run.dropped);
        }
    }

    // Part 2: the canonical shard scenario — per-shard folds merged by
    // path key, plus the queueing table from the merged windowed series.
    host_profile_start();
    let report = profile_scenario(seed, quick, opts.shards(), capacity, slow_wire);
    let profile = report.profile.clone().expect("tracing was on");
    println!("\n--- shard scenario (logical {}, calm plan) ---", report.plan.logical());
    print_top_paths(&profile, top);
    violations += profile.conservation_violations();

    let queues = QueueStats::from_series(report.series.as_ref().expect("windows were on"));
    println!();
    print!("{}", render_queue_tables(&queues));

    // Part 3: the cluster control-plane segment — remote-CPU apply and
    // compaction paths plus the per-node apply-backlog occupancy that the
    // shard engine's fabric-only view cannot show.
    let (cluster_profile, cluster_queues, cluster_dropped) =
        run_cluster_segment(seed, quick, capacity);
    println!("\n--- cluster segment (apply/compaction, calm plan) ---");
    print_top_paths(&cluster_profile, top);
    violations += cluster_profile.conservation_violations();
    dropped += cluster_dropped;
    println!();
    print!("{}", render_queue_tables(&cluster_queues));

    // Host wall-clock side of the same hot paths — real time, therefore
    // stderr only (the stdout transcript is byte-compared in CI).
    let host_rows = host_profile_stop();
    if !host_rows.is_empty() {
        eprintln!("\nhost wall-clock scopes (nondeterministic, not part of the transcript):");
        for row in &host_rows {
            eprintln!(
                "  {:<16} calls={:<8} total={:>12} ns  max={:>10} ns",
                row.name, row.calls, row.total_ns, row.max_ns
            );
        }
    }

    // In-process determinism witness: a serial re-run must reproduce the
    // profile and queueing table byte-for-byte.
    let replay = profile_scenario(seed, quick, Shards::serial(), capacity, slow_wire);
    let replay_profile = replay.profile.expect("tracing was on");
    let replay_queues =
        QueueStats::from_series(replay.series.as_ref().expect("windows were on"));
    let mut replay_failures = 0u64;
    if replay_profile.to_json() != profile.to_json()
        || replay_profile.to_collapsed() != profile.to_collapsed()
    {
        eprintln!("fig_profile: serial replay diverged from the wide profile");
        replay_failures += 1;
    }
    if render_queue_tables(&replay_queues) != render_queue_tables(&queues) {
        eprintln!("fig_profile: serial replay diverged in the queueing table");
        replay_failures += 1;
    }
    if replay_failures == 0 {
        // No worker count here: stdout stays byte-identical across
        // --shards/--jobs values for the CI transcript compare.
        println!("\nreplay check: serial profile == wide profile (byte-identical)");
    }

    println!(
        "\nconservation: {violations} violations (per-path self times vs per-track totals)"
    );
    opts.write_profile(&profile);

    if violations > 0 || replay_failures > 0 {
        eprintln!("FAIL: {violations} conservation violations, {replay_failures} replay divergences");
        return ExitCode::FAILURE;
    }
    if dropped > 0 {
        println!("note: {dropped} spans dropped across workload rings (profiles stay conservative)");
    }
    ExitCode::SUCCESS
}
