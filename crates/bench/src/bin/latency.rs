//! §6.1 / §2.1 latency sanity checks.
//!
//! Prints the modelled remote-access latencies alongside end-to-end
//! single-access measurements from the actual runtimes, and checks the
//! paper's sanity claims: a raw 4 KiB RDMA verb is ~3 µs while Infiniswap's
//! software stack inflates a remote access to ~40 µs; Kona-VM is on par
//! with LegoOS and much faster than Infiniswap.

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime, VmProfile, VmRuntime};
use kona_bench::{banner, TextTable};
use kona_net::NetworkModel;
use kona_telemetry::Telemetry;
use kona_types::{MemAccess, Nanos};

/// Measures one cold access and records it under
/// `latency.<system>.cold_ns` in the shared registry.
fn cold_access_latency(rt: &mut dyn RemoteMemoryRuntime, tel: &Telemetry) -> Nanos {
    let addr = rt.allocate(4096).expect("allocate");
    let t = rt.access(MemAccess::read(addr, 8)).expect("access");
    let slug = rt.name().to_lowercase().replace('-', "_");
    tel.histogram(&format!("latency.{slug}.cold_ns")).record(t.as_ns());
    t
}

fn main() {
    let opts = kona_bench::ExpOptions::from_env();
    banner("Remote access latency sanity checks", "§2.1 / §6.1 / §6.2");
    let tel = opts.telemetry();

    let net = NetworkModel::connectx5();
    println!(
        "raw RDMA verb: 64 B = {}, 4 KiB = {} (paper: ~3 us per 4 KiB)\n",
        net.verb_time(64),
        net.verb_time(4096)
    );

    let mut table = TextTable::new(&["System", "Cold remote access", "Paper"]);

    let mut kona = KonaRuntime::new(ClusterConfig::small().timing_only()).expect("config");
    table.row(vec![
        "Kona".into(),
        format!("{}", cold_access_latency(&mut kona, &tel)),
        "~3 us (no page fault)".into(),
    ]);

    for (profile, paper) in [
        (VmProfile::kona_vm(), "~10 us"),
        (VmProfile::legoos(), "10 us"),
        (VmProfile::infiniswap(), "40 us"),
    ] {
        let mut rt =
            VmRuntime::new(ClusterConfig::small().timing_only(), profile).expect("config");
        table.row(vec![
            profile.name().into(),
            format!("{}", cold_access_latency(&mut rt, &tel)),
            paper.into(),
        ]);
    }
    table.print();

    // §6.1 sanity: Kona-VM is similar to or faster than Infiniswap
    // (paper: by up to 60%).
    let mut kv = VmRuntime::new(ClusterConfig::small().timing_only(), VmProfile::kona_vm())
        .expect("config");
    let mut inf = VmRuntime::new(ClusterConfig::small().timing_only(), VmProfile::infiniswap())
        .expect("config");
    let t_kv = cold_access_latency(&mut kv, &tel);
    let t_inf = cold_access_latency(&mut inf, &tel);
    println!(
        "\nKona-VM vs Infiniswap: {:.0}% faster (paper: similar or faster by up to 60%)",
        (1.0 - t_kv.as_ns() as f64 / t_inf.as_ns() as f64) * 100.0
    );
    println!(
        "Infiniswap eviction latency (paper: >32 us even though a 4 KiB RDMA\n\
         write takes 3 us) — the gap is the virtual-memory software stack\n\
         this project eliminates."
    );

    opts.write_outputs(&tel);
}
