//! AMAT for all nine workloads at fixed cache points.
//!
//! §6.2: "We experimented with multiple classes of applications
//! (map-reduce, graph analytics, key-value stores), to explore these
//! tradeoffs." Fig 8 plots three; this companion experiment prints the
//! 25% and 50% cache points for every Table 2 workload under all four
//! system models — the cross-workload view of the same tradeoff.
//!
//! The workloads are independent, so they fan out over `--jobs` worker
//! threads (each worker constructs its own workload by index and replays
//! its own trace). Rows are collected in workload order, so the printed
//! tables are identical for every job count.

use kona_bench::{banner, f1, ExpOptions, TextTable};
use kona_kcachesim::{sweep_cache_size, SystemModel};
use kona_types::par_map;
use kona_workloads::{
    GraphAlgorithm, GraphWorkload, HistogramWorkload, LinearRegressionWorkload, RedisWorkload,
    VoltDbWorkload, Workload, WorkloadProfile,
};

/// Number of Table 2 workloads covered below.
const WORKLOADS: usize = 9;

/// Builds workload `i` (trait objects are not `Send`, so each parallel
/// worker constructs its own from the index).
fn make_workload(i: usize, profile: WorkloadProfile) -> Box<dyn Workload> {
    match i {
        0 => Box::new(RedisWorkload::rand().with_profile(profile)),
        1 => Box::new(RedisWorkload::seq().with_profile(profile)),
        2 => Box::new(LinearRegressionWorkload::with_profile(profile)),
        3 => Box::new(HistogramWorkload::with_profile(profile)),
        4 => Box::new(GraphWorkload::with_profile(GraphAlgorithm::PageRank, profile)),
        5 => Box::new(GraphWorkload::with_profile(GraphAlgorithm::GraphColoring, profile)),
        6 => Box::new(GraphWorkload::with_profile(
            GraphAlgorithm::ConnectedComponents,
            profile,
        )),
        7 => Box::new(GraphWorkload::with_profile(
            GraphAlgorithm::LabelPropagation,
            profile,
        )),
        _ => Box::new(VoltDbWorkload::with_profile(profile)),
    }
}

/// One workload's name plus its `[kona, kona_main, legoos, infiniswap]`
/// AMAT at each requested cache percentage.
struct WorkloadAmat {
    name: String,
    per_pct: Vec<[f64; 4]>,
}

fn main() {
    let opts = ExpOptions::from_env();
    banner("AMAT across all workloads (KCacheSim)", "§6.2 (companion)");
    let profile = if opts.quick {
        WorkloadProfile::default()
            .with_windows(2)
            .with_ops_per_window(8_000)
            .with_scale_divisor(2048)
    } else {
        WorkloadProfile::default()
            .with_windows(3)
            .with_ops_per_window(40_000)
            .with_scale_divisor(512)
    };

    let percents = [25u32, 50];
    let results: Vec<WorkloadAmat> = par_map(opts.jobs, (0..WORKLOADS).collect(), |_, i| {
        let wl = make_workload(i, profile);
        let trace = wl.generate(42);
        let per_pct = percents
            .iter()
            .map(|&pct| {
                let amat = |sys: &SystemModel| {
                    sweep_cache_size(&trace, sys, &[pct], 4096, 4)[0].result.amat_ns
                };
                [
                    amat(&SystemModel::kona()),
                    amat(&SystemModel::kona_main()),
                    amat(&SystemModel::legoos()),
                    amat(&SystemModel::infiniswap()),
                ]
            })
            .collect();
        WorkloadAmat {
            name: wl.name().to_string(),
            per_pct,
        }
    });

    let tel = opts.telemetry();
    for (pi, pct) in percents.iter().enumerate() {
        println!("\n--- AMAT (ns) at {pct}% local cache ---");
        let mut table = TextTable::new(&[
            "Workload",
            "Kona",
            "Kona-main",
            "LegoOS",
            "Infiniswap",
            "LegoOS/Kona",
        ]);
        for r in &results {
            let [kona, kona_main, lego, infiniswap] = r.per_pct[pi];
            let slug = r.name.to_lowercase().replace([' ', '-'], "_");
            tel.gauge(&format!("amat.{slug}.c{pct}.kona_ns")).set(kona);
            tel.gauge(&format!("amat.{slug}.c{pct}.legoos_ns")).set(lego);
            table.row(vec![
                r.name.clone(),
                f1(kona),
                f1(kona_main),
                f1(lego),
                f1(infiniswap),
                format!("{:.2}x", lego / kona),
            ]);
        }
        table.print();
    }
    println!(
        "\nNote: heap-only traces (no synthetic compute mix), so absolute AMAT\n\
         is higher than Fig 8's; the cross-system ratios are the point."
    );
    opts.write_outputs(&tel);
}
