//! AMAT for all nine workloads at fixed cache points.
//!
//! §6.2: "We experimented with multiple classes of applications
//! (map-reduce, graph analytics, key-value stores), to explore these
//! tradeoffs." Fig 8 plots three; this companion experiment prints the
//! 25% and 50% cache points for every Table 2 workload under all four
//! system models — the cross-workload view of the same tradeoff.

use kona_bench::{banner, f1, ExpOptions, TextTable};
use kona_kcachesim::{sweep_cache_size, SystemModel};
use kona_workloads::{
    GraphAlgorithm, GraphWorkload, HistogramWorkload, LinearRegressionWorkload, RedisWorkload,
    VoltDbWorkload, Workload, WorkloadProfile,
};

fn main() {
    let opts = ExpOptions::from_env();
    banner("AMAT across all workloads (KCacheSim)", "§6.2 (companion)");
    let profile = if opts.quick {
        WorkloadProfile::default()
            .with_windows(2)
            .with_ops_per_window(8_000)
            .with_scale_divisor(2048)
    } else {
        WorkloadProfile::default()
            .with_windows(3)
            .with_ops_per_window(40_000)
            .with_scale_divisor(512)
    };

    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(RedisWorkload::rand().with_profile(profile)),
        Box::new(RedisWorkload::seq().with_profile(profile)),
        Box::new(LinearRegressionWorkload::with_profile(profile)),
        Box::new(HistogramWorkload::with_profile(profile)),
        Box::new(GraphWorkload::with_profile(GraphAlgorithm::PageRank, profile)),
        Box::new(GraphWorkload::with_profile(GraphAlgorithm::GraphColoring, profile)),
        Box::new(GraphWorkload::with_profile(
            GraphAlgorithm::ConnectedComponents,
            profile,
        )),
        Box::new(GraphWorkload::with_profile(
            GraphAlgorithm::LabelPropagation,
            profile,
        )),
        Box::new(VoltDbWorkload::with_profile(profile)),
    ];

    for pct in [25u32, 50] {
        println!("\n--- AMAT (ns) at {pct}% local cache ---");
        let mut table = TextTable::new(&[
            "Workload",
            "Kona",
            "Kona-main",
            "LegoOS",
            "Infiniswap",
            "LegoOS/Kona",
        ]);
        for wl in &workloads {
            let trace = wl.generate(42);
            let amat = |sys: &SystemModel| {
                sweep_cache_size(&trace, sys, &[pct], 4096, 4)[0].result.amat_ns
            };
            let kona = amat(&SystemModel::kona());
            let lego = amat(&SystemModel::legoos());
            table.row(vec![
                wl.name().to_string(),
                f1(kona),
                f1(amat(&SystemModel::kona_main())),
                f1(lego),
                f1(amat(&SystemModel::infiniswap())),
                format!("{:.2}x", lego / kona),
            ]);
        }
        table.print();
    }
    println!(
        "\nNote: heap-only traces (no synthetic compute mix), so absolute AMAT\n\
         is higher than Fig 8's; the cross-system ratios are the point."
    );
}
