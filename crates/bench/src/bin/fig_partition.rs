//! Partition tolerance: lease fencing and integrity scrubbing under
//! scheduled network partitions.
//!
//! Runs a seeded read/write workload through the full cluster control
//! plane ([`ClusterRuntime`]) under the bundled partition fault plans —
//! `partitioned` (an ack-lost link cut, then a symmetric partition that
//! heals) and `partition_then_crash` (a healed partition followed by a
//! permanent crash) — once with lease fencing enforced and once with
//! the naive heal (`--no-fencing` restricts to the naive rows).
//!
//! With fencing, a node cut off past its lease is fenced: its epoch is
//! bumped, its slabs re-replicate on the reachable side, stale-epoch
//! log batches are rejected (`cluster.fenced_writes`), and the healed
//! node rejoins through a wipe-and-resync — so the integrity scrub
//! finds **zero** divergent slabs and the critical `mon.split_brain`
//! rule stays quiet. Without fencing, the healed node keeps its stale
//! memory and applies stale-epoch batches (`cluster.stale_applied`);
//! the scrub then *detects and repairs* the divergence and
//! `mon.split_brain` fires — that contrast is the figure.
//!
//! Everything is seeded and driven in simulated time, so output is
//! byte-identical at any `--jobs` count. Exits non-zero when a gate
//! fails (availability below 100%, stale writes landing under fencing,
//! or unrepaired divergence).
//!
//! ```bash
//! cargo run --release --bin fig_partition -- --quick
//! cargo run --release --bin fig_partition -- --lease-ns 400000 --scrub-interval 2
//! cargo run --release --bin fig_partition -- --quick --no-fencing
//! ```

use kona::{ClusterConfig, FailurePolicy, RemoteMemoryRuntime};
use kona_bench::{banner, f2, ExpOptions, TextTable};
use kona_cluster::{ClusterRuntime, ControlPlaneConfig};
use kona_net::FaultPlan;
use kona_telemetry::{Profile, Rule, Telemetry, DEFAULT_WINDOW_NS};
use kona_types::rng::{Rng, StdRng};
use kona_types::{par_map, Nanos};
use std::process::ExitCode;

/// Pages in the remote working set (the local cache holds 8).
const PAGES: u64 = 64;
/// Memory node the bundled plans partition and crash.
const VICTIM: u32 = 0;
/// Simulated horizon the epilogue drives past: later than every
/// scheduled heal (2.5 ms) and the late crash (5 ms), so fencing,
/// rejoin and scrubbing all complete before the audit.
const HORIZON: Nanos = Nanos::from_ns(6_000_000);

struct Outcome {
    plan: &'static str,
    fencing: bool,
    ok: u64,
    failed: u64,
    stale_reads: u64,
    verify_errors: u64,
    stats: kona_cluster::ClusterStats,
    /// Divergence found by the convergence pass (a second full scrub
    /// after the catch-up pass) — must be zero in every mode.
    end_divergence: u64,
    split_brain_fired: u64,
    fence_errors: usize,
    /// Folded simulated-time profile (present when `--profile-out` /
    /// `--flame-out` requested span tracing).
    profile: Option<Profile>,
}

impl Outcome {
    fn availability(&self) -> f64 {
        let total = self.ok + self.failed;
        if total == 0 {
            return 0.0;
        }
        self.ok as f64 / total as f64
    }
}

/// Drives the seeded workload under `plan` with fencing on or off,
/// then audits the end state with two full scrub passes.
/// Scalar knobs shared by every (plan, fencing) point.
#[derive(Clone, Copy)]
struct Knobs {
    seed: u64,
    ops: u64,
    lease_ns: u64,
    scrub_interval: u64,
    window_ns: u64,
    trace_capacity: usize,
}

fn run_mode(plan: FaultPlan, fencing: bool, knobs: Knobs) -> Outcome {
    let Knobs { seed, ops, lease_ns, scrub_interval, window_ns, trace_capacity } = knobs;
    let name = plan.name;
    let mut cfg = ClusterConfig::small().with_local_cache_pages(8).with_replicas(2);
    cfg.cpu_cache_lines = 64;
    cfg.memory_nodes = 3;
    cfg.fault_plan = Some(plan);
    let plane = ControlPlaneConfig {
        tick_ops: 16,
        lease_ns,
        scrub_interval_ticks: scrub_interval,
        fencing,
        ..ControlPlaneConfig::default()
    };
    let tel = if trace_capacity > 0 {
        Telemetry::with_tracing(trace_capacity)
    } else {
        Telemetry::disabled()
    };
    tel.enable_timeseries(window_ns);
    tel.install_monitor(vec![
        // The split-brain SLO: any scrub-detected divergence in a
        // window is a critical breach. Quiet with fencing; the
        // --no-fencing rows exist to show it fire.
        Rule::above("mon.split_brain", "scrub.divergent", 0.5).critical(),
    ]);
    let mut rt =
        ClusterRuntime::with_telemetry(cfg, plane, tel.clone()).expect("valid config");
    rt.inner_mut().set_failure_policy(FailurePolicy::PageFaultFallback);
    let base = rt.allocate(PAGES * 4096).expect("allocate");
    let mut model = vec![0u8; (PAGES * 4096) as usize];
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut ok, mut failed, mut stale_reads) = (0u64, 0u64, 0u64);
    let step = |rt: &mut ClusterRuntime,
                    rng: &mut StdRng,
                    model: &mut Vec<u8>,
                    ok: &mut u64,
                    failed: &mut u64,
                    stale: &mut u64| {
        let page = rng.gen_range(0..PAGES);
        let off = (page * 4096 + rng.gen_range(0..64) * 64) as usize;
        if rng.gen_bool(0.5) {
            let byte: u8 = rng.gen();
            match rt.write_bytes(base + off as u64, &[byte; 64]) {
                Ok(_) => {
                    model[off..off + 64].fill(byte);
                    *ok += 1;
                }
                Err(_) => *failed += 1,
            }
        } else {
            let mut buf = [0u8; 64];
            match rt.read_bytes(base + off as u64, &mut buf) {
                Ok(_) => {
                    if buf[..] != model[off..off + 64] {
                        // A split-brain read: a healed-but-stale
                        // replica served pre-partition bytes.
                        *stale += 1;
                    }
                    *ok += 1;
                }
                Err(_) => *failed += 1,
            }
        }
    };
    for i in 0..ops {
        step(&mut rt, &mut rng, &mut model, &mut ok, &mut failed, &mut stale_reads);
        // Periodic durability sync, as a checkpointing workload would
        // issue: flushing mid-partition is what exposes the cut to the
        // eviction handler (and the lease machinery) op by op.
        if i % 8 == 7 {
            let _ = rt.sync();
        }
    }
    // Epilogue: keep the cluster ticking past every scheduled heal and
    // the late crash, so leases lapse, fences rise, rejoins land and
    // the scrub cursor sweeps — all in simulated time.
    let mut rounds = 0u64;
    while rt.inner_mut().fabric_mut().now() < HORIZON && rounds < 50_000 {
        step(&mut rt, &mut rng, &mut model, &mut ok, &mut failed, &mut stale_reads);
        if rounds.is_multiple_of(64) {
            let _ = rt.sync();
        }
        rounds += 1;
    }
    let _ = rt.sync();

    // End-of-run audit: a catch-up scrub pass repairs anything still
    // divergent, then a convergence pass must come back clean.
    rt.scrub_all();
    let mid = rt.scrub_stats();
    rt.scrub_all();
    let fin = rt.scrub_stats();
    let end_divergence = fin.divergence_found - mid.divergence_found;

    // Final sweep: every page must read back; mismatches against the
    // host model are stale state the runtime failed to mask.
    let mut verify_errors = 0u64;
    for page in 0..PAGES {
        let mut buf = [0u8; 4096];
        match rt.read_bytes(base + page * 4096, &mut buf) {
            Ok(_) => {
                let off = (page * 4096) as usize;
                if buf[..] != model[off..off + 4096] {
                    verify_errors += 1;
                }
            }
            Err(_) => verify_errors += 1,
        }
    }

    let health = tel.health_report().expect("monitor installed");
    let split_brain_fired = health
        .rules
        .iter()
        .find(|o| o.rule == "mon.split_brain")
        .map_or(0, |o| o.fired);
    let fence_errors = rt.drain_fence_errors().len();
    // Fold this mode's profile from its own span stream (span ids are
    // per-telemetry, so folding happens before any cross-mode merge).
    let profile = (trace_capacity > 0).then(|| Profile::from_spans(&tel.events()));
    Outcome {
        plan: name,
        fencing,
        ok,
        failed,
        stale_reads,
        verify_errors,
        stats: rt.cluster_stats(),
        end_divergence,
        split_brain_fired,
        fence_errors,
        profile,
    }
}

fn main() -> ExitCode {
    let opts = ExpOptions::from_env();
    banner(
        "Partition tolerance: lease fencing + integrity scrub",
        "network partitions, epoch fencing and replica scrubbing atop the cluster control plane",
    );
    let seed: u64 = opts.seed();
    let ops: u64 = if opts.quick { 1_500 } else { 6_000 };
    let lease_ns: u64 = opts
        .value_of("lease-ns")
        .map(|s| s.parse().expect("--lease-ns takes an integer"))
        .unwrap_or(200_000);
    let scrub_interval: u64 = opts
        .value_of("scrub-interval")
        .map(|s| s.parse().expect("--scrub-interval takes an integer"))
        .unwrap_or(4);
    let no_fencing = opts.args.iter().any(|a| a == "--no-fencing");
    let window_ns = opts.window_ns().unwrap_or(DEFAULT_WINDOW_NS);
    println!(
        "seed: {seed}, ops per row: {ops}, replicas: 2, victim node: {VICTIM}, \
         lease: {lease_ns} ns, scrub every {scrub_interval} ticks\n"
    );

    let plans: Vec<FaultPlan> = FaultPlan::bundled(seed, VICTIM)
        .into_iter()
        .filter(|p| p.name == "partitioned" || p.name == "partition_then_crash")
        .collect();
    let modes: &[bool] = if no_fencing { &[false] } else { &[true, false] };
    let points: Vec<(FaultPlan, bool)> = plans
        .iter()
        .flat_map(|p| modes.iter().map(|&m| (p.clone(), m)))
        .collect();
    let knobs = Knobs {
        seed,
        ops,
        lease_ns,
        scrub_interval,
        window_ns,
        trace_capacity: if opts.profiling() { opts.trace_capacity() } else { 0 },
    };
    let results =
        par_map(opts.jobs, points, move |_, (plan, fencing)| run_mode(plan, fencing, knobs));

    let tel = opts.telemetry();
    let mut table = TextTable::new(&[
        "Plan",
        "Fencing",
        "Avail %",
        "Fenced wr",
        "Expire",
        "Rejoin",
        "Stale appl",
        "Stale rd",
        "Div found",
        "Repaired",
        "Under-rep",
    ]);
    let mut gate_failures = 0u64;
    for r in &results {
        let mode = if r.fencing { "on" } else { "off" };
        table.row(vec![
            r.plan.to_string(),
            mode.to_string(),
            f2(r.availability() * 100.0),
            r.stats.fenced_writes.to_string(),
            r.stats.lease_expirations.to_string(),
            r.stats.lease_rejoins.to_string(),
            r.stats.stale_applied.to_string(),
            r.stale_reads.to_string(),
            r.stats.scrub_divergence_found.to_string(),
            r.stats.scrub_divergence_repaired.to_string(),
            r.stats.under_replicated.to_string(),
        ]);
        let g = |k: &str| format!("fig_partition.{}.{mode}.{k}", r.plan);
        tel.gauge(&g("availability")).set(r.availability());
        tel.gauge(&g("fenced_writes")).set(r.stats.fenced_writes as f64);
        tel.gauge(&g("lease_expirations")).set(r.stats.lease_expirations as f64);
        tel.gauge(&g("lease_rejoins")).set(r.stats.lease_rejoins as f64);
        tel.gauge(&g("stale_applied")).set(r.stats.stale_applied as f64);
        tel.gauge(&g("stale_reads")).set(r.stale_reads as f64);
        tel.gauge(&g("divergence_found")).set(r.stats.scrub_divergence_found as f64);
        tel.gauge(&g("divergence_repaired")).set(r.stats.scrub_divergence_repaired as f64);
        tel.gauge(&g("under_replicated")).set(r.stats.under_replicated as f64);
        tel.gauge(&g("repair_errors")).set(r.stats.repair_errors as f64);

        let mut fail = |why: &str| {
            gate_failures += 1;
            eprintln!("GATE FAILED [{} fencing={mode}]: {why}", r.plan);
        };
        if r.failed > 0 {
            fail(&format!("availability below 100% ({} ops failed)", r.failed));
        }
        if r.end_divergence > 0 {
            fail(&format!(
                "{} divergent copies survived the final scrub",
                r.end_divergence
            ));
        }
        if r.stats.under_replicated > 0 {
            fail(&format!(
                "{} slabs under-replicated at end of run",
                r.stats.under_replicated
            ));
        }
        if r.verify_errors > 0 {
            fail(&format!("{} pages failed the final verify", r.verify_errors));
        }
        if r.fencing {
            // Fencing on: no stale write ever lands, no reader ever
            // sees pre-partition bytes, and the scrub never finds a
            // divergent copy — the split-brain SLO stays quiet.
            if r.stats.stale_applied > 0 {
                fail(&format!("{} stale-epoch entries applied", r.stats.stale_applied));
            }
            if r.stale_reads > 0 {
                fail(&format!("{} stale reads served", r.stale_reads));
            }
            if r.stats.scrub_divergence_found > 0 {
                fail(&format!(
                    "scrub found {} divergent copies under fencing",
                    r.stats.scrub_divergence_found
                ));
            }
            if r.split_brain_fired > 0 {
                fail("mon.split_brain fired under fencing");
            }
        } else {
            // Fencing off: the naive heal must demonstrably go stale —
            // and the scrub must detect and repair every divergence.
            if r.stats.scrub_divergence_found == 0 {
                fail("naive heal produced no divergence to detect");
            }
            if r.stats.scrub_divergence_repaired != r.stats.scrub_divergence_found {
                fail(&format!(
                    "repaired {} of {} divergent copies",
                    r.stats.scrub_divergence_repaired, r.stats.scrub_divergence_found
                ));
            }
            if r.split_brain_fired == 0 {
                fail("mon.split_brain never fired in the no-fencing demo");
            }
        }
    }
    table.print();

    let fenced_total: u64 = results
        .iter()
        .filter(|r| r.fencing)
        .map(|r| r.stats.fenced_writes)
        .sum();
    let fence_error_total: usize = results.iter().map(|r| r.fence_errors).sum();
    println!(
        "\nfenced writes (rejected stale-epoch entries) across fencing rows: {fenced_total} \
         ({fence_error_total} typed FencedEpoch rejections)"
    );
    println!(
        "\nExpected shape: every row holds 100% availability. With fencing on,\n\
         the cut-off node is fenced when its lease lapses (epoch bump), its\n\
         slabs re-replicate on the reachable side, stale-epoch batches are\n\
         rejected, and the scrub finds zero divergence — mon.split_brain is\n\
         silent. With fencing off the healed node serves and applies stale\n\
         state; the scrub detects it, repairs it by re-copy, and the\n\
         critical mon.split_brain rule fires."
    );

    opts.write_outputs(&tel);
    if opts.profiling() {
        // Merge per-mode profiles under `<plan>.<fencing>` frames, in
        // result order — deterministic at any --jobs.
        let mut profile: Option<Profile> = None;
        for r in &results {
            let mode = if r.fencing { "on" } else { "off" };
            let p = r
                .profile
                .as_ref()
                .expect("tracing enabled when profiling")
                .prefixed(&format!("{}.{mode}", r.plan));
            match &mut profile {
                Some(all) => all.merge(&p),
                None => profile = Some(p),
            }
        }
        if let Some(p) = &profile {
            opts.write_profile(p);
        }
    }
    if gate_failures > 0 {
        eprintln!("\n{gate_failures} partition gate(s) FAILED");
        return ExitCode::FAILURE;
    }
    println!("\nall partition gates passed");
    ExitCode::SUCCESS
}
