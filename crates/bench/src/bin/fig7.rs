//! Fig 7: microbenchmark — Kona vs Kona-VM.
//!
//! "The benchmark allocates 4GB of remote memory per thread, and uses 1, 2,
//! or 4 threads to read and write 1 cache-line in every page; each thread
//! accesses distinct pages ... the benchmark runs with 50% local cache and
//! eviction happens concurrently with the application execution" (§6.1).
//! The NoEvict variants run with all data fitting in the local cache.
//!
//! Paper result: Kona is 6.6X faster than Kona-VM at 1 thread and 4-5X at
//! 2 and 4 threads; Kona-NoEvict beats Kona-VM-NoEvict by 3-5X, and even
//! the incomplete Kona-VM-NoWP stays 1.2-2.9X slower than Kona-NoEvict.

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime, VmProfile, VmRuntime};
use kona_bench::{banner, f2, ContentionModel, ExpOptions, TextTable};
use kona_types::{ByteSize, Nanos};
use kona_workloads::{LinePattern, PerPageWriter, Workload};

struct RunResult {
    wall: Nanos,
}

fn cluster(pages_per_thread: u64, cache_fraction_percent: u64) -> ClusterConfig {
    let region = pages_per_thread * 4096;
    let mut cfg = ClusterConfig::small().timing_only();
    cfg.memory_nodes = 2;
    cfg.node_capacity = ByteSize(region.max(1 << 20) * 2);
    cfg.slab_size = ByteSize::mib(1);
    let cache_pages = (pages_per_thread * cache_fraction_percent / 100).max(4);
    cfg.local_cache_pages = (cache_pages - cache_pages % 4) as usize;
    cfg
}

fn run_threads<F>(threads: u64, pages: u64, model: ContentionModel, mut make_runtime: F) -> RunResult
where
    F: FnMut() -> Box<dyn RemoteMemoryRuntime>,
{
    // Each thread accesses distinct pages with an identical pattern; the
    // application threads run in parallel (wall = slowest thread) while a
    // single eviction thread services all of them (background work sums).
    let mut app_max = Nanos::ZERO;
    let mut background_total = Nanos::ZERO;
    for _ in 0..threads {
        let mut rt = make_runtime();
        rt.allocate(pages * 4096).expect("allocation fits");
        let trace = PerPageWriter::new(pages, 1, LinePattern::Contiguous)
            .with_read_before_write(true)
            .generate(0);
        let app = rt.run_trace(trace.as_slice()).expect("trace runs");
        let _ = rt.sync();
        app_max = app_max.max(app);
        background_total += rt.stats().background_time;
    }
    RunResult {
        wall: model.contended(app_max, threads).max(background_total),
    }
}

fn main() {
    let opts = ExpOptions::from_env();
    banner("Fig 7: Kona vs Kona-VM microbenchmark", "Figure 7");
    // Paper: 1M pages (4 GB) per thread; scaled down by default.
    let pages: u64 = if opts.quick { 2_048 } else { 16_384 };
    println!(
        "pages/thread: {pages} ({} per thread; paper used 4 GiB)\n",
        ByteSize(pages * 4096)
    );

    let tel = opts.telemetry();
    let mut table = TextTable::new(&[
        "Threads",
        "Kona (ms)",
        "Kona-VM (ms)",
        "VM/Kona",
        "Kona-NoEv (ms)",
        "VM-NoEv (ms)",
        "VM-NoWP (ms)",
    ]);

    for threads in [1u64, 2, 4] {
        let kona = run_threads(threads, pages, ContentionModel::KONA, || {
            Box::new(
                KonaRuntime::with_telemetry(cluster(pages, 50), tel.clone())
                    .expect("config valid"),
            )
        });
        let kona_vm = run_threads(threads, pages, ContentionModel::VM, || {
            Box::new(VmRuntime::new(cluster(pages, 50), VmProfile::kona_vm()).expect("config"))
        });
        let kona_noev = run_threads(threads, pages, ContentionModel::KONA, || {
            Box::new(KonaRuntime::new(cluster(pages, 110)).expect("config valid"))
        });
        let vm_noev = run_threads(threads, pages, ContentionModel::VM, || {
            Box::new(VmRuntime::new(cluster(pages, 110), VmProfile::kona_vm()).expect("config"))
        });
        let vm_nowp = run_threads(threads, pages, ContentionModel::VM, || {
            Box::new(
                VmRuntime::new(cluster(pages, 110), VmProfile::kona_vm_nowp()).expect("config"),
            )
        });

        tel.gauge(&format!("fig7.t{threads}.kona_ms"))
            .set(kona.wall.as_millis_f64());
        tel.gauge(&format!("fig7.t{threads}.kona_vm_ms"))
            .set(kona_vm.wall.as_millis_f64());
        table.row(vec![
            threads.to_string(),
            f2(kona.wall.as_millis_f64()),
            f2(kona_vm.wall.as_millis_f64()),
            f2(kona_vm.wall.as_ns() as f64 / kona.wall.as_ns() as f64),
            f2(kona_noev.wall.as_millis_f64()),
            f2(vm_noev.wall.as_millis_f64()),
            f2(vm_nowp.wall.as_millis_f64()),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: Kona several times faster than Kona-VM (paper: 6.6X\n\
         at 1 thread, 4-5X at 2-4); Kona-NoEvict 3-5X faster than\n\
         Kona-VM-NoEvict; Kona-VM-NoWP in between (paper: still 1.2-2.9X\n\
         slower than Kona-NoEvict)."
    );
    opts.write_outputs(&tel);
}
