//! Critical-path latency attribution tables (causal tracing).
//!
//! Replays each Table 2 workload through a Kona runtime with causal
//! tracing on, then prints where every nanosecond of end-to-end simulated
//! latency went: local hits, coherence work, FMem fills, wire time, copy
//! engines, retry backoff and queueing — per operation kind, with the
//! hidden (overlapped background) side alongside. The attribution engine
//! enforces the exact-sum invariant (critical components == end-to-end
//! latency) per trace; the process exits non-zero on any violation or any
//! dropped span, so CI can gate on it.
//!
//! Workloads fan out over `--jobs` worker threads. Each worker runs a
//! private telemetry whose trace-id base is derived from the workload
//! index, and results merge in workload order — output is byte-identical
//! for every job count.
//!
//! ```bash
//! cargo run --release --bin fig_attrib -- --quick
//! cargo run --release --bin fig_attrib -- --workload redis-rand \
//!     --attrib-out attrib.json --trace-out trace.json
//! ```

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime};
use kona_bench::{banner, workload_by_name, ExpOptions, TextTable, WORKLOAD_NAMES};
use kona_telemetry::{
    AttributionEngine, Component, MetricsDump, Profile, SpanEvent, Telemetry, TraceAttribution,
};
use kona_types::{align_up, par_map, ByteSize, PAGE_SIZE_4K};
use kona_workloads::WorkloadProfile;
use std::process::ExitCode;

/// Completed traces kept in the flight recorder per workload run.
const FLIGHT_CAPACITY: usize = 8;

/// Slowest traces shown per workload.
const TOP_K: usize = 5;

struct WorkloadAttrib {
    name: String,
    engine: AttributionEngine,
    dropped: u64,
    events: Vec<SpanEvent>,
    dump: MetricsDump,
}

/// Replays workload `name` with causal tracing; `idx` seeds the trace-id
/// base so ids stay globally unique and deterministic across job counts.
/// Span events are retained (ring capacity > 0) only when a `--trace-out`
/// timeline was requested — attribution itself consumes each trace at
/// `trace_end` and needs no retention, so unbounded runs stay drop-free.
fn run_one(idx: usize, name: &str, quick: bool, span_capacity: usize) -> WorkloadAttrib {
    let windows = if quick { 2 } else { 4 };
    let profile = WorkloadProfile::default().with_windows(windows);
    let wl = workload_by_name(name, profile).expect("known workload");
    let trace = wl.generate(42);
    let span = align_up(trace.address_span() + PAGE_SIZE_4K, PAGE_SIZE_4K);
    let pages = span / PAGE_SIZE_4K;

    // Cache half the footprint so eviction and writeback have real work
    // to do on the background side of every trace.
    let mut cfg = ClusterConfig::small().timing_only();
    cfg.node_capacity = ByteSize((span * 2).max(1 << 22));
    let cache_pages = ((pages / 2).max(4)) as usize;
    cfg.local_cache_pages = cache_pages - cache_pages % 4;

    let tel = Telemetry::with_causal(span_capacity, FLIGHT_CAPACITY);
    tel.set_trace_id_base((idx as u64) << 32);
    let mut rt = KonaRuntime::with_telemetry(cfg, tel.clone()).expect("config valid");
    rt.allocate(span).expect("allocation fits");
    rt.run_trace(trace.as_slice()).expect("trace runs");
    rt.sync().expect("sync");

    WorkloadAttrib {
        name: wl.name().to_string(),
        engine: tel.attribution().expect("causal telemetry has an engine"),
        dropped: tel.dropped_events(),
        events: tel.events(),
        dump: tel.dump(),
    }
}

fn attribution_row(label: String, count: u64, total_ns: u64, v: &kona_telemetry::ComponentVec, hidden_ns: u64) -> Vec<String> {
    let mut row = vec![label, count.to_string(), total_ns.to_string()];
    for c in Component::ALL {
        row.push(v.get(c).to_string());
    }
    row.push(hidden_ns.to_string());
    row
}

fn print_top(top: &[TraceAttribution]) {
    if top.is_empty() {
        return;
    }
    println!("slowest traces (duration desc, trace id asc):");
    for t in top.iter().take(TOP_K) {
        let parts: Vec<String> = Component::ALL
            .iter()
            .filter(|&&c| t.critical.get(c) > 0)
            .map(|&c| format!("{}={}", c.name(), t.critical.get(c)))
            .collect();
        println!(
            "  trace {} {} {} ns: {} (hidden {} ns{})",
            t.id.0,
            t.op.name(),
            t.total.as_ns(),
            parts.join(" "),
            t.hidden.total(),
            if t.exact { "" } else { " — SUM VIOLATION" },
        );
    }
}

fn main() -> ExitCode {
    let opts = ExpOptions::from_env();
    banner(
        "Critical-path latency attribution (causal tracing)",
        "§4/§6 companion",
    );

    let names: Vec<String> = match opts.value_of("workload") {
        Some(w) => {
            if !WORKLOAD_NAMES.contains(&w) {
                eprintln!("unknown workload {w}; choose from {WORKLOAD_NAMES:?}");
                return ExitCode::FAILURE;
            }
            vec![w.to_string()]
        }
        None => WORKLOAD_NAMES.iter().map(ToString::to_string).collect(),
    };

    let quick = opts.quick;
    // Span retention feeds both the `--trace-out` timeline and the
    // folded profile (`--profile-out`/`--flame-out`).
    let span_capacity = if opts.trace_out().is_some() || opts.profiling() {
        opts.trace_capacity()
    } else {
        0
    };
    let items: Vec<(usize, String)> = names.into_iter().enumerate().collect();
    let results = par_map(opts.jobs, items, move |_, (idx, name)| {
        run_one(idx, &name, quick, span_capacity)
    });

    // Merge into one output telemetry in workload order: the registry via
    // dump/absorb, the span streams by replay. Identical at every --jobs.
    let tel = opts.telemetry();
    let mut violations = 0u64;
    let mut dropped = 0u64;
    let mut json = String::from("{\n\"workloads\": {\n");
    for (i, r) in results.iter().enumerate() {
        tel.absorb(&r.dump);
        for &ev in &r.events {
            tel.record(ev);
        }
        violations += r.engine.violations();
        dropped += r.dropped;

        let overall = r.engine.overall();
        println!(
            "\n--- {}: {} traces, {} ns end-to-end ---",
            r.name,
            r.engine.traces(),
            overall.total_ns
        );
        let mut header = vec!["Op", "Count", "Total(ns)"];
        for c in Component::ALL {
            header.push(c.name());
        }
        header.push("hidden(ns)");
        let mut table = TextTable::new(&header);
        for (op, agg) in r.engine.ops() {
            table.row(attribution_row(
                op.name().to_string(),
                agg.count,
                agg.total_ns,
                &agg.critical,
                agg.hidden.total(),
            ));
        }
        table.row(attribution_row(
            "overall".to_string(),
            overall.count,
            overall.total_ns,
            &overall.critical,
            overall.hidden.total(),
        ));
        table.print();
        print_top(r.engine.top());
        if r.dropped > 0 {
            println!("warning: {} spans dropped (ring wrapped)", r.dropped);
        }

        let sep = if i == 0 { "" } else { ",\n" };
        json.push_str(sep);
        json.push_str(&format!("\"{}\": {}", r.name, r.engine.to_json()));
    }
    json.push_str("\n}\n}\n");

    println!(
        "\nexact-sum invariant: {} violations across {} traces; {} spans dropped",
        violations,
        results.iter().map(|r| r.engine.traces()).sum::<u64>(),
        dropped
    );

    if let Some(path) = opts.value_of("attrib-out") {
        std::fs::write(path, &json).expect("write attribution json");
        println!("attribution json written to {path}");
    }
    if let Some(path) = opts.value_of("attrib-csv") {
        let mut csv = String::new();
        for r in &results {
            for line in r.engine.to_csv().lines() {
                if csv.is_empty() {
                    csv.push_str("workload,");
                    csv.push_str(line);
                    csv.push('\n');
                } else if !line.starts_with("op,scope") {
                    csv.push_str(&r.name);
                    csv.push(',');
                    csv.push_str(line);
                    csv.push('\n');
                }
            }
        }
        std::fs::write(path, &csv).expect("write attribution csv");
        println!("attribution csv written to {path}");
    }
    opts.write_outputs(&tel);
    if opts.profiling() {
        // Fold per workload (span ids are per-telemetry), namespace by
        // workload name, then merge by path key — order-independent.
        let mut profile: Option<Profile> = None;
        for r in &results {
            let p = Profile::from_spans(&r.events).prefixed(&r.name);
            match &mut profile {
                Some(all) => all.merge(&p),
                None => profile = Some(p),
            }
        }
        if let Some(p) = &profile {
            opts.write_profile(p);
        }
    }

    if violations > 0 || dropped > 0 {
        eprintln!("FAIL: {violations} invariant violations, {dropped} dropped spans");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
