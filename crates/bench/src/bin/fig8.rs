//! Fig 8: KCacheSim AMAT simulations.
//!
//! Panels a-c: AMAT vs local cache size for Redis-Rand, Linear Regression
//! and Graph Coloring under LegoOS, Kona and Kona-main (Infiniswap is
//! "consistently worse than LegoOS by 2.3-3.7X" and printed as a column
//! here rather than plotted, matching the paper's treatment).
//!
//! Panel d: AMAT vs FMem block size for Redis-Rand at 0/27/54/100% cache.

use kona_bench::{banner, f1, ExpOptions, TextTable};
use kona_kcachesim::{sweep_block_size_jobs, sweep_cache_size_jobs, SystemModel};
use kona_trace::{Trace, TraceEvent};
use kona_types::{align_up, MemAccess, VirtAddr, PAGE_SIZE_4K};
use kona_workloads::{
    GraphAlgorithm, GraphWorkload, LinearRegressionWorkload, RedisWorkload, Workload,
    WorkloadProfile,
};

/// Non-heap accesses interleaved per trace event. The paper's Pin traces
/// capture *every* load and store — stack, locals, code-adjacent data —
/// which hit the L1 at very high rates and set Fig 8's y-axis scale
/// (tens of ns). Our workload generators emit only remote-heap traffic, so
/// the driver re-synthesizes that background as tight-loop accesses over a
/// small per-thread region.
const COMPUTE_ACCESSES_PER_EVENT: u64 = 12;
const COMPUTE_REGION_BYTES: u64 = 16 * 1024;

fn augment_with_compute(trace: Trace) -> Trace {
    let base = align_up(trace.address_span() + PAGE_SIZE_4K, PAGE_SIZE_4K);
    let mut out = Trace::with_capacity(trace.len() * (COMPUTE_ACCESSES_PER_EVENT as usize + 1));
    let mut cursor = 0u64;
    for e in trace.into_iter() {
        for i in 0..COMPUTE_ACCESSES_PER_EVENT {
            cursor = (cursor + 64) % COMPUTE_REGION_BYTES;
            let access = if i % 4 == 0 {
                MemAccess::write(VirtAddr::new(base + cursor), 8)
            } else {
                MemAccess::read(VirtAddr::new(base + cursor), 8)
            };
            out.push(TraceEvent::new(e.time, access));
        }
        out.push(e);
    }
    out
}

fn trace_for(panel: char, profile: WorkloadProfile) -> (String, Trace) {
    match panel {
        'a' | 'd' => {
            let wl = RedisWorkload::rand().with_profile(profile);
            (wl.name().to_string(), wl.generate(42))
        }
        'b' => {
            let wl = LinearRegressionWorkload::with_profile(profile);
            (wl.name().to_string(), wl.generate(42))
        }
        _ => {
            let wl = GraphWorkload::with_profile(GraphAlgorithm::GraphColoring, profile);
            (wl.name().to_string(), wl.generate(42))
        }
    }
}

fn main() {
    let opts = ExpOptions::from_env();
    banner("Fig 8: simulating remote data fetch (KCacheSim)", "Figure 8");
    // High op counts relative to the footprint give the traces the reuse
    // the real applications have (Zipf-popular keys, hot graph vertices).
    let profile = if opts.quick {
        WorkloadProfile::default()
            .with_windows(4)
            .with_ops_per_window(25_000)
            .with_scale_divisor(2048)
    } else {
        // Footprints larger than the 22 MiB LLC so the DRAM-cache sweep is
        // meaningful (Redis-Rand: 32 MiB).
        WorkloadProfile::default()
            .with_windows(6)
            .with_ops_per_window(125_000)
            .with_scale_divisor(128)
    };

    let panels: Vec<char> = match opts.value_of("panel") {
        Some(p) => p.chars().collect(),
        None => vec!['a', 'b', 'c', 'd'],
    };

    let tel = opts.telemetry();
    for panel in panels {
        let (name, trace) = trace_for(panel, profile);
        let trace = augment_with_compute(trace);
        if panel == 'd' {
            println!("\n--- Panel (d): {name} — AMAT (ns) vs block size ---");
            let blocks: &[u64] = &[64, 256, 1024, 4096, 8192, 16384, 32768];
            let mut table = TextTable::new(&[
                "Block (B)",
                "0% cache",
                "27% cache",
                "54% cache",
                "100% cache",
            ]);
            let mut per_frac = Vec::new();
            for frac in [0.0, 0.27, 0.54, 1.0] {
                per_frac.push(sweep_block_size_jobs(
                    &trace,
                    &SystemModel::kona(),
                    blocks,
                    frac,
                    4,
                    opts.jobs,
                ));
            }
            for (i, &bs) in blocks.iter().enumerate() {
                table.row(vec![
                    bs.to_string(),
                    f1(per_frac[0][i].result.amat_ns),
                    f1(per_frac[1][i].result.amat_ns),
                    f1(per_frac[2][i].result.amat_ns),
                    f1(per_frac[3][i].result.amat_ns),
                ]);
            }
            table.print();
            println!(
                "Expected shape: small blocks miss spatial locality, huge blocks\n\
                 conflict; ~1-4 KiB is the sweet spot (paper picked 4 KiB)."
            );
            continue;
        }

        println!("\n--- Panel ({panel}): {name} — AMAT (ns) vs cache size ---");
        let percents: &[u32] = &[0, 10, 25, 50, 75, 90, 100];
        let systems = [
            SystemModel::legoos(),
            SystemModel::kona(),
            SystemModel::kona_main(),
            SystemModel::infiniswap(),
        ];
        let mut sweeps = Vec::new();
        for sys in &systems {
            sweeps.push(sweep_cache_size_jobs(&trace, sys, percents, 4096, 4, opts.jobs));
        }
        let mut table = TextTable::new(&[
            "Cache %",
            "LegoOS",
            "Kona",
            "Kona-main",
            "Infiniswap",
            "LegoOS/Kona",
        ]);
        for (i, &pct) in percents.iter().enumerate() {
            let lego = sweeps[0][i].result.amat_ns;
            let kona = sweeps[1][i].result.amat_ns;
            tel.gauge(&format!("fig8.{panel}.c{pct}.kona_amat_ns")).set(kona);
            tel.gauge(&format!("fig8.{panel}.c{pct}.legoos_amat_ns")).set(lego);
            table.row(vec![
                pct.to_string(),
                f1(lego),
                f1(kona),
                f1(sweeps[2][i].result.amat_ns),
                f1(sweeps[3][i].result.amat_ns),
                format!("{:.2}x", lego / kona),
            ]);
        }
        table.print();
    }

    println!(
        "\nHeadline check (paper): at 25% cache Kona achieves 1.7X lower AMAT\n\
         than LegoOS and 5X lower than Infiniswap; Linear Regression stays\n\
         nearly flat (streaming, no reuse)."
    );
    opts.write_outputs(&tel);
}
