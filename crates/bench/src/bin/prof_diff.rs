//! Per-path regression blame between two folded profiles.
//!
//! Compares a baseline profile JSON (e.g. the committed
//! `PROFILE_BASELINE.json`) against a current one (e.g. a fresh
//! `fig_profile --profile-out`) and prints the per-path self-time
//! movements, largest first — upgrading "something got slower" to
//! "regression attributed to path X".
//!
//! With `--gate RATIO`, exits non-zero when any path with at least
//! `--min-self-ns` current self time grew by more than `RATIO`× — the CI
//! bench gate uses this to fail with a named path instead of a bare
//! number.
//!
//! ```bash
//! prof_diff PROFILE_BASELINE.json profile.json --top 10
//! prof_diff PROFILE_BASELINE.json profile.json --gate 1.5 --min-self-ns 10000
//! ```

use kona_telemetry::{Profile, ProfileDiff};
use std::process::ExitCode;

/// Default paths shown.
const TOP: usize = 10;
/// Default noise floor: paths below this current self time never gate.
const MIN_SELF_NS: u64 = 10_000;

fn load(path: &str) -> Profile {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("prof_diff: cannot read {path}: {e}"));
    Profile::from_json(&text)
        .unwrap_or_else(|| panic!("prof_diff: {path} is not a folded profile JSON"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Every flag takes a value, so skip flags two at a time; what's
    // left are the two profile paths.
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            positional.push(&args[i]);
            i += 1;
        }
    }
    let value_of = |key: &str| -> Option<&str> {
        let flag = format!("--{key}");
        args.iter()
            .position(|a| a == &flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let [base_path, cur_path] = positional.as_slice() else {
        eprintln!(
            "usage: prof_diff <base.json> <current.json> \
             [--top K] [--min-self-ns N] [--gate RATIO]"
        );
        return ExitCode::FAILURE;
    };
    let top: usize = value_of("top")
        .map(|s| s.parse().expect("--top takes an integer"))
        .unwrap_or(TOP);
    let min_self_ns: u64 = value_of("min-self-ns")
        .map(|s| s.parse().expect("--min-self-ns takes nanoseconds"))
        .unwrap_or(MIN_SELF_NS);
    let gate: Option<f64> =
        value_of("gate").map(|s| s.parse().expect("--gate takes a ratio"));

    let base = load(base_path);
    let current = load(cur_path);
    let diff = ProfileDiff::between(&base, &current);

    println!("profile diff: {base_path} -> {cur_path}");
    println!(
        "base self total: {} ns, current self total: {} ns",
        base.track_totals().values().sum::<u64>(),
        current.track_totals().values().sum::<u64>(),
    );
    print!("{}", diff.render(top));

    match diff.worst_regression(min_self_ns) {
        Some(worst) => {
            println!(
                "\nblame: {} grew {:.2}x ({} -> {} ns self)",
                worst.path, worst.ratio, worst.base_self_ns, worst.current_self_ns
            );
            if let Some(threshold) = gate {
                if worst.ratio > threshold {
                    eprintln!(
                        "FAIL: {} regressed {:.2}x > {threshold}x gate",
                        worst.path, worst.ratio
                    );
                    return ExitCode::FAILURE;
                }
                println!("gate: worst ratio {:.2} within {threshold}x", worst.ratio);
            }
        }
        None => println!("\nblame: no path grew (above the {min_self_ns} ns floor)"),
    }
    ExitCode::SUCCESS
}
