//! Fig 9: 4KB-page vs cache-line dirty data amplification per window.
//!
//! KTracker runs Redis-Rand and Redis-Seq in 1-second windows and reports
//! the per-window ratio of page-tracked to line-tracked bytes. The last
//! (tear-down) window is excluded, as in the paper.
//!
//! The two Redis variants are independent and fan out over `--jobs`
//! worker threads; results are collected in input order, so the table is
//! identical for every job count.

use kona_bench::{banner, f2, ExpOptions, TextTable};
use kona_ktracker::{KTracker, TrackingMode};
use kona_types::{par_map, Nanos};
use kona_workloads::{RedisWorkload, Workload, WorkloadProfile};

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "Fig 9: dirty data amplification reduction (KTracker)",
        "Figure 9",
    );
    // 1-second windows, as KTracker uses.
    let windows = if opts.quick { 6 } else { 20 };
    let profile = WorkloadProfile::default()
        .with_windows(windows)
        .with_window_width(Nanos::secs(1));

    // Trait objects are not `Send`; each worker builds its variant from
    // the index and runs its own tracker.
    let mut results = par_map(opts.jobs, vec![0usize, 1], |_, which| {
        let wl = if which == 0 {
            RedisWorkload::rand()
        } else {
            RedisWorkload::seq()
        };
        let tracker = KTracker::new(Nanos::secs(1));
        tracker.run(&wl.with_profile(profile).generate(42), TrackingMode::Coherence)
    });
    let seq = results.pop().expect("seq result");
    let rand = results.pop().expect("rand result");

    let mut table = TextTable::new(&["Window", "Redis-Rand", "Redis-Seq"]);
    let n = rand.windows.len().max(seq.windows.len()).saturating_sub(1);
    for w in 0..n {
        let r = rand
            .windows
            .iter()
            .find(|x| x.window == w)
            .map_or("-".to_string(), |x| f2(x.amplification_ratio));
        let s = seq
            .windows
            .iter()
            .find(|x| x.window == w)
            .map_or("-".to_string(), |x| f2(x.amplification_ratio));
        table.row(vec![w.to_string(), r, s]);
    }
    table.print();

    println!(
        "\nMean ratio (dirty-line weighted): Rand {:.2}, Seq {:.2}",
        rand.mean_amplification_ratio(),
        seq.mean_amplification_ratio()
    );
    println!(
        "Expected shape: cache-line tracking reduces amplification 2-10X for\n\
         Redis-Rand and ~2X for Redis-Seq (paper §6.3)."
    );

    let tel = opts.telemetry();
    tel.gauge("fig9.rand.mean_amplification")
        .set(rand.mean_amplification_ratio());
    tel.gauge("fig9.seq.mean_amplification")
        .set(seq.mean_amplification_ratio());
    opts.write_outputs(&tel);
}
