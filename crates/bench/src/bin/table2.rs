//! Table 2: dirty data amplification for different tracking granularities.
//!
//! For each of the paper's nine workloads, measures the ratio of tracked
//! bytes to dirty bytes under 4 KiB-page, 2 MiB-page and 64 B cache-line
//! tracking, averaged over 10-second windows (idle and tear-down windows
//! excluded, as in the paper).
//!
//! Workloads are independent, so they fan out over `--jobs` worker
//! threads; each worker rebuilds its workload by index, measures with a
//! private telemetry registry, and the coordinator absorbs the metric
//! dumps and prints the rows in workload order — output is identical for
//! every job count.

use kona_bench::{banner, f2, ExpOptions, TextTable};
use kona_telemetry::{MetricsDump, Telemetry};
use kona_trace::amplification::{averaged, per_window_series};
use kona_trace::Windows;
use kona_types::{par_map, Nanos};
use kona_workloads::table2_workloads;

/// The paper's published Table 2 rows for side-by-side comparison:
/// (name, memory GB, amp 4K, amp 2M, amp 64B).
const PAPER: [(&str, f64, f64, f64, f64); 9] = [
    ("Redis-Rand", 4.0, 31.36, 5516.37, 1.48),
    ("Redis-Seq", 0.13, 2.76, 54.76, 1.08),
    ("Linear Regression", 40.0, 2.31, 244.14, 1.22),
    ("Histogram", 40.0, 3.61, 1050.73, 1.84),
    ("Page Rank", 4.2, 4.38, 80.71, 1.47),
    ("Graph Coloring", 8.2, 5.57, 90.37, 1.57),
    ("Connected Components", 5.2, 5.67, 82.35, 1.62),
    ("Label Propagation", 5.6, 8.14, 95.00, 1.85),
    ("VoltDB", 11.5, 3.74, 79.55, 1.17),
];

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "Table 2: dirty data amplification vs tracking granularity",
        "Table 2",
    );
    let profile = opts.table_profile();
    println!(
        "windows: {} x {}, ops/window: {}, footprint scale: 1/{}\n",
        profile.windows, profile.window_width, profile.ops_per_window, profile.scale_divisor
    );

    let mut table = TextTable::new(&[
        "Application",
        "Mem (GB, paper)",
        "4KB page",
        "(paper)",
        "2MB page",
        "(paper)",
        "64B line",
        "(paper)",
    ]);

    // Per-workload amplification gauges for `--metrics-out`.
    let tel = opts.telemetry();

    // Trait objects are not `Send`, so workers rebuild their workload from
    // the index and report gauges through a private registry.
    let quick = opts.quick;
    let rows: Vec<(Vec<String>, MetricsDump)> =
        par_map(opts.jobs, (0..PAPER.len()).collect(), |_, i| {
            let wl = if quick {
                // Regenerate with the quick profile.
                rebuild_with_profile(i, profile)
            } else {
                table2_workloads().swap_remove(i)
            };
            let local = Telemetry::disabled();
            let trace = wl.generate(42);
            let mut series = per_window_series(Windows::new(&trace, Nanos::secs(10)).iter());
            // The paper drops the final (tear-down) window.
            if series.len() > 1 {
                series.pop();
            }
            let (a4, a2, al) = averaged(&series);
            let slug = wl.name().to_lowercase().replace([' ', '-'], "_");
            local.gauge(&format!("table2.{slug}.amp_4k")).set(a4);
            local.gauge(&format!("table2.{slug}.amp_2m")).set(a2);
            local.gauge(&format!("table2.{slug}.amp_64b")).set(al);
            let paper = PAPER[i];
            let row = vec![
                wl.name().to_string(),
                format!("{:.2}", paper.1),
                f2(a4),
                f2(paper.2),
                f2(a2),
                f2(paper.3),
                f2(al),
                f2(paper.4),
            ];
            (row, local.dump())
        });
    for (row, dump) in rows {
        tel.absorb(&dump);
        table.row(row);
    }
    table.print();
    println!(
        "\nNote: measured columns come from synthetic traces calibrated to the\n\
         paper's applications; compare shapes (ordering, >2x page amplification,\n\
         near-1 cache-line amplification), not absolute values."
    );

    opts.write_outputs(&tel);
}

fn rebuild_with_profile(
    index: usize,
    profile: kona_workloads::WorkloadProfile,
) -> Box<dyn kona_workloads::Workload> {
    use kona_workloads::*;
    match index {
        0 => Box::new(RedisWorkload::rand().with_profile(profile)),
        1 => Box::new(RedisWorkload::seq().with_profile(profile)),
        2 => Box::new(LinearRegressionWorkload::with_profile(profile)),
        3 => Box::new(HistogramWorkload::with_profile(profile)),
        4 => Box::new(GraphWorkload::with_profile(GraphAlgorithm::PageRank, profile)),
        5 => Box::new(GraphWorkload::with_profile(GraphAlgorithm::GraphColoring, profile)),
        6 => Box::new(GraphWorkload::with_profile(
            GraphAlgorithm::ConnectedComponents,
            profile,
        )),
        7 => Box::new(GraphWorkload::with_profile(
            GraphAlgorithm::LabelPropagation,
            profile,
        )),
        _ => Box::new(VoltDbWorkload::with_profile(profile)),
    }
}
