//! `trace-tool`: record and analyze Kona traces.
//!
//! The paper's methodology instruments applications once (with Intel Pin)
//! and re-analyzes the captured traces many times. This tool does the
//! same for this repository's binary trace format (`kona_trace::io`):
//!
//! ```bash
//! # Record a workload's trace to a file.
//! trace_tool record redis-rand /tmp/redis.ktrc
//!
//! # Re-run the Table-2-style analyses over a recorded trace.
//! trace_tool analyze /tmp/redis.ktrc
//!
//! # Replay a workload through the Kona runtime with tracing on and emit
//! # a Chrome trace-event / Perfetto timeline (open in ui.perfetto.dev).
//! trace_tool telemetry redis-rand /tmp/redis-trace.json
//! ```

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime};
use kona_bench::{f2, workload_by_name, TextTable, TRACE_RING_CAPACITY, WORKLOAD_NAMES};
use kona_telemetry::{Component, Telemetry};
use kona_trace::amplification::AmplificationAnalysis;
use kona_trace::contiguity::ContiguityAnalysis;
use kona_trace::io::{read_trace, write_trace};
use kona_trace::spatial::SpatialAnalysis;
use kona_types::{align_up, ByteSize, PAGE_SIZE_4K};
use kona_workloads::{Workload, WorkloadProfile};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

/// Completed traces kept in the flight recorder during causal analysis.
const FLIGHT_CAPACITY: usize = 8;

fn tool_workload(name: &str) -> Option<Box<dyn Workload>> {
    workload_by_name(name, WorkloadProfile::default().with_windows(3))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace_tool record <workload> <file.ktrc> [seed]\n  \
         trace_tool analyze <file.ktrc>\n  \
         trace_tool analyze <workload> [--top K] [--attrib-out a.json]\n                     \
         [--attrib-csv a.csv] [--seed N]\n  \
         trace_tool telemetry <workload> <trace.json> [seed]\n\n\
         workloads: {}",
        WORKLOAD_NAMES.join(" ")
    );
    ExitCode::FAILURE
}

/// The value following `--<key>` in `args`, if present.
fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    let flag = format!("--{key}");
    args.iter()
        .position(|a| a == &flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Replays `workload` with causal tracing and prints the critical-path
/// attribution: per-op component tables, the top-k slowest traces, and
/// where requested the JSON/CSV artifacts. Exits non-zero on exact-sum
/// violations or dropped spans.
fn run_analyze_causal(workload: &str, args: &[String]) -> ExitCode {
    let Some(wl) = tool_workload(workload) else {
        eprintln!("unknown workload {workload}");
        return usage();
    };
    let seed = flag_value(args, "seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let top_k: usize = flag_value(args, "top").and_then(|s| s.parse().ok()).unwrap_or(5);
    let trace = wl.generate(seed);
    let span = align_up(trace.address_span() + PAGE_SIZE_4K, PAGE_SIZE_4K);
    let pages = span / PAGE_SIZE_4K;

    let mut cfg = ClusterConfig::small().timing_only();
    cfg.node_capacity = ByteSize((span * 2).max(1 << 22));
    let cache_pages = ((pages / 2).max(4)) as usize;
    cfg.local_cache_pages = cache_pages - cache_pages % 4;

    let tel = Telemetry::with_causal(TRACE_RING_CAPACITY, FLIGHT_CAPACITY);
    let mut rt = KonaRuntime::with_telemetry(cfg, tel.clone()).expect("config valid");
    rt.allocate(span).expect("allocation fits");
    rt.run_trace(trace.as_slice()).expect("trace runs");
    rt.sync().expect("sync");

    let engine = tel.attribution().expect("causal telemetry has an engine");
    let overall = engine.overall();
    println!(
        "{}: {} traces, {} ns end-to-end, {} invariant violations\n",
        wl.name(),
        engine.traces(),
        overall.total_ns,
        engine.violations()
    );

    let mut header = vec!["Op", "Count", "Total(ns)"];
    for c in Component::ALL {
        header.push(c.name());
    }
    header.push("hidden(ns)");
    let mut table = TextTable::new(&header);
    for (op, agg) in engine.ops() {
        let mut row = vec![
            op.name().to_string(),
            agg.count.to_string(),
            agg.total_ns.to_string(),
        ];
        for c in Component::ALL {
            row.push(agg.critical.get(c).to_string());
        }
        row.push(agg.hidden.total().to_string());
        table.row(row);
    }
    table.print();

    println!("\ntop {top_k} slowest traces (duration desc, trace id asc):");
    for t in engine.top().iter().take(top_k) {
        let parts: Vec<String> = Component::ALL
            .iter()
            .filter(|&&c| t.critical.get(c) > 0)
            .map(|&c| format!("{}={}", c.name(), t.critical.get(c)))
            .collect();
        println!(
            "  trace {} {} {} ns: {} (hidden {} ns{})",
            t.id.0,
            t.op.name(),
            t.total.as_ns(),
            parts.join(" "),
            t.hidden.total(),
            if t.exact { "" } else { " — SUM VIOLATION" },
        );
    }

    let dropped = tel.dropped_events();
    if dropped > 0 {
        println!("\nwarning: trace ring wrapped, {dropped} spans dropped (tel.spans_dropped)");
    }
    if let Some(path) = flag_value(args, "attrib-out") {
        std::fs::write(path, engine.to_json()).expect("write attribution json");
        println!("attribution json written to {path}");
    }
    if let Some(path) = flag_value(args, "attrib-csv") {
        std::fs::write(path, engine.to_csv()).expect("write attribution csv");
        println!("attribution csv written to {path}");
    }
    if engine.violations() > 0 || dropped > 0 {
        eprintln!(
            "FAIL: {} invariant violations, {dropped} dropped spans",
            engine.violations()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Replays `workload` through a Kona runtime with span tracing enabled and
/// writes the Chrome trace-event JSON to `out`.
fn run_telemetry(workload: &str, out: &str, seed: u64) -> ExitCode {
    let Some(wl) = tool_workload(workload) else {
        eprintln!("unknown workload {workload}");
        return usage();
    };
    let trace = wl.generate(seed);
    let span = align_up(trace.address_span() + PAGE_SIZE_4K, PAGE_SIZE_4K);
    let pages = span / PAGE_SIZE_4K;

    // Size the cluster to the workload: cache half the footprint so the
    // eviction thread has real work to do during the replay.
    let mut cfg = ClusterConfig::small().timing_only();
    cfg.node_capacity = ByteSize((span * 2).max(1 << 22));
    // FMem is 4-way set-associative: the page count must divide into sets.
    let cache_pages = ((pages / 2).max(4)) as usize;
    cfg.local_cache_pages = cache_pages - cache_pages % 4;

    let tel = Telemetry::with_tracing(TRACE_RING_CAPACITY);
    let mut rt = KonaRuntime::with_telemetry(cfg, tel.clone()).expect("config valid");
    rt.allocate(span).expect("allocation fits");
    rt.run_trace(trace.as_slice()).expect("trace runs");
    rt.sync().expect("sync");

    if let Err(e) = std::fs::write(out, tel.chrome_trace()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let events = tel.events().len();
    let dropped = tel.dropped_events();
    println!(
        "{}: replayed {} accesses, {} span events to {out}\n",
        wl.name(),
        trace.len(),
        events
    );
    if dropped > 0 {
        println!("(ring full: {dropped} oldest events dropped)\n");
    }
    println!("{}", rt.stats());
    println!("\nopen the timeline at https://ui.perfetto.dev or chrome://tracing");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") if args.len() >= 3 => {
            let Some(wl) = tool_workload(&args[1]) else {
                eprintln!("unknown workload {}", args[1]);
                return usage();
            };
            let seed = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);
            let trace = wl.generate(seed);
            let file = match File::create(&args[2]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {}: {e}", args[2]);
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = write_trace(BufWriter::new(file), &trace) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "recorded {} events ({} span, {} writes) to {}",
                trace.len(),
                trace.duration(),
                trace.write_count(),
                args[2]
            );
            ExitCode::SUCCESS
        }
        Some("analyze") if args.len() >= 2 => {
            // A workload name runs the causal attribution analysis; a path
            // keeps the legacy binary-trace (.ktrc) analyses.
            if WORKLOAD_NAMES.contains(&args[1].as_str()) {
                return run_analyze_causal(&args[1], &args[2..]);
            }
            let file = match File::open(&args[1]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            let trace = match read_trace(BufReader::new(file)) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("read failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{}: {} events, {} reads, {} writes, span {}, footprint {} KiB\n",
                args[1],
                trace.len(),
                trace.read_count(),
                trace.write_count(),
                trace.duration(),
                trace.address_span() / 1024
            );

            let amp = AmplificationAnalysis::over_events(trace.iter().copied());
            let sp = SpatialAnalysis::over_events(trace.iter().copied());
            let ca = ContiguityAnalysis::over_events(trace.iter().copied());

            let mut table = TextTable::new(&["Metric", "Value"]);
            table.row(vec!["amplification @4KiB".into(), f2(amp.amplification_4k())]);
            table.row(vec!["amplification @2MiB".into(), f2(amp.amplification_2m())]);
            table.row(vec!["amplification @64B".into(), f2(amp.amplification_line())]);
            table.row(vec!["dirty bytes".into(), amp.dirty_bytes().to_string()]);
            table.row(vec![
                "mean lines written/page".into(),
                f2(sp.write_cdf().mean()),
            ]);
            table.row(vec![
                "fully-written page fraction".into(),
                f2(sp.fully_written_fraction()),
            ]);
            table.row(vec![
                "mean write segment (lines)".into(),
                f2(ca.mean_write_segment_len()),
            ]);
            table.print();
            ExitCode::SUCCESS
        }
        Some("telemetry") if args.len() >= 3 => {
            let seed = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);
            run_telemetry(&args[1], &args[2], seed)
        }
        _ => usage(),
    }
}
