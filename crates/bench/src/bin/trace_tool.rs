//! `trace-tool`: record and analyze Kona traces.
//!
//! The paper's methodology instruments applications once (with Intel Pin)
//! and re-analyzes the captured traces many times. This tool does the
//! same for this repository's binary trace format (`kona_trace::io`):
//!
//! ```bash
//! # Record a workload's trace to a file.
//! trace_tool record redis-rand /tmp/redis.ktrc
//!
//! # Re-run the Table-2-style analyses over a recorded trace.
//! trace_tool analyze /tmp/redis.ktrc
//!
//! # Replay a workload through the Kona runtime with tracing on and emit
//! # a Chrome trace-event / Perfetto timeline (open in ui.perfetto.dev).
//! trace_tool telemetry redis-rand /tmp/redis-trace.json
//! ```

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime};
use kona_bench::{f2, TextTable};
use kona_telemetry::Telemetry;
use kona_trace::amplification::AmplificationAnalysis;
use kona_trace::contiguity::ContiguityAnalysis;
use kona_trace::io::{read_trace, write_trace};
use kona_trace::spatial::SpatialAnalysis;
use kona_types::{align_up, ByteSize, PAGE_SIZE_4K};
use kona_workloads::{
    GraphAlgorithm, GraphWorkload, HistogramWorkload, LinearRegressionWorkload, RedisWorkload,
    VoltDbWorkload, Workload, WorkloadProfile,
};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

/// Span events kept in the ring buffer during a telemetry replay.
const TRACE_RING_CAPACITY: usize = 1 << 18;

fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    let profile = WorkloadProfile::default().with_windows(3);
    Some(match name {
        "redis-rand" => Box::new(RedisWorkload::rand().with_profile(profile)),
        "redis-seq" => Box::new(RedisWorkload::seq().with_profile(profile)),
        "linreg" => Box::new(LinearRegressionWorkload::with_profile(profile)),
        "histogram" => Box::new(HistogramWorkload::with_profile(profile)),
        "pagerank" => Box::new(GraphWorkload::with_profile(GraphAlgorithm::PageRank, profile)),
        "coloring" => Box::new(GraphWorkload::with_profile(
            GraphAlgorithm::GraphColoring,
            profile,
        )),
        "concomp" => Box::new(GraphWorkload::with_profile(
            GraphAlgorithm::ConnectedComponents,
            profile,
        )),
        "labelprop" => Box::new(GraphWorkload::with_profile(
            GraphAlgorithm::LabelPropagation,
            profile,
        )),
        "voltdb" => Box::new(VoltDbWorkload::with_profile(profile)),
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace_tool record <workload> <file.ktrc> [seed]\n  trace_tool analyze <file.ktrc>\n  \
         trace_tool telemetry <workload> <trace.json> [seed]\n\n\
         workloads: redis-rand redis-seq linreg histogram pagerank coloring\n\
         concomp labelprop voltdb"
    );
    ExitCode::FAILURE
}

/// Replays `workload` through a Kona runtime with span tracing enabled and
/// writes the Chrome trace-event JSON to `out`.
fn run_telemetry(workload: &str, out: &str, seed: u64) -> ExitCode {
    let Some(wl) = workload_by_name(workload) else {
        eprintln!("unknown workload {workload}");
        return usage();
    };
    let trace = wl.generate(seed);
    let span = align_up(trace.address_span() + PAGE_SIZE_4K, PAGE_SIZE_4K);
    let pages = span / PAGE_SIZE_4K;

    // Size the cluster to the workload: cache half the footprint so the
    // eviction thread has real work to do during the replay.
    let mut cfg = ClusterConfig::small().timing_only();
    cfg.node_capacity = ByteSize((span * 2).max(1 << 22));
    // FMem is 4-way set-associative: the page count must divide into sets.
    let cache_pages = ((pages / 2).max(4)) as usize;
    cfg.local_cache_pages = cache_pages - cache_pages % 4;

    let tel = Telemetry::with_tracing(TRACE_RING_CAPACITY);
    let mut rt = KonaRuntime::with_telemetry(cfg, tel.clone()).expect("config valid");
    rt.allocate(span).expect("allocation fits");
    rt.run_trace(trace.as_slice()).expect("trace runs");
    rt.sync().expect("sync");

    if let Err(e) = std::fs::write(out, tel.chrome_trace()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let events = tel.events().len();
    let dropped = tel.dropped_events();
    println!(
        "{}: replayed {} accesses, {} span events to {out}\n",
        wl.name(),
        trace.len(),
        events
    );
    if dropped > 0 {
        println!("(ring full: {dropped} oldest events dropped)\n");
    }
    println!("{}", rt.stats());
    println!("\nopen the timeline at https://ui.perfetto.dev or chrome://tracing");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") if args.len() >= 3 => {
            let Some(wl) = workload_by_name(&args[1]) else {
                eprintln!("unknown workload {}", args[1]);
                return usage();
            };
            let seed = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);
            let trace = wl.generate(seed);
            let file = match File::create(&args[2]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create {}: {e}", args[2]);
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = write_trace(BufWriter::new(file), &trace) {
                eprintln!("write failed: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "recorded {} events ({} span, {} writes) to {}",
                trace.len(),
                trace.duration(),
                trace.write_count(),
                args[2]
            );
            ExitCode::SUCCESS
        }
        Some("analyze") if args.len() >= 2 => {
            let file = match File::open(&args[1]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            let trace = match read_trace(BufReader::new(file)) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("read failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{}: {} events, {} reads, {} writes, span {}, footprint {} KiB\n",
                args[1],
                trace.len(),
                trace.read_count(),
                trace.write_count(),
                trace.duration(),
                trace.address_span() / 1024
            );

            let amp = AmplificationAnalysis::over_events(trace.iter().copied());
            let sp = SpatialAnalysis::over_events(trace.iter().copied());
            let ca = ContiguityAnalysis::over_events(trace.iter().copied());

            let mut table = TextTable::new(&["Metric", "Value"]);
            table.row(vec!["amplification @4KiB".into(), f2(amp.amplification_4k())]);
            table.row(vec!["amplification @2MiB".into(), f2(amp.amplification_2m())]);
            table.row(vec!["amplification @64B".into(), f2(amp.amplification_line())]);
            table.row(vec!["dirty bytes".into(), amp.dirty_bytes().to_string()]);
            table.row(vec![
                "mean lines written/page".into(),
                f2(sp.write_cdf().mean()),
            ]);
            table.row(vec![
                "fully-written page fraction".into(),
                f2(sp.fully_written_fraction()),
            ]);
            table.row(vec![
                "mean write segment (lines)".into(),
                f2(ca.mean_write_segment_len()),
            ]);
            table.print();
            ExitCode::SUCCESS
        }
        Some("telemetry") if args.len() >= 3 => {
            let seed = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);
            run_telemetry(&args[1], &args[2], seed)
        }
        _ => usage(),
    }
}
