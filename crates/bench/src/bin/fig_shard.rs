//! Shard-parallel engine: determinism witness and per-plan traffic.
//!
//! Runs the same seeded script through [`ShardedRun`] under every bundled
//! [`FaultPlan`], printing per-plan traffic counters and the merged-run
//! fingerprint digest. The logical decomposition is fixed (`--logical`,
//! default 8), so the printed output is **byte-identical at every
//! `--shards N` and `--jobs N`** — the CI `shard-smoke` job runs this
//! binary at two shard counts and byte-compares the transcripts.
//!
//! The run exits non-zero if any plan's in-process replay check fails
//! (the serial merge must equal the `--shards`-wide merge).
//!
//! ```bash
//! cargo run --release --bin fig_shard -- --quick
//! cargo run --release --bin fig_shard -- --shards 8 --logical 8
//! ```

use kona::{seeded_script, ClusterConfig, FailurePolicy, ShardReport, ShardedRun};
use kona_bench::{banner, f2, ExpOptions, TextTable};
use kona_net::FaultPlan;
use kona_telemetry::DEFAULT_WINDOW_NS;
use kona_types::{par_map, ShardPlan, Shards};

/// Global pages in the sharded page space (each logical shard owns an
/// equal stripe).
const PAGES: u64 = 256;
/// Memory node the bundled plans flap/crash.
const VICTIM: u32 = 0;

/// Per-shard cache slices must be smaller than the per-shard page stripe
/// or nothing ever evicts; this shrinks the stock config accordingly.
fn shard_config(plan: FaultPlan) -> ClusterConfig {
    let mut cfg = ClusterConfig::small().with_replicas(2);
    cfg.memory_nodes = 3;
    cfg.local_cache_pages = 64;
    cfg.cpu_cache_lines = 512;
    cfg.fault_plan = Some(plan);
    cfg
}

/// FNV-1a of the full fingerprint string — short enough to print, strong
/// enough that any divergence in the merged history flips it.
fn digest(report: &ShardReport) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in report.fingerprint().as_bytes() {
        hash = (hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn main() {
    let opts = ExpOptions::from_env();
    banner(
        "Shard-parallel engine: fixed logical decomposition, any worker count",
        "per-shard eviction/coherence/FMem/fault streams, shard-order merge",
    );
    let seed = opts.seed();
    let shards = opts.shards();
    let logical: u32 = opts
        .value_of("logical")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let ops = if opts.quick { 2_000 } else { 12_000 };
    println!(
        "seed: {seed}, pages: {PAGES}, ops: {ops}, logical shards: {logical}, \
         victim node: {VICTIM}\n"
    );

    let script = seeded_script(PAGES, ops, seed);
    let plans = FaultPlan::bundled(seed, VICTIM);
    // Span tracing (profile folding) stays off unless an artifact asked
    // for it — the rings cost memory and the digests don't need them.
    let trace_capacity = if opts.profiling() { opts.trace_capacity() } else { 0 };
    let results: Vec<(FaultPlan, ShardReport)> = par_map(opts.jobs, plans, |_, plan| {
        let run = ShardedRun::new(shard_config(plan.clone()), PAGES)
            .with_plan(ShardPlan::new(logical))
            .with_windows(DEFAULT_WINDOW_NS)
            .with_tracing(trace_capacity)
            .with_failure_policy(FailurePolicy::PageFaultFallback);
        let report = run.execute(&script, shards).expect("sharded run completes");
        (plan, report)
    });

    let tel = opts.telemetry();
    let mut table = TextTable::new(&[
        "Plan", "Ops", "Failed", "Skew", "Fetches", "Evicted", "WB KiB", "Retries",
        "Failovers", "Ships", "Digest",
    ]);
    for (plan, report) in &results {
        table.row(vec![
            plan.name.to_string(),
            report.total_ops().to_string(),
            report.shard_failed.iter().sum::<u64>().to_string(),
            f2(report.ops_skew()),
            report.stats.remote_fetches.to_string(),
            report.stats.pages_evicted.to_string(),
            (report.stats.writeback_bytes / 1024).to_string(),
            report.stats.retries.to_string(),
            report.stats.failovers.to_string(),
            report.shipments.len().to_string(),
            format!("{:016x}", digest(report)),
        ]);
        let g = |k: &str| format!("fig_shard.{}.{k}", plan.name);
        tel.gauge(&g("ops")).set(report.total_ops() as f64);
        tel.gauge(&g("skew")).set(report.ops_skew());
        tel.gauge(&g("fetches")).set(report.stats.remote_fetches as f64);
        tel.gauge(&g("writeback_bytes")).set(report.stats.writeback_bytes as f64);
        tel.gauge(&g("shipments")).set(report.shipments.len() as f64);
        // Shard-order absorb: the merged dump carries shard.<i>.ops.
        tel.absorb(&report.dump);
    }
    table.print();

    println!(
        "\nExpected shape: identical Digest columns for any --shards and\n\
         --jobs value — the logical decomposition (not the worker count)\n\
         defines the history. Crash plans abandon the victim's flushes and\n\
         fail over reads; skew stays near 1 because pages stripe round-robin."
    );

    // In-process witness: the serial merge must equal the wide merge.
    let mut replay_failures = 0u64;
    let calm = FaultPlan::calm(seed);
    let run = ShardedRun::new(shard_config(calm), PAGES)
        .with_plan(ShardPlan::new(logical))
        .with_windows(DEFAULT_WINDOW_NS)
        .with_failure_policy(FailurePolicy::PageFaultFallback);
    let serial = run.execute(&script, Shards::serial()).expect("serial run");
    let wide = run.execute(&script, shards).expect("wide run");
    if serial.fingerprint() != wide.fingerprint() {
        eprintln!(
            "fig_shard: serial and --shards {} merges diverged",
            shards.get()
        );
        replay_failures += 1;
    } else {
        // No worker count in this line: stdout stays byte-identical
        // across --shards values for the CI transcript compare.
        println!("\nreplay check: serial merge == wide merge (fingerprints match)");
    }

    opts.write_outputs(&tel);
    if opts.profiling() {
        // Merge the per-plan profiles (folded per shard inside the
        // engine) under plan-name frames, in plan order.
        let mut profile: Option<kona_telemetry::Profile> = None;
        for (plan, report) in &results {
            let p = report
                .profile
                .as_ref()
                .expect("tracing enabled when profiling")
                .prefixed(plan.name);
            match &mut profile {
                Some(all) => all.merge(&p),
                None => profile = Some(p),
            }
        }
        if let Some(p) = &profile {
            opts.write_profile(p);
        }
    }
    if replay_failures > 0 {
        std::process::exit(1);
    }
}
