//! SLO health monitoring over the bundled fault plans.
//!
//! Runs the seeded read/write workload of `fig_failure` through a 2-way
//! replicated Kona cluster under every bundled [`FaultPlan`], with
//! windowed time-series collection and the declarative health monitor
//! active. Prints the alert timeline (which rules fired and resolved in
//! which simulated-time window) and a per-plan health table, writes the
//! merged series / health reports on request, and exits non-zero when a
//! *critical* rule (an SLO) fired on any plan.
//!
//! The soft observability rules are calibrated so the congested plan's
//! latency spikes demonstrably fire *and* resolve, while the critical
//! availability/durability SLOs never fire — that split is the CI
//! health-smoke gate. Everything is seeded and evaluated in simulated
//! time, so output is byte-identical at any `--jobs` count.
//!
//! ```bash
//! cargo run --release --bin fig_health -- --quick
//! cargo run --release --bin fig_health -- --window-ns 100000 \
//!     --series-out health-series.json --health-out health.json
//! ```

use kona::{seeded_script, ClusterConfig, KonaRuntime, RemoteMemoryRuntime, ShardOp, ShardedRun};
use kona_bench::{banner, f2, ExpOptions, TextTable};
use kona_net::FaultPlan;
use kona_telemetry::{HealthReport, Rule, SeriesData, Telemetry, DEFAULT_WINDOW_NS};
use kona_types::rng::{Rng, StdRng};
use kona_types::{par_map, Nanos, ShardPlan};
use std::process::ExitCode;

/// Pages in the remote working set (the local cache holds 8).
const PAGES: u64 = 64;
/// Memory node the bundled plans flap/crash.
const VICTIM: u32 = 0;

/// The monitored rule set: two critical SLOs that must never fire on the
/// bundled plans (the runtime is expected to mask every injected fault),
/// and soft observability rules that surface fault-plan weather.
fn rules() -> Vec<Rule> {
    vec![
        // SLOs — failed application ops or verify mismatches break them.
        Rule::above("slo.availability", "fig.ops_failed", 0.5).critical(),
        Rule::above("slo.durability", "fig.verify_errors", 0.5).critical(),
        // Latency: remote-fetch p99 above 20 µs means the fabric is
        // injecting delay (baseline p99 sits near 3 µs; the congested
        // plan's +20 µs spike trips this and it resolves when the spike
        // passes).
        Rule::above("obs.fetch_p99", "kona.fetch_ns:p99", 20_000.0),
        // Retry pressure: more than 24 verb retries in one window.
        Rule::above("obs.retry_rate", "kona.retries", 24.0),
        // Error budget: >5% of each window spent backing off, sustained
        // over a 2-window short and 6-window long burn.
        Rule::burn_rate("obs.backoff_burn", "kona.backoff_ns", 0.0, 2, 6),
        // Wire-traffic surge: a window-over-window move above 512 KiB —
        // comfortably past both the steady-state rate and the end-of-run
        // tail drop, so it flags genuine bursts only.
        Rule::rate_of_change("obs.wire_surge", "net.wire_bytes", 524_288.0),
    ]
}

/// Patches the burn-rate budget in [`rules`] to 5% of `window_ns` (the
/// budget is per-window, so it scales with the window width).
fn rules_for_window(window_ns: u64) -> Vec<Rule> {
    let mut rules = rules();
    for r in &mut rules {
        if let kona_telemetry::RuleKind::BurnRate {
            budget_per_window, ..
        } = &mut r.kind
        {
            *budget_per_window = window_ns as f64 * 0.05;
        }
    }
    rules
}

struct Outcome {
    plan: &'static str,
    ok: u64,
    failed: u64,
    health: HealthReport,
    series: SeriesData,
}

/// Drives `ops` accesses against a cluster running `plan` with the
/// monitor installed, checking reads against a host-side model.
fn run_plan(plan: FaultPlan, seed: u64, ops: u64, window_ns: u64) -> Outcome {
    let name = plan.name;
    let mut cfg = ClusterConfig::small().with_local_cache_pages(8).with_replicas(2);
    cfg.cpu_cache_lines = 64;
    cfg.memory_nodes = 3;
    cfg.fault_plan = Some(plan);
    let tel = Telemetry::disabled();
    tel.enable_timeseries(window_ns);
    tel.install_monitor(rules_for_window(window_ns));
    let ops_ok = tel.counter("fig.ops_ok");
    let ops_failed = tel.counter("fig.ops_failed");
    let verify_errors_ctr = tel.counter("fig.verify_errors");
    let mut rt = KonaRuntime::with_telemetry(cfg, tel.clone()).expect("valid config");
    let base = rt.allocate(PAGES * 4096).expect("allocate");
    let mut model = vec![0u8; (PAGES * 4096) as usize];
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut ok, mut failed) = (0u64, 0u64);
    for _ in 0..ops {
        let page = rng.gen_range(0..PAGES);
        let off = (page * 4096 + rng.gen_range(0..64) * 64) as usize;
        if rng.gen_bool(0.5) {
            let byte: u8 = rng.gen();
            match rt.write_bytes(base + off as u64, &[byte; 64]) {
                Ok(_) => {
                    model[off..off + 64].fill(byte);
                    ok += 1;
                    ops_ok.inc();
                }
                Err(_) => {
                    failed += 1;
                    ops_failed.inc();
                }
            }
        } else {
            let mut buf = [0u8; 64];
            match rt.read_bytes(base + off as u64, &mut buf) {
                Ok(_) => {
                    assert_eq!(&buf[..], &model[off..off + 64], "stale read under {name}");
                    ok += 1;
                    ops_ok.inc();
                }
                Err(_) => {
                    failed += 1;
                    ops_failed.inc();
                }
            }
        }
    }
    let _ = rt.sync();
    for page in 0..PAGES {
        let mut buf = [0u8; 4096];
        match rt.read_bytes(base + page * 4096, &mut buf) {
            Ok(_) => {
                let off = (page * 4096) as usize;
                assert_eq!(
                    &buf[..],
                    &model[off..off + 4096],
                    "page {page} diverged under {name}"
                );
            }
            Err(_) => verify_errors_ctr.inc(),
        }
    }
    let health = tel.health_report().expect("monitor installed");
    let series = tel.series().expect("series enabled");
    Outcome {
        plan: name,
        ok,
        failed,
        health,
        series,
    }
}

/// Replays a sharded run's windowed `shard.<i>.ops` deltas through a
/// monitor evaluating the example imbalance rule: the cumulative
/// busiest-to-laziest ops ratio above 2x flags shard skew.
fn skew_monitor(series: &SeriesData, logical: u32, window_ns: u64) -> (f64, HealthReport) {
    let tel = Telemetry::disabled();
    tel.enable_timeseries(window_ns);
    tel.install_monitor(vec![Rule::above("mon.shard_skew", "shard.skew", 2.0)]);
    let skew_gauge = tel.gauge("shard.skew");
    let mut cumulative = vec![0u64; logical as usize];
    let mut skew = 1.0;
    // Build the per-shard counter names once — not per window.
    let names: Vec<String> = (0..logical).map(|i| format!("shard.{i}.ops")).collect();
    for w in &series.windows {
        for (i, total) in cumulative.iter_mut().enumerate() {
            if let Some(delta) = w.counters.get(&names[i]) {
                *total += delta;
            }
        }
        let max = cumulative.iter().copied().max().unwrap_or(0);
        let min = cumulative.iter().copied().min().unwrap_or(0);
        if max > 0 {
            skew = max as f64 / min.max(1) as f64;
        }
        skew_gauge.set(skew);
        tel.observe_time(Nanos::from_ns((w.index + 1).saturating_mul(window_ns)));
    }
    (skew, tel.health_report().expect("monitor installed"))
}

fn main() -> ExitCode {
    let opts = ExpOptions::from_env();
    banner(
        "SLO health monitor: alert timeline under injected faults",
        "windowed time-series + declarative rule engine companion",
    );
    let seed: u64 = opts.seed();
    let ops: u64 = if opts.quick { 600 } else { 6_000 };
    let window_ns = opts.window_ns().unwrap_or(DEFAULT_WINDOW_NS);
    println!(
        "seed: {seed}, ops per plan: {ops}, replicas: 2, victim node: {VICTIM}, \
         window: {window_ns} ns\n"
    );

    let plans = FaultPlan::bundled(seed, VICTIM);
    let results = par_map(opts.jobs, plans, |_, plan| {
        run_plan(plan, seed, ops, window_ns)
    });

    // Alert timeline: every firing/resolution across all plans, in plan
    // order then window order.
    println!("alert timeline (simulated-time windows of {window_ns} ns):");
    let mut any_alerts = false;
    for r in &results {
        for a in &r.health.alerts {
            any_alerts = true;
            let resolved = match a.resolved_window {
                Some(w) => format!("resolved @w{w}"),
                None => "unresolved at end of run".to_string(),
            };
            println!(
                "  [{:>9}] {} fired @w{} {} (worst {:.1} @w{})",
                r.plan, a.rule, a.fired_window, resolved, a.worst_value, a.worst_window
            );
        }
    }
    if !any_alerts {
        println!("  (no alerts)");
    }

    let mut table = TextTable::new(&[
        "Plan", "Avail %", "Windows", "Fired", "Resolved", "Worst rule", "Worst val",
    ]);
    let mut breaches = 0u64;
    let (mut fired_total, mut resolved_total) = (0usize, 0usize);
    for r in &results {
        let avail = if r.ok + r.failed == 0 {
            0.0
        } else {
            r.ok as f64 / (r.ok + r.failed) as f64
        };
        // The loudest rule of the plan: most windows in breach.
        let worst = r
            .health
            .rules
            .iter()
            .filter(|o| o.fired > 0)
            .max_by_key(|o| o.windows_firing);
        table.row(vec![
            r.plan.to_string(),
            f2(avail * 100.0),
            r.health.windows.to_string(),
            r.health.alerts_fired().to_string(),
            r.health.alerts_resolved().to_string(),
            worst.map_or("-".to_string(), |o| o.rule.clone()),
            worst.map_or("-".to_string(), |o| format!("{:.1}", o.worst_value)),
        ]);
        fired_total += r.health.alerts_fired();
        resolved_total += r.health.alerts_resolved();
        if r.health.slo_breached() {
            breaches += 1;
            eprintln!("SLO BREACH under plan {}", r.plan);
        }
    }
    table.print();
    println!("\nalerts fired {fired_total}, resolved {resolved_total} across all plans");

    println!(
        "\nExpected shape: the critical slo.* rules stay quiet on every plan\n\
         (retries and failover mask the injected faults), while the soft\n\
         obs.* rules narrate the weather — the congested plan's latency\n\
         spikes fire obs.fetch_p99 and it resolves when the spike passes."
    );

    // Shard-parallel engine weather: the merged `shard.<i>.ops` counters
    // from a sharded run feed the example imbalance rule. Round-robin
    // striping keeps the balanced script under the 2x limit; a hotspot
    // script that lands every access on one stripe trips it.
    let plan = ShardPlan::default();
    let logical = plan.logical();
    let shard_pages: u64 = 64;
    let shard_cfg = {
        let mut cfg = ClusterConfig::small().with_replicas(2);
        cfg.memory_nodes = 3;
        cfg.local_cache_pages = 64;
        cfg.cpu_cache_lines = 512;
        cfg
    };
    let mut shard_run = ShardedRun::new(shard_cfg, shard_pages)
        .with_plan(plan)
        .with_windows(window_ns);
    if opts.profiling() {
        shard_run = shard_run.with_tracing(opts.trace_capacity());
    }
    let balanced_script = seeded_script(shard_pages, ops as usize, seed);
    let hotspot_script: Vec<ShardOp> = (0..ops)
        .map(|i| ShardOp::Write {
            page: (i * u64::from(logical)) % shard_pages,
            line: (i % 64) as u32,
            len: 64,
            fill: (i % 251) as u8,
        })
        .chain(std::iter::once(ShardOp::Sync))
        .collect();
    let balanced = shard_run
        .execute(&balanced_script, opts.shards())
        .expect("balanced shard run");
    let hotspot = shard_run
        .execute(&hotspot_script, opts.shards())
        .expect("hotspot shard run");
    let balanced_series = balanced.series.as_ref().expect("windows enabled");
    let hotspot_series = hotspot.series.as_ref().expect("windows enabled");
    let (balanced_skew, balanced_health) = skew_monitor(balanced_series, logical, window_ns);
    let (hotspot_skew, hotspot_health) = skew_monitor(hotspot_series, logical, window_ns);
    let fired = |h: &HealthReport| h.alerts_fired();
    println!(
        "\nshard skew (mon.shard_skew: cumulative busiest/laziest ops above 2x):"
    );
    println!(
        "  balanced striping ({logical} shards): final skew {} — rule fired {} time(s)",
        f2(balanced_skew),
        fired(&balanced_health)
    );
    println!(
        "  hotspot stripe (all ops on shard 0): final skew {} — rule fired {} time(s)",
        f2(hotspot_skew),
        fired(&hotspot_health)
    );
    if fired(&balanced_health) > 0 || fired(&hotspot_health) == 0 {
        eprintln!(
            "shard-skew gate FAILED: balanced fired {} (want 0), hotspot fired {} (want >0)",
            fired(&balanced_health),
            fired(&hotspot_health)
        );
        breaches += 1;
    }

    let tel = opts.telemetry();
    // The sharded runs' merged counters (shard.<i>.ops included) ride
    // along in --metrics-out.
    tel.absorb(&balanced.dump);
    let merged = {
        let mut all = SeriesData::new(window_ns);
        for r in &results {
            all.merge(&r.series.prefixed(r.plan));
        }
        all
    };
    if let Some(path) = opts.health_out() {
        let mut json = String::from("{\n\"plans\": {\n");
        for (i, r) in results.iter().enumerate() {
            let sep = if i == 0 { "" } else { ",\n" };
            json.push_str(&format!("{sep}\"{}\": {}", r.plan, r.health.to_json()));
        }
        json.push_str("\n}\n}\n");
        std::fs::write(path, json).expect("write health report");
        println!("\nhealth report written to {path}");
    }
    opts.write_outputs_with_series(&tel, Some(&merged));
    if opts.profiling() {
        // Both sharded runs fold profiles (tracing enabled above); the
        // balanced/hotspot prefixes keep their paths distinct.
        let mut profile = balanced
            .profile
            .as_ref()
            .expect("tracing enabled when profiling")
            .prefixed("balanced");
        profile.merge(
            &hotspot
                .profile
                .as_ref()
                .expect("tracing enabled when profiling")
                .prefixed("hotspot"),
        );
        opts.write_profile(&profile);
    }

    if breaches > 0 {
        eprintln!("\nhealth gate FAILED: SLO breached under {breaches} plan(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
