//! A tiny wall-clock micro-benchmark harness.
//!
//! The workspace builds with no external dependencies, so the
//! `benches/` binaries use this `std::time::Instant`-based harness
//! instead of criterion. It keeps the same shape — named groups, per-case
//! throughput, warm-up then timed samples — and prints one line per case:
//!
//! ```text
//! rdma/post_chain_256x64B            12.3 µs/iter   20.8 Melem/s
//! ```
//!
//! Results are informational (simulator host cost); nothing gates on
//! them, so the harness favors short runs over statistical rigor.

use kona_types::Nanos;
use std::time::{Duration, Instant};

/// Amdahl-style serial-fraction contention model for multi-threaded
/// experiment projections.
///
/// Threads share hardware: Kona's VFMem fills serialize in the FPGA's
/// (soft-logic) directory — the §4.3 overhead the paper expects to shrink
/// once "this logic can be hardened" — while a VM baseline's fault handlers
/// serialize on kernel locks but overlap their long network round-trips.
/// A run's wall clock scales by `1 + serial_frac × (threads − 1)`.
///
/// # Examples
///
/// ```
/// use kona_bench::ContentionModel;
/// use kona_types::Nanos;
///
/// let m = ContentionModel::KONA;
/// assert_eq!(m.contended(Nanos::from_ns(1000), 1), Nanos::from_ns(1000));
/// assert!(m.contended(Nanos::from_ns(1000), 4) > Nanos::from_ns(1000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionModel {
    /// Fraction of a thread's work serialized against its peers.
    pub serial_frac: f64,
}

impl ContentionModel {
    /// Kona's VFMem-directory serialization (calibrated so the paper's
    /// 6.6X single-thread advantage eases to 4-5X at four threads).
    pub const KONA: ContentionModel = ContentionModel { serial_frac: 0.35 };

    /// The VM baselines' kernel-lock serialization (fault handlers overlap
    /// their long network round-trips, so the serial share is smaller).
    pub const VM: ContentionModel = ContentionModel { serial_frac: 0.20 };

    /// A custom serial fraction in `[0, 1]`.
    pub fn new(serial_frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&serial_frac), "fraction out of range");
        ContentionModel { serial_frac }
    }

    /// Projects a single-thread wall time onto `threads` contending
    /// threads.
    pub fn contended(self, wall: Nanos, threads: u64) -> Nanos {
        let factor = 1.0 + self.serial_frac * (threads as f64 - 1.0);
        Nanos::from_ns_f64(wall.as_ns() as f64 * factor)
    }
}

/// Target measurement time per case.
const MEASURE: Duration = Duration::from_millis(300);
/// Target warm-up time per case.
const WARM_UP: Duration = Duration::from_millis(100);

/// A named collection of benchmark cases (mirrors criterion's
/// `BenchmarkGroup`).
pub struct BenchGroup {
    name: String,
    /// Elements processed per iteration, for throughput reporting.
    throughput: Option<u64>,
}

impl BenchGroup {
    /// Starts a group; `finish` ends it (a no-op, for call-site symmetry).
    pub fn new(name: &str) -> Self {
        BenchGroup {
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Sets the per-iteration element count used for throughput lines.
    pub fn throughput_elements(&mut self, elements: u64) {
        self.throughput = Some(elements);
    }

    /// Runs one case: warm up, then time whole iterations until the
    /// measurement budget is spent, and print the mean.
    pub fn bench_function<O>(&mut self, case: &str, mut body: impl FnMut() -> O) {
        let mut iters = 0u32;
        let warm = Instant::now();
        while warm.elapsed() < WARM_UP || iters == 0 {
            std::hint::black_box(body());
            iters += 1;
        }

        let mut samples = 0u32;
        let start = Instant::now();
        while start.elapsed() < MEASURE || samples == 0 {
            std::hint::black_box(body());
            samples += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / f64::from(samples);

        let label = format!("{}/{}", self.name, case);
        let rate = self.throughput.map(|n| n as f64 / per_iter);
        match rate {
            Some(r) => println!(
                "{label:<48} {:>12}/iter {:>14}/s",
                fmt_time(per_iter),
                fmt_count(r)
            ),
            None => println!("{label:<48} {:>12}/iter", fmt_time(per_iter)),
        }
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    let ns = secs * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{secs:.2} s")
    }
}

fn fmt_count(rate: f64) -> String {
    if rate < 1_000.0 {
        format!("{rate:.0} elem")
    } else if rate < 1_000_000.0 {
        format!("{:.1} Kelem", rate / 1_000.0)
    } else {
        format!("{:.1} Melem", rate / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_model() {
        let m = ContentionModel::new(0.5);
        assert_eq!(m.contended(Nanos::from_ns(100), 1), Nanos::from_ns(100));
        assert_eq!(m.contended(Nanos::from_ns(100), 3), Nanos::from_ns(200));
        assert!(ContentionModel::KONA.serial_frac > ContentionModel::VM.serial_frac);
    }

    #[test]
    #[should_panic]
    fn contention_fraction_out_of_range() {
        ContentionModel::new(1.5);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(5e-9), "5.0 ns");
        assert_eq!(fmt_time(2.5e-6), "2.5 µs");
        assert_eq!(fmt_time(3e-3), "3.00 ms");
        assert_eq!(fmt_time(1.5), "1.50 s");
        assert_eq!(fmt_count(500.0), "500 elem");
        assert_eq!(fmt_count(2_500.0), "2.5 Kelem");
        assert_eq!(fmt_count(7_000_000.0), "7.0 Melem");
    }
}
