//! A tiny wall-clock micro-benchmark harness.
//!
//! The workspace builds with no external dependencies, so the
//! `benches/` binaries use this `std::time::Instant`-based harness
//! instead of criterion. It keeps the same shape — named groups, per-case
//! throughput, warm-up then timed samples — and prints one line per case:
//!
//! ```text
//! rdma/post_chain_256x64B            12.3 µs/iter   20.8 Melem/s
//! ```
//!
//! Results are informational (simulator host cost); nothing gates on
//! them, so the harness favors short runs over statistical rigor.

use std::time::{Duration, Instant};

/// Target measurement time per case.
const MEASURE: Duration = Duration::from_millis(300);
/// Target warm-up time per case.
const WARM_UP: Duration = Duration::from_millis(100);

/// A named collection of benchmark cases (mirrors criterion's
/// `BenchmarkGroup`).
pub struct BenchGroup {
    name: String,
    /// Elements processed per iteration, for throughput reporting.
    throughput: Option<u64>,
}

impl BenchGroup {
    /// Starts a group; `finish` ends it (a no-op, for call-site symmetry).
    pub fn new(name: &str) -> Self {
        BenchGroup {
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Sets the per-iteration element count used for throughput lines.
    pub fn throughput_elements(&mut self, elements: u64) {
        self.throughput = Some(elements);
    }

    /// Runs one case: warm up, then time whole iterations until the
    /// measurement budget is spent, and print the mean.
    pub fn bench_function<O>(&mut self, case: &str, mut body: impl FnMut() -> O) {
        let mut iters = 0u32;
        let warm = Instant::now();
        while warm.elapsed() < WARM_UP || iters == 0 {
            std::hint::black_box(body());
            iters += 1;
        }

        let mut samples = 0u32;
        let start = Instant::now();
        while start.elapsed() < MEASURE || samples == 0 {
            std::hint::black_box(body());
            samples += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / f64::from(samples);

        let label = format!("{}/{}", self.name, case);
        let rate = self.throughput.map(|n| n as f64 / per_iter);
        match rate {
            Some(r) => println!(
                "{label:<48} {:>12}/iter {:>14}/s",
                fmt_time(per_iter),
                fmt_count(r)
            ),
            None => println!("{label:<48} {:>12}/iter", fmt_time(per_iter)),
        }
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    let ns = secs * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{secs:.2} s")
    }
}

fn fmt_count(rate: f64) -> String {
    if rate < 1_000.0 {
        format!("{rate:.0} elem")
    } else if rate < 1_000_000.0 {
        format!("{:.1} Kelem", rate / 1_000.0)
    } else {
        format!("{:.1} Melem", rate / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(5e-9), "5.0 ns");
        assert_eq!(fmt_time(2.5e-6), "2.5 µs");
        assert_eq!(fmt_time(3e-3), "3.00 ms");
        assert_eq!(fmt_time(1.5), "1.50 s");
        assert_eq!(fmt_count(500.0), "500 elem");
        assert_eq!(fmt_count(2_500.0), "2.5 Kelem");
        assert_eq!(fmt_count(7_000_000.0), "7.0 Melem");
    }
}
