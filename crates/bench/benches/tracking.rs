//! Micro-bench: KTracker snapshot/diff cost (the paper's §6.3
//! simulation-overhead discussion: 95% of KTracker's cost is copying and
//! comparing memory).

use kona_bench::BenchGroup;
use kona_ktracker::{KTracker, TrackingMode};
use kona_types::Nanos;
use kona_workloads::{RedisWorkload, Workload, WorkloadProfile};

fn main() {
    let profile = WorkloadProfile::default()
        .with_windows(2)
        .with_window_width(Nanos::secs(1))
        .with_ops_per_window(2_000)
        .with_scale_divisor(256);
    let trace = RedisWorkload::rand().with_profile(profile).generate(1);
    let mut group = BenchGroup::new("tracking");
    group.throughput_elements(trace.len() as u64);
    let tracker = KTracker::new(Nanos::secs(1));
    group.bench_function("ktracker_snapshot_diff", || {
        std::hint::black_box(tracker.run(&trace, TrackingMode::Coherence).windows.len())
    });
    group.finish();
}
