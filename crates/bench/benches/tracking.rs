//! Criterion bench: KTracker snapshot/diff cost (the paper's §6.3
//! simulation-overhead discussion: 95% of KTracker's cost is copying and
//! comparing memory).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kona_ktracker::{KTracker, TrackingMode};
use kona_types::Nanos;
use kona_workloads::{RedisWorkload, Workload, WorkloadProfile};

fn bench_tracking(c: &mut Criterion) {
    let profile = WorkloadProfile::default()
        .with_windows(2)
        .with_window_width(Nanos::secs(1))
        .with_ops_per_window(2_000)
        .with_scale_divisor(256);
    let trace = RedisWorkload::rand().with_profile(profile).generate(1);
    let mut group = c.benchmark_group("tracking");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("ktracker_snapshot_diff", |b| {
        let tracker = KTracker::new(Nanos::secs(1));
        b.iter(|| std::hint::black_box(tracker.run(&trace, TrackingMode::Coherence).windows.len()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tracking
}
criterion_main!(benches);
