//! Criterion bench: cache-hierarchy simulation throughput.
//!
//! Measures how fast the Cachegrind-equivalent substrate processes
//! accesses — the cost that dominates KCacheSim runs (the paper reports
//! 43X slowdown for Redis under its simulator; ours is the analogous
//! bottleneck).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kona_cache_sim::{CacheHierarchy, HierarchyConfig};
use kona_types::{AccessKind, VirtAddr};

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_sim");
    for &span in &[1u64 << 20, 16 << 20] {
        // Pre-generate a pseudo-random access stream.
        let mut x = 7u64;
        let addrs: Vec<u64> = (0..10_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 16) % span
            })
            .collect();
        group.throughput(Throughput::Elements(addrs.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("random_access", format!("{}MiB", span >> 20)),
            &addrs,
            |b, addrs| {
                let mut h =
                    CacheHierarchy::new(HierarchyConfig::skylake_with_default_fmem(span / 2).unwrap());
                b.iter(|| {
                    for &a in addrs {
                        std::hint::black_box(h.access(VirtAddr::new(a), AccessKind::Read));
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hierarchy
}
criterion_main!(benches);
