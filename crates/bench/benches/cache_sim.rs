//! Micro-bench: cache-hierarchy simulation throughput.
//!
//! Measures how fast the Cachegrind-equivalent substrate processes
//! accesses — the cost that dominates KCacheSim runs (the paper reports
//! 43X slowdown for Redis under its simulator; ours is the analogous
//! bottleneck).

use kona_bench::BenchGroup;
use kona_cache_sim::{CacheHierarchy, HierarchyConfig};
use kona_types::{AccessKind, VirtAddr};

fn main() {
    let mut group = BenchGroup::new("cache_sim");
    for &span in &[1u64 << 20, 16 << 20] {
        // Pre-generate a pseudo-random access stream.
        let mut x = 7u64;
        let addrs: Vec<u64> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 16) % span
            })
            .collect();
        group.throughput_elements(addrs.len() as u64);
        let mut h =
            CacheHierarchy::new(HierarchyConfig::skylake_with_default_fmem(span / 2).unwrap());
        group.bench_function(&format!("random_access/{}MiB", span >> 20), || {
            for &a in &addrs {
                std::hint::black_box(h.access(VirtAddr::new(a), AccessKind::Read));
            }
        });
    }
    group.finish();
}
