//! Criterion bench: end-to-end KCacheSim simulation cost per trace event.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kona_kcachesim::{simulate, SystemModel};
use kona_workloads::{RedisWorkload, Workload, WorkloadProfile};

fn bench_amat(c: &mut Criterion) {
    let profile = WorkloadProfile::default()
        .with_windows(1)
        .with_ops_per_window(2_000)
        .with_scale_divisor(256);
    let trace = RedisWorkload::rand().with_profile(profile).generate(1);
    let mut group = c.benchmark_group("amat");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("kcachesim_redis_rand", |b| {
        b.iter(|| {
            std::hint::black_box(
                simulate(&trace, &SystemModel::kona(), 0.25, 4096, 4).amat_ns,
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_amat
}
criterion_main!(benches);
