//! Micro-bench: end-to-end KCacheSim simulation cost per trace event.

use kona_bench::BenchGroup;
use kona_kcachesim::{simulate, SystemModel};
use kona_workloads::{RedisWorkload, Workload, WorkloadProfile};

fn main() {
    let profile = WorkloadProfile::default()
        .with_windows(1)
        .with_ops_per_window(2_000)
        .with_scale_divisor(256);
    let trace = RedisWorkload::rand().with_profile(profile).generate(1);
    let mut group = BenchGroup::new("amat");
    group.throughput_elements(trace.len() as u64);
    group.bench_function("kcachesim_redis_rand", || {
        std::hint::black_box(simulate(&trace, &SystemModel::kona(), 0.25, 4096, 4).amat_ns)
    });
    group.finish();
}
