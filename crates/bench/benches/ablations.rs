//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! The harness measures host time; each bench body computes the simulated
//! metric the ablation is about, so the printed throughput doubles as an
//! ablation record:
//!
//! * FMem associativity (paper: barely matters).
//! * Replication factor 1-3 on eviction cost (§4.5: more replicas slow
//!   eviction but not the app).
//! * Prefetching on/off for a sequential scan (Kona can prefetch across
//!   page boundaries; page-fault systems cannot).
//! * CL-log batching: large vs tiny log buffer.

use kona::{ClusterConfig, CopyEngine, EvictionHandler, KonaRuntime, Poller, RemoteMemoryRuntime};
use kona_bench::BenchGroup;
use kona_fpga::{NextPagePrefetcher, VictimPage};
use kona_kcachesim::{sweep_associativity, SystemModel};
use kona_net::{Fabric, NetworkModel};
use kona_types::{ByteSize, LineBitmap, PageNumber, RemoteAddr, LINES_PER_PAGE_4K, PAGE_SIZE_4K};
use kona_workloads::{LinePattern, PerPageWriter, RedisWorkload, Workload, WorkloadProfile};

fn fmem_associativity() {
    let profile = WorkloadProfile::default()
        .with_windows(1)
        .with_ops_per_window(2_000)
        .with_scale_divisor(256);
    let trace = RedisWorkload::rand().with_profile(profile).generate(1);
    let mut group = BenchGroup::new("ablation_fmem_assoc");
    for ways in [1usize, 2, 4, 8] {
        group.bench_function(&ways.to_string(), || {
            let pts = sweep_associativity(&trace, &SystemModel::kona(), &[ways], 0.5, 4096);
            std::hint::black_box(pts[0].result.amat_ns)
        });
    }
    group.finish();
}

fn replication_factor() {
    let mut group = BenchGroup::new("ablation_replication");
    for replicas in [0usize, 1, 2] {
        group.bench_function(&(replicas + 1).to_string(), || {
            let mut fabric = Fabric::new(NetworkModel::connectx5());
            for id in 0..3u32 {
                fabric.add_node(id, (1 << 22) + 65536);
                fabric.register(id, 0, 1 << 22).unwrap();
                fabric.register(id, 1 << 22, 65536).unwrap();
            }
            let mut handler = EvictionHandler::new(1 << 22, 65536);
            let mut poller = Poller::new();
            let replica_addrs: Vec<RemoteAddr> = (1..=replicas as u32)
                .map(|n| RemoteAddr::new(n, 0))
                .collect();
            let mut bm = LineBitmap::new(LINES_PER_PAGE_4K);
            bm.set(0);
            bm.set(1);
            for p in 0..256u64 {
                let victim = VictimPage {
                    page: PageNumber(p),
                    dirty_lines: bm.clone(),
                };
                handler
                    .evict_page(
                        &victim,
                        None,
                        RemoteAddr::new(0, p * PAGE_SIZE_4K),
                        &replica_addrs,
                        &mut fabric,
                        &mut poller,
                    )
                    .unwrap();
            }
            handler.flush_all(&mut fabric, &mut poller).unwrap();
            std::hint::black_box(handler.breakdown().total())
        });
    }
    group.finish();
}

fn prefetching() {
    let mut group = BenchGroup::new("ablation_prefetch");
    for (name, prefetcher) in [
        ("off", NextPagePrefetcher::disabled()),
        ("next_page", NextPagePrefetcher::new(2, 2)),
    ] {
        group.bench_function(name, || {
            let mut cfg = ClusterConfig::small()
                .timing_only()
                .with_prefetcher(prefetcher.clone())
                .with_local_cache_pages(256);
            cfg.node_capacity = ByteSize::mib(16);
            let mut rt = KonaRuntime::new(cfg).unwrap();
            rt.allocate(512 * 4096).unwrap();
            // Sequential scan: prefetching should cut app time.
            let trace = PerPageWriter::new(512, 1, LinePattern::Contiguous).generate(0);
            let t = rt.run_trace(trace.as_slice()).unwrap();
            std::hint::black_box(t)
        });
    }
    group.finish();
}

fn log_batching() {
    let mut group = BenchGroup::new("ablation_log_capacity");
    for capacity in [1usize << 10, 1 << 16] {
        group.bench_function(&capacity.to_string(), || {
            let mut fabric = Fabric::new(NetworkModel::connectx5());
            fabric.add_node(0, (1 << 22) + (1 << 16));
            fabric.register(0, 0, 1 << 22).unwrap();
            fabric.register(0, 1 << 22, 1 << 16).unwrap();
            let mut handler = EvictionHandler::new(1 << 22, capacity);
            let mut poller = Poller::new();
            let mut bm = LineBitmap::new(LINES_PER_PAGE_4K);
            bm.set(0);
            for p in 0..512u64 {
                let victim = VictimPage {
                    page: PageNumber(p),
                    dirty_lines: bm.clone(),
                };
                handler
                    .evict_page(
                        &victim,
                        None,
                        RemoteAddr::new(0, p * PAGE_SIZE_4K),
                        &[],
                        &mut fabric,
                        &mut poller,
                    )
                    .unwrap();
            }
            handler.flush_all(&mut fabric, &mut poller).unwrap();
            std::hint::black_box(handler.breakdown().total())
        });
    }
    group.finish();
}

fn copy_engine() {
    // §4.2's optional copy-dirty-data primitive vs the software AVX copy.
    let mut group = BenchGroup::new("ablation_copy_engine");
    for (name, engine) in [
        ("software_avx", CopyEngine::SoftwareAvx),
        ("hardware_dma", CopyEngine::HardwareDma),
    ] {
        group.bench_function(name, || {
            let mut fabric = Fabric::new(NetworkModel::connectx5());
            fabric.add_node(0, (1 << 22) + 65536);
            fabric.register(0, 0, 1 << 22).unwrap();
            fabric.register(0, 1 << 22, 65536).unwrap();
            let mut handler = EvictionHandler::new(1 << 22, 65536);
            handler.set_copy_engine(engine);
            let mut poller = Poller::new();
            let mut bm = LineBitmap::new(LINES_PER_PAGE_4K);
            for i in (0..16).step_by(2) {
                bm.set(i);
            }
            for p in 0..512u64 {
                let victim = VictimPage {
                    page: PageNumber(p),
                    dirty_lines: bm.clone(),
                };
                handler
                    .evict_page(
                        &victim,
                        None,
                        RemoteAddr::new(0, p * PAGE_SIZE_4K),
                        &[],
                        &mut fabric,
                        &mut poller,
                    )
                    .unwrap();
            }
            handler.flush_all(&mut fabric, &mut poller).unwrap();
            std::hint::black_box(handler.breakdown().total())
        });
    }
    group.finish();
}

fn main() {
    fmem_associativity();
    replication_factor();
    prefetching();
    log_batching();
    copy_engine();
}
