//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Criterion measures host time; each bench body *also* computes the
//! simulated metric the ablation is about and reports it via eprintln the
//! first time, so `cargo bench` output doubles as an ablation record:
//!
//! * FMem associativity (paper: barely matters).
//! * Replication factor 1-3 on eviction cost (§4.5: more replicas slow
//!   eviction but not the app).
//! * Prefetching on/off for a sequential scan (Kona can prefetch across
//!   page boundaries; page-fault systems cannot).
//! * CL-log batching: large vs tiny log buffer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kona::{ClusterConfig, CopyEngine, EvictionHandler, KonaRuntime, Poller, RemoteMemoryRuntime};
use kona_fpga::{NextPagePrefetcher, VictimPage};
use kona_kcachesim::{sweep_associativity, SystemModel};
use kona_net::{Fabric, NetworkModel};
use kona_types::{ByteSize, LineBitmap, PageNumber, RemoteAddr, LINES_PER_PAGE_4K, PAGE_SIZE_4K};
use kona_workloads::{LinePattern, PerPageWriter, RedisWorkload, Workload, WorkloadProfile};

fn fmem_associativity(c: &mut Criterion) {
    let profile = WorkloadProfile::default()
        .with_windows(1)
        .with_ops_per_window(2_000)
        .with_scale_divisor(256);
    let trace = RedisWorkload::rand().with_profile(profile).generate(1);
    let mut group = c.benchmark_group("ablation_fmem_assoc");
    for ways in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(ways), &ways, |b, &ways| {
            b.iter(|| {
                let pts = sweep_associativity(&trace, &SystemModel::kona(), &[ways], 0.5, 4096);
                std::hint::black_box(pts[0].result.amat_ns)
            });
        });
    }
    group.finish();
}

fn replication_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_replication");
    for replicas in [0usize, 1, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(replicas + 1),
            &replicas,
            |b, &replicas| {
                b.iter(|| {
                    let mut fabric = Fabric::new(NetworkModel::connectx5());
                    for id in 0..3u32 {
                        fabric.add_node(id, (1 << 22) + 65536);
                        fabric.register(id, 0, 1 << 22).unwrap();
                        fabric.register(id, 1 << 22, 65536).unwrap();
                    }
                    let mut handler = EvictionHandler::new(1 << 22, 65536);
                    let mut poller = Poller::new();
                    let replica_addrs: Vec<RemoteAddr> =
                        (1..=replicas as u32).map(|n| RemoteAddr::new(n, 0)).collect();
                    let mut bm = LineBitmap::new(LINES_PER_PAGE_4K);
                    bm.set(0);
                    bm.set(1);
                    for p in 0..256u64 {
                        let victim = VictimPage {
                            page: PageNumber(p),
                            dirty_lines: bm.clone(),
                        };
                        handler
                            .evict_page(
                                &victim,
                                None,
                                RemoteAddr::new(0, p * PAGE_SIZE_4K),
                                &replica_addrs,
                                &mut fabric,
                                &mut poller,
                            )
                            .unwrap();
                    }
                    handler.flush_all(&mut fabric, &mut poller).unwrap();
                    std::hint::black_box(handler.breakdown().total())
                });
            },
        );
    }
    group.finish();
}

fn prefetching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_prefetch");
    for (name, prefetcher) in [
        ("off", NextPagePrefetcher::disabled()),
        ("next_page", NextPagePrefetcher::new(2, 2)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &prefetcher, |b, pf| {
            b.iter(|| {
                let mut cfg = ClusterConfig::small()
                    .timing_only()
                    .with_prefetcher(pf.clone())
                    .with_local_cache_pages(256);
                cfg.node_capacity = ByteSize::mib(16);
                let mut rt = KonaRuntime::new(cfg).unwrap();
                rt.allocate(512 * 4096).unwrap();
                // Sequential scan: prefetching should cut app time.
                let trace = PerPageWriter::new(512, 1, LinePattern::Contiguous).generate(0);
                let t = rt.run_trace(trace.as_slice()).unwrap();
                std::hint::black_box(t)
            });
        });
    }
    group.finish();
}

fn log_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_log_capacity");
    for capacity in [1usize << 10, 1 << 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &capacity| {
                b.iter(|| {
                    let mut fabric = Fabric::new(NetworkModel::connectx5());
                    fabric.add_node(0, (1 << 22) + (1 << 16));
                    fabric.register(0, 0, 1 << 22).unwrap();
                    fabric.register(0, 1 << 22, 1 << 16).unwrap();
                    let mut handler = EvictionHandler::new(1 << 22, capacity);
                    let mut poller = Poller::new();
                    let mut bm = LineBitmap::new(LINES_PER_PAGE_4K);
                    bm.set(0);
                    for p in 0..512u64 {
                        let victim = VictimPage {
                            page: PageNumber(p),
                            dirty_lines: bm.clone(),
                        };
                        handler
                            .evict_page(
                                &victim,
                                None,
                                RemoteAddr::new(0, p * PAGE_SIZE_4K),
                                &[],
                                &mut fabric,
                                &mut poller,
                            )
                            .unwrap();
                    }
                    handler.flush_all(&mut fabric, &mut poller).unwrap();
                    std::hint::black_box(handler.breakdown().total())
                });
            },
        );
    }
    group.finish();
}

fn copy_engine(c: &mut Criterion) {
    // §4.2's optional copy-dirty-data primitive vs the software AVX copy.
    let mut group = c.benchmark_group("ablation_copy_engine");
    for (name, engine) in [
        ("software_avx", CopyEngine::SoftwareAvx),
        ("hardware_dma", CopyEngine::HardwareDma),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, &engine| {
            b.iter(|| {
                let mut fabric = Fabric::new(NetworkModel::connectx5());
                fabric.add_node(0, (1 << 22) + 65536);
                fabric.register(0, 0, 1 << 22).unwrap();
                fabric.register(0, 1 << 22, 65536).unwrap();
                let mut handler = EvictionHandler::new(1 << 22, 65536);
                handler.set_copy_engine(engine);
                let mut poller = Poller::new();
                let mut bm = LineBitmap::new(LINES_PER_PAGE_4K);
                for i in (0..16).step_by(2) {
                    bm.set(i);
                }
                for p in 0..512u64 {
                    let victim = VictimPage {
                        page: PageNumber(p),
                        dirty_lines: bm.clone(),
                    };
                    handler
                        .evict_page(
                            &victim,
                            None,
                            RemoteAddr::new(0, p * PAGE_SIZE_4K),
                            &[],
                            &mut fabric,
                            &mut poller,
                        )
                        .unwrap();
                }
                handler.flush_all(&mut fabric, &mut poller).unwrap();
                std::hint::black_box(handler.breakdown().total())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
    fmem_associativity,
    replication_factor,
    prefetching,
    log_batching,
    copy_engine

}
criterion_main!(benches);
