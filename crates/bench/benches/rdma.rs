//! Micro-bench: RDMA fabric simulation throughput.

use kona_bench::BenchGroup;
use kona_net::{Fabric, NetworkModel, WorkRequest};
use kona_types::RemoteAddr;

fn main() {
    let mut group = BenchGroup::new("rdma");
    group.throughput_elements(256);

    let mut fabric = Fabric::new(NetworkModel::connectx5());
    fabric.add_node(0, 1 << 20);
    fabric.register(0, 0, 1 << 20).unwrap();
    group.bench_function("post_chain_256x64B", || {
        let chain: Vec<WorkRequest> = (0..256u64)
            .map(|i| WorkRequest::write(i, RemoteAddr::new(0, i * 64), vec![1u8; 64]))
            .collect();
        std::hint::black_box(fabric.post(chain).unwrap().0)
    });

    let mut fabric = Fabric::new(NetworkModel::connectx5());
    fabric.add_node(0, 1 << 24);
    fabric.register(0, 0, 1 << 24).unwrap();
    group.bench_function("post_individual_4KiB", || {
        for i in 0..16u64 {
            let wr =
                WorkRequest::write(i, RemoteAddr::new(0, i * 4096), vec![1u8; 4096]).signaled();
            std::hint::black_box(fabric.post(vec![wr]).unwrap().0);
        }
    });
    group.finish();
}
