//! Criterion bench: RDMA fabric simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kona_net::{Fabric, NetworkModel, WorkRequest};
use kona_types::RemoteAddr;

fn bench_fabric(c: &mut Criterion) {
    let mut group = c.benchmark_group("rdma");
    group.throughput(Throughput::Elements(256));

    group.bench_function("post_chain_256x64B", |b| {
        let mut fabric = Fabric::new(NetworkModel::connectx5());
        fabric.add_node(0, 1 << 20);
        fabric.register(0, 0, 1 << 20).unwrap();
        b.iter(|| {
            let chain: Vec<WorkRequest> = (0..256u64)
                .map(|i| WorkRequest::write(i, RemoteAddr::new(0, i * 64), vec![1u8; 64]))
                .collect();
            std::hint::black_box(fabric.post(chain).unwrap().0)
        });
    });

    group.bench_function("post_individual_4KiB", |b| {
        let mut fabric = Fabric::new(NetworkModel::connectx5());
        fabric.add_node(0, 1 << 24);
        fabric.register(0, 0, 1 << 24).unwrap();
        b.iter(|| {
            for i in 0..16u64 {
                let wr =
                    WorkRequest::write(i, RemoteAddr::new(0, i * 4096), vec![1u8; 4096]).signaled();
                std::hint::black_box(fabric.post(vec![wr]).unwrap().0);
            }
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fabric
}
criterion_main!(benches);
