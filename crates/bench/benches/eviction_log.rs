//! Criterion bench: cache-line log encode/decode/apply throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kona::{CacheLineLog, LogEntry, LogReceiver};
use kona_net::NodeMemory;
use kona_types::RemoteAddr;

fn bench_log(c: &mut Criterion) {
    let mut group = c.benchmark_group("eviction_log");
    let entries: Vec<LogEntry> = (0..500)
        .map(|i| LogEntry {
            remote: RemoteAddr::new(0, i * 128),
            data: vec![i as u8; 64],
        })
        .collect();
    group.throughput(Throughput::Elements(entries.len() as u64));

    group.bench_function("append_drain", |b| {
        b.iter(|| {
            let mut log = CacheLineLog::new(1 << 20);
            for e in &entries {
                log.append(e.clone());
            }
            std::hint::black_box(log.drain_encoded().len())
        });
    });

    group.bench_function("receiver_apply", |b| {
        let mut log = CacheLineLog::new(1 << 20);
        for e in &entries {
            log.append(e.clone());
        }
        let encoded = log.drain_encoded();
        b.iter(|| {
            let mut node = NodeMemory::new(0, 1 << 20);
            let mut rx = LogReceiver::new();
            std::hint::black_box(rx.apply(&mut node, &encoded).entries)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_log
}
criterion_main!(benches);
