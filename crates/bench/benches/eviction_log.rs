//! Micro-bench: cache-line log encode/decode/apply throughput.

use kona::{CacheLineLog, LogEntry, LogReceiver};
use kona_bench::BenchGroup;
use kona_net::NodeMemory;
use kona_types::RemoteAddr;

fn main() {
    let mut group = BenchGroup::new("eviction_log");
    let entries: Vec<LogEntry> = (0..500)
        .map(|i| LogEntry {
            remote: RemoteAddr::new(0, i * 128),
            data: vec![i as u8; 64],
        })
        .collect();
    group.throughput_elements(entries.len() as u64);

    group.bench_function("append_drain", || {
        let mut log = CacheLineLog::new(1 << 20);
        for e in &entries {
            log.append(e.clone());
        }
        std::hint::black_box(log.drain_encoded().len())
    });

    let mut log = CacheLineLog::new(1 << 20);
    for e in &entries {
        log.append(e.clone());
    }
    let encoded = log.drain_encoded();
    group.bench_function("receiver_apply", || {
        let mut node = NodeMemory::new(0, 1 << 20);
        let mut rx = LogReceiver::new();
        std::hint::black_box(rx.apply(&mut node, &encoded).entries)
    });
    group.finish();
}
