//! Micro-bench: MESI protocol operation throughput.

use kona_bench::BenchGroup;
use kona_coherence::{AgentId, CoherenceSystem};
use kona_types::LineIndex;

fn main() {
    let mut group = BenchGroup::new("coherence");
    group.throughput_elements(10_000);

    group.bench_function("single_agent_mixed", || {
        let mut sys = CoherenceSystem::new(1, 1024);
        for i in 0..10_000u64 {
            let line = LineIndex(i % 2048);
            if i % 3 == 0 {
                sys.write(AgentId(0), line);
            } else {
                sys.read(AgentId(0), line);
            }
        }
        std::hint::black_box(sys.stats())
    });

    group.bench_function("two_agents_sharing", || {
        let mut sys = CoherenceSystem::new(2, 512);
        for i in 0..10_000u64 {
            let line = LineIndex(i % 256);
            let agent = AgentId((i % 2) as u32);
            if i % 4 == 0 {
                sys.write(agent, line);
            } else {
                sys.read(agent, line);
            }
        }
        std::hint::black_box(sys.drain_writebacks().len())
    });
    group.finish();
}
