//! Criterion bench: MESI protocol operation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kona_coherence::{AgentId, CoherenceSystem};
use kona_types::LineIndex;

fn bench_coherence(c: &mut Criterion) {
    let mut group = c.benchmark_group("coherence");
    group.throughput(Throughput::Elements(10_000));

    group.bench_function("single_agent_mixed", |b| {
        b.iter(|| {
            let mut sys = CoherenceSystem::new(1, 1024);
            for i in 0..10_000u64 {
                let line = LineIndex(i % 2048);
                if i % 3 == 0 {
                    sys.write(AgentId(0), line);
                } else {
                    sys.read(AgentId(0), line);
                }
            }
            std::hint::black_box(sys.stats())
        });
    });

    group.bench_function("two_agents_sharing", |b| {
        b.iter(|| {
            let mut sys = CoherenceSystem::new(2, 512);
            for i in 0..10_000u64 {
                let line = LineIndex(i % 256);
                let agent = AgentId((i % 2) as u32);
                if i % 4 == 0 {
                    sys.write(agent, line);
                } else {
                    sys.read(agent, line);
                }
            }
            std::hint::black_box(sys.drain_writebacks().len())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_coherence
}
criterion_main!(benches);
