//! The parallel engine's contract: any `--jobs` count produces output
//! byte-identical to the sequential run.
//!
//! Three layers are checked at jobs ∈ {1, 2, 8}: the KCacheSim sweeps
//! (results merged in input order), runtime replays whose
//! [`RuntimeStats`] are merged with [`RuntimeStats::merge`], and
//! telemetry registries merged via dump/absorb.

use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime, RuntimeStats};
use kona_kcachesim::{sweep_cache_size, sweep_cache_size_jobs, SystemModel};
use kona_telemetry::Telemetry;
use kona_types::rng::{Rng, StdRng};
use kona_types::{par_map, AccessKind, Jobs, MemAccess, Nanos, VirtAddr, PAGE_SIZE_4K};
use kona_workloads::{RedisWorkload, Workload, WorkloadProfile};

const JOB_COUNTS: [usize; 3] = [1, 2, 8];

fn small_trace() -> kona_trace::Trace {
    let profile = WorkloadProfile::default()
        .with_windows(1)
        .with_ops_per_window(2_000)
        .with_scale_divisor(2048);
    RedisWorkload::rand().with_profile(profile).generate(7)
}

#[test]
fn sweeps_are_identical_at_every_job_count() {
    let trace = small_trace();
    let percents = [10u32, 25, 50, 75];
    let serial = sweep_cache_size(&trace, &SystemModel::kona(), &percents, 4096, 4);
    for jobs in JOB_COUNTS {
        let par = sweep_cache_size_jobs(
            &trace,
            &SystemModel::kona(),
            &percents,
            4096,
            4,
            Jobs::from_args(&["--jobs".into(), jobs.to_string()]),
        );
        assert_eq!(par, serial, "jobs={jobs} diverged from sequential sweep");
        // Byte-identical, not merely approximately equal: the rendered
        // form is what the experiment binaries print.
        assert_eq!(format!("{par:?}"), format!("{serial:?}"));
    }
}

/// Replays a deterministic access chunk on a fresh runtime and returns
/// its per-chunk results — what one `par_map` worker contributes.
fn run_chunk(chunk: usize) -> (Nanos, RuntimeStats) {
    let mut rt = KonaRuntime::new(ClusterConfig::small()).expect("runtime");
    let base = rt.allocate(64 * PAGE_SIZE_4K).expect("allocate");
    let mut rng = StdRng::seed_from_u64(chunk as u64 + 1);
    let mut total = Nanos::ZERO;
    for _ in 0..500 {
        let offset = rng.next_u64() % (64 * PAGE_SIZE_4K - 8);
        let kind = if rng.next_u64() % 3 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let access = MemAccess::new(VirtAddr::new(base.raw() + offset), 8, kind);
        total = total + rt.access(access).expect("access");
    }
    (total, rt.stats())
}

#[test]
fn merged_runtime_stats_match_sequential() {
    let chunks: Vec<usize> = (0..4).collect();
    let serial: Vec<(Nanos, RuntimeStats)> =
        chunks.iter().map(|&c| run_chunk(c)).collect();
    let mut serial_merged = RuntimeStats::default();
    for (_, s) in &serial {
        serial_merged.merge(s);
    }
    for jobs in JOB_COUNTS {
        let par = par_map(
            Jobs::from_args(&["--jobs".into(), jobs.to_string()]),
            chunks.clone(),
            |_, c| run_chunk(c),
        );
        let mut merged = RuntimeStats::default();
        for (_, s) in &par {
            merged.merge(s);
        }
        let times: Vec<Nanos> = par.iter().map(|(t, _)| *t).collect();
        let serial_times: Vec<Nanos> = serial.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, serial_times, "jobs={jobs} reordered chunk results");
        assert_eq!(
            format!("{merged:?}"),
            format!("{serial_merged:?}"),
            "jobs={jobs} merged RuntimeStats diverged"
        );
    }
}

/// One worker's telemetry contribution: counters, a gauge and histogram
/// samples derived deterministically from the item index.
fn record_chunk(tel: &Telemetry, item: usize) {
    tel.counter("det.ops").add(10 + item as u64);
    tel.gauge("det.last_item").set(item as f64);
    for i in 0..20u64 {
        tel.histogram("det.latency_ns").record((item as u64 + 1) * 100 + i);
    }
}

#[test]
fn absorbed_telemetry_matches_sequential() {
    let items: Vec<usize> = (0..6).collect();

    let sequential = Telemetry::disabled();
    for &i in &items {
        record_chunk(&sequential, i);
    }
    let expected = sequential.metrics_json();

    for jobs in JOB_COUNTS {
        let merged = Telemetry::disabled();
        let dumps = par_map(
            Jobs::from_args(&["--jobs".into(), jobs.to_string()]),
            items.clone(),
            |_, i| {
                let local = Telemetry::disabled();
                record_chunk(&local, i);
                local.dump()
            },
        );
        for dump in &dumps {
            merged.absorb(dump);
        }
        assert_eq!(
            merged.metrics_json(),
            expected,
            "jobs={jobs} merged telemetry diverged"
        );
    }
}
