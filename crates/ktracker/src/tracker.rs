//! The tracker driver: windowed runs in snapshot or write-protect mode.

use crate::memory::AppMemory;
use crate::snapshot::SnapshotStore;
use kona_trace::{Trace, TraceEvent, Windows};
use kona_types::{Nanos, PageNumber, CACHE_LINE_SIZE, PAGE_SIZE_4K};
use kona_vm_sim::PmlLog;

/// Cost of one write-protection (minor) page fault.
const WP_FAULT: Nanos = Nanos::micros(3);
/// Cost of re-protecting one page at a window boundary (PTE update + TLB
/// invalidation).
const REPROTECT: Nanos = Nanos::from_ns(700);

/// Which tracking mechanism to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackingMode {
    /// Kona's coherence-based cache-line tracking, emulated by snapshot
    /// diffing. No application-visible overhead is charged: the hardware
    /// tracks writebacks for free.
    Coherence,
    /// Virtual-memory write protection: a minor fault on the first write
    /// to each page per window, plus per-page re-protection work at each
    /// window boundary.
    WriteProtect,
    /// Intel Page Modification Logging (related work, §8): hardware logs
    /// dirty pages in 512-entry batches — no write faults, but still page
    /// granularity, plus a per-page D-bit reset at each window boundary.
    Pml,
}

/// Cost of clearing one page's EPT dirty bit at a window boundary (PML
/// tracking reset).
const PML_DBIT_RESET: Nanos = Nanos::from_ns(100);

/// Per-window measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowReport {
    /// Window index.
    pub window: usize,
    /// Pages dirtied in the window.
    pub dirty_pages: usize,
    /// Dirty cache lines found by diffing.
    pub dirty_lines: usize,
    /// 4 KiB-page tracked bytes over cache-line tracked bytes — the Fig 9
    /// y-axis.
    pub amplification_ratio: f64,
    /// Tracking overhead charged to the application in this window
    /// (nonzero only in write-protect mode).
    pub tracking_overhead: Nanos,
}

/// Whole-run results.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerReport {
    /// Mode the run used.
    pub mode: TrackingMode,
    /// Per-window series (windows with no writes are omitted, as in the
    /// paper's plots).
    pub windows: Vec<WindowReport>,
    /// Total application time: the trace's wall-clock duration plus all
    /// tracking overhead.
    pub total_time: Nanos,
    /// Emulation overhead: bytes copied + compared by the snapshot
    /// machinery (§6.3's simulation-overhead accounting).
    pub emulation_bytes: u64,
}

impl TrackerReport {
    /// Total tracking overhead across windows.
    pub fn total_overhead(&self) -> Nanos {
        self.windows.iter().map(|w| w.tracking_overhead).sum()
    }

    /// Dirty-byte-weighted mean of the per-window amplification ratios.
    pub fn mean_amplification_ratio(&self) -> f64 {
        let total: usize = self.windows.iter().map(|w| w.dirty_lines).sum();
        if total == 0 {
            return 0.0;
        }
        self.windows
            .iter()
            .map(|w| w.amplification_ratio * w.dirty_lines as f64 / total as f64)
            .sum()
    }
}

/// Computes the Fig 10 metric: the speedup of coherence-based tracking
/// relative to write-protection, in percent.
pub fn speedup_percent(coherence: &TrackerReport, write_protect: &TrackerReport) -> f64 {
    let wp = write_protect.total_time.as_ns() as f64;
    let coh = coherence.total_time.as_ns() as f64;
    if wp == 0.0 {
        return 0.0;
    }
    (wp - coh) / wp * 100.0
}

/// The KTracker driver.
///
/// # Examples
///
/// ```
/// # use kona_ktracker::{KTracker, TrackingMode};
/// # use kona_trace::{Trace, TraceEvent};
/// # use kona_types::{MemAccess, Nanos, VirtAddr};
/// let mut t = Trace::new();
/// t.push(TraceEvent::new(Nanos::ZERO, MemAccess::write(VirtAddr::new(0), 8)));
/// let report = KTracker::new(Nanos::secs(1)).run(&t, TrackingMode::Coherence);
/// assert_eq!(report.windows.len(), 1);
/// assert_eq!(report.windows[0].dirty_lines, 1);
/// ```
#[derive(Debug, Clone)]
pub struct KTracker {
    window_width: Nanos,
}

impl KTracker {
    /// Creates a tracker with the given window width (the paper uses 1 s).
    pub fn new(window_width: Nanos) -> Self {
        KTracker { window_width }
    }

    /// Runs a trace in the given mode.
    pub fn run(&self, trace: &Trace, mode: TrackingMode) -> TrackerReport {
        let mut memory = AppMemory::new();
        let mut snapshots = SnapshotStore::new();
        let mut windows = Vec::new();

        for (idx, events) in Windows::new(trace, self.window_width).iter().enumerate() {
            let report = self.run_window(idx, events, mode, &mut memory, &mut snapshots);
            if let Some(r) = report {
                windows.push(r);
            }
            // "KTracker updates its memory snapshot every second."
            snapshots.refresh(&memory);
        }

        let overhead: Nanos = windows.iter().map(|w| w.tracking_overhead).sum();
        let (copied, compared) = snapshots.overhead_bytes();
        TrackerReport {
            mode,
            total_time: trace.duration() + overhead,
            windows,
            emulation_bytes: copied + compared,
        }
    }

    fn run_window(
        &self,
        idx: usize,
        events: &[TraceEvent],
        mode: TrackingMode,
        memory: &mut AppMemory,
        snapshots: &mut SnapshotStore,
    ) -> Option<WindowReport> {
        let mut wp_faulted_pages: kona_types::FxHashSet<u64> = kona_types::FxHashSet::default();
        for e in events {
            if e.access.kind.is_write() {
                let mut page = e.access.addr.raw() / PAGE_SIZE_4K;
                let last = (e.access.end().raw() - 1) / PAGE_SIZE_4K;
                while page <= last {
                    wp_faulted_pages.insert(page);
                    page += 1;
                }
            }
            memory.apply(e.access);
        }

        let dirty = snapshots.diff(memory);
        let dirty_pages = dirty.len();
        let dirty_lines: usize = dirty.values().map(|bm| bm.count_set()).sum();
        if dirty_pages == 0 {
            return None;
        }

        let tracking_overhead = match mode {
            TrackingMode::Coherence => Nanos::ZERO,
            TrackingMode::WriteProtect => {
                // One minor fault per first-written page, plus re-protection
                // of every dirty page at the window boundary.
                WP_FAULT * wp_faulted_pages.len() as u64 + REPROTECT * dirty_pages as u64
            }
            TrackingMode::Pml => {
                // Hardware appends + batched VM-exits + D-bit resets.
                let mut pml = PmlLog::new();
                for &page in &wp_faulted_pages {
                    pml.record_write(PageNumber(page));
                }
                pml.time_charged() + PML_DBIT_RESET * dirty_pages as u64
            }
        };

        let page_bytes = dirty_pages as u64 * PAGE_SIZE_4K;
        let line_bytes = dirty_lines as u64 * CACHE_LINE_SIZE;
        Some(WindowReport {
            window: idx,
            dirty_pages,
            dirty_lines,
            amplification_ratio: page_bytes as f64 / line_bytes as f64,
            tracking_overhead,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::{MemAccess, VirtAddr};

    fn ev(sec: u64, addr: u64, len: u32, write: bool) -> TraceEvent {
        let a = if write {
            MemAccess::write(VirtAddr::new(addr), len)
        } else {
            MemAccess::read(VirtAddr::new(addr), len)
        };
        TraceEvent::new(Nanos::secs(sec), a)
    }

    fn tracker() -> KTracker {
        KTracker::new(Nanos::secs(1))
    }

    #[test]
    fn sparse_writes_have_high_ratio() {
        // One 8-byte write per page in 4 pages: ratio 4096/64 = 64.
        let t: Trace = (0..4).map(|p| ev(0, p * 4096, 8, true)).collect();
        let r = tracker().run(&t, TrackingMode::Coherence);
        assert_eq!(r.windows.len(), 1);
        let w = &r.windows[0];
        assert_eq!(w.dirty_pages, 4);
        assert_eq!(w.dirty_lines, 4);
        assert_eq!(w.amplification_ratio, 64.0);
    }

    #[test]
    fn dense_writes_have_unit_ratio() {
        let t: Trace = vec![ev(0, 0, 4096, true)].into_iter().collect();
        let r = tracker().run(&t, TrackingMode::Coherence);
        assert_eq!(r.windows[0].amplification_ratio, 1.0);
    }

    #[test]
    fn read_only_windows_omitted() {
        let t: Trace = vec![ev(0, 0, 64, false), ev(2, 0, 64, true)].into_iter().collect();
        let r = tracker().run(&t, TrackingMode::Coherence);
        assert_eq!(r.windows.len(), 1);
        assert_eq!(r.windows[0].window, 2);
    }

    #[test]
    fn rewrite_across_windows_counts_again() {
        // Same line written in two windows: dirty in both (it was
        // re-snapshotted in between).
        let t: Trace = vec![ev(0, 0, 8, true), ev(1, 0, 8, true)].into_iter().collect();
        let r = tracker().run(&t, TrackingMode::Coherence);
        assert_eq!(r.windows.len(), 2);
        assert_eq!(r.windows[1].dirty_lines, 1);
    }

    #[test]
    fn write_protect_charges_faults() {
        let t: Trace = (0..10).map(|p| ev(0, p * 4096, 8, true)).collect();
        let coh = tracker().run(&t, TrackingMode::Coherence);
        let wp = tracker().run(&t, TrackingMode::WriteProtect);
        assert_eq!(coh.total_overhead(), Nanos::ZERO);
        // 10 faults + 10 re-protections.
        assert_eq!(wp.total_overhead(), WP_FAULT * 10 + REPROTECT * 10);
        assert!(speedup_percent(&coh, &wp) > 0.0);
    }

    #[test]
    fn one_fault_per_page_per_window() {
        // 64 writes to the same page in one window: one WP fault.
        let t: Trace = (0..64).map(|l| ev(0, l * 64, 8, true)).collect();
        let wp = tracker().run(&t, TrackingMode::WriteProtect);
        assert_eq!(wp.total_overhead(), WP_FAULT + REPROTECT);
    }

    #[test]
    fn random_speedup_exceeds_sequential() {
        // Sequential: 64 full-page writes to 64 pages, all lines dirty →
        // fault cost amortized over lots of dirty data. Random: 64 sparse
        // writes to 64 pages → same fault cost, tiny dirty data. Relative
        // to the same wall-clock, speedup is identical here, so compare
        // overhead per dirty byte instead (the paper's mechanism).
        let seq: Trace = (0..64).map(|p| ev(0, p * 4096, 4096, true)).collect();
        let rand: Trace = (0..64).map(|p| ev(0, p * 4096, 8, true)).collect();
        let seq_wp = tracker().run(&seq, TrackingMode::WriteProtect);
        let rand_wp = tracker().run(&rand, TrackingMode::WriteProtect);
        let seq_bytes: usize = seq_wp.windows.iter().map(|w| w.dirty_lines).sum();
        let rand_bytes: usize = rand_wp.windows.iter().map(|w| w.dirty_lines).sum();
        let seq_cost = seq_wp.total_overhead().as_ns() as f64 / seq_bytes as f64;
        let rand_cost = rand_wp.total_overhead().as_ns() as f64 / rand_bytes as f64;
        assert!(rand_cost > seq_cost * 10.0);
    }

    #[test]
    fn pml_cheaper_than_wp_but_not_free() {
        let t: Trace = (0..600).map(|p| ev(0, p * 4096, 8, true)).collect();
        let coh = tracker().run(&t, TrackingMode::Coherence);
        let wp = tracker().run(&t, TrackingMode::WriteProtect);
        let pml = tracker().run(&t, TrackingMode::Pml);
        assert!(pml.total_overhead() > Nanos::ZERO);
        assert!(pml.total_overhead() < wp.total_overhead() / 5);
        assert_eq!(coh.total_overhead(), Nanos::ZERO);
        // PML still tracks at page granularity: amplification unchanged.
        assert_eq!(
            pml.windows[0].amplification_ratio,
            wp.windows[0].amplification_ratio
        );
    }

    #[test]
    fn mean_ratio_weighted() {
        let t: Trace = vec![
            ev(0, 0, 8, true),      // ratio 64, 1 line
            ev(1, 4096, 4096, true), // ratio 1, 64 lines
        ]
        .into_iter()
        .collect();
        let r = tracker().run(&t, TrackingMode::Coherence);
        let mean = r.mean_amplification_ratio();
        assert!((mean - (64.0 / 65.0 + 64.0 / 65.0 * 0.0 + 1.0 * 64.0 / 65.0)).abs() < 2.0);
        assert!(mean < 3.0, "dense window dominates: {mean}");
    }

    #[test]
    fn emulation_overhead_reported() {
        let t: Trace = vec![ev(0, 0, 8, true)].into_iter().collect();
        let r = tracker().run(&t, TrackingMode::Coherence);
        assert!(r.emulation_bytes > 0);
    }
}
