//! A byte-accurate sparse application memory.

use kona_types::{FxHashMap, MemAccess, PAGE_SIZE_4K};

/// Sparse page-granularity memory that materializes pages on first touch.
///
/// Writes stamp the touched bytes with a monotonically increasing value so
/// that snapshot diffs always observe a change (a real application can
/// rewrite a byte with the same value, which snapshot-based tracking would
/// — correctly — not report as dirty; using fresh stamps gives the
/// conservative upper bound the tracker wants).
///
/// # Examples
///
/// ```
/// # use kona_ktracker::AppMemory;
/// # use kona_types::{MemAccess, VirtAddr};
/// let mut mem = AppMemory::new();
/// mem.apply(MemAccess::write(VirtAddr::new(100), 8));
/// assert_eq!(mem.touched_pages(), 1);
/// assert_ne!(mem.page(0).unwrap()[100], 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AppMemory {
    pages: FxHashMap<u64, Vec<u8>>,
    stamp: u8,
}

impl AppMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        AppMemory::default()
    }

    /// Applies one access: reads materialize the page; writes also stamp
    /// the byte range.
    pub fn apply(&mut self, access: MemAccess) {
        if access.kind.is_write() {
            self.stamp = self.stamp.wrapping_add(1).max(1);
        }
        let mut addr = access.addr.raw();
        let end = access.end().raw();
        while addr < end {
            let page = addr / PAGE_SIZE_4K;
            let in_page = (PAGE_SIZE_4K - addr % PAGE_SIZE_4K).min(end - addr);
            let data = self
                .pages
                .entry(page)
                .or_insert_with(|| vec![0; PAGE_SIZE_4K as usize]);
            if access.kind.is_write() {
                let s = (addr % PAGE_SIZE_4K) as usize;
                data[s..s + in_page as usize].fill(self.stamp);
            }
            addr += in_page;
        }
    }

    /// The page's bytes, if it has been touched.
    pub fn page(&self, page_number: u64) -> Option<&[u8]> {
        self.pages.get(&page_number).map(Vec::as_slice)
    }

    /// Number of touched pages.
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }

    /// Iterates over `(page_number, bytes)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8])> + '_ {
        self.pages.iter().map(|(&p, d)| (p, d.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::VirtAddr;

    #[test]
    fn reads_materialize_without_stamping() {
        let mut mem = AppMemory::new();
        mem.apply(MemAccess::read(VirtAddr::new(0), 8));
        assert_eq!(mem.touched_pages(), 1);
        assert_eq!(mem.page(0).unwrap()[0], 0);
    }

    #[test]
    fn writes_stamp_fresh_values() {
        let mut mem = AppMemory::new();
        mem.apply(MemAccess::write(VirtAddr::new(0), 4));
        let first = mem.page(0).unwrap()[0];
        mem.apply(MemAccess::write(VirtAddr::new(0), 4));
        let second = mem.page(0).unwrap()[0];
        assert_ne!(first, second, "rewrites must change bytes");
        assert_ne!(second, 0);
    }

    #[test]
    fn write_spanning_pages() {
        let mut mem = AppMemory::new();
        mem.apply(MemAccess::write(VirtAddr::new(PAGE_SIZE_4K - 4), 8));
        assert_eq!(mem.touched_pages(), 2);
        assert_ne!(mem.page(0).unwrap()[(PAGE_SIZE_4K - 1) as usize], 0);
        assert_ne!(mem.page(1).unwrap()[0], 0);
        assert_eq!(mem.page(1).unwrap()[4], 0);
    }

    #[test]
    fn stamp_wraps_without_zero() {
        let mut mem = AppMemory::new();
        for _ in 0..600 {
            mem.apply(MemAccess::write(VirtAddr::new(0), 1));
        }
        assert_ne!(mem.page(0).unwrap()[0], 0);
    }
}
