//! Page snapshots and cache-line diffing.

use crate::memory::AppMemory;
use kona_types::{FxHashMap, LineBitmap, CACHE_LINE_SIZE, LINES_PER_PAGE_4K, PAGE_SIZE_4K};

/// Snapshots of application pages, diffed at cache-line granularity.
///
/// This is KTracker's core mechanism: "it diffs the application's memory
/// with the copy to find out dirty cache lines" (§5).
///
/// # Examples
///
/// ```
/// # use kona_ktracker::{AppMemory, SnapshotStore};
/// # use kona_types::{MemAccess, VirtAddr};
/// let mut mem = AppMemory::new();
/// let mut snaps = SnapshotStore::new();
/// mem.apply(MemAccess::write(VirtAddr::new(0), 8));
/// snaps.refresh(&mem);
/// mem.apply(MemAccess::write(VirtAddr::new(64), 8)); // line 1
/// let dirty = snaps.diff(&mem);
/// assert_eq!(dirty.get(&0).unwrap().iter_set().collect::<Vec<_>>(), vec![1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SnapshotStore {
    pages: FxHashMap<u64, Vec<u8>>,
    /// Bytes copied over the store's lifetime (emulation overhead input).
    bytes_copied: u64,
    /// Bytes compared over the store's lifetime.
    bytes_compared: u64,
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SnapshotStore::default()
    }

    /// Copies the current state of every touched page ("includes all
    /// accessed pages", §5).
    pub fn refresh(&mut self, memory: &AppMemory) {
        for (page, data) in memory.iter() {
            self.bytes_copied += PAGE_SIZE_4K;
            self.pages.insert(page, data.to_vec());
        }
    }

    /// Diffs current memory against the snapshots: per page, the bitmap of
    /// cache lines whose bytes changed. Pages without changes are omitted;
    /// pages never snapshotted count as fully relevant only where nonzero
    /// (fresh pages diff against zeros).
    pub fn diff(&mut self, memory: &AppMemory) -> FxHashMap<u64, LineBitmap> {
        let zero = vec![0u8; PAGE_SIZE_4K as usize];
        let mut dirty = FxHashMap::default();
        for (page, data) in memory.iter() {
            let base = self.pages.get(&page).unwrap_or(&zero);
            self.bytes_compared += PAGE_SIZE_4K;
            let mut bm = LineBitmap::new(LINES_PER_PAGE_4K);
            for line in 0..LINES_PER_PAGE_4K {
                let s = line * CACHE_LINE_SIZE as usize;
                let e = s + CACHE_LINE_SIZE as usize;
                if data[s..e] != base[s..e] {
                    bm.set(line);
                }
            }
            if bm.any() {
                dirty.insert(page, bm);
            }
        }
        dirty
    }

    /// Lifetime `(bytes_copied, bytes_compared)` — the inputs to the §6.3
    /// simulation-overhead accounting (95% of KTracker's overhead is
    /// copying and comparing).
    pub fn overhead_bytes(&self) -> (u64, u64) {
        (self.bytes_copied, self.bytes_compared)
    }

    /// Number of snapshotted pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Returns `true` if nothing has been snapshotted.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::{MemAccess, VirtAddr};

    #[test]
    fn no_changes_no_dirty() {
        let mut mem = AppMemory::new();
        mem.apply(MemAccess::write(VirtAddr::new(0), 8));
        let mut snaps = SnapshotStore::new();
        snaps.refresh(&mem);
        assert!(snaps.diff(&mem).is_empty());
    }

    #[test]
    fn fresh_page_diffs_against_zeros() {
        let mut mem = AppMemory::new();
        mem.apply(MemAccess::write(VirtAddr::new(128), 8));
        let mut snaps = SnapshotStore::new();
        let dirty = snaps.diff(&mem);
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[&0].iter_set().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn reads_never_dirty() {
        let mut mem = AppMemory::new();
        mem.apply(MemAccess::read(VirtAddr::new(0), 4096));
        let mut snaps = SnapshotStore::new();
        snaps.refresh(&mem);
        mem.apply(MemAccess::read(VirtAddr::new(0), 4096));
        assert!(snaps.diff(&mem).is_empty());
    }

    #[test]
    fn multi_line_write_sets_all_lines() {
        let mut mem = AppMemory::new();
        let mut snaps = SnapshotStore::new();
        snaps.refresh(&mem);
        mem.apply(MemAccess::write(VirtAddr::new(0), 256));
        let dirty = snaps.diff(&mem);
        assert_eq!(dirty[&0].count_set(), 4);
    }

    #[test]
    fn overhead_accounting() {
        let mut mem = AppMemory::new();
        mem.apply(MemAccess::write(VirtAddr::new(0), 8));
        let mut snaps = SnapshotStore::new();
        snaps.refresh(&mem);
        snaps.diff(&mem);
        let (copied, compared) = snaps.overhead_bytes();
        assert_eq!(copied, 4096);
        assert_eq!(compared, 4096);
        assert_eq!(snaps.len(), 1);
        assert!(!snaps.is_empty());
    }
}
