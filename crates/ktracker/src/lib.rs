//! KTracker: the dirty-data-tracking emulator (§5, §6.3).
//!
//! "We developed KTracker to emulate Kona dirty data tracking at
//! cache-line granularity by comparing snapshots of the application's
//! memory in software ... KTracker updates its memory snapshot every
//! second ... KTracker can also run in write-protection mode, where it
//! write-protects pages to track what pages have changed. This emulates a
//! current remote memory system based on virtual memory, allowing us to
//! compare the cache-line tracking in the same environment ... for a real
//! apples-to-apples comparison."
//!
//! The tracker drives a workload trace against a byte-accurate
//! [`AppMemory`], snapshots pages each window, and diffs to find dirty
//! cache lines — exactly the paper's emulation strategy. Write-protect
//! mode instead charges a minor fault per first-write-per-page-per-window
//! plus the re-protection TLB work, yielding the Fig 10 speedup and the
//! Fig 9 amplification series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod memory;
mod snapshot;
mod tracker;

pub use memory::AppMemory;
pub use snapshot::SnapshotStore;
pub use tracker::{speedup_percent, KTracker, TrackerReport, TrackingMode, WindowReport};
