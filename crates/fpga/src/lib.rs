//! The cache-coherent FPGA model (§4.3 of the paper).
//!
//! The reference architecture attaches an FPGA to the CPU over a coherent
//! interconnect. The FPGA exports **VFMem**, a fake physical address space
//! larger than its attached DRAM (**FMem**), and backs it with remote
//! memory. Because the FPGA implements the coherence directory for VFMem,
//! it observes every cache-line request (the `cache-remote-data` primitive)
//! and every writeback (the `track-local-data` primitive) — with no page
//! faults and at cache-line granularity.
//!
//! [`KonaFpga`] composes:
//!
//! * a [`kona_coherence::CoherenceSystem`] as the VFMem directory,
//! * [`FMemCache`] — a 4-way set-associative, page-block cache over FMem
//!   (§4.4's local translation),
//! * [`DirtyTracker`] — per-page dirty cache-line bitmaps fed by observed
//!   writebacks,
//! * [`RemoteTranslation`] — the slab hashmap from VFMem pages to remote
//!   addresses (§4.4's remote translation),
//! * [`NextPagePrefetcher`] — sequential prefetch across page boundaries,
//!   which page-fault-based systems cannot do (§4.4).
//!
//! The FPGA model is *mechanism only*: the Kona runtime (crate `kona`)
//! performs the actual RDMA transfers and charges latencies.
//!
//! # Examples
//!
//! ```
//! use kona_fpga::{CpuAccessOutcome, FpgaConfig, KonaFpga};
//! use kona_types::{AccessKind, VfMemAddr};
//!
//! let mut fpga = KonaFpga::new(FpgaConfig::small());
//! match fpga.cpu_access(VfMemAddr::new(0x1000), AccessKind::Read) {
//!     CpuAccessOutcome::RemoteFetch { page, .. } => assert_eq!(page.raw(), 1),
//!     other => panic!("expected remote fetch, got {other:?}"),
//! }
//! // Same line again: now a CPU cache hit.
//! assert!(matches!(
//!     fpga.cpu_access(VfMemAddr::new(0x1000), AccessKind::Read),
//!     CpuAccessOutcome::CpuCacheHit
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod dirty;
mod fmem;
mod prefetch;
mod translation;

pub use device::{CpuAccessOutcome, FpgaConfig, FpgaStats, KonaFpga, VictimPage};
pub use dirty::DirtyTracker;
pub use fmem::FMemCache;
pub use prefetch::NextPagePrefetcher;
pub use translation::RemoteTranslation;
