//! Sequential prefetching across page boundaries.
//!
//! Page-fault-based remote memory cannot prefetch past a fault: "a
//! prefetch operation does not happen across a page fault, so current
//! remote memory systems cannot benefit from the existing hardware
//! prefetchers" (§3). Kona's pages are always mapped present, so the
//! hardware prefetcher's requests reach the FPGA, which can pull whole
//! pages from remote memory ahead of use (§4.4).
//!
//! [`NextPagePrefetcher`] is a simple stream detector: after `threshold`
//! consecutive page fetches it suggests prefetching `depth` pages ahead.

use kona_types::PageNumber;

/// Detects ascending page-fetch streams and suggests prefetch candidates.
///
/// # Examples
///
/// ```
/// # use kona_fpga::NextPagePrefetcher;
/// # use kona_types::PageNumber;
/// let mut pf = NextPagePrefetcher::new(2, 1);
/// assert!(pf.observe_fetch(PageNumber(10)).is_empty());
/// // Second consecutive page confirms a stream: prefetch the next one.
/// assert_eq!(pf.observe_fetch(PageNumber(11)), vec![PageNumber(12)]);
/// ```
#[derive(Debug, Clone)]
pub struct NextPagePrefetcher {
    threshold: u32,
    depth: u64,
    last_page: Option<u64>,
    run_length: u32,
}

impl NextPagePrefetcher {
    /// Creates a prefetcher that confirms a stream after `threshold`
    /// consecutive pages and then prefetches `depth` pages ahead.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u32, depth: u64) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        NextPagePrefetcher {
            threshold,
            depth,
            last_page: None,
            run_length: 0,
        }
    }

    /// A disabled prefetcher (suggests nothing) — the configuration used
    /// by KCacheSim's conservative simulations ("our simulations are with
    /// memory prefetching turned off", §6.2).
    pub fn disabled() -> Self {
        NextPagePrefetcher {
            threshold: u32::MAX,
            depth: 0,
            last_page: None,
            run_length: 0,
        }
    }

    /// Records a demand fetch of `page`; returns pages to prefetch.
    pub fn observe_fetch(&mut self, page: PageNumber) -> Vec<PageNumber> {
        let p = page.raw();
        self.run_length = match self.last_page {
            Some(last) if p == last + 1 => self.run_length.saturating_add(1),
            _ => 1,
        };
        self.last_page = Some(p);
        if self.run_length >= self.threshold && self.depth > 0 {
            (1..=self.depth).map(|d| PageNumber(p + d)).collect()
        } else {
            Vec::new()
        }
    }

    /// Resets stream state (e.g. after the eviction handler reshuffles the
    /// cache).
    pub fn reset(&mut self) {
        self.last_page = None;
        self.run_length = 0;
    }
}

impl Default for NextPagePrefetcher {
    fn default() -> Self {
        NextPagePrefetcher::new(2, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_confirmation() {
        let mut pf = NextPagePrefetcher::new(3, 2);
        assert!(pf.observe_fetch(PageNumber(5)).is_empty());
        assert!(pf.observe_fetch(PageNumber(6)).is_empty());
        assert_eq!(
            pf.observe_fetch(PageNumber(7)),
            vec![PageNumber(8), PageNumber(9)]
        );
        // Stream continues.
        assert_eq!(
            pf.observe_fetch(PageNumber(8)),
            vec![PageNumber(9), PageNumber(10)]
        );
    }

    #[test]
    fn random_access_never_triggers() {
        let mut pf = NextPagePrefetcher::new(2, 1);
        for p in [3u64, 9, 5, 100, 42] {
            assert!(pf.observe_fetch(PageNumber(p)).is_empty());
        }
    }

    #[test]
    fn break_resets_run() {
        let mut pf = NextPagePrefetcher::new(2, 1);
        pf.observe_fetch(PageNumber(1));
        assert!(!pf.observe_fetch(PageNumber(2)).is_empty());
        assert!(pf.observe_fetch(PageNumber(9)).is_empty()); // break: run restarts at 1
        assert!(!pf.observe_fetch(PageNumber(10)).is_empty()); // run=2 triggers again
    }

    #[test]
    fn disabled_never_suggests() {
        let mut pf = NextPagePrefetcher::disabled();
        for p in 0..100u64 {
            assert!(pf.observe_fetch(PageNumber(p)).is_empty());
        }
    }

    #[test]
    fn reset_clears_stream() {
        let mut pf = NextPagePrefetcher::new(2, 1);
        pf.observe_fetch(PageNumber(1));
        pf.reset();
        assert!(pf.observe_fetch(PageNumber(2)).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_threshold_rejected() {
        NextPagePrefetcher::new(0, 1);
    }
}
