//! Remote translation: VFMem slabs → remote addresses.
//!
//! "Upon a memory allocation, Kona stores metadata in a hashmap recording
//! the remote memory addresses corresponding to each allocated slab ...
//! The FPGA never updates the map, but it consults it when it fetches data
//! from a remote host or when it writes dirty data back" (§4.4).

use kona_types::{KonaError, RemoteAddr, Result, VfMemAddr};
use std::cell::Cell;
use std::collections::BTreeMap;

/// Maps contiguous VFMem ranges (slabs) to remote memory.
///
/// # Examples
///
/// ```
/// # use kona_fpga::RemoteTranslation;
/// # use kona_types::{RemoteAddr, VfMemAddr};
/// let mut rt = RemoteTranslation::new();
/// rt.register(VfMemAddr::new(0x10000), 0x4000, RemoteAddr::new(2, 0x800000)).unwrap();
/// let remote = rt.translate(VfMemAddr::new(0x11000)).unwrap();
/// assert_eq!(remote, RemoteAddr::new(2, 0x801000));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RemoteTranslation {
    /// slab start → (len, remote base), ordered for range lookup.
    slabs: BTreeMap<u64, (u64, RemoteAddr)>,
    /// Most-recently-translated slab `(start, len, remote)`. Fetches and
    /// writebacks stream through one slab at a time, so this turns the
    /// common `translate` into two compares instead of a tree walk. A
    /// `Cell` keeps `translate(&self)` immutable; mutation invalidates it.
    mru: Cell<Option<(u64, u64, RemoteAddr)>>,
}

impl RemoteTranslation {
    /// Creates an empty map.
    pub fn new() -> Self {
        RemoteTranslation::default()
    }

    /// Registers the slab `[base, base + len)` as backed by `remote`.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::InvalidConfig`] if the range overlaps an
    /// existing slab.
    pub fn register(&mut self, base: VfMemAddr, len: u64, remote: RemoteAddr) -> Result<()> {
        let start = base.raw();
        let end = start + len;
        // Check the previous and next slabs for overlap.
        if let Some((&prev_start, &(prev_len, _))) = self.slabs.range(..=start).next_back() {
            if prev_start + prev_len > start {
                return Err(KonaError::InvalidConfig(format!(
                    "slab at {start:#x} overlaps existing slab at {prev_start:#x}"
                )));
            }
        }
        if let Some((&next_start, _)) = self.slabs.range(start..).next() {
            if next_start < end {
                return Err(KonaError::InvalidConfig(format!(
                    "slab at {start:#x} overlaps existing slab at {next_start:#x}"
                )));
            }
        }
        self.slabs.insert(start, (len, remote));
        self.mru.set(None);
        Ok(())
    }

    /// Removes the slab starting exactly at `base`; returns its remote
    /// base if it existed.
    pub fn unregister(&mut self, base: VfMemAddr) -> Option<RemoteAddr> {
        self.mru.set(None);
        self.slabs.remove(&base.raw()).map(|(_, r)| r)
    }

    /// Translates a VFMem address to its remote location.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::NoRemoteTranslation`] if no slab covers the
    /// address.
    pub fn translate(&self, addr: VfMemAddr) -> Result<RemoteAddr> {
        let a = addr.raw();
        if let Some((start, len, remote)) = self.mru.get() {
            if a >= start && a < start + len {
                return Ok(remote.add(a - start));
            }
        }
        if let Some((&start, &(len, remote))) = self.slabs.range(..=a).next_back() {
            if a < start + len {
                self.mru.set(Some((start, len, remote)));
                return Ok(remote.add(a - start));
            }
        }
        Err(KonaError::NoRemoteTranslation(addr))
    }

    /// Number of registered slabs.
    pub fn slab_count(&self) -> usize {
        self.slabs.len()
    }

    /// Total VFMem bytes covered.
    pub fn covered_bytes(&self) -> u64 {
        self.slabs.values().map(|&(len, _)| len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::rng::{Rng, StdRng};

    #[test]
    fn translate_within_slab() {
        let mut rt = RemoteTranslation::new();
        rt.register(VfMemAddr::new(4096), 8192, RemoteAddr::new(1, 0))
            .unwrap();
        assert_eq!(rt.translate(VfMemAddr::new(4096)).unwrap(), RemoteAddr::new(1, 0));
        assert_eq!(
            rt.translate(VfMemAddr::new(4096 + 8191)).unwrap(),
            RemoteAddr::new(1, 8191)
        );
        assert!(rt.translate(VfMemAddr::new(4095)).is_err());
        assert!(rt.translate(VfMemAddr::new(4096 + 8192)).is_err());
    }

    #[test]
    fn overlap_rejected() {
        let mut rt = RemoteTranslation::new();
        rt.register(VfMemAddr::new(0), 4096, RemoteAddr::new(0, 0))
            .unwrap();
        assert!(rt
            .register(VfMemAddr::new(2048), 4096, RemoteAddr::new(0, 8192))
            .is_err());
        assert!(rt
            .register(VfMemAddr::new(4096), 4096, RemoteAddr::new(0, 8192))
            .is_ok());
        // New slab ending inside an existing one.
        assert!(rt
            .register(VfMemAddr::new(0), 1, RemoteAddr::new(0, 0))
            .is_err());
    }

    #[test]
    fn unregister() {
        let mut rt = RemoteTranslation::new();
        rt.register(VfMemAddr::new(0), 4096, RemoteAddr::new(3, 64))
            .unwrap();
        assert_eq!(rt.unregister(VfMemAddr::new(0)), Some(RemoteAddr::new(3, 64)));
        assert_eq!(rt.unregister(VfMemAddr::new(0)), None);
        assert!(rt.translate(VfMemAddr::new(0)).is_err());
    }

    #[test]
    fn counts() {
        let mut rt = RemoteTranslation::new();
        rt.register(VfMemAddr::new(0), 4096, RemoteAddr::new(0, 0))
            .unwrap();
        rt.register(VfMemAddr::new(8192), 4096, RemoteAddr::new(1, 0))
            .unwrap();
        assert_eq!(rt.slab_count(), 2);
        assert_eq!(rt.covered_bytes(), 8192);
    }

    /// The MRU slab cache never serves stale data across mutations.
    #[test]
    fn mru_invalidated_by_mutation() {
        let mut rt = RemoteTranslation::new();
        rt.register(VfMemAddr::new(0), 4096, RemoteAddr::new(0, 0))
            .unwrap();
        // Prime the MRU, then replace the slab under it.
        assert_eq!(rt.translate(VfMemAddr::new(16)).unwrap(), RemoteAddr::new(0, 16));
        rt.unregister(VfMemAddr::new(0));
        assert!(rt.translate(VfMemAddr::new(16)).is_err());
        rt.register(VfMemAddr::new(0), 4096, RemoteAddr::new(5, 1024))
            .unwrap();
        assert_eq!(
            rt.translate(VfMemAddr::new(16)).unwrap(),
            RemoteAddr::new(5, 1024 + 16)
        );
        // Repeated hits stay on the cached slab.
        for i in 0..64u64 {
            assert_eq!(
                rt.translate(VfMemAddr::new(i * 64)).unwrap(),
                RemoteAddr::new(5, 1024 + i * 64)
            );
        }
    }

    /// For any registered slab, translation is a linear offset map.
    #[test]
    fn prop_linear_translation() {
        let mut rng = StdRng::seed_from_u64(0x7245);
        for _ in 0..256 {
            let off = rng.gen_range(0u64..65536);
            let len = rng.gen_range(1u64..65536);
            let probe = rng.gen_range(0u64..65536);
            let mut rt = RemoteTranslation::new();
            rt.register(VfMemAddr::new(off), len, RemoteAddr::new(7, 1 << 20))
                .unwrap();
            let addr = VfMemAddr::new(off + probe);
            let result = rt.translate(addr);
            if probe < len {
                assert_eq!(result.unwrap(), RemoteAddr::new(7, (1 << 20) + probe));
            } else {
                assert!(result.is_err());
            }
        }
    }
}
