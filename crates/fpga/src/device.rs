//! The composed FPGA device.

use crate::dirty::DirtyTracker;
use crate::fmem::FMemCache;
use crate::prefetch::NextPagePrefetcher;
use crate::translation::RemoteTranslation;
use kona_coherence::{AgentId, CoherenceStats, CoherenceSystem};
use kona_telemetry::{Counter, Gauge, Telemetry};
use kona_types::{
    AccessKind, FxHashSet, LineBitmap, LineIndex, PageNumber, RemoteAddr, Result, VfMemAddr,
    LINES_PER_PAGE_4K, PAGE_SIZE_4K,
};

/// FPGA configuration.
#[derive(Debug, Clone)]
pub struct FpgaConfig {
    /// Number of CPU cache agents observed by the VFMem directory.
    pub cpu_agents: usize,
    /// Capacity of each CPU agent's cache, in lines.
    pub cpu_cache_lines: usize,
    /// FMem capacity in pages.
    pub fmem_pages: usize,
    /// FMem associativity (the paper uses 4, §4.4).
    pub fmem_ways: usize,
    /// Prefetcher; [`NextPagePrefetcher::disabled`] for conservative runs.
    pub prefetcher: NextPagePrefetcher,
}

impl FpgaConfig {
    /// A small configuration convenient for tests and examples: one CPU
    /// agent with a 256-line cache and a 64-page FMem.
    pub fn small() -> Self {
        FpgaConfig {
            cpu_agents: 1,
            cpu_cache_lines: 256,
            fmem_pages: 64,
            fmem_ways: 4,
            prefetcher: NextPagePrefetcher::disabled(),
        }
    }

    /// Returns the configuration with a different FMem size.
    #[must_use]
    pub fn with_fmem_pages(mut self, pages: usize) -> Self {
        self.fmem_pages = pages;
        self
    }

    /// Returns the configuration with the given prefetcher.
    #[must_use]
    pub fn with_prefetcher(mut self, prefetcher: NextPagePrefetcher) -> Self {
        self.prefetcher = prefetcher;
        self
    }
}

/// A page dropped from FMem to make room, together with its dirty lines
/// (already snooped out of CPU caches); the runtime must write those lines
/// to remote memory before reusing the frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VictimPage {
    /// The evicted VFMem page.
    pub page: PageNumber,
    /// Its dirty cache lines (empty bitmap if the page is clean and the
    /// eviction is silent).
    pub dirty_lines: LineBitmap,
}

impl VictimPage {
    /// Whether any line must be written back.
    pub fn is_dirty(&self) -> bool {
        self.dirty_lines.any()
    }
}

/// Outcome of one CPU access to VFMem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuAccessOutcome {
    /// Served by the CPU cache hierarchy; the FPGA saw nothing.
    CpuCacheHit,
    /// Line fill served from FMem.
    FMemHit,
    /// Line fill required fetching `page` from remote memory; `victims`
    /// must be written back / dropped first, and `prefetch` pages may be
    /// pulled in the background.
    RemoteFetch {
        /// Page to fetch.
        page: PageNumber,
        /// FMem pages displaced by the fill.
        victims: Vec<VictimPage>,
        /// Prefetch suggestions (fetched off the critical path).
        prefetch: Vec<PageNumber>,
    },
}

/// FPGA counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FpgaStats {
    /// Accesses absorbed by CPU caches.
    pub cpu_hits: u64,
    /// Line fills served from FMem.
    pub fmem_hits: u64,
    /// Line fills requiring a remote fetch.
    pub remote_fetches: u64,
    /// Pages prefetched.
    pub prefetched_pages: u64,
    /// Prefetches suppressed while shedding was on (degraded mode).
    pub prefetches_shed: u64,
    /// Writebacks observed (dirty lines reaching the FPGA).
    pub writebacks_observed: u64,
    /// Snoop rounds issued (page-granularity).
    pub page_snoops: u64,
}

impl FpgaStats {
    /// Accumulates another device's counters (shard-merge aggregation).
    pub fn merge(&mut self, other: &FpgaStats) {
        self.cpu_hits += other.cpu_hits;
        self.fmem_hits += other.fmem_hits;
        self.remote_fetches += other.remote_fetches;
        self.prefetched_pages += other.prefetched_pages;
        self.prefetches_shed += other.prefetches_shed;
        self.writebacks_observed += other.writebacks_observed;
        self.page_snoops += other.page_snoops;
    }
}

/// The cache-coherent FPGA: VFMem directory + FMem cache + dirty bitmaps +
/// remote translation + prefetcher.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct KonaFpga {
    coherence: CoherenceSystem,
    fmem: FMemCache,
    dirty: DirtyTracker,
    translation: RemoteTranslation,
    prefetcher: NextPagePrefetcher,
    /// When set, prefetch suggestions are suppressed (degraded mode sheds
    /// speculative traffic while the fabric is unhealthy, §4.5).
    shed_prefetches: bool,
    stats: FpgaStats,
    metrics: FpgaCounters,
    /// Prefetched pages not yet touched by a demand access (for the
    /// issued-vs-useful ratio).
    prefetched_pending: FxHashSet<u64>,
    /// Dirty lines across expelled/snooped pages (compaction numerator).
    compaction_dirty_lines: u64,
    /// Pages expelled/snooped (compaction denominator, × lines/page).
    compaction_pages: u64,
    /// Span sink: FMem lookups, translations and prefetch decisions
    /// become instant markers inside whatever trace is open.
    telemetry: Telemetry,
}

/// Pre-resolved telemetry handles for the FPGA's hot paths.
#[derive(Debug, Clone)]
struct FpgaCounters {
    fmem_hits: Counter,
    fmem_misses: Counter,
    prefetch_issued: Counter,
    prefetch_useful: Counter,
    prefetch_shed: Counter,
    dirty_compaction: Gauge,
}

impl FpgaCounters {
    fn new(telemetry: &Telemetry) -> Self {
        FpgaCounters {
            fmem_hits: telemetry.counter("fmem.hits"),
            fmem_misses: telemetry.counter("fmem.misses"),
            prefetch_issued: telemetry.counter("fmem.prefetch_issued"),
            prefetch_useful: telemetry.counter("fmem.prefetch_useful"),
            prefetch_shed: telemetry.counter("fmem.prefetch_shed"),
            dirty_compaction: telemetry.gauge("fmem.dirty_compaction"),
        }
    }
}

impl KonaFpga {
    /// Builds the device from a configuration.
    pub fn new(config: FpgaConfig) -> Self {
        KonaFpga {
            coherence: CoherenceSystem::new(config.cpu_agents, config.cpu_cache_lines),
            fmem: FMemCache::new(config.fmem_pages, config.fmem_ways),
            dirty: DirtyTracker::new(),
            translation: RemoteTranslation::new(),
            prefetcher: config.prefetcher,
            shed_prefetches: false,
            stats: FpgaStats::default(),
            metrics: FpgaCounters::new(&Telemetry::disabled()),
            prefetched_pending: FxHashSet::default(),
            compaction_dirty_lines: 0,
            compaction_pages: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Routes the FPGA's metrics (FMem hit/miss, prefetch issued vs
    /// useful, dirty-bitmap compaction ratio) into `telemetry`'s registry
    /// and its lookup/translate/prefetch instants into the causal tracer.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = FpgaCounters::new(telemetry);
        self.telemetry = telemetry.clone();
    }

    /// Counters.
    pub fn stats(&self) -> FpgaStats {
        self.stats
    }

    /// The embedded coherence domain's counters.
    pub fn coherence_stats(&self) -> CoherenceStats {
        self.coherence.stats()
    }

    /// Turns prefetch shedding on or off. While on, the prefetcher still
    /// observes the fetch stream (so its stride state stays warm) but its
    /// suggestions are dropped instead of fetched — degraded mode uses
    /// this to stop speculative traffic while the fabric is unhealthy.
    pub fn set_prefetch_shedding(&mut self, shed: bool) {
        self.shed_prefetches = shed;
    }

    /// Assigns FMem eviction priority `priority` to the VFMem page range
    /// `[start_page, end_page)` — the QoS hook behind per-tenant eviction
    /// protection. See [`FMemCache::set_page_priority`] for the policy.
    ///
    /// [`FMemCache::set_page_priority`]: crate::FMemCache::set_page_priority
    pub fn set_page_priority(&mut self, start_page: u64, end_page: u64, priority: i8) {
        self.fmem.set_page_priority(start_page, end_page, priority);
    }

    /// The FMem eviction priority of `page` (0 unless a range was set).
    pub fn page_priority(&self, page: PageNumber) -> i8 {
        self.fmem.page_priority(page)
    }

    /// Whether prefetch shedding is currently on.
    pub fn prefetch_shedding(&self) -> bool {
        self.shed_prefetches
    }

    /// Fraction of cache lines dirty among pages expelled or snooped so
    /// far (what the cache-line log compacts a 4 KiB writeback down to);
    /// 0 before any page left FMem.
    pub fn dirty_compaction_ratio(&self) -> f64 {
        if self.compaction_pages == 0 {
            return 0.0;
        }
        self.compaction_dirty_lines as f64
            / (self.compaction_pages * LINES_PER_PAGE_4K as u64) as f64
    }

    /// The remote-translation map (the Resource Manager registers slabs
    /// here).
    pub fn translation_mut(&mut self) -> &mut RemoteTranslation {
        &mut self.translation
    }

    /// Translates a VFMem page to its remote address.
    ///
    /// # Errors
    ///
    /// Returns [`kona_types::KonaError::NoRemoteTranslation`] if no slab
    /// covers the page.
    pub fn translate_page(&self, page: PageNumber) -> Result<RemoteAddr> {
        let addr = self.translation.translate(page.base_vfmem())?;
        self.telemetry
            .instant(kona_telemetry::Track::App, kona_telemetry::EventKind::Translate);
        Ok(addr)
    }

    /// The dirty tracker (read access for inspection).
    pub fn dirty(&self) -> &DirtyTracker {
        &self.dirty
    }

    /// Whether `page` is resident in FMem.
    pub fn fmem_resident(&self, page: PageNumber) -> bool {
        self.fmem.contains(page)
    }

    /// Number of FMem-resident pages.
    pub fn fmem_resident_pages(&self) -> usize {
        self.fmem.resident_pages()
    }

    /// An eviction candidate chosen by FMem's LRU metadata.
    pub fn eviction_candidate(&self) -> Option<PageNumber> {
        self.fmem.eviction_candidate()
    }

    /// All FMem-resident pages (unspecified order) — used by `sync` to
    /// write back dirty lines of pages that were never evicted.
    pub fn resident_pages_list(&self) -> Vec<PageNumber> {
        self.fmem.resident().collect()
    }

    /// A CPU access (agent 0) to a VFMem address.
    pub fn cpu_access(&mut self, addr: VfMemAddr, kind: AccessKind) -> CpuAccessOutcome {
        self.cpu_access_from(AgentId(0), addr, kind)
    }

    /// A CPU access from a specific agent to a VFMem address.
    ///
    /// This is the heart of the `cache-remote-data` primitive: because the
    /// pages are always mapped present, the access arrives as a coherence
    /// request rather than a page fault, and the FPGA can serve it from
    /// FMem or fetch remotely.
    ///
    /// # Panics
    ///
    /// Panics if the agent id is out of range.
    pub fn cpu_access_from(
        &mut self,
        agent: AgentId,
        addr: VfMemAddr,
        kind: AccessKind,
    ) -> CpuAccessOutcome {
        let line = LineIndex(addr.raw() / 64);
        let result = match kind {
            AccessKind::Read => self.coherence.read(agent, line),
            AccessKind::Write => self.coherence.write(agent, line),
        };
        self.absorb_writebacks();

        if result.hit {
            self.stats.cpu_hits += 1;
            return CpuAccessOutcome::CpuCacheHit;
        }

        // Line fill request reached the VFMem directory.
        let page = addr.page_number();
        if self.fmem.touch(page) {
            self.stats.fmem_hits += 1;
            self.metrics.fmem_hits.inc();
            if self.prefetched_pending.remove(&page.raw()) {
                self.metrics.prefetch_useful.inc();
            }
            return CpuAccessOutcome::FMemHit;
        }

        // Remote fetch: install the page in FMem, evicting as needed.
        self.stats.remote_fetches += 1;
        self.metrics.fmem_misses.inc();
        self.telemetry
            .instant(kona_telemetry::Track::App, kona_telemetry::EventKind::FmemLookup);
        let mut victims = Vec::new();
        if let Some(victim) = self.fmem.insert(page) {
            victims.push(self.expel_page(victim));
        }
        let mut prefetch = Vec::new();
        for pf_page in self.prefetcher.observe_fetch(page) {
            if self.shed_prefetches {
                self.stats.prefetches_shed += 1;
                self.metrics.prefetch_shed.inc();
                continue;
            }
            if !self.fmem.contains(pf_page) && self.translate_page(pf_page).is_ok() {
                if let Some(victim) = self.fmem.insert(pf_page) {
                    victims.push(self.expel_page(victim));
                }
                self.stats.prefetched_pages += 1;
                self.metrics.prefetch_issued.inc();
                self.prefetched_pending.insert(pf_page.raw());
                prefetch.push(pf_page);
            }
        }
        if !prefetch.is_empty() {
            self.telemetry.instant(
                kona_telemetry::Track::App,
                kona_telemetry::EventKind::PrefetchHint,
            );
        }
        CpuAccessOutcome::RemoteFetch {
            page,
            victims,
            prefetch,
        }
    }

    /// Snoops all of `page`'s lines out of CPU caches and returns the
    /// complete dirty bitmap for the page, consuming the tracker's state —
    /// what the eviction handler calls before writing dirty lines out
    /// (§4.4: "When the FPGA decides to write out dirty cache lines, it has
    /// to snoop them from CPU caches").
    pub fn snoop_page_dirty(&mut self, page: PageNumber) -> LineBitmap {
        self.stats.page_snoops += 1;
        let first_line = page.raw() * (PAGE_SIZE_4K / 64);
        for i in 0..LINES_PER_PAGE_4K as u64 {
            self.coherence.recall(LineIndex(first_line + i));
        }
        self.absorb_writebacks();
        let bitmap = self
            .dirty
            .take_page(page)
            .unwrap_or_else(|| LineBitmap::new(LINES_PER_PAGE_4K));
        self.note_compaction(&bitmap);
        bitmap
    }

    /// Drops `page` from FMem (eviction-handler initiated), invalidating
    /// CPU copies, and returns its dirty bitmap.
    pub fn evict_page(&mut self, page: PageNumber) -> VictimPage {
        let victim = self.expel_page(page);
        self.fmem.remove(page);
        victim
    }

    /// Invalidate CPU lines of `page`, fold their dirty state into the
    /// tracker, and package the victim.
    fn expel_page(&mut self, page: PageNumber) -> VictimPage {
        let first_line = page.raw() * (PAGE_SIZE_4K / 64);
        for i in 0..LINES_PER_PAGE_4K as u64 {
            self.coherence.invalidate_all(LineIndex(first_line + i));
        }
        self.absorb_writebacks();
        let dirty_lines = self
            .dirty
            .take_page(page)
            .unwrap_or_else(|| LineBitmap::new(LINES_PER_PAGE_4K));
        self.note_compaction(&dirty_lines);
        self.prefetched_pending.remove(&page.raw());
        VictimPage { page, dirty_lines }
    }

    /// Folds one expelled/snooped page's dirty bitmap into the compaction
    /// ratio and publishes the updated gauge.
    fn note_compaction(&mut self, dirty_lines: &LineBitmap) {
        self.compaction_dirty_lines += dirty_lines.count_set() as u64;
        self.compaction_pages += 1;
        self.metrics
            .dirty_compaction
            .set(self.dirty_compaction_ratio());
    }

    fn absorb_writebacks(&mut self) {
        for event in self.coherence.drain_writebacks() {
            self.stats.writebacks_observed += 1;
            self.dirty.mark(event.line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fpga() -> KonaFpga {
        let mut f = KonaFpga::new(FpgaConfig::small());
        f.translation_mut()
            .register(VfMemAddr::new(0), 1 << 20, RemoteAddr::new(0, 0))
            .unwrap();
        f
    }

    #[test]
    fn cold_access_is_remote_fetch() {
        let mut f = fpga();
        match f.cpu_access(VfMemAddr::new(0), AccessKind::Read) {
            CpuAccessOutcome::RemoteFetch { page, victims, .. } => {
                assert_eq!(page, PageNumber(0));
                assert!(victims.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(f.stats().remote_fetches, 1);
        assert!(f.fmem_resident(PageNumber(0)));
    }

    #[test]
    fn second_access_same_line_hits_cpu_cache() {
        let mut f = fpga();
        f.cpu_access(VfMemAddr::new(0), AccessKind::Read);
        assert_eq!(
            f.cpu_access(VfMemAddr::new(0), AccessKind::Read),
            CpuAccessOutcome::CpuCacheHit
        );
    }

    #[test]
    fn different_line_same_page_hits_fmem() {
        let mut f = fpga();
        f.cpu_access(VfMemAddr::new(0), AccessKind::Read);
        assert_eq!(
            f.cpu_access(VfMemAddr::new(64), AccessKind::Read),
            CpuAccessOutcome::FMemHit
        );
        assert_eq!(f.stats().fmem_hits, 1);
    }

    #[test]
    fn writebacks_populate_dirty_bitmap() {
        let mut f = fpga();
        // Write a line, then snoop the page: the dirty bitmap must show it.
        f.cpu_access(VfMemAddr::new(64), AccessKind::Write);
        let bm = f.snoop_page_dirty(PageNumber(0));
        assert!(bm.get(1));
        assert_eq!(bm.count_set(), 1);
    }

    #[test]
    fn capacity_eviction_in_cpu_cache_reaches_tracker() {
        let mut cfg = FpgaConfig::small();
        cfg.cpu_cache_lines = 2;
        let mut f = KonaFpga::new(cfg);
        f.translation_mut()
            .register(VfMemAddr::new(0), 1 << 20, RemoteAddr::new(0, 0))
            .unwrap();
        f.cpu_access(VfMemAddr::new(0), AccessKind::Write);
        f.cpu_access(VfMemAddr::new(64), AccessKind::Write);
        // Third line evicts the first (dirty) line from the CPU cache.
        f.cpu_access(VfMemAddr::new(128), AccessKind::Write);
        assert!(f.dirty().dirty_line_count(PageNumber(0)) >= 1);
        assert!(f.stats().writebacks_observed >= 1);
    }

    #[test]
    fn fmem_conflict_returns_victim_with_dirty_lines() {
        // FMem with 4 pages, 4-way => 1 set: pages conflict after 4.
        let mut cfg = FpgaConfig::small();
        cfg.fmem_pages = 4;
        let mut f = KonaFpga::new(cfg);
        f.translation_mut()
            .register(VfMemAddr::new(0), 1 << 20, RemoteAddr::new(0, 0))
            .unwrap();
        f.cpu_access(VfMemAddr::new(0), AccessKind::Write); // page 0 dirty
        for p in 1..4u64 {
            f.cpu_access(VfMemAddr::new(p * 4096), AccessKind::Read);
        }
        match f.cpu_access(VfMemAddr::new(4 * 4096), AccessKind::Read) {
            CpuAccessOutcome::RemoteFetch { victims, .. } => {
                assert_eq!(victims.len(), 1);
                assert_eq!(victims[0].page, PageNumber(0));
                assert!(victims[0].is_dirty());
                assert!(victims[0].dirty_lines.get(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The victim's CPU copy is gone: next access misses everywhere.
        assert!(matches!(
            f.cpu_access(VfMemAddr::new(0), AccessKind::Read),
            CpuAccessOutcome::RemoteFetch { .. }
        ));
    }

    #[test]
    fn sequential_fetches_trigger_prefetch() {
        let mut cfg = FpgaConfig::small();
        cfg.prefetcher = NextPagePrefetcher::new(2, 1);
        let mut f = KonaFpga::new(cfg);
        f.translation_mut()
            .register(VfMemAddr::new(0), 1 << 20, RemoteAddr::new(0, 0))
            .unwrap();
        f.cpu_access(VfMemAddr::new(0), AccessKind::Read);
        match f.cpu_access(VfMemAddr::new(4096), AccessKind::Read) {
            CpuAccessOutcome::RemoteFetch { prefetch, .. } => {
                assert_eq!(prefetch, vec![PageNumber(2)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The prefetched page now hits FMem.
        assert_eq!(
            f.cpu_access(VfMemAddr::new(2 * 4096), AccessKind::Read),
            CpuAccessOutcome::FMemHit
        );
        assert_eq!(f.stats().prefetched_pages, 1);
    }

    #[test]
    fn shedding_suppresses_prefetches_and_counts_them() {
        let mut cfg = FpgaConfig::small();
        cfg.prefetcher = NextPagePrefetcher::new(2, 1);
        let mut f = KonaFpga::new(cfg);
        f.translation_mut()
            .register(VfMemAddr::new(0), 1 << 20, RemoteAddr::new(0, 0))
            .unwrap();
        let tel = Telemetry::disabled();
        f.set_telemetry(&tel);
        f.set_prefetch_shedding(true);
        assert!(f.prefetch_shedding());
        f.cpu_access(VfMemAddr::new(0), AccessKind::Read);
        match f.cpu_access(VfMemAddr::new(4096), AccessKind::Read) {
            CpuAccessOutcome::RemoteFetch { prefetch, .. } => {
                assert!(prefetch.is_empty(), "shed mode must not prefetch");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(f.stats().prefetched_pages, 0);
        assert_eq!(f.stats().prefetches_shed, 1);
        assert_eq!(tel.snapshot().counter("fmem.prefetch_shed"), Some(1));
        // Shedding off: the stream detector is still warm and fires.
        f.set_prefetch_shedding(false);
        match f.cpu_access(VfMemAddr::new(2 * 4096), AccessKind::Read) {
            CpuAccessOutcome::RemoteFetch { prefetch, .. } => {
                assert_eq!(prefetch, vec![PageNumber(3)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn telemetry_tracks_hits_prefetch_and_compaction() {
        let mut cfg = FpgaConfig::small();
        cfg.prefetcher = NextPagePrefetcher::new(2, 1);
        let mut f = KonaFpga::new(cfg);
        f.translation_mut()
            .register(VfMemAddr::new(0), 1 << 20, RemoteAddr::new(0, 0))
            .unwrap();
        let tel = Telemetry::disabled();
        f.set_telemetry(&tel);

        f.cpu_access(VfMemAddr::new(0), AccessKind::Read);
        f.cpu_access(VfMemAddr::new(4096), AccessKind::Read); // prefetches page 2
        f.cpu_access(VfMemAddr::new(2 * 4096), AccessKind::Write); // uses prefetch
        let snap = tel.snapshot();
        assert_eq!(snap.counter("fmem.misses"), Some(2));
        assert_eq!(snap.counter("fmem.prefetch_issued"), Some(1));
        assert_eq!(snap.counter("fmem.prefetch_useful"), Some(1));
        assert_eq!(snap.counter("fmem.hits"), Some(1));

        // One of 64 lines dirty on the snooped page → ratio 1/64.
        f.snoop_page_dirty(PageNumber(2));
        assert!((f.dirty_compaction_ratio() - 1.0 / 64.0).abs() < 1e-9);
        assert_eq!(
            tel.snapshot().gauge("fmem.dirty_compaction"),
            Some(f.dirty_compaction_ratio())
        );
    }

    #[test]
    fn explicit_evict_page() {
        let mut f = fpga();
        f.cpu_access(VfMemAddr::new(0), AccessKind::Write);
        let victim = f.evict_page(PageNumber(0));
        assert!(victim.is_dirty());
        assert!(!f.fmem_resident(PageNumber(0)));
    }

    #[test]
    fn snoop_clean_page_returns_empty_bitmap() {
        let mut f = fpga();
        f.cpu_access(VfMemAddr::new(0), AccessKind::Read);
        let bm = f.snoop_page_dirty(PageNumber(0));
        assert!(!bm.any());
    }

    #[test]
    fn translate_page_through_slabs() {
        let f = fpga();
        assert_eq!(
            f.translate_page(PageNumber(2)).unwrap(),
            RemoteAddr::new(0, 8192)
        );
        assert!(f.translate_page(PageNumber(1 << 30)).is_err());
    }
}
