//! Per-page dirty cache-line bitmaps.
//!
//! "The FPGA can observe the cache-line writebacks, and track them in a
//! bitmap for cache-line granularity dirty data tracking" (§4.3). The
//! eviction handler later consumes a page's bitmap to write only the dirty
//! lines to remote memory.

use kona_types::{FxHashMap, LineBitmap, LineIndex, PageNumber, LINES_PER_PAGE_4K};

/// A page's dirty bitmap plus its cached population count.
///
/// `mark` keeps `count` in sync via [`LineBitmap::insert`]'s newly-set
/// return, so queries never rescan the bitmap words.
#[derive(Debug, Clone)]
struct PageDirty {
    bitmap: LineBitmap,
    count: usize,
}

/// Tracks dirty cache lines per 4 KiB page.
///
/// # Examples
///
/// ```
/// # use kona_fpga::DirtyTracker;
/// # use kona_types::{LineIndex, PageNumber};
/// let mut dt = DirtyTracker::new();
/// dt.mark(LineIndex(65)); // page 1, line 1
/// assert_eq!(dt.dirty_line_count(PageNumber(1)), 1);
/// let bm = dt.take_page(PageNumber(1)).unwrap();
/// assert!(bm.get(1));
/// assert_eq!(dt.dirty_line_count(PageNumber(1)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DirtyTracker {
    pages: FxHashMap<u64, PageDirty>,
    total_marks: u64,
    /// Dirty lines across all pages, maintained incrementally so the
    /// poller can read it every wakeup without a full-map scan.
    total_dirty: usize,
}

impl DirtyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        DirtyTracker::default()
    }

    /// Marks `line` dirty (observed writeback).
    pub fn mark(&mut self, line: LineIndex) {
        self.total_marks += 1;
        let entry = self
            .pages
            .entry(line.page_number().raw())
            .or_insert_with(|| PageDirty {
                bitmap: LineBitmap::new(LINES_PER_PAGE_4K),
                count: 0,
            });
        if entry.bitmap.insert(line.index_in_page()) {
            entry.count += 1;
            self.total_dirty += 1;
        }
    }

    /// Number of dirty lines recorded for `page`.
    pub fn dirty_line_count(&self, page: PageNumber) -> usize {
        self.pages.get(&page.raw()).map_or(0, |p| p.count)
    }

    /// Borrow the dirty bitmap of `page`, if any lines are dirty.
    pub fn peek_page(&self, page: PageNumber) -> Option<&LineBitmap> {
        self.pages.get(&page.raw()).map(|p| &p.bitmap)
    }

    /// Removes and returns the dirty bitmap of `page` (the eviction handler
    /// consuming the page's dirty state).
    pub fn take_page(&mut self, page: PageNumber) -> Option<LineBitmap> {
        let taken = self.pages.remove(&page.raw())?;
        self.total_dirty -= taken.count;
        Some(taken.bitmap)
    }

    /// Pages with at least one dirty line, sorted.
    pub fn dirty_pages(&self) -> Vec<PageNumber> {
        let mut v: Vec<PageNumber> = self.pages.keys().map(|&p| PageNumber(p)).collect();
        v.sort_unstable();
        v
    }

    /// Total dirty lines across all pages.
    pub fn total_dirty_lines(&self) -> usize {
        self.total_dirty
    }

    /// Lifetime count of mark operations (including re-marks).
    pub fn total_marks(&self) -> u64 {
        self.total_marks
    }

    /// Returns `true` if nothing is dirty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_take() {
        let mut dt = DirtyTracker::new();
        assert!(dt.is_empty());
        dt.mark(LineIndex(0));
        dt.mark(LineIndex(1));
        dt.mark(LineIndex(1)); // re-mark is idempotent on the bitmap
        assert_eq!(dt.dirty_line_count(PageNumber(0)), 2);
        assert_eq!(dt.total_marks(), 3);
        let bm = dt.take_page(PageNumber(0)).unwrap();
        assert_eq!(bm.count_set(), 2);
        assert!(dt.is_empty());
        assert!(dt.take_page(PageNumber(0)).is_none());
    }

    #[test]
    fn pages_tracked_independently() {
        let mut dt = DirtyTracker::new();
        dt.mark(LineIndex(0)); // page 0
        dt.mark(LineIndex(64)); // page 1
        dt.mark(LineIndex(129)); // page 2
        assert_eq!(
            dt.dirty_pages(),
            vec![PageNumber(0), PageNumber(1), PageNumber(2)]
        );
        assert_eq!(dt.total_dirty_lines(), 3);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut dt = DirtyTracker::new();
        dt.mark(LineIndex(70));
        assert!(dt.peek_page(PageNumber(1)).unwrap().get(6));
        assert_eq!(dt.dirty_line_count(PageNumber(1)), 1);
    }

    /// Cached counts stay in sync with the bitmaps under re-marks and takes.
    #[test]
    fn cached_counts_match_bitmaps() {
        let mut dt = DirtyTracker::new();
        for i in 0..200u64 {
            dt.mark(LineIndex(i % 130)); // re-marks plus three pages
        }
        let expected: usize = dt
            .dirty_pages()
            .iter()
            .map(|&p| dt.peek_page(p).unwrap().count_set())
            .sum();
        assert_eq!(dt.total_dirty_lines(), expected);
        assert_eq!(dt.dirty_line_count(PageNumber(0)), 64);
        dt.take_page(PageNumber(0));
        assert_eq!(dt.total_dirty_lines(), expected - 64);
    }
}
