//! The FMem page cache.
//!
//! FMem (the FPGA-attached DRAM) caches VFMem at *page* granularity: "FMem
//! always caches entire pages ... The purpose for the FMem cache is to
//! ensure that applications can also benefit from spatial locality" (§4.4).
//! It is organised as a 4-way set-associative cache with page-sized blocks,
//! "a good tradeoff that reduces the size of the metadata required to
//! translate VFMem to FMem".

use kona_types::PageNumber;
use std::collections::BTreeMap;

/// A set-associative, page-granularity residency cache for FMem.
///
/// Tracks which VFMem pages are resident; the actual bytes live with the
/// runtime (and, authoritatively, in remote memory).
///
/// # Examples
///
/// ```
/// # use kona_fpga::FMemCache;
/// # use kona_types::PageNumber;
/// let mut fmem = FMemCache::new(8, 4);
/// assert!(!fmem.contains(PageNumber(1)));
/// assert_eq!(fmem.insert(PageNumber(1)), None);
/// assert!(fmem.contains(PageNumber(1)));
/// ```
#[derive(Debug, Clone)]
pub struct FMemCache {
    sets: Vec<Vec<u64>>, // MRU-first page numbers
    ways: usize,
    /// QoS eviction priorities: `start_page → (end_page, priority)` for
    /// non-overlapping half-open page ranges. Pages outside every range
    /// have priority 0. Empty in the common case, so the insert hot path
    /// keeps its plain-LRU fast path.
    priorities: BTreeMap<u64, (u64, i8)>,
}

impl FMemCache {
    /// Creates a cache holding `capacity_pages` pages with `ways`
    /// associativity.
    ///
    /// A zero capacity is allowed (degenerate cache for 0% sweeps): every
    /// lookup misses and inserts evict immediately.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or a non-zero capacity is not divisible by
    /// `ways`.
    pub fn new(capacity_pages: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        if capacity_pages == 0 {
            return FMemCache {
                sets: vec![],
                ways,
                priorities: BTreeMap::new(),
            };
        }
        assert!(
            capacity_pages.is_multiple_of(ways),
            "capacity {capacity_pages} not divisible by ways {ways}"
        );
        FMemCache {
            sets: vec![Vec::with_capacity(ways); capacity_pages / ways],
            ways,
            priorities: BTreeMap::new(),
        }
    }

    /// Assigns eviction priority `priority` to the half-open page range
    /// `[start_page, end_page)`. Higher priority means *protected*: when a
    /// set overflows, the victim is the lowest-priority resident way, with
    /// ties broken by LRU position — so with no ranges set (or all equal)
    /// the policy is exactly the classic evict-LRU. Overlapping parts of
    /// previously set ranges are overwritten; setting priority 0 restores
    /// the default for the range.
    pub fn set_page_priority(&mut self, start_page: u64, end_page: u64, priority: i8) {
        if start_page >= end_page {
            return;
        }
        // Collect every existing range that overlaps the new one.
        let overlapping: Vec<(u64, (u64, i8))> = self
            .priorities
            .range(..end_page)
            .rev()
            .take_while(|&(_, &(end, _))| end > start_page)
            .filter(|&(&start, &(end, _))| start < end_page && end > start_page)
            .map(|(&s, &v)| (s, v))
            .collect();
        for (s, (e, p)) in overlapping {
            self.priorities.remove(&s);
            // Re-insert the non-overlapping remainders.
            if s < start_page {
                self.priorities.insert(s, (start_page, p));
            }
            if e > end_page {
                self.priorities.insert(end_page, (e, p));
            }
        }
        if priority != 0 {
            self.priorities.insert(start_page, (end_page, priority));
        }
    }

    /// The eviction priority of `page` (0 unless a covering range was set
    /// with [`FMemCache::set_page_priority`]).
    pub fn page_priority(&self, page: PageNumber) -> i8 {
        self.priorities
            .range(..=page.raw())
            .next_back()
            .filter(|&(_, &(end, _))| end > page.raw())
            .map_or(0, |(_, &(_, p))| p)
    }

    /// Total capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if `page` is resident (no LRU update).
    pub fn contains(&self, page: PageNumber) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        let set = (page.raw() % self.sets.len() as u64) as usize;
        self.sets[set].contains(&page.raw())
    }

    /// Touches `page` if resident (LRU update); returns whether it was.
    pub fn touch(&mut self, page: PageNumber) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        let set_idx = (page.raw() % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&p| p == page.raw()) {
            let p = set.remove(pos);
            set.insert(0, p);
            true
        } else {
            false
        }
    }

    /// Makes `page` resident, returning the page evicted to make room (if
    /// any). Inserting an already-resident page just touches it.
    pub fn insert(&mut self, page: PageNumber) -> Option<PageNumber> {
        if self.sets.is_empty() {
            // Degenerate cache: the page is "evicted" immediately, i.e. it
            // never becomes resident.
            return Some(page);
        }
        if self.touch(page) {
            return None;
        }
        let set_idx = (page.raw() % self.sets.len() as u64) as usize;
        self.sets[set_idx].insert(0, page.raw());
        if self.sets[set_idx].len() <= self.ways {
            return None;
        }
        let victim_idx = if self.priorities.is_empty() {
            // Fast path, and the exact historical policy: evict the LRU way.
            self.sets[set_idx].len() - 1
        } else {
            // QoS policy: evict the lowest-priority way; ties go to the
            // least recently used. The just-inserted MRU way (index 0) is
            // never the victim, so demand fills always land.
            let set = &self.sets[set_idx];
            let mut idx = set.len() - 1;
            let mut best = self.page_priority(PageNumber(set[idx]));
            for i in (1..set.len() - 1).rev() {
                let p = self.page_priority(PageNumber(set[i]));
                if p < best {
                    best = p;
                    idx = i;
                }
            }
            idx
        };
        Some(PageNumber(self.sets[set_idx].remove(victim_idx)))
    }

    /// Drops `page` from residency (eviction-handler initiated); returns
    /// whether it was resident.
    pub fn remove(&mut self, page: PageNumber) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        let set_idx = (page.raw() % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        let before = set.len();
        set.retain(|&p| p != page.raw());
        set.len() != before
    }

    /// The least-recently-used resident page of the fullest set, if any —
    /// a reasonable global eviction candidate for the eviction handler.
    pub fn eviction_candidate(&self) -> Option<PageNumber> {
        self.sets
            .iter()
            .max_by_key(|s| s.len())
            .and_then(|s| s.last())
            .map(|&p| PageNumber(p))
    }

    /// Iterates over all resident pages (unspecified order).
    pub fn resident(&self) -> impl Iterator<Item = PageNumber> + '_ {
        self.sets.iter().flatten().map(|&p| PageNumber(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_touch_remove() {
        let mut f = FMemCache::new(8, 4);
        assert_eq!(f.capacity_pages(), 8);
        assert_eq!(f.insert(PageNumber(1)), None);
        assert!(f.contains(PageNumber(1)));
        assert!(f.touch(PageNumber(1)));
        assert!(f.remove(PageNumber(1)));
        assert!(!f.remove(PageNumber(1)));
        assert_eq!(f.resident_pages(), 0);
    }

    #[test]
    fn set_conflict_evicts_lru() {
        // 2 sets × 2 ways; pages 0,2,4 all map to set 0.
        let mut f = FMemCache::new(4, 2);
        f.insert(PageNumber(0));
        f.insert(PageNumber(2));
        f.touch(PageNumber(0)); // 2 becomes LRU of set 0
        assert_eq!(f.insert(PageNumber(4)), Some(PageNumber(2)));
        assert!(f.contains(PageNumber(0)));
        assert!(f.contains(PageNumber(4)));
    }

    #[test]
    fn reinsert_is_touch() {
        let mut f = FMemCache::new(4, 2);
        f.insert(PageNumber(0));
        assert_eq!(f.insert(PageNumber(0)), None);
        assert_eq!(f.resident_pages(), 1);
    }

    #[test]
    fn zero_capacity_never_resident() {
        let mut f = FMemCache::new(0, 4);
        assert_eq!(f.insert(PageNumber(3)), Some(PageNumber(3)));
        assert!(!f.contains(PageNumber(3)));
        assert_eq!(f.capacity_pages(), 0);
        assert!(f.eviction_candidate().is_none());
    }

    #[test]
    fn eviction_candidate_prefers_fullest_set() {
        let mut f = FMemCache::new(4, 2);
        f.insert(PageNumber(0)); // set 0
        f.insert(PageNumber(2)); // set 0 (full)
        f.insert(PageNumber(1)); // set 1
        let cand = f.eviction_candidate().unwrap();
        assert_eq!(cand, PageNumber(0)); // LRU of the full set
    }

    #[test]
    #[should_panic]
    fn indivisible_capacity_panics() {
        FMemCache::new(5, 4);
    }

    #[test]
    fn priority_protects_high_and_targets_low() {
        // One set of 2 ways; pages 0, 1, 2 all map to it.
        let mut f = FMemCache::new(2, 2);
        f.insert(PageNumber(0));
        f.insert(PageNumber(1)); // MRU order: [1, 0]
        // Protect page 0 (the LRU way); page 1 becomes the victim even
        // though it is more recently used.
        f.set_page_priority(0, 1, 1);
        assert_eq!(f.page_priority(PageNumber(0)), 1);
        assert_eq!(f.page_priority(PageNumber(1)), 0);
        assert_eq!(f.insert(PageNumber(2)), Some(PageNumber(1)));
        assert!(f.contains(PageNumber(0)));
        // Clearing the range restores plain LRU.
        f.set_page_priority(0, 1, 0);
        assert_eq!(f.page_priority(PageNumber(0)), 0);
    }

    #[test]
    fn equal_priorities_reproduce_lru() {
        let mut f = FMemCache::new(2, 2);
        // A non-empty priority table where every resident page has the
        // same priority must still evict the LRU way.
        f.set_page_priority(0, 100, 1);
        f.insert(PageNumber(0));
        f.insert(PageNumber(1));
        f.touch(PageNumber(0)); // 1 becomes LRU
        assert_eq!(f.insert(PageNumber(2)), Some(PageNumber(1)));
    }

    #[test]
    fn fresh_insert_is_never_the_victim() {
        let mut f = FMemCache::new(2, 2);
        f.set_page_priority(0, 2, 1); // resident pages protected
        f.insert(PageNumber(0));
        f.insert(PageNumber(1));
        // Page 2 has priority 0 (lower than both residents) but demand
        // fills always land: the LRU protected way goes instead.
        assert_eq!(f.insert(PageNumber(2)), Some(PageNumber(0)));
        assert!(f.contains(PageNumber(2)));
    }

    #[test]
    fn priority_range_overwrite_splits_old_ranges() {
        let mut f = FMemCache::new(4, 2);
        f.set_page_priority(0, 10, 2);
        f.set_page_priority(3, 5, -1); // carve a penalty window out
        assert_eq!(f.page_priority(PageNumber(2)), 2);
        assert_eq!(f.page_priority(PageNumber(3)), -1);
        assert_eq!(f.page_priority(PageNumber(4)), -1);
        assert_eq!(f.page_priority(PageNumber(5)), 2);
        assert_eq!(f.page_priority(PageNumber(9)), 2);
        assert_eq!(f.page_priority(PageNumber(10)), 0);
    }

    #[test]
    fn resident_iterator() {
        let mut f = FMemCache::new(4, 2);
        f.insert(PageNumber(1));
        f.insert(PageNumber(2));
        let mut pages: Vec<u64> = f.resident().map(|p| p.raw()).collect();
        pages.sort_unstable();
        assert_eq!(pages, vec![1, 2]);
    }
}
