//! The FMem page cache.
//!
//! FMem (the FPGA-attached DRAM) caches VFMem at *page* granularity: "FMem
//! always caches entire pages ... The purpose for the FMem cache is to
//! ensure that applications can also benefit from spatial locality" (§4.4).
//! It is organised as a 4-way set-associative cache with page-sized blocks,
//! "a good tradeoff that reduces the size of the metadata required to
//! translate VFMem to FMem".

use kona_types::PageNumber;

/// A set-associative, page-granularity residency cache for FMem.
///
/// Tracks which VFMem pages are resident; the actual bytes live with the
/// runtime (and, authoritatively, in remote memory).
///
/// # Examples
///
/// ```
/// # use kona_fpga::FMemCache;
/// # use kona_types::PageNumber;
/// let mut fmem = FMemCache::new(8, 4);
/// assert!(!fmem.contains(PageNumber(1)));
/// assert_eq!(fmem.insert(PageNumber(1)), None);
/// assert!(fmem.contains(PageNumber(1)));
/// ```
#[derive(Debug, Clone)]
pub struct FMemCache {
    sets: Vec<Vec<u64>>, // MRU-first page numbers
    ways: usize,
}

impl FMemCache {
    /// Creates a cache holding `capacity_pages` pages with `ways`
    /// associativity.
    ///
    /// A zero capacity is allowed (degenerate cache for 0% sweeps): every
    /// lookup misses and inserts evict immediately.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or a non-zero capacity is not divisible by
    /// `ways`.
    pub fn new(capacity_pages: usize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        if capacity_pages == 0 {
            return FMemCache { sets: vec![], ways };
        }
        assert!(
            capacity_pages.is_multiple_of(ways),
            "capacity {capacity_pages} not divisible by ways {ways}"
        );
        FMemCache {
            sets: vec![Vec::with_capacity(ways); capacity_pages / ways],
            ways,
        }
    }

    /// Total capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if `page` is resident (no LRU update).
    pub fn contains(&self, page: PageNumber) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        let set = (page.raw() % self.sets.len() as u64) as usize;
        self.sets[set].contains(&page.raw())
    }

    /// Touches `page` if resident (LRU update); returns whether it was.
    pub fn touch(&mut self, page: PageNumber) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        let set_idx = (page.raw() % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&p| p == page.raw()) {
            let p = set.remove(pos);
            set.insert(0, p);
            true
        } else {
            false
        }
    }

    /// Makes `page` resident, returning the page evicted to make room (if
    /// any). Inserting an already-resident page just touches it.
    pub fn insert(&mut self, page: PageNumber) -> Option<PageNumber> {
        if self.sets.is_empty() {
            // Degenerate cache: the page is "evicted" immediately, i.e. it
            // never becomes resident.
            return Some(page);
        }
        if self.touch(page) {
            return None;
        }
        let set_idx = (page.raw() % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        set.insert(0, page.raw());
        if set.len() > self.ways {
            set.pop().map(PageNumber)
        } else {
            None
        }
    }

    /// Drops `page` from residency (eviction-handler initiated); returns
    /// whether it was resident.
    pub fn remove(&mut self, page: PageNumber) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        let set_idx = (page.raw() % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        let before = set.len();
        set.retain(|&p| p != page.raw());
        set.len() != before
    }

    /// The least-recently-used resident page of the fullest set, if any —
    /// a reasonable global eviction candidate for the eviction handler.
    pub fn eviction_candidate(&self) -> Option<PageNumber> {
        self.sets
            .iter()
            .max_by_key(|s| s.len())
            .and_then(|s| s.last())
            .map(|&p| PageNumber(p))
    }

    /// Iterates over all resident pages (unspecified order).
    pub fn resident(&self) -> impl Iterator<Item = PageNumber> + '_ {
        self.sets.iter().flatten().map(|&p| PageNumber(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_touch_remove() {
        let mut f = FMemCache::new(8, 4);
        assert_eq!(f.capacity_pages(), 8);
        assert_eq!(f.insert(PageNumber(1)), None);
        assert!(f.contains(PageNumber(1)));
        assert!(f.touch(PageNumber(1)));
        assert!(f.remove(PageNumber(1)));
        assert!(!f.remove(PageNumber(1)));
        assert_eq!(f.resident_pages(), 0);
    }

    #[test]
    fn set_conflict_evicts_lru() {
        // 2 sets × 2 ways; pages 0,2,4 all map to set 0.
        let mut f = FMemCache::new(4, 2);
        f.insert(PageNumber(0));
        f.insert(PageNumber(2));
        f.touch(PageNumber(0)); // 2 becomes LRU of set 0
        assert_eq!(f.insert(PageNumber(4)), Some(PageNumber(2)));
        assert!(f.contains(PageNumber(0)));
        assert!(f.contains(PageNumber(4)));
    }

    #[test]
    fn reinsert_is_touch() {
        let mut f = FMemCache::new(4, 2);
        f.insert(PageNumber(0));
        assert_eq!(f.insert(PageNumber(0)), None);
        assert_eq!(f.resident_pages(), 1);
    }

    #[test]
    fn zero_capacity_never_resident() {
        let mut f = FMemCache::new(0, 4);
        assert_eq!(f.insert(PageNumber(3)), Some(PageNumber(3)));
        assert!(!f.contains(PageNumber(3)));
        assert_eq!(f.capacity_pages(), 0);
        assert!(f.eviction_candidate().is_none());
    }

    #[test]
    fn eviction_candidate_prefers_fullest_set() {
        let mut f = FMemCache::new(4, 2);
        f.insert(PageNumber(0)); // set 0
        f.insert(PageNumber(2)); // set 0 (full)
        f.insert(PageNumber(1)); // set 1
        let cand = f.eviction_candidate().unwrap();
        assert_eq!(cand, PageNumber(0)); // LRU of the full set
    }

    #[test]
    #[should_panic]
    fn indivisible_capacity_panics() {
        FMemCache::new(5, 4);
    }

    #[test]
    fn resident_iterator() {
        let mut f = FMemCache::new(4, 2);
        f.insert(PageNumber(1));
        f.insert(PageNumber(2));
        let mut pages: Vec<u64> = f.resident().map(|p| p.raw()).collect();
        pages.sort_unstable();
        assert_eq!(pages, vec![1, 2]);
    }
}
