//! The multi-tenant serving runtime.

use crate::tenant::{Region, Tenant, TenantConfig};
use kona::{ClusterConfig, RemoteMemoryRuntime};
use kona_cluster::{ClusterRuntime, ControlPlaneConfig};
use kona_telemetry::{Counter, HistogramData, Telemetry};
use kona_types::{KonaError, MemAccess, Nanos, Result, VirtAddr};
use std::collections::BTreeMap;

/// FNV-1a offset basis (shared with the shard engine's fingerprints).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Outcome of one tenant operation that passed isolation checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The operation ran against the shared runtime; simulated elapsed
    /// time.
    Ran(Nanos),
    /// The tenant's token bucket was dry: the operation was shed at the
    /// front door and never generated cluster traffic. Callers treat it
    /// as load shedding, not an error.
    Throttled,
}

/// Tuning for the serving front end.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Master QoS switch. Off = pure multiplexing: admission buckets,
    /// eviction priorities and prefetch shedding are all disabled
    /// (isolation and quotas stay on — they are correctness, not QoS).
    pub qos: bool,
    /// Simulated-time width of the QoS review window.
    pub review_window: Nanos,
    /// Minimum demand ops a tenant must complete inside a window before
    /// its windowed p99 is trusted for SLO decisions.
    pub min_window_ops: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            qos: true,
            review_window: Nanos::micros(50),
            min_window_ops: 16,
        }
    }
}

/// `serve.*` counters, resolved once at construction.
#[derive(Debug, Clone)]
struct ServeCounters {
    admitted: Counter,
    throttled: Counter,
    isolation_faults: Counter,
    quota_rejections: Counter,
    balloon_grows: Counter,
    balloon_shrinks: Counter,
    balloon_errors: Counter,
    slo_breaches: Counter,
    prefetch_shed: Counter,
}

impl ServeCounters {
    fn new(tel: &Telemetry) -> Self {
        ServeCounters {
            admitted: tel.counter("serve.admitted"),
            throttled: tel.counter("serve.throttled"),
            isolation_faults: tel.counter("serve.isolation_faults"),
            quota_rejections: tel.counter("serve.quota_rejections"),
            balloon_grows: tel.counter("serve.balloon_grows"),
            balloon_shrinks: tel.counter("serve.balloon_shrinks"),
            balloon_errors: tel.counter("serve.balloon_errors"),
            slo_breaches: tel.counter("serve.slo_breaches"),
            prefetch_shed: tel.counter("serve.prefetch_shed"),
        }
    }
}

/// Front-door totals mirrored as plain integers so reports and
/// fingerprints never read back through the shared registry.
#[derive(Debug, Clone, Copy, Default)]
struct ServeTotals {
    admitted: u64,
    throttled: u64,
    isolation_faults: u64,
    quota_rejections: u64,
    balloon_grows: u64,
    balloon_shrinks: u64,
    balloon_errors: u64,
    slo_breaches: u64,
    prefetch_shed: u64,
}

/// A deterministic multi-tenant front end over one [`ClusterRuntime`].
///
/// See the crate docs for the model. All decisions key off simulated
/// time and deterministic state, so identical call sequences produce
/// byte-identical reports and fingerprints.
#[derive(Debug, Clone)]
pub struct ServeRuntime {
    cluster: ClusterRuntime,
    cfg: ServeConfig,
    tenants: BTreeMap<u32, Tenant>,
    telemetry: Telemetry,
    counters: ServeCounters,
    totals: ServeTotals,
    slab_bytes: u64,
    last_review: Nanos,
}

impl ServeRuntime {
    /// A serving runtime over a fresh cluster with default control-plane
    /// tuning and no telemetry.
    ///
    /// # Errors
    ///
    /// As for [`ClusterRuntime::new`].
    pub fn new(config: ClusterConfig, cfg: ServeConfig) -> Result<Self> {
        Self::with_telemetry(
            config,
            ControlPlaneConfig::default(),
            cfg,
            Telemetry::disabled(),
        )
    }

    /// A serving runtime publishing `serve.*` and `tenant.<id>.*`
    /// metrics to `telemetry`.
    ///
    /// # Errors
    ///
    /// As for [`ClusterRuntime::new`].
    pub fn with_telemetry(
        config: ClusterConfig,
        plane: ControlPlaneConfig,
        cfg: ServeConfig,
        telemetry: Telemetry,
    ) -> Result<Self> {
        let slab_bytes = config.slab_size.bytes();
        let cluster = ClusterRuntime::with_telemetry(config, plane, telemetry.clone())?;
        let counters = ServeCounters::new(&telemetry);
        Ok(ServeRuntime {
            cluster,
            cfg,
            tenants: BTreeMap::new(),
            telemetry,
            counters,
            totals: ServeTotals::default(),
            slab_bytes,
            last_review: Nanos::ZERO,
        })
    }

    /// The wrapped cluster runtime (read-only).
    pub fn cluster(&self) -> &ClusterRuntime {
        &self.cluster
    }

    /// Mutable access to the wrapped cluster runtime (fault injection,
    /// manual control-plane ticks).
    pub fn cluster_mut(&mut self) -> &mut ClusterRuntime {
        &mut self.cluster
    }

    /// The telemetry handle the front end publishes into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Slab size in bytes — the balloon's grow/shrink granularity.
    pub fn slab_bytes(&self) -> u64 {
        self.slab_bytes
    }

    /// Whether QoS (admission buckets, eviction priority, prefetch
    /// shedding) is on.
    pub fn qos_enabled(&self) -> bool {
        self.cfg.qos
    }

    /// Registered tenant ids, ascending.
    pub fn tenant_ids(&self) -> Vec<u32> {
        self.tenants.keys().copied().collect()
    }

    /// Bytes currently allocated to tenant `id`, or `None` if unknown.
    pub fn tenant_used(&self, id: u32) -> Option<u64> {
        self.tenants.get(&id).map(|t| t.used)
    }

    /// The lifetime demand-latency histogram of tenant `id`.
    pub fn tenant_latency(&self, id: u32) -> Option<HistogramData> {
        self.tenants.get(&id).map(|t| t.hist.clone())
    }

    /// Registers a tenant. Fails with
    /// [`KonaError::InvalidConfig`] on a duplicate id or a zero quota.
    pub fn register_tenant(&mut self, cfg: TenantConfig) -> Result<()> {
        if cfg.quota_bytes == 0 {
            return Err(KonaError::InvalidConfig(format!(
                "tenant {} has a zero quota",
                cfg.id
            )));
        }
        if self.tenants.contains_key(&cfg.id) {
            return Err(KonaError::InvalidConfig(format!(
                "tenant {} already registered",
                cfg.id
            )));
        }
        let tenant = Tenant::new(cfg, &self.telemetry);
        self.tenants.insert(tenant.cfg.id, tenant);
        Ok(())
    }

    fn unknown_tenant(id: u32) -> KonaError {
        KonaError::InvalidConfig(format!("unknown tenant {id}"))
    }

    /// The simulated clock.
    fn now(&mut self) -> Nanos {
        self.cluster.inner_mut().fabric_mut().now()
    }

    /// Grows tenant `id`'s remote allocation by `bytes` (rounded up to
    /// whole slabs), returning the tenant-local base of the new region.
    ///
    /// # Errors
    ///
    /// [`KonaError::QuotaExceeded`] when the rounded request would push
    /// the tenant past its quota — rejected before any slab is granted,
    /// so enforcement is exact. Allocation failures from the cluster
    /// propagate unchanged.
    pub fn grow_tenant(&mut self, id: u32, bytes: u64) -> Result<VirtAddr> {
        if bytes == 0 {
            return Err(KonaError::InvalidConfig("grow of zero bytes".into()));
        }
        let bytes = bytes.div_ceil(self.slab_bytes) * self.slab_bytes;
        {
            let t = self
                .tenants
                .get_mut(&id)
                .ok_or_else(|| Self::unknown_tenant(id))?;
            if t.used + bytes > t.cfg.quota_bytes {
                t.quota_rejections += 1;
                t.quota_rejects_in_window += 1;
                t.metrics.quota_rejections.inc();
                self.counters.quota_rejections.inc();
                self.totals.quota_rejections += 1;
                return Err(KonaError::QuotaExceeded {
                    tenant: id,
                    requested: bytes,
                    quota: t.cfg.quota_bytes,
                    used: t.used,
                });
            }
        }
        let cbase = self.cluster.balloon_grow(bytes)?;
        self.counters.balloon_grows.inc();
        self.totals.balloon_grows += 1;
        let qos = self.cfg.qos;
        let (tbase, prio) = {
            let t = self.tenants.get_mut(&id).expect("checked above");
            let tbase = t.cursor;
            t.cursor += bytes;
            t.regions.insert(
                tbase,
                Region {
                    cluster_base: cbase.raw(),
                    len: bytes,
                    touches: 0,
                },
            );
            t.used += bytes;
            t.metrics.bytes.set(t.used as f64);
            (tbase, t.priority())
        };
        if qos && prio != 0 {
            self.cluster.set_eviction_priority(cbase, bytes, prio);
        }
        Ok(VirtAddr::new(tbase))
    }

    /// Shrinks tenant `id`'s allocation by at least `bytes` (rounded up
    /// to whole slabs), evacuating and releasing the *coldest* regions
    /// first (fewest demand touches, ties by address). Regions are
    /// released whole; returns the bytes actually freed, which can be
    /// less than asked when the tenant has little left, or more when a
    /// warm boundary region tips past the target.
    ///
    /// Evacuation failures leave the region allocated, are counted in
    /// `serve.balloon_errors`, and the shrink moves on to the next
    /// region; the last error is returned only if *nothing* could be
    /// released.
    pub fn shrink_tenant(&mut self, id: u32, bytes: u64) -> Result<u64> {
        let want = bytes.div_ceil(self.slab_bytes) * self.slab_bytes;
        let mut order: Vec<(u64, u64, u64, u64)> = self
            .tenants
            .get(&id)
            .ok_or_else(|| Self::unknown_tenant(id))?
            .regions
            .iter()
            .map(|(&base, r)| (r.touches, base, r.cluster_base, r.len))
            .collect();
        order.sort_unstable();
        let mut released = 0u64;
        let mut last_err = None;
        for (_, base, cbase, len) in order {
            if released >= want {
                break;
            }
            match self.cluster.balloon_release(VirtAddr::new(cbase), len) {
                Ok(()) => {
                    // Clear any QoS priority range so recycled slabs
                    // start neutral.
                    self.cluster
                        .set_eviction_priority(VirtAddr::new(cbase), len, 0);
                    let t = self.tenants.get_mut(&id).expect("checked above");
                    t.regions.remove(&base);
                    t.used -= len;
                    t.metrics.bytes.set(t.used as f64);
                    released += len;
                    self.counters.balloon_shrinks.inc();
                    self.totals.balloon_shrinks += 1;
                }
                Err(e) => {
                    // Surfaced, not swallowed: the operator sees failed
                    // evacuations even though the shrink keeps going.
                    self.counters.balloon_errors.inc();
                    self.totals.balloon_errors += 1;
                    last_err = Some(e);
                }
            }
        }
        if released == 0 {
            if let Some(e) = last_err {
                return Err(e);
            }
        }
        Ok(released)
    }

    /// Isolation + admission front door. `Ok(None)` means throttled;
    /// `Ok(Some((cluster_addr, shed)))` means admitted.
    fn admit(&mut self, id: u32, addr: VirtAddr, len: u64) -> Result<Option<(VirtAddr, bool)>> {
        let now = self.now();
        let qos = self.cfg.qos;
        let t = self
            .tenants
            .get_mut(&id)
            .ok_or_else(|| Self::unknown_tenant(id))?;
        // Translate through the tenant's private namespace. Anything not
        // covered by one of its regions faults typed — including other
        // tenants' addresses, which simply do not exist in this space.
        let end = addr.raw().checked_add(len.max(1));
        let cluster_addr = match (t.regions.range(..=addr.raw()).next_back(), end) {
            (Some((&base, r)), Some(end)) if end <= base + r.len => {
                r.cluster_base + (addr.raw() - base)
            }
            _ => {
                t.faults += 1;
                t.metrics.faults.inc();
                self.counters.isolation_faults.inc();
                self.totals.isolation_faults += 1;
                return Err(KonaError::TenantFault {
                    tenant: id,
                    addr,
                    len,
                });
            }
        };
        if qos && !t.bucket.admit(now) {
            t.throttled += 1;
            t.throttled_in_window += 1;
            t.metrics.throttled.inc();
            self.counters.throttled.inc();
            self.totals.throttled += 1;
            return Ok(None);
        }
        t.ops += 1;
        t.metrics.ops.inc();
        self.counters.admitted.inc();
        self.totals.admitted += 1;
        Ok(Some((VirtAddr::new(cluster_addr), t.shed)))
    }

    /// Post-op bookkeeping: coldness signal, latency histograms, QoS
    /// review cadence.
    fn finish_op(&mut self, id: u32, addr: VirtAddr, elapsed: Nanos) {
        let t = self.tenants.get_mut(&id).expect("admitted above");
        if let Some((_, r)) = t.regions.range_mut(..=addr.raw()).next_back() {
            r.touches += 1;
        }
        t.hist.record(elapsed.as_ns());
        t.metrics.lat.record(elapsed.as_ns());
        self.maybe_review();
    }

    /// Runs `access` for tenant `id` at a tenant-local address.
    ///
    /// # Errors
    ///
    /// [`KonaError::TenantFault`] outside the tenant's namespace;
    /// runtime errors propagate unchanged.
    pub fn access(&mut self, id: u32, access: MemAccess) -> Result<Admission> {
        let Some((caddr, shed)) = self.admit(id, access.addr, access.len as u64)? else {
            return Ok(Admission::Throttled);
        };
        let res = self.run_shed(shed, |c| {
            c.access(MemAccess {
                addr: caddr,
                len: access.len,
                kind: access.kind,
            })
        })?;
        self.finish_op(id, access.addr, res);
        Ok(Admission::Ran(res))
    }

    /// Writes `data` at tenant-local `addr` for tenant `id`.
    ///
    /// # Errors
    ///
    /// As for [`ServeRuntime::access`].
    pub fn write(&mut self, id: u32, addr: VirtAddr, data: &[u8]) -> Result<Admission> {
        let Some((caddr, shed)) = self.admit(id, addr, data.len() as u64)? else {
            return Ok(Admission::Throttled);
        };
        let res = self.run_shed(shed, |c| c.write_bytes(caddr, data))?;
        self.finish_op(id, addr, res);
        Ok(Admission::Ran(res))
    }

    /// Reads into `buf` from tenant-local `addr` for tenant `id`.
    ///
    /// # Errors
    ///
    /// As for [`ServeRuntime::access`].
    pub fn read(&mut self, id: u32, addr: VirtAddr, buf: &mut [u8]) -> Result<Admission> {
        let Some((caddr, shed)) = self.admit(id, addr, buf.len() as u64)? else {
            return Ok(Admission::Throttled);
        };
        let res = self.run_shed(shed, |c| c.read_bytes(caddr, buf))?;
        self.finish_op(id, addr, res);
        Ok(Admission::Ran(res))
    }

    /// Flushes all dirty state to remote memory (all tenants).
    ///
    /// # Errors
    ///
    /// Propagates network failures.
    pub fn sync(&mut self) -> Result<Nanos> {
        self.cluster.sync()
    }

    /// Brackets one cluster operation with the tenant's prefetch-shed
    /// state: only a shed tenant's speculative traffic is dropped, and
    /// the override never leaks into other tenants' operations.
    fn run_shed<T>(
        &mut self,
        shed: bool,
        op: impl FnOnce(&mut ClusterRuntime) -> Result<T>,
    ) -> Result<T> {
        if shed {
            self.cluster.inner_mut().set_prefetch_shedding(true);
        }
        let res = op(&mut self.cluster);
        if shed {
            self.cluster.inner_mut().set_prefetch_shedding(false);
        }
        res
    }

    /// Runs a QoS review if the current window has closed.
    fn maybe_review(&mut self) {
        let now = self.now();
        if now.as_ns() < self.last_review.as_ns() + self.cfg.review_window.as_ns() {
            return;
        }
        self.last_review = now;
        self.review();
    }

    /// The windowed QoS review: SLO protection, breach penalties,
    /// graceful prefetch degradation — all from deterministic windowed
    /// state, applied in ascending tenant order.
    fn review(&mut self) {
        if !self.cfg.qos {
            for t in self.tenants.values_mut() {
                t.window_mark = t.hist.clone();
                t.throttled_in_window = 0;
                t.quota_rejects_in_window = 0;
            }
            return;
        }
        let mut apply: Vec<(u64, u64, i8)> = Vec::new();
        let mut pressure = false;
        for t in self.tenants.values_mut() {
            let delta = t.hist.delta_since(&t.window_mark);
            let burning =
                delta.count() >= self.cfg.min_window_ops && delta.p99() > t.cfg.slo_p99.as_ns();
            let breaching = t.throttled_in_window > 0 || t.quota_rejects_in_window > 0;
            // A compliant tenant burning its SLO budget earns eviction
            // protection; a breacher earns eviction priority (evicted
            // first). A protected breacher nets out to neutral.
            t.protected = burning && !breaching;
            t.penalized = breaching;
            if t.protected {
                pressure = true;
                t.protected_windows += 1;
                t.metrics.protected_windows.inc();
                self.counters.slo_breaches.inc();
                self.totals.slo_breaches += 1;
            }
            let prio = t.priority();
            for r in t.regions.values() {
                apply.push((r.cluster_base, r.len, prio));
            }
        }
        // Graceful degradation: while any tenant is burning its SLO,
        // shed the lowest-QoS-class unprotected tenants' prefetches.
        // Demand traffic is never touched here.
        let min_class = self
            .tenants
            .values()
            .filter(|t| !t.protected)
            .map(|t| t.cfg.qos_class)
            .min();
        for t in self.tenants.values_mut() {
            let shed = pressure && !t.protected && Some(t.cfg.qos_class) == min_class;
            if shed {
                t.shed_windows += 1;
                t.metrics.shed_windows.inc();
                self.counters.prefetch_shed.inc();
                self.totals.prefetch_shed += 1;
            }
            t.shed = shed;
            t.window_mark = t.hist.clone();
            t.throttled_in_window = 0;
            t.quota_rejects_in_window = 0;
        }
        for (base, len, prio) in apply {
            self.cluster
                .set_eviction_priority(VirtAddr::new(base), len, prio);
        }
    }

    /// One row per tenant plus front-door totals.
    pub fn report(&self) -> ServeReport {
        let tenants = self
            .tenants
            .values()
            .map(|t| TenantSnapshot {
                id: t.cfg.id,
                ops: t.ops,
                throttled: t.throttled,
                faults: t.faults,
                quota_rejections: t.quota_rejections,
                used_bytes: t.used,
                regions: t.regions.len() as u64,
                lat_count: t.hist.count(),
                lat_sum: t.hist.sum(),
                p50: t.hist.p50(),
                p95: t.hist.p95(),
                p99: t.hist.p99(),
                shed_windows: t.shed_windows,
                protected_windows: t.protected_windows,
            })
            .collect();
        ServeReport {
            tenants,
            admitted: self.totals.admitted,
            throttled: self.totals.throttled,
            isolation_faults: self.totals.isolation_faults,
            quota_rejections: self.totals.quota_rejections,
            balloon_grows: self.totals.balloon_grows,
            balloon_shrinks: self.totals.balloon_shrinks,
            balloon_errors: self.totals.balloon_errors,
            slo_breaches: self.totals.slo_breaches,
            prefetch_shed: self.totals.prefetch_shed,
        }
    }

    /// FNV-1a fingerprint of the full report — byte-identical runs have
    /// identical fingerprints.
    pub fn fingerprint(&self) -> u64 {
        self.report().fingerprint()
    }
}

/// One tenant's row in a [`ServeReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant id.
    pub id: u32,
    /// Admitted demand operations.
    pub ops: u64,
    /// Operations shed by the admission gate.
    pub throttled: u64,
    /// Typed tenant faults (isolation violations attempted).
    pub faults: u64,
    /// Typed quota rejections.
    pub quota_rejections: u64,
    /// Bytes currently ballooned in.
    pub used_bytes: u64,
    /// Live regions backing the tenant's namespace.
    pub regions: u64,
    /// Demand ops recorded in the latency histogram.
    pub lat_count: u64,
    /// Sum of demand latencies (ns).
    pub lat_sum: u64,
    /// Median demand latency (ns).
    pub p50: u64,
    /// 95th percentile demand latency (ns).
    pub p95: u64,
    /// 99th percentile demand latency (ns).
    pub p99: u64,
    /// QoS windows this tenant spent with prefetches shed.
    pub shed_windows: u64,
    /// QoS windows this tenant spent under eviction protection.
    pub protected_windows: u64,
}

/// Point-in-time rollup of a [`ServeRuntime`]: per-tenant rows in id
/// order plus front-door totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// One row per tenant, ascending id.
    pub tenants: Vec<TenantSnapshot>,
    /// Operations admitted across all tenants.
    pub admitted: u64,
    /// Operations throttled across all tenants.
    pub throttled: u64,
    /// Isolation faults across all tenants (each also failed typed).
    pub isolation_faults: u64,
    /// Quota rejections across all tenants (each also failed typed).
    pub quota_rejections: u64,
    /// Successful balloon grows.
    pub balloon_grows: u64,
    /// Successful balloon region releases.
    pub balloon_shrinks: u64,
    /// Failed balloon evacuations (region kept; surfaced, not
    /// swallowed).
    pub balloon_errors: u64,
    /// QoS windows in which some compliant tenant burned its SLO.
    pub slo_breaches: u64,
    /// QoS windows × tenants with prefetches shed.
    pub prefetch_shed: u64,
}

impl ServeReport {
    /// FNV-1a fold of every field, in declaration order.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        fold(self.tenants.len() as u64);
        for t in &self.tenants {
            for v in [
                t.id as u64,
                t.ops,
                t.throttled,
                t.faults,
                t.quota_rejections,
                t.used_bytes,
                t.regions,
                t.lat_count,
                t.lat_sum,
                t.p50,
                t.p95,
                t.p99,
                t.shed_windows,
                t.protected_windows,
            ] {
                fold(v);
            }
        }
        for v in [
            self.admitted,
            self.throttled,
            self.isolation_faults,
            self.quota_rejections,
            self.balloon_grows,
            self.balloon_shrinks,
            self.balloon_errors,
            self.slo_breaches,
            self.prefetch_shed,
        ] {
            fold(v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantConfig;

    fn small_serve() -> ServeRuntime {
        ServeRuntime::new(ClusterConfig::small(), ServeConfig::default()).unwrap()
    }

    #[test]
    fn registration_validates() {
        let mut s = small_serve();
        s.register_tenant(TenantConfig::new(1)).unwrap();
        let dup = s.register_tenant(TenantConfig::new(1));
        assert!(matches!(dup, Err(KonaError::InvalidConfig(_))));
        let zero = s.register_tenant(TenantConfig::new(2).with_quota_bytes(0));
        assert!(matches!(zero, Err(KonaError::InvalidConfig(_))));
        assert_eq!(s.tenant_ids(), vec![1]);
    }

    #[test]
    fn unmapped_address_faults_typed() {
        let mut s = small_serve();
        s.register_tenant(TenantConfig::new(1)).unwrap();
        let mut buf = [0u8; 8];
        let err = s.read(1, VirtAddr::new(0x4000), &mut buf).unwrap_err();
        assert!(matches!(
            err,
            KonaError::TenantFault { tenant: 1, .. }
        ));
        assert_eq!(s.report().isolation_faults, 1);
    }

    #[test]
    fn quota_is_exact_and_typed() {
        let mut s = small_serve();
        let slab = s.slab_bytes();
        s.register_tenant(TenantConfig::new(1).with_quota_bytes(2 * slab))
            .unwrap();
        s.grow_tenant(1, slab).unwrap();
        s.grow_tenant(1, slab).unwrap();
        let err = s.grow_tenant(1, 1).unwrap_err();
        assert!(matches!(
            err,
            KonaError::QuotaExceeded { tenant: 1, used, quota, .. }
                if used == 2 * slab && quota == 2 * slab
        ));
        assert_eq!(s.tenant_used(1), Some(2 * slab));
        // Shrinking frees quota headroom again.
        assert_eq!(s.shrink_tenant(1, slab).unwrap(), slab);
        s.grow_tenant(1, slab).unwrap();
    }

    #[test]
    fn write_read_roundtrip_and_region_reuse_faults() {
        let mut s = small_serve();
        s.register_tenant(TenantConfig::new(7)).unwrap();
        let base = s.grow_tenant(7, 1).unwrap();
        let data = [0xA5u8; 256];
        assert!(matches!(
            s.write(7, base, &data).unwrap(),
            Admission::Ran(_)
        ));
        let mut buf = [0u8; 256];
        s.read(7, base, &mut buf).unwrap();
        assert_eq!(buf, data);
        // After shrink the namespace entry dies; the old pointer faults.
        let released = s.shrink_tenant(7, 1).unwrap();
        assert_eq!(released, s.slab_bytes());
        let err = s.read(7, base, &mut buf).unwrap_err();
        assert!(matches!(err, KonaError::TenantFault { tenant: 7, .. }));
    }

    #[test]
    fn fingerprints_replay_identically() {
        let run = || {
            let mut s = small_serve();
            s.register_tenant(TenantConfig::new(1).with_rate(4, 8)).unwrap();
            s.register_tenant(TenantConfig::new(2)).unwrap();
            let b1 = s.grow_tenant(1, 1).unwrap();
            let b2 = s.grow_tenant(2, 1).unwrap();
            for i in 0..200u64 {
                let off = (i * 64) % 4096;
                let _ = s.write(1, VirtAddr::new(b1.raw() + off), &[i as u8; 64]).unwrap();
                let mut buf = [0u8; 64];
                let _ = s.read(2, VirtAddr::new(b2.raw() + off), &mut buf).unwrap();
            }
            s.fingerprint()
        };
        assert_eq!(run(), run());
    }
}
