//! Multi-tenant serving front end for the Kona simulator.
//!
//! The paper's runtime serves one application; real disaggregated racks
//! are shared. This crate multiplexes N tenants — each with its own
//! virtual address space — over one [`ClusterRuntime`], in the spirit of
//! Clio's per-process address-space isolation and MIND's control-plane
//! QoS enforcement:
//!
//! * **Isolation** — every tenant gets a private translation namespace.
//!   An access outside a tenant's own regions fails with a typed
//!   [`KonaError::TenantFault`](kona_types::KonaError::TenantFault)
//!   before it ever reaches the shared runtime, so tenants can never
//!   read or clobber each other's lines.
//! * **Admission control** — a deterministic token bucket per tenant
//!   gates demand traffic; over-rate operations are shed at the front
//!   door ([`Admission::Throttled`]) instead of queueing behind everyone
//!   else.
//! * **QoS** — a windowed review compares each tenant's p99 against its
//!   SLO. A compliant tenant burning its budget gets FMem eviction
//!   protection; a tenant breaching its quota or rate gets evicted
//!   first; under pressure the lowest-priority tenants' *prefetches*
//!   are shed before anyone's demand traffic is touched.
//! * **Ballooning** — [`ServeRuntime::grow_tenant`] /
//!   [`ServeRuntime::shrink_tenant`] resize a tenant's remote
//!   allocation live, shrink evacuating the coldest regions first
//!   through the cluster's slab-reclamation machinery. Evacuation
//!   failures surface in the `serve.balloon_errors` counter.
//! * **Observability** — per-tenant `tenant.<id>.*` metrics through the
//!   registry's interned-name cache (no per-op formatting), plus a
//!   [`ServeReport`] with one row per tenant and an FNV fingerprint for
//!   byte-identity checks.
//!
//! # Examples
//!
//! ```
//! use kona::ClusterConfig;
//! use kona_serve::{Admission, ServeConfig, ServeRuntime, TenantConfig};
//! use kona_types::VirtAddr;
//!
//! let mut serve = ServeRuntime::new(ClusterConfig::small(), ServeConfig::default()).unwrap();
//! serve.register_tenant(TenantConfig::new(1).with_quota_bytes(4 << 20)).unwrap();
//! let base = serve.grow_tenant(1, 1 << 20).unwrap();
//! assert!(matches!(serve.write(1, base, b"hello").unwrap(), Admission::Ran(_)));
//! let mut buf = [0u8; 5];
//! serve.read(1, base, &mut buf).unwrap();
//! assert_eq!(&buf, b"hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod serve;
mod tenant;

pub use serve::{Admission, ServeConfig, ServeReport, ServeRuntime, TenantSnapshot};
pub use tenant::{TenantConfig, TokenBucket};
