//! Per-tenant configuration, admission state and bookkeeping.

use kona_telemetry::{Counter, Gauge, Histogram, HistogramData, Telemetry};
use kona_types::Nanos;
use std::collections::BTreeMap;

/// One token per operation, scaled by 1e6 so refill stays in integer
/// nanosecond arithmetic.
const TOKEN: u64 = 1_000_000;

/// A deterministic token bucket keyed to simulated time.
///
/// Refill is `rate_per_ms` tokens per simulated millisecond, capped at
/// `burst` tokens; admission consumes one token. All integer math, so
/// two runs over the same simulated timeline admit identical op sets.
///
/// # Examples
///
/// ```
/// use kona_serve::TokenBucket;
/// use kona_types::Nanos;
///
/// let mut b = TokenBucket::new(1, 2); // 1 op/ms, burst of 2
/// assert!(b.admit(Nanos::ZERO));
/// assert!(b.admit(Nanos::ZERO)); // burst
/// assert!(!b.admit(Nanos::ZERO)); // dry
/// assert!(b.admit(Nanos::millis(1))); // refilled
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_ms: u64,
    burst_tokens: u64,
    tokens: u64,
    last: Nanos,
}

impl TokenBucket {
    /// A bucket refilling `rate_per_ms` ops per simulated millisecond
    /// with depth `burst` ops, starting full. A zero rate means
    /// *unlimited*: every admit succeeds.
    pub fn new(rate_per_ms: u64, burst: u64) -> Self {
        let burst_tokens = burst.saturating_mul(TOKEN);
        TokenBucket {
            rate_per_ms,
            burst_tokens,
            tokens: burst_tokens,
            last: Nanos::ZERO,
        }
    }

    /// Refills for the time elapsed since the last call and tries to
    /// take one token. `now` must be the simulated clock (monotone per
    /// bucket; regressions are treated as zero elapsed time).
    pub fn admit(&mut self, now: Nanos) -> bool {
        if self.rate_per_ms == 0 {
            return true;
        }
        let elapsed = now.as_ns().saturating_sub(self.last.as_ns());
        self.last = Nanos::from_ns(self.last.as_ns().max(now.as_ns()));
        // rate/ms × elapsed ns × (1e6 token scale / 1e6 ns per ms) — the
        // scales cancel, so refill is simply elapsed × rate.
        self.tokens = self
            .tokens
            .saturating_add(elapsed.saturating_mul(self.rate_per_ms))
            .min(self.burst_tokens);
        if self.tokens >= TOKEN {
            self.tokens -= TOKEN;
            true
        } else {
            false
        }
    }
}

/// Static configuration of one tenant.
///
/// Built fluently: `TenantConfig::new(3).with_quota_bytes(8 << 20)`.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Tenant identifier (metric names use it: `tenant.<id>.*`).
    pub id: u32,
    /// Remote-memory quota in bytes. Grow requests pushing the tenant
    /// past this fail typed with
    /// [`KonaError::QuotaExceeded`](kona_types::KonaError::QuotaExceeded).
    pub quota_bytes: u64,
    /// Latency SLO: the tenant's windowed p99 target. A compliant tenant
    /// whose p99 exceeds this earns eviction protection at the next QoS
    /// review.
    pub slo_p99: Nanos,
    /// Token-bucket refill rate in ops per simulated millisecond
    /// (0 = unlimited).
    pub rate_per_ms: u64,
    /// Token-bucket depth in ops.
    pub burst: u64,
    /// QoS class: under pressure, prefetches of the lowest class are
    /// shed first. Higher is more important.
    pub qos_class: u8,
}

impl TenantConfig {
    /// A tenant with a 4 MiB quota, a 100 µs p99 SLO, unlimited
    /// admission and QoS class 1.
    pub fn new(id: u32) -> Self {
        TenantConfig {
            id,
            quota_bytes: 4 << 20,
            slo_p99: Nanos::micros(100),
            rate_per_ms: 0,
            burst: 1,
            qos_class: 1,
        }
    }

    /// Sets the remote-memory quota in bytes.
    pub fn with_quota_bytes(mut self, bytes: u64) -> Self {
        self.quota_bytes = bytes;
        self
    }

    /// Sets the p99 latency SLO.
    pub fn with_slo(mut self, slo: Nanos) -> Self {
        self.slo_p99 = slo;
        self
    }

    /// Sets the admission rate (ops per simulated ms; 0 = unlimited)
    /// and burst depth.
    pub fn with_rate(mut self, rate_per_ms: u64, burst: u64) -> Self {
        self.rate_per_ms = rate_per_ms;
        self.burst = burst.max(1);
        self
    }

    /// Sets the QoS class (higher keeps prefetches longer under
    /// pressure).
    pub fn with_qos_class(mut self, class: u8) -> Self {
        self.qos_class = class;
        self
    }
}

/// One contiguous slab-granular piece of a tenant's address space,
/// keyed in [`Tenant::regions`] by its tenant-local base.
#[derive(Debug, Clone)]
pub(crate) struct Region {
    /// Base of the backing allocation in the shared cluster runtime.
    pub cluster_base: u64,
    /// Length in bytes (a whole number of slabs).
    pub len: u64,
    /// Demand accesses that landed in this region — the balloon's
    /// coldness signal (shrink evacuates the least-touched region
    /// first).
    pub touches: u64,
}

/// Pre-resolved `tenant.<id>.*` metric handles. Resolved once at
/// registration through the registry's interned-name cache, so the
/// serving hot loop never formats a metric name.
#[derive(Debug, Clone)]
pub(crate) struct TenantMetrics {
    pub ops: Counter,
    pub throttled: Counter,
    pub faults: Counter,
    pub quota_rejections: Counter,
    pub shed_windows: Counter,
    pub protected_windows: Counter,
    pub bytes: Gauge,
    pub lat: Histogram,
}

impl TenantMetrics {
    pub fn new(tel: &Telemetry, id: u32) -> Self {
        TenantMetrics {
            ops: tel.counter_interned("tenant.", id, "ops"),
            throttled: tel.counter_interned("tenant.", id, "throttled"),
            faults: tel.counter_interned("tenant.", id, "faults"),
            quota_rejections: tel.counter_interned("tenant.", id, "quota_rejections"),
            shed_windows: tel.counter_interned("tenant.", id, "shed_windows"),
            protected_windows: tel.counter_interned("tenant.", id, "protected_windows"),
            bytes: tel.gauge_interned("tenant.", id, "bytes"),
            lat: tel.histogram_interned("tenant.", id, "lat_ns"),
        }
    }
}

/// The full mutable state of one registered tenant.
#[derive(Debug, Clone)]
pub(crate) struct Tenant {
    pub cfg: TenantConfig,
    /// Tenant-local base → region, the tenant's private translation
    /// namespace. Range queries resolve accesses; anything not covered
    /// faults.
    pub regions: BTreeMap<u64, Region>,
    /// Next tenant-local base to hand out (never reused, so stale
    /// pointers into shrunk regions keep faulting).
    pub cursor: u64,
    /// Bytes currently allocated (≤ quota, exactly enforced).
    pub used: u64,
    pub bucket: TokenBucket,
    /// Latency of every admitted demand op, in simulated ns.
    pub hist: HistogramData,
    /// Snapshot of `hist` at the last QoS review (windowed p99 via
    /// `delta_since`).
    pub window_mark: HistogramData,
    /// Admission rejections since the last review.
    pub throttled_in_window: u64,
    /// Quota rejections since the last review.
    pub quota_rejects_in_window: u64,
    /// Eviction protection currently applied (SLO-burning, compliant).
    pub protected: bool,
    /// Eviction penalty currently applied (rate or quota breacher).
    pub penalized: bool,
    /// Prefetch shedding currently applied (lowest class under
    /// pressure).
    pub shed: bool,
    // Lifetime totals (plain mirrors of the telemetry counters, used by
    // reports and fingerprints without reading the shared registry).
    pub ops: u64,
    pub throttled: u64,
    pub faults: u64,
    pub quota_rejections: u64,
    pub shed_windows: u64,
    pub protected_windows: u64,
    pub metrics: TenantMetrics,
}

impl Tenant {
    pub fn new(cfg: TenantConfig, tel: &Telemetry) -> Self {
        let bucket = TokenBucket::new(cfg.rate_per_ms, cfg.burst);
        let metrics = TenantMetrics::new(tel, cfg.id);
        Tenant {
            cfg,
            regions: BTreeMap::new(),
            cursor: 0,
            used: 0,
            bucket,
            hist: HistogramData::new(),
            window_mark: HistogramData::new(),
            throttled_in_window: 0,
            quota_rejects_in_window: 0,
            protected: false,
            penalized: false,
            shed: false,
            ops: 0,
            throttled: 0,
            faults: 0,
            quota_rejections: 0,
            shed_windows: 0,
            protected_windows: 0,
            metrics,
        }
    }

    /// The eviction priority the tenant's regions should carry right
    /// now: protection and penalty compose (a protected breacher nets
    /// out to neutral).
    pub fn priority(&self) -> i8 {
        let mut p = 0i8;
        if self.protected {
            p += 1;
        }
        if self.penalized {
            p -= 1;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_is_deterministic_and_rate_limited() {
        let mut a = TokenBucket::new(2, 4);
        let mut b = TokenBucket::new(2, 4);
        let mut admitted = 0;
        for i in 0..40u64 {
            let now = Nanos::from_ns(i * 100_000); // 0.1 ms steps
            let ra = a.admit(now);
            assert_eq!(ra, b.admit(now), "same timeline, same decisions");
            admitted += ra as u64;
        }
        // 3.9 ms elapsed at 2 ops/ms plus a burst of 4: ≈ 12 admits.
        assert!(admitted >= 10 && admitted <= 13, "admitted {admitted}");
    }

    #[test]
    fn zero_rate_is_unlimited() {
        let mut b = TokenBucket::new(0, 1);
        for _ in 0..1000 {
            assert!(b.admit(Nanos::ZERO));
        }
    }

    #[test]
    fn clock_regression_is_no_refill() {
        let mut b = TokenBucket::new(1, 1);
        assert!(b.admit(Nanos::millis(5)));
        // Stale timestamp: no tokens conjured out of a backwards clock.
        assert!(!b.admit(Nanos::millis(1)));
    }
}
