//! LRU page reclaim list.
//!
//! Both Kona's FMem cache and the VM baselines need an eviction policy for
//! the local DRAM cache. The paper keeps the policy identical between Kona
//! and Kona-VM ("both use the same algorithm and make the same decisions
//! about which pages to evict", §6.1), so this single LRU implementation is
//! shared by both runtimes.
//!
//! The order list itself is [`kona_types::SlabLru`] — the same slab-backed
//! intrusive list the coherence agents use — wrapped with a
//! [`PageNumber`]-typed surface. A touch costs one Fx-hash probe and a few
//! slab pointer writes, versus the previous hash-map-of-links layout that
//! re-inserted map entries (and re-hashed neighbours) on every access.

use kona_types::{PageNumber, SlabLru};

/// An LRU list over pages with O(1) touch via a slab-backed intrusive
/// doubly-linked list.
///
/// # Examples
///
/// ```
/// # use kona_vm_sim::LruPageList;
/// # use kona_types::PageNumber;
/// let mut lru = LruPageList::new();
/// lru.touch(PageNumber(1));
/// lru.touch(PageNumber(2));
/// lru.touch(PageNumber(1)); // 2 is now least recent
/// assert_eq!(lru.pop_lru(), Some(PageNumber(2)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LruPageList {
    list: SlabLru,
}

impl LruPageList {
    /// Creates an empty list.
    pub fn new() -> Self {
        LruPageList::default()
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Returns `true` if no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Returns `true` if `page` is tracked.
    pub fn contains(&self, page: PageNumber) -> bool {
        self.list.contains(page.raw())
    }

    /// Marks `page` most-recently-used, inserting it if new.
    pub fn touch(&mut self, page: PageNumber) {
        self.list.touch(page.raw());
    }

    /// Removes and returns the least-recently-used page.
    pub fn pop_lru(&mut self) -> Option<PageNumber> {
        self.list.pop_lru().map(PageNumber)
    }

    /// Peeks at the least-recently-used page without removing it.
    pub fn peek_lru(&self) -> Option<PageNumber> {
        self.list.peek_lru().map(PageNumber)
    }

    /// Removes `page` from the list; returns whether it was tracked.
    pub fn remove(&mut self, page: PageNumber) -> bool {
        self.list.remove(page.raw())
    }

    /// Removes and returns up to `n` least-recently-used pages.
    pub fn pop_lru_batch(&mut self, n: usize) -> Vec<PageNumber> {
        (0..n).map_while(|_| self.pop_lru()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::rng::{Rng, StdRng};

    #[test]
    fn lru_order_basic() {
        let mut lru = LruPageList::new();
        for p in 1..=3 {
            lru.touch(PageNumber(p));
        }
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.pop_lru(), Some(PageNumber(1)));
        assert_eq!(lru.pop_lru(), Some(PageNumber(2)));
        assert_eq!(lru.pop_lru(), Some(PageNumber(3)));
        assert_eq!(lru.pop_lru(), None);
    }

    #[test]
    fn touch_moves_to_front() {
        let mut lru = LruPageList::new();
        for p in 1..=3 {
            lru.touch(PageNumber(p));
        }
        lru.touch(PageNumber(1));
        assert_eq!(lru.pop_lru(), Some(PageNumber(2)));
        assert_eq!(lru.peek_lru(), Some(PageNumber(3)));
    }

    #[test]
    fn remove_middle() {
        let mut lru = LruPageList::new();
        for p in 1..=3 {
            lru.touch(PageNumber(p));
        }
        assert!(lru.remove(PageNumber(2)));
        assert!(!lru.remove(PageNumber(2)));
        assert_eq!(lru.pop_lru(), Some(PageNumber(1)));
        assert_eq!(lru.pop_lru(), Some(PageNumber(3)));
    }

    #[test]
    fn singleton_list() {
        let mut lru = LruPageList::new();
        lru.touch(PageNumber(9));
        assert!(lru.contains(PageNumber(9)));
        assert_eq!(lru.peek_lru(), Some(PageNumber(9)));
        assert_eq!(lru.pop_lru(), Some(PageNumber(9)));
        assert!(lru.is_empty());
    }

    #[test]
    fn batch_pop() {
        let mut lru = LruPageList::new();
        for p in 0..5 {
            lru.touch(PageNumber(p));
        }
        let batch = lru.pop_lru_batch(3);
        assert_eq!(batch, vec![PageNumber(0), PageNumber(1), PageNumber(2)]);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.pop_lru_batch(10).len(), 2);
    }

    /// The list behaves identically to a naive Vec-based LRU model.
    #[test]
    fn prop_matches_vec_model() {
        let mut rng = StdRng::seed_from_u64(0x12C);
        for _ in 0..64 {
            let mut lru = LruPageList::new();
            let mut model: Vec<u64> = Vec::new(); // front = MRU
            for _ in 0..rng.gen_range(1usize..300) {
                let page = rng.gen_range(0u64..20);
                match rng.gen_range(0u8..3) {
                    0 => {
                        lru.touch(PageNumber(page));
                        model.retain(|&p| p != page);
                        model.insert(0, page);
                    }
                    1 => {
                        let got = lru.pop_lru().map(|p| p.raw());
                        let want = model.pop();
                        assert_eq!(got, want);
                    }
                    _ => {
                        let got = lru.remove(PageNumber(page));
                        let want = model.contains(&page);
                        model.retain(|&p| p != page);
                        assert_eq!(got, want);
                    }
                }
                assert_eq!(lru.len(), model.len());
                assert_eq!(lru.peek_lru().map(|p| p.raw()), model.last().copied());
            }
        }
    }
}

