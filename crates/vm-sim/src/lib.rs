//! A virtual-memory subsystem simulator.
//!
//! Page-based remote-memory systems (Infiniswap, LegoOS, the paper's
//! Kona-VM baseline) lean on exactly three virtual-memory mechanisms, all
//! modelled here:
//!
//! 1. **Page faults** to detect accesses to non-resident remote pages
//!    ([`PageFaultKind::MajorFetch`]).
//! 2. **Write-protection faults** to track dirty pages
//!    ([`PageFaultKind::WriteProtect`]).
//! 3. **TLB invalidations / shootdowns** when pages are write-protected or
//!    evicted ([`Tlb`], [`Mmu::protect`], [`Mmu::unmap`]).
//!
//! The [`Mmu`] charges each mechanism's simulated cost from a [`VmCosts`]
//! table whose defaults come from the paper's measurements, so baseline
//! runtimes built on this crate reproduce the overheads of §2.1.
//!
//! # Examples
//!
//! ```
//! use kona_vm_sim::{Mmu, VmCosts};
//! use kona_types::{AccessKind, PageNumber, VirtAddr};
//!
//! let mut mmu = Mmu::new(VmCosts::default());
//! mmu.map(PageNumber(1), false); // present, read-only
//! // A read hits; a write takes a write-protect fault.
//! assert!(mmu.translate(VirtAddr::new(4096), AccessKind::Read).is_ok());
//! let fault = mmu.translate(VirtAddr::new(4096), AccessKind::Write).unwrap_err();
//! assert_eq!(fault.kind, kona_vm_sim::PageFaultKind::WriteProtect);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod costs;
mod mmu;
mod page_table;
mod pml;
mod reclaim;
mod tlb;

pub use costs::VmCosts;
pub use mmu::{Mmu, MmuStats, PageFault, PageFaultKind, Translation};
pub use page_table::{PageTable, Pte};
pub use pml::{PmlLog, PML_APPEND_COST, PML_BUFFER_ENTRIES, PML_EXIT_COST};
pub use reclaim::LruPageList;
pub use tlb::{Tlb, TlbConfig, TlbStats};
