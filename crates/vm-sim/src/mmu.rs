//! The MMU: translation, fault generation and cost accounting.

use crate::costs::VmCosts;
use crate::page_table::{PageTable, Pte};
use crate::tlb::{Tlb, TlbConfig, TlbStats};
use kona_telemetry::{Counter, Telemetry};
use kona_types::{AccessKind, Nanos, PageNumber, VirtAddr};

/// Why a translation faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFaultKind {
    /// The page is unmapped or not present — the runtime must fetch it
    /// (a *major* fault in remote-memory systems).
    MajorFetch,
    /// The page is present but write-protected and the access is a write —
    /// the dirty-tracking minor fault.
    WriteProtect,
}

/// A page fault raised by [`Mmu::translate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFault {
    /// The faulting page.
    pub page: PageNumber,
    /// Why it faulted.
    pub kind: PageFaultKind,
    /// Simulated cost already charged for raising the fault (kernel entry,
    /// pipeline flush). Handling costs are charged by the runtime.
    pub raise_cost: Nanos,
}

/// A successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The translated page.
    pub page: PageNumber,
    /// Whether the TLB already held the translation.
    pub tlb_hit: bool,
    /// Simulated cost of the translation (zero for a TLB hit).
    pub cost: Nanos,
}

/// Aggregate MMU counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MmuStats {
    /// Successful translations.
    pub translations: u64,
    /// Major (fetch) faults raised.
    pub major_faults: u64,
    /// Write-protect (dirty-tracking) faults raised.
    pub minor_faults: u64,
    /// Total simulated time charged by the MMU.
    pub time_charged: Nanos,
}

/// The MMU couples a [`PageTable`] and a [`Tlb`] and models the access
/// checks a page-based remote-memory system relies on.
///
/// # Examples
///
/// ```
/// # use kona_vm_sim::{Mmu, PageFaultKind, VmCosts};
/// # use kona_types::{AccessKind, PageNumber, VirtAddr};
/// let mut mmu = Mmu::new(VmCosts::default());
/// let fault = mmu.translate(VirtAddr::new(0), AccessKind::Read).unwrap_err();
/// assert_eq!(fault.kind, PageFaultKind::MajorFetch);
/// mmu.map(PageNumber(0), true);
/// assert!(mmu.translate(VirtAddr::new(0), AccessKind::Write).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct Mmu {
    page_table: PageTable,
    tlb: Tlb,
    costs: VmCosts,
    stats: MmuStats,
    metrics: MmuCounters,
}

/// Pre-resolved telemetry handles for the MMU's fault paths.
#[derive(Debug, Clone)]
struct MmuCounters {
    major_faults: Counter,
    minor_faults: Counter,
    tlb_invalidations: Counter,
    tlb_shootdowns: Counter,
}

impl MmuCounters {
    fn new(telemetry: &Telemetry) -> Self {
        MmuCounters {
            major_faults: telemetry.counter("vm.mmu.major_faults"),
            minor_faults: telemetry.counter("vm.mmu.minor_faults"),
            tlb_invalidations: telemetry.counter("vm.mmu.tlb_invalidations"),
            tlb_shootdowns: telemetry.counter("vm.mmu.tlb_shootdowns"),
        }
    }
}

impl Mmu {
    /// Creates an MMU with a default (Skylake-sized) TLB.
    pub fn new(costs: VmCosts) -> Self {
        Self::with_tlb(costs, TlbConfig::default())
    }

    /// Creates an MMU with an explicit TLB geometry.
    pub fn with_tlb(costs: VmCosts, tlb: TlbConfig) -> Self {
        Mmu {
            page_table: PageTable::new(),
            tlb: Tlb::new(tlb),
            costs,
            stats: MmuStats::default(),
            metrics: MmuCounters::new(&Telemetry::disabled()),
        }
    }

    /// Routes the MMU's fault/shootdown counters into `telemetry`'s
    /// registry.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.metrics = MmuCounters::new(telemetry);
    }

    /// The page table (for inspection).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// MMU counters.
    pub fn stats(&self) -> MmuStats {
        self.stats
    }

    /// TLB counters.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// The configured cost table.
    pub fn costs(&self) -> VmCosts {
        self.costs
    }

    /// Maps `page` present, with the given writability, leaving dirty and
    /// accessed clear.
    pub fn map(&mut self, page: PageNumber, writable: bool) {
        let pte = if writable {
            Pte::present_rw()
        } else {
            Pte::present_ro()
        };
        self.page_table.insert(page, pte);
        // Any stale TLB entry must go (e.g. remapping after eviction).
        self.tlb.invalidate(page);
    }

    /// Unmaps `page` (marks not present and invalidates the TLB entry),
    /// returning the old entry and charging the invalidation cost.
    pub fn unmap(&mut self, page: PageNumber) -> Option<Pte> {
        let old = self.page_table.remove(page);
        if old.is_some() {
            self.tlb.invalidate(page);
            self.metrics.tlb_invalidations.inc();
            self.charge(self.costs.tlb_invalidate);
        }
        old
    }

    /// Write-protects `page` and clears its dirty bit — the dirty-tracking
    /// reset a VM-based runtime performs after each eviction round.
    /// Charges a TLB invalidation (plus shootdown when `shootdown` is set,
    /// modelling multi-core runs).
    pub fn protect(&mut self, page: PageNumber, shootdown: bool) {
        if let Some(pte) = self.page_table.get_mut(page) {
            pte.writable = false;
            pte.dirty = false;
            self.tlb.invalidate(page);
            self.metrics.tlb_invalidations.inc();
            self.charge(self.costs.tlb_invalidate);
            if shootdown {
                self.metrics.tlb_shootdowns.inc();
                self.charge(self.costs.tlb_shootdown);
            }
        }
    }

    /// Translates an access.
    ///
    /// # Errors
    ///
    /// Returns a [`PageFault`] when the page is not present
    /// ([`PageFaultKind::MajorFetch`]) or written while write-protected
    /// ([`PageFaultKind::WriteProtect`]). The fault's `raise_cost` has
    /// already been charged to the MMU's clock.
    pub fn translate(
        &mut self,
        addr: VirtAddr,
        kind: AccessKind,
    ) -> Result<Translation, PageFault> {
        let page = addr.page_number();

        // TLB lookup first.
        let (cached, tlb_hit) = match self.tlb.lookup(page) {
            Some(pte) => (Some(pte), true),
            None => (None, false),
        };
        let mut walk_cost = Nanos::ZERO;
        let pte = match cached {
            Some(pte) => Some(pte),
            None => {
                walk_cost = self.costs.table_walk;
                self.page_table.get(page)
            }
        };

        let Some(pte) = pte else {
            self.stats.major_faults += 1;
            self.metrics.major_faults.inc();
            let raise_cost = walk_cost + self.costs.major_fault_entry;
            self.charge(raise_cost);
            return Err(PageFault {
                page,
                kind: PageFaultKind::MajorFetch,
                raise_cost,
            });
        };

        if !pte.present {
            self.stats.major_faults += 1;
            self.metrics.major_faults.inc();
            let raise_cost = walk_cost + self.costs.major_fault_entry;
            self.charge(raise_cost);
            return Err(PageFault {
                page,
                kind: PageFaultKind::MajorFetch,
                raise_cost,
            });
        }

        if kind.is_write() && !pte.writable {
            self.stats.minor_faults += 1;
            self.metrics.minor_faults.inc();
            // A write-protect fault invalidates the (stale, read-only) TLB
            // entry as part of handling.
            self.tlb.invalidate(page);
            let raise_cost = walk_cost + self.costs.minor_fault;
            self.charge(raise_cost);
            return Err(PageFault {
                page,
                kind: PageFaultKind::WriteProtect,
                raise_cost,
            });
        }

        // Success: update A/D bits in the page table and refresh the TLB.
        if let Some(entry) = self.page_table.get_mut(page) {
            entry.accessed = true;
            if kind.is_write() {
                entry.dirty = true;
            }
            let fresh = *entry;
            if !tlb_hit {
                self.tlb.insert(page, fresh);
            }
        }
        self.stats.translations += 1;
        self.charge(walk_cost);
        Ok(Translation {
            page,
            tlb_hit,
            cost: walk_cost,
        })
    }

    /// Removes write protection from `page` (the handler's job after a
    /// write-protect fault) and marks it dirty.
    pub fn make_writable(&mut self, page: PageNumber) {
        if let Some(pte) = self.page_table.get_mut(page) {
            pte.writable = true;
            pte.dirty = true;
        }
    }

    /// Pages currently marked dirty in the page table.
    pub fn dirty_pages(&self) -> Vec<PageNumber> {
        self.page_table.dirty_pages()
    }

    fn charge(&mut self, cost: Nanos) {
        self.stats.time_charged += cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu() -> Mmu {
        Mmu::new(VmCosts::default())
    }

    #[test]
    fn unmapped_access_major_faults() {
        let mut m = mmu();
        let f = m.translate(VirtAddr::new(0x5000), AccessKind::Read).unwrap_err();
        assert_eq!(f.kind, PageFaultKind::MajorFetch);
        assert_eq!(f.page, PageNumber(5));
        assert_eq!(m.stats().major_faults, 1);
        assert!(m.stats().time_charged > Nanos::ZERO);
    }

    #[test]
    fn write_to_protected_page_minor_faults() {
        let mut m = mmu();
        m.map(PageNumber(1), false);
        assert!(m.translate(VirtAddr::new(4096), AccessKind::Read).is_ok());
        let f = m.translate(VirtAddr::new(4096), AccessKind::Write).unwrap_err();
        assert_eq!(f.kind, PageFaultKind::WriteProtect);
        assert_eq!(m.stats().minor_faults, 1);
    }

    #[test]
    fn make_writable_resolves_wp_fault() {
        let mut m = mmu();
        m.map(PageNumber(1), false);
        let _ = m.translate(VirtAddr::new(4096), AccessKind::Write);
        m.make_writable(PageNumber(1));
        assert!(m.translate(VirtAddr::new(4096), AccessKind::Write).is_ok());
        assert_eq!(m.dirty_pages(), vec![PageNumber(1)]);
    }

    #[test]
    fn tlb_hit_is_free_and_counted() {
        let mut m = mmu();
        m.map(PageNumber(2), true);
        let first = m.translate(VirtAddr::new(0x2000), AccessKind::Read).unwrap();
        assert!(!first.tlb_hit);
        assert_eq!(first.cost, VmCosts::default().table_walk);
        let second = m.translate(VirtAddr::new(0x2000), AccessKind::Read).unwrap();
        assert!(second.tlb_hit);
        assert_eq!(second.cost, Nanos::ZERO);
    }

    #[test]
    fn protect_clears_dirty_and_invalidate_tlb() {
        let mut m = mmu();
        m.map(PageNumber(3), true);
        m.translate(VirtAddr::new(0x3000), AccessKind::Write).unwrap();
        assert_eq!(m.dirty_pages(), vec![PageNumber(3)]);
        m.protect(PageNumber(3), true);
        assert!(m.dirty_pages().is_empty());
        // Next write faults again.
        let f = m.translate(VirtAddr::new(0x3000), AccessKind::Write).unwrap_err();
        assert_eq!(f.kind, PageFaultKind::WriteProtect);
    }

    #[test]
    fn stale_tlb_entry_does_not_survive_protect() {
        let mut m = mmu();
        m.map(PageNumber(4), true);
        // Load translation into TLB as writable.
        m.translate(VirtAddr::new(0x4000), AccessKind::Write).unwrap();
        m.protect(PageNumber(4), false);
        // Even though the TLB held a writable entry, protect invalidated it.
        let f = m.translate(VirtAddr::new(0x4000), AccessKind::Write).unwrap_err();
        assert_eq!(f.kind, PageFaultKind::WriteProtect);
    }

    #[test]
    fn unmap_makes_accesses_fault() {
        let mut m = mmu();
        m.map(PageNumber(1), true);
        m.translate(VirtAddr::new(4096), AccessKind::Read).unwrap();
        let old = m.unmap(PageNumber(1)).unwrap();
        assert!(old.present);
        let f = m.translate(VirtAddr::new(4096), AccessKind::Read).unwrap_err();
        assert_eq!(f.kind, PageFaultKind::MajorFetch);
        assert!(m.unmap(PageNumber(1)).is_none());
    }

    #[test]
    fn accessed_and_dirty_bits_set() {
        let mut m = mmu();
        m.map(PageNumber(1), true);
        m.translate(VirtAddr::new(4096), AccessKind::Read).unwrap();
        let pte = m.page_table().get(PageNumber(1)).unwrap();
        assert!(pte.accessed && !pte.dirty);
        m.translate(VirtAddr::new(4096), AccessKind::Write).unwrap();
        assert!(m.page_table().get(PageNumber(1)).unwrap().dirty);
    }

    #[test]
    fn zero_cost_table_charges_nothing_on_success() {
        let mut m = Mmu::new(VmCosts::free());
        m.map(PageNumber(1), true);
        m.translate(VirtAddr::new(4096), AccessKind::Write).unwrap();
        assert_eq!(m.stats().time_charged, Nanos::ZERO);
    }
}
