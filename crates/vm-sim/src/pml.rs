//! Intel Page Modification Logging (PML).
//!
//! The paper's related work (§8): "Intel introduced Page Modification
//! Logging (PML), which logs modified pages in hardware and informs the
//! hypervisor of dirty pages in batches of 512 pages. PML reduces the
//! overhead of dirty data tracking, but continues to rely on page
//! granularity."
//!
//! [`PmlLog`] models that mechanism: the CPU appends the GPA of each
//! newly-dirtied page to a 512-entry buffer; when the buffer fills, a
//! VM-exit delivers the batch to software. Compared with write-protection
//! this trades one fault per page for one (cheaper-per-page) exit per 512
//! pages — but the *tracked unit* is still a 4 KiB page, so dirty-data
//! amplification is unchanged. Kona's coherence tracking beats both on
//! granularity.

use kona_types::{FxHashSet, Nanos, PageNumber};

/// Capacity of the hardware PML buffer (architected at 512 entries).
pub const PML_BUFFER_ENTRIES: usize = 512;

/// Cost of the VM-exit that drains a full PML buffer.
pub const PML_EXIT_COST: Nanos = Nanos::micros(4);

/// Per-entry hardware append cost (a cached store by the CPU).
pub const PML_APPEND_COST: Nanos = Nanos::from_ns(10);

/// A simulated PML buffer plus the dirty-page set software accumulates
/// from drained batches.
///
/// # Examples
///
/// ```
/// # use kona_vm_sim::{PmlLog, PML_BUFFER_ENTRIES};
/// # use kona_types::PageNumber;
/// let mut pml = PmlLog::new();
/// for p in 0..PML_BUFFER_ENTRIES as u64 {
///     pml.record_write(PageNumber(p));
/// }
/// // The 512th distinct page filled the buffer: one VM-exit happened.
/// assert_eq!(pml.exits(), 1);
/// assert_eq!(pml.drain_dirty().len(), PML_BUFFER_ENTRIES);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PmlLog {
    /// Pages already logged since the last software reset (the EPT D-bit:
    /// a page is logged only on its first write).
    logged: FxHashSet<u64>,
    /// Entries in the hardware buffer since the last exit.
    buffered: usize,
    /// Dirty pages delivered to software (drained batches + residue).
    dirty: FxHashSet<u64>,
    exits: u64,
    time_charged: Nanos,
}

impl PmlLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        PmlLog::default()
    }

    /// Records a write to `page`. Only the first write since the last
    /// [`PmlLog::reset_tracking`] appends an entry (the D-bit suppresses
    /// repeats). Returns `true` if this write caused a VM-exit (buffer
    /// full).
    pub fn record_write(&mut self, page: PageNumber) -> bool {
        if !self.logged.insert(page.raw()) {
            return false;
        }
        self.time_charged += PML_APPEND_COST;
        self.dirty.insert(page.raw());
        self.buffered += 1;
        if self.buffered >= PML_BUFFER_ENTRIES {
            self.buffered = 0;
            self.exits += 1;
            self.time_charged += PML_EXIT_COST;
            true
        } else {
            false
        }
    }

    /// Takes the accumulated dirty-page set (sorted), leaving it empty.
    /// Tracking state is *not* reset: pages stay suppressed until
    /// [`PmlLog::reset_tracking`].
    pub fn drain_dirty(&mut self) -> Vec<PageNumber> {
        let mut v: Vec<PageNumber> = self.dirty.drain().map(PageNumber).collect();
        v.sort_unstable();
        v
    }

    /// Clears the D-bit suppression so pages will be logged again (what
    /// software does after writing a checkpoint / eviction round).
    pub fn reset_tracking(&mut self) {
        self.logged.clear();
        self.buffered = 0;
    }

    /// VM-exits taken so far.
    pub fn exits(&self) -> u64 {
        self.exits
    }

    /// Total simulated tracking cost charged.
    pub fn time_charged(&self) -> Nanos {
        self.time_charged
    }

    /// Pages currently pending delivery in the hardware buffer.
    pub fn buffered_entries(&self) -> usize {
        self.buffered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_write_logs_repeats_do_not() {
        let mut pml = PmlLog::new();
        assert!(!pml.record_write(PageNumber(1)));
        let t = pml.time_charged();
        pml.record_write(PageNumber(1));
        pml.record_write(PageNumber(1));
        assert_eq!(pml.time_charged(), t, "repeat writes are free");
        assert_eq!(pml.drain_dirty(), vec![PageNumber(1)]);
    }

    #[test]
    fn exit_every_512_distinct_pages() {
        let mut pml = PmlLog::new();
        for p in 0..1024u64 {
            pml.record_write(PageNumber(p));
        }
        assert_eq!(pml.exits(), 2);
        assert_eq!(pml.buffered_entries(), 0);
        assert_eq!(pml.drain_dirty().len(), 1024);
    }

    #[test]
    fn reset_reenables_logging() {
        let mut pml = PmlLog::new();
        pml.record_write(PageNumber(7));
        pml.drain_dirty();
        // Suppressed until reset.
        pml.record_write(PageNumber(7));
        assert!(pml.drain_dirty().is_empty());
        pml.reset_tracking();
        pml.record_write(PageNumber(7));
        assert_eq!(pml.drain_dirty(), vec![PageNumber(7)]);
    }

    #[test]
    fn cheaper_than_write_protection_per_page() {
        // 512 distinct dirty pages: PML costs 512 appends + 1 exit,
        // write-protection costs 512 x 3 us faults.
        let mut pml = PmlLog::new();
        for p in 0..512u64 {
            pml.record_write(PageNumber(p));
        }
        let wp_cost = Nanos::micros(3) * 512;
        assert!(pml.time_charged() < wp_cost / 10);
    }
}
