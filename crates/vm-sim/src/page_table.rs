//! Page tables and page-table entries.

use kona_types::{FxHashMap, PageNumber};

/// A page-table entry.
///
/// Kona and the VM baselines only need the architectural bits that matter
/// to remote memory: present, writable, dirty and accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pte {
    /// Page is mapped and resident (accesses do not fault).
    pub present: bool,
    /// Page may be written (clear = write-protected, writes fault).
    pub writable: bool,
    /// Set by the MMU on the first write after the dirty bit was cleared.
    pub dirty: bool,
    /// Set by the MMU on any access.
    pub accessed: bool,
}

impl Pte {
    /// A present, writable, clean entry.
    pub fn present_rw() -> Self {
        Pte {
            present: true,
            writable: true,
            dirty: false,
            accessed: false,
        }
    }

    /// A present, write-protected, clean entry.
    pub fn present_ro() -> Self {
        Pte {
            present: true,
            writable: false,
            dirty: false,
            accessed: false,
        }
    }
}

/// A flat page table: virtual page number → [`Pte`].
///
/// Real hardware uses a radix tree; a hash map gives identical semantics
/// for simulation purposes while staying fast and simple.
///
/// # Examples
///
/// ```
/// # use kona_vm_sim::{PageTable, Pte};
/// # use kona_types::PageNumber;
/// let mut pt = PageTable::new();
/// pt.insert(PageNumber(7), Pte::present_ro());
/// assert!(pt.get(PageNumber(7)).unwrap().present);
/// assert!(pt.get(PageNumber(8)).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    /// Fx-hashed: walked on every simulated access.
    entries: FxHashMap<u64, Pte>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Installs (or replaces) the entry for `page`.
    pub fn insert(&mut self, page: PageNumber, pte: Pte) {
        self.entries.insert(page.raw(), pte);
    }

    /// Looks up the entry for `page`.
    pub fn get(&self, page: PageNumber) -> Option<Pte> {
        self.entries.get(&page.raw()).copied()
    }

    /// Mutable access to the entry for `page`.
    pub fn get_mut(&mut self, page: PageNumber) -> Option<&mut Pte> {
        self.entries.get_mut(&page.raw())
    }

    /// Removes the entry for `page`, returning it if present.
    pub fn remove(&mut self, page: PageNumber) -> Option<Pte> {
        self.entries.remove(&page.raw())
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(page, pte)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (PageNumber, Pte)> + '_ {
        self.entries.iter().map(|(&p, &e)| (PageNumber(p), e))
    }

    /// Pages whose dirty bit is set.
    pub fn dirty_pages(&self) -> Vec<PageNumber> {
        let mut v: Vec<PageNumber> = self
            .entries
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(&p, _)| PageNumber(p))
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        pt.insert(PageNumber(1), Pte::present_rw());
        assert_eq!(pt.len(), 1);
        assert!(pt.get(PageNumber(1)).unwrap().writable);
        assert!(pt.remove(PageNumber(1)).is_some());
        assert!(pt.remove(PageNumber(1)).is_none());
    }

    #[test]
    fn get_mut_flips_bits() {
        let mut pt = PageTable::new();
        pt.insert(PageNumber(2), Pte::present_ro());
        pt.get_mut(PageNumber(2)).unwrap().dirty = true;
        assert!(pt.get(PageNumber(2)).unwrap().dirty);
    }

    #[test]
    fn dirty_pages_sorted() {
        let mut pt = PageTable::new();
        for p in [5u64, 1, 9] {
            let mut e = Pte::present_rw();
            e.dirty = p != 1;
            pt.insert(PageNumber(p), e);
        }
        assert_eq!(pt.dirty_pages(), vec![PageNumber(5), PageNumber(9)]);
    }

    #[test]
    fn pte_constructors() {
        assert!(Pte::present_rw().writable);
        assert!(!Pte::present_ro().writable);
        assert!(!Pte::default().present);
    }
}
