//! A set-associative translation look-aside buffer.

use crate::page_table::Pte;
use kona_types::PageNumber;

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of sets.
    pub sets: usize,
    /// Entries per set.
    pub ways: usize,
}

impl TlbConfig {
    /// A Skylake-like L2 dTLB: 1536 entries, 12-way.
    pub fn skylake() -> Self {
        TlbConfig { sets: 128, ways: 12 }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig::skylake()
    }
}

/// TLB event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found a cached translation.
    pub hits: u64,
    /// Lookups that missed (page-table walk required).
    pub misses: u64,
    /// Single-entry invalidations.
    pub invalidations: u64,
    /// Full flushes.
    pub flushes: u64,
}

/// A set-associative TLB with LRU replacement, caching [`Pte`] copies.
///
/// Remote-memory baselines pay for TLB invalidations on every
/// write-protection change and eviction; the counters here let runtimes
/// charge those costs and report them.
///
/// # Examples
///
/// ```
/// # use kona_vm_sim::{Tlb, TlbConfig};
/// # use kona_vm_sim::Pte;
/// # use kona_types::PageNumber;
/// let mut tlb = Tlb::new(TlbConfig::default());
/// assert!(tlb.lookup(PageNumber(1)).is_none());
/// tlb.insert(PageNumber(1), Pte::present_rw());
/// assert!(tlb.lookup(PageNumber(1)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// Per set: (page, pte) in MRU-first order.
    sets: Vec<Vec<(u64, Pte)>>,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero sets or ways.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.sets > 0 && config.ways > 0, "TLB must be non-empty");
        Tlb {
            sets: vec![Vec::with_capacity(config.ways); config.sets],
            config,
            stats: TlbStats::default(),
        }
    }

    /// Event counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    fn set_of(&self, page: PageNumber) -> usize {
        (page.raw() % self.config.sets as u64) as usize
    }

    /// Looks up a translation, updating LRU order and hit/miss counters.
    pub fn lookup(&mut self, page: PageNumber) -> Option<Pte> {
        let set_idx = self.set_of(page);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&(p, _)| p == page.raw()) {
            let entry = set.remove(pos);
            set.insert(0, entry);
            self.stats.hits += 1;
            Some(entry.1)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Installs a translation (evicting the set's LRU entry if full).
    pub fn insert(&mut self, page: PageNumber, pte: Pte) {
        let ways = self.config.ways;
        let set_idx = self.set_of(page);
        let set = &mut self.sets[set_idx];
        set.retain(|&(p, _)| p != page.raw());
        set.insert(0, (page.raw(), pte));
        set.truncate(ways);
    }

    /// Invalidates the entry for `page` if cached; returns whether it was.
    pub fn invalidate(&mut self, page: PageNumber) -> bool {
        self.stats.invalidations += 1;
        let set_idx = self.set_of(page);
        let set = &mut self.sets[set_idx];
        let before = set.len();
        set.retain(|&(p, _)| p != page.raw());
        set.len() != before
    }

    /// Flushes the entire TLB.
    pub fn flush(&mut self) {
        self.stats.flushes += 1;
        self.sets.iter_mut().for_each(Vec::clear);
    }

    /// Number of cached translations.
    pub fn entries(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig { sets: 1, ways: 2 })
    }

    #[test]
    fn hit_after_insert() {
        let mut tlb = tiny();
        tlb.insert(PageNumber(1), Pte::present_rw());
        assert!(tlb.lookup(PageNumber(1)).is_some());
        assert_eq!(tlb.stats().hits, 1);
    }

    #[test]
    fn miss_counted() {
        let mut tlb = tiny();
        assert!(tlb.lookup(PageNumber(9)).is_none());
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = tiny();
        tlb.insert(PageNumber(1), Pte::present_rw());
        tlb.insert(PageNumber(2), Pte::present_rw());
        tlb.lookup(PageNumber(1)); // 2 becomes LRU
        tlb.insert(PageNumber(3), Pte::present_rw());
        assert!(tlb.lookup(PageNumber(2)).is_none());
        assert!(tlb.lookup(PageNumber(1)).is_some());
        assert!(tlb.lookup(PageNumber(3)).is_some());
    }

    #[test]
    fn reinsert_replaces_not_duplicates() {
        let mut tlb = tiny();
        tlb.insert(PageNumber(1), Pte::present_ro());
        tlb.insert(PageNumber(1), Pte::present_rw());
        assert_eq!(tlb.entries(), 1);
        assert!(tlb.lookup(PageNumber(1)).unwrap().writable);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut tlb = tiny();
        tlb.insert(PageNumber(1), Pte::present_rw());
        assert!(tlb.invalidate(PageNumber(1)));
        assert!(!tlb.invalidate(PageNumber(1)));
        tlb.insert(PageNumber(2), Pte::present_rw());
        tlb.flush();
        assert_eq!(tlb.entries(), 0);
        assert_eq!(tlb.stats().invalidations, 2);
        assert_eq!(tlb.stats().flushes, 1);
    }

    #[test]
    #[should_panic]
    fn zero_geometry_rejected() {
        Tlb::new(TlbConfig { sets: 0, ways: 1 });
    }

    #[test]
    fn skylake_capacity() {
        let c = TlbConfig::skylake();
        assert_eq!(c.sets * c.ways, 1536);
    }
}
