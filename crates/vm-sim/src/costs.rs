//! Cost constants for virtual-memory operations.

use kona_types::Nanos;

/// Simulated costs of virtual-memory mechanisms.
///
/// Defaults follow the paper's measurements and common x86 numbers:
///
/// * TLB hit: free (folded into the cache access).
/// * Page-table walk on TLB miss: ~100 ns (4-level walk missing caches).
/// * Minor fault (write-protect removal): ~3 µs — the paper measures a 35%
///   Redis throughput loss from write faults, consistent with a few µs per
///   fault including the kernel entry/exit and pipeline flush.
/// * Local TLB invalidation: ~200 ns (INVLPG plus pipeline effects).
/// * Remote TLB shootdown: ~4 µs (IPIs to sibling cores).
///
/// The *remote fetch* cost is not here: it belongs to the runtime, which
/// adds its software stack latency (40 µs Infiniswap, 10 µs LegoOS /
/// Kona-VM) on top of the fault.
///
/// # Examples
///
/// ```
/// # use kona_vm_sim::VmCosts;
/// let costs = VmCosts::default();
/// assert!(costs.minor_fault > costs.table_walk);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmCosts {
    /// Cost of a page-table walk after a TLB miss.
    pub table_walk: Nanos,
    /// Cost of a minor (write-protect) page fault.
    pub minor_fault: Nanos,
    /// Kernel-entry portion of a major fault (the data fetch itself is
    /// charged by the runtime's network model).
    pub major_fault_entry: Nanos,
    /// Cost of invalidating one local TLB entry.
    pub tlb_invalidate: Nanos,
    /// Cost of a remote TLB shootdown (IPI round to other cores).
    pub tlb_shootdown: Nanos,
}

impl Default for VmCosts {
    fn default() -> Self {
        VmCosts {
            table_walk: Nanos::from_ns(100),
            minor_fault: Nanos::micros(3),
            major_fault_entry: Nanos::micros(2),
            tlb_invalidate: Nanos::from_ns(200),
            tlb_shootdown: Nanos::micros(4),
        }
    }
}

impl VmCosts {
    /// A zero-cost table, useful for isolating algorithmic behaviour in
    /// tests.
    pub fn free() -> Self {
        VmCosts {
            table_walk: Nanos::ZERO,
            minor_fault: Nanos::ZERO,
            major_fault_entry: Nanos::ZERO,
            tlb_invalidate: Nanos::ZERO,
            tlb_shootdown: Nanos::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_ordered_sensibly() {
        let c = VmCosts::default();
        assert!(c.tlb_invalidate < c.minor_fault);
        assert!(c.table_walk < c.tlb_shootdown);
        assert_eq!(c.minor_fault, Nanos::micros(3));
    }

    #[test]
    fn free_is_all_zero() {
        let c = VmCosts::free();
        assert_eq!(c.table_walk + c.minor_fault + c.major_fault_entry, Nanos::ZERO);
    }
}
