//! A single set-associative cache with LRU replacement.

use crate::config::CacheConfig;
use kona_types::VirtAddr;

/// Result of presenting one block address to a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was present.
    Hit,
    /// The block was absent and installed without displacing anything.
    MissInstalled,
    /// The block was absent; installing it evicted the returned block's
    /// base address.
    MissEvicted(VirtAddr),
}

impl AccessOutcome {
    /// Returns `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that found their block present.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses that displaced a resident block.
    pub evictions: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement, tracking block
/// presence only (no data).
///
/// # Examples
///
/// ```
/// # use kona_cache_sim::{CacheConfig, SetAssocCache};
/// # use kona_types::VirtAddr;
/// let mut c = SetAssocCache::new(CacheConfig::new("L1", 128, 2, 64).unwrap());
/// assert!(!c.access(VirtAddr::new(0)).is_hit());
/// assert!(c.access(VirtAddr::new(0)).is_hit());
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// Per set: resident block numbers in LRU order (front = MRU).
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
    block_shift: u32,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![Vec::with_capacity(config.ways()); config.sets()];
        let block_shift = config.block_size().trailing_zeros();
        SetAssocCache {
            config,
            sets,
            stats: CacheStats::default(),
            block_shift,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Presents the block containing `addr`; on a miss the block is
    /// installed (write-allocate for loads and stores alike).
    pub fn access(&mut self, addr: VirtAddr) -> AccessOutcome {
        if self.sets.is_empty() {
            // Zero-capacity cache: every access misses, nothing installs.
            self.stats.misses += 1;
            return AccessOutcome::MissInstalled;
        }
        let block = addr.raw() >> self.block_shift;
        let set_idx = (block % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];

        if let Some(pos) = set.iter().position(|&b| b == block) {
            // Move to MRU position.
            let b = set.remove(pos);
            set.insert(0, b);
            self.stats.hits += 1;
            return AccessOutcome::Hit;
        }

        self.stats.misses += 1;
        set.insert(0, block);
        if set.len() > self.config.ways() {
            let victim = set.pop().expect("set cannot be empty after insert");
            self.stats.evictions += 1;
            AccessOutcome::MissEvicted(VirtAddr::new(victim << self.block_shift))
        } else {
            AccessOutcome::MissInstalled
        }
    }

    /// Returns `true` if the block containing `addr` is resident, without
    /// disturbing LRU order or statistics.
    pub fn probe(&self, addr: VirtAddr) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        let block = addr.raw() >> self.block_shift;
        let set_idx = (block % self.sets.len() as u64) as usize;
        self.sets[set_idx].contains(&block)
    }

    /// Removes the block containing `addr` if resident; returns whether it
    /// was present (used for invalidations from outer levels).
    pub fn invalidate(&mut self, addr: VirtAddr) -> bool {
        if self.sets.is_empty() {
            return false;
        }
        let block = addr.raw() >> self.block_shift;
        let set_idx = (block % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of resident blocks.
    pub fn resident_blocks(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.sets.iter_mut().for_each(Vec::clear);
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::rng::{Rng, StdRng};

    fn small_cache(ways: usize, sets: usize) -> SetAssocCache {
        let cap = (ways * sets) as u64 * 64;
        SetAssocCache::new(CacheConfig::new("t", cap, ways, 64).unwrap())
    }

    #[test]
    fn hit_after_install() {
        let mut c = small_cache(2, 2);
        assert_eq!(c.access(VirtAddr::new(0)), AccessOutcome::MissInstalled);
        assert_eq!(c.access(VirtAddr::new(0)), AccessOutcome::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().miss_ratio(), 0.5);
    }

    #[test]
    fn same_block_different_offsets_hit() {
        let mut c = small_cache(2, 2);
        c.access(VirtAddr::new(0));
        assert!(c.access(VirtAddr::new(63)).is_hit());
        assert!(!c.access(VirtAddr::new(64)).is_hit());
    }

    #[test]
    fn lru_eviction_order() {
        // Direct-mapped behaviour within one set: 2 ways, 1 set.
        let mut c = small_cache(2, 1);
        c.access(VirtAddr::new(0)); // A
        c.access(VirtAddr::new(64)); // B
        c.access(VirtAddr::new(0)); // touch A -> B is LRU
        match c.access(VirtAddr::new(128)) {
            AccessOutcome::MissEvicted(victim) => assert_eq!(victim, VirtAddr::new(64)),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.probe(VirtAddr::new(0)));
        assert!(!c.probe(VirtAddr::new(64)));
    }

    #[test]
    fn zero_capacity_always_misses() {
        let mut c = SetAssocCache::new(CacheConfig::new("null", 0, 4, 64).unwrap());
        for _ in 0..3 {
            assert_eq!(c.access(VirtAddr::new(0)), AccessOutcome::MissInstalled);
        }
        assert_eq!(c.stats().misses, 3);
        assert!(!c.probe(VirtAddr::new(0)));
        assert!(!c.invalidate(VirtAddr::new(0)));
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = small_cache(2, 2);
        c.access(VirtAddr::new(0));
        assert!(c.invalidate(VirtAddr::new(0)));
        assert!(!c.invalidate(VirtAddr::new(0)));
        assert!(!c.probe(VirtAddr::new(0)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = small_cache(2, 2);
        c.access(VirtAddr::new(0));
        c.reset();
        assert_eq!(c.resident_blocks(), 0);
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn large_block_cache() {
        // FMem-style: 4 KiB blocks.
        let mut c = SetAssocCache::new(CacheConfig::new("FMem", 64 * 4096, 4, 4096).unwrap());
        c.access(VirtAddr::new(0));
        assert!(c.access(VirtAddr::new(4095)).is_hit());
        assert!(!c.access(VirtAddr::new(4096)).is_hit());
    }

    /// Residency never exceeds capacity, and probe agrees with a naive
    /// fully-LRU model of each set.
    #[test]
    fn prop_matches_reference_model() {
        let mut rng = StdRng::seed_from_u64(0xCAC4E);
        for _ in 0..32 {
            let addrs: Vec<u64> = (0..rng.gen_range(1usize..500))
                .map(|_| rng.gen_range(0u64..(1 << 14)))
                .collect();
            let ways = 2;
            let sets = 4;
            let mut c = small_cache(ways, sets);
            // Reference model: per set, Vec in MRU order.
            let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets];
            for &raw in &addrs {
                let addr = VirtAddr::new(raw);
                let block = raw >> 6;
                let set = (block % sets as u64) as usize;
                let outcome = c.access(addr);
                let hit = model[set].contains(&block);
                assert_eq!(outcome.is_hit(), hit);
                model[set].retain(|&b| b != block);
                model[set].insert(0, block);
                model[set].truncate(ways);
                assert!(c.resident_blocks() <= ways * sets);
            }
            for (s, blocks) in model.iter().enumerate() {
                for &b in blocks {
                    assert!(
                        c.probe(VirtAddr::new(b << 6)),
                        "block {b} missing from set {s}"
                    );
                }
            }
        }
    }
}
