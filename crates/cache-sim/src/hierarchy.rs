//! A multi-level cache hierarchy.

use crate::cache::{CacheStats, SetAssocCache};
use crate::config::HierarchyConfig;
use kona_types::{AccessKind, MemAccess, VirtAddr, CACHE_LINE_SIZE};

/// Statistics for one hierarchy level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Hits at this level (accesses satisfied here).
    pub hits: u64,
    /// Misses at this level (passed on to the next level / memory).
    pub misses: u64,
}

impl LevelStats {
    /// Local miss ratio of this level.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A non-inclusive multi-level hierarchy: each access probes level by level
/// until it hits; missed levels install the block on the way back.
///
/// Accesses wider than a cache line are split into one probe per line, as a
/// real CPU would issue them.
///
/// # Examples
///
/// ```
/// # use kona_cache_sim::{CacheHierarchy, HierarchyConfig};
/// # use kona_types::{AccessKind, VirtAddr};
/// let mut h = CacheHierarchy::new(HierarchyConfig::skylake());
/// h.access(VirtAddr::new(0), AccessKind::Read);
/// assert_eq!(h.memory_accesses(), 1);
/// h.access(VirtAddr::new(0), AccessKind::Write);
/// assert_eq!(h.level_stats(0).hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<SetAssocCache>,
    level_stats: Vec<LevelStats>,
    memory_accesses: u64,
    total_line_accesses: u64,
}

impl CacheHierarchy {
    /// Builds a hierarchy from a configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        let levels: Vec<_> = config.levels.into_iter().map(SetAssocCache::new).collect();
        let n = levels.len();
        CacheHierarchy {
            levels,
            level_stats: vec![LevelStats::default(); n],
            memory_accesses: 0,
            total_line_accesses: 0,
        }
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Presents an access of one cache line at `addr`. Returns the level
    /// index that satisfied it, or `None` for memory.
    pub fn access(&mut self, addr: VirtAddr, _kind: AccessKind) -> Option<usize> {
        self.total_line_accesses += 1;
        let mut hit_level = None;
        for (i, cache) in self.levels.iter_mut().enumerate() {
            if cache.access(addr).is_hit() {
                self.level_stats[i].hits += 1;
                hit_level = Some(i);
                break;
            }
            self.level_stats[i].misses += 1;
        }
        if hit_level.is_none() {
            self.memory_accesses += 1;
        }
        hit_level
    }

    /// Presents a multi-byte access, splitting it into per-line probes.
    /// Returns the number of lines that had to go all the way to memory.
    pub fn access_range(&mut self, access: MemAccess) -> u64 {
        let start = access.addr.line_start().raw();
        let end = access.end().raw();
        let mut addr = start;
        let mut mem = 0;
        loop {
            if self.access(VirtAddr::new(addr), access.kind).is_none() {
                mem += 1;
            }
            addr += CACHE_LINE_SIZE;
            if addr >= end {
                break;
            }
        }
        mem
    }

    /// Statistics for level `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= depth()`.
    pub fn level_stats(&self, i: usize) -> LevelStats {
        self.level_stats[i]
    }

    /// Raw per-cache statistics for level `i` (includes evictions).
    ///
    /// # Panics
    ///
    /// Panics if `i >= depth()`.
    pub fn cache_stats(&self, i: usize) -> CacheStats {
        self.levels[i].stats()
    }

    /// Name of level `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= depth()`.
    pub fn level_name(&self, i: usize) -> &str {
        self.levels[i].config().name()
    }

    /// Accesses that missed every level and went to memory (for Kona this
    /// means *remote* memory; for baselines, local DRAM or remote).
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }

    /// Total line-granularity accesses presented.
    pub fn total_accesses(&self) -> u64 {
        self.total_line_accesses
    }

    /// Fraction of accesses satisfied at each level, plus memory, in order
    /// `[level0, level1, ..., memory]`. Sums to 1 (when any access was made).
    pub fn hit_fractions(&self) -> Vec<f64> {
        let total = self.total_line_accesses as f64;
        if total == 0.0 {
            return vec![0.0; self.depth() + 1];
        }
        let mut f: Vec<f64> = self
            .level_stats
            .iter()
            .map(|s| s.hits as f64 / total)
            .collect();
        f.push(self.memory_accesses as f64 / total);
        f
    }

    /// Clears all contents and statistics.
    pub fn reset(&mut self) {
        for c in &mut self.levels {
            c.reset();
        }
        self.level_stats.iter_mut().for_each(|s| *s = LevelStats::default());
        self.memory_accesses = 0;
        self.total_line_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use kona_types::rng::{Rng, StdRng};

    fn tiny() -> CacheHierarchy {
        // L1: 2 blocks, L2: 4 blocks.
        CacheHierarchy::new(HierarchyConfig {
            levels: vec![
                CacheConfig::new("L1", 128, 2, 64).unwrap(),
                CacheConfig::new("L2", 256, 4, 64).unwrap(),
            ],
        })
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let mut h = tiny();
        assert_eq!(h.access(VirtAddr::new(0), AccessKind::Read), None);
        assert_eq!(h.memory_accesses(), 1);
        assert_eq!(h.level_stats(0).misses, 1);
        assert_eq!(h.level_stats(1).misses, 1);
    }

    #[test]
    fn warm_hit_at_l1() {
        let mut h = tiny();
        h.access(VirtAddr::new(0), AccessKind::Read);
        assert_eq!(h.access(VirtAddr::new(0), AccessKind::Read), Some(0));
        assert_eq!(h.level_stats(0).hits, 1);
        // L2 not consulted on L1 hit.
        assert_eq!(h.level_stats(1).misses, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = tiny();
        // Fill L1's single set (both ways map everywhere since 1 set? —
        // L1 here has 1 set of 2 ways).
        h.access(VirtAddr::new(0), AccessKind::Read);
        h.access(VirtAddr::new(64), AccessKind::Read);
        h.access(VirtAddr::new(128), AccessKind::Read); // evicts 0 from L1
        assert_eq!(h.access(VirtAddr::new(0), AccessKind::Read), Some(1));
    }

    #[test]
    fn access_range_splits_lines() {
        let mut h = tiny();
        let missed = h.access_range(MemAccess::read(VirtAddr::new(0), 256));
        assert_eq!(missed, 4);
        assert_eq!(h.total_accesses(), 4);
        // Second pass: lines 2 and 3 still in L1 (2 ways), 0 and 1 in L2.
        let missed = h.access_range(MemAccess::read(VirtAddr::new(0), 256));
        assert_eq!(missed, 0);
    }

    #[test]
    fn access_range_single_byte() {
        let mut h = tiny();
        assert_eq!(h.access_range(MemAccess::write(VirtAddr::new(100), 1)), 1);
        assert_eq!(h.total_accesses(), 1);
    }

    #[test]
    fn hit_fractions_sum_to_one() {
        let mut h = tiny();
        for i in 0..32 {
            h.access(VirtAddr::new(i * 64), AccessKind::Read);
        }
        for i in 0..32 {
            h.access(VirtAddr::new(i * 64), AccessKind::Read);
        }
        let f = h.hit_fractions();
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut h = tiny();
        h.access(VirtAddr::new(0), AccessKind::Read);
        h.reset();
        assert_eq!(h.memory_accesses(), 0);
        assert_eq!(h.total_accesses(), 0);
        assert_eq!(h.access(VirtAddr::new(0), AccessKind::Read), None);
    }

    #[test]
    fn level_names() {
        let h = tiny();
        assert_eq!(h.level_name(0), "L1");
        assert_eq!(h.level_name(1), "L2");
        assert_eq!(h.depth(), 2);
    }

    #[test]
    fn empty_hierarchy_fractions() {
        let h = tiny();
        assert_eq!(h.hit_fractions(), vec![0.0, 0.0, 0.0]);
    }

    /// Flow conservation: accesses entering level i+1 equal level i's
    /// misses, and level hits plus memory accesses equal the total.
    #[test]
    fn prop_flow_conservation() {
        let mut rng = StdRng::seed_from_u64(0xF10);
        for _ in 0..64 {
            let addrs: Vec<u64> = (0..rng.gen_range(1usize..400))
                .map(|_| rng.gen_range(0u64..(1 << 16)))
                .collect();
            let mut h = tiny();
            for &a in &addrs {
                h.access(VirtAddr::new(a), AccessKind::Read);
            }
            let total = h.total_accesses();
            assert_eq!(total, addrs.len() as u64);
            // L1 sees everything.
            let l1 = h.level_stats(0);
            assert_eq!(l1.hits + l1.misses, total);
            // L2 sees exactly L1's misses.
            let l2 = h.level_stats(1);
            assert_eq!(l2.hits + l2.misses, l1.misses);
            // Memory sees exactly the last level's misses.
            assert_eq!(h.memory_accesses(), l2.misses);
            // All hits plus memory equal the total.
            assert_eq!(l1.hits + l2.hits + h.memory_accesses(), total);
        }
    }

    #[test]
    fn fmem_level_page_block_exploits_spatial_locality() {
        // Hierarchy of just an FMem-like page cache: a miss on one line
        // makes the whole page resident.
        let mut h = CacheHierarchy::new(HierarchyConfig {
            levels: vec![CacheConfig::new("FMem", 16 * 4096, 4, 4096).unwrap()],
        });
        assert_eq!(h.access(VirtAddr::new(0), AccessKind::Read), None);
        assert_eq!(h.access(VirtAddr::new(2048), AccessKind::Read), Some(0));
    }
}
