//! A set-associative cache and multi-level hierarchy simulator.
//!
//! This crate plays the role Cachegrind plays in the paper's KCacheSim
//! tool (§5): given an application memory-access stream it computes hit and
//! miss counts at every level of a configurable cache hierarchy. KCacheSim
//! (`kona-kcachesim`) then turns those counts into average memory access
//! time (AMAT) for Kona and the baseline systems.
//!
//! Kona's FMem DRAM cache is modelled as *one more level* of the hierarchy
//! with a large (page-sized) block — exactly the methodology the paper
//! describes: "we model the DRAM cache (FMem) as another level in the cache
//! hierarchy, with a 4KB block size".
//!
//! # Examples
//!
//! ```
//! use kona_cache_sim::{CacheHierarchy, HierarchyConfig};
//! use kona_types::{AccessKind, VirtAddr};
//!
//! let mut h = CacheHierarchy::new(HierarchyConfig::skylake());
//! h.access(VirtAddr::new(0x1000), AccessKind::Read);   // cold miss everywhere
//! h.access(VirtAddr::new(0x1000), AccessKind::Read);   // L1 hit
//! assert_eq!(h.level_stats(0).hits, 1);
//! assert_eq!(h.memory_accesses(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod hierarchy;

pub use cache::{AccessOutcome, CacheStats, SetAssocCache};
pub use config::{CacheConfig, HierarchyConfig};
pub use hierarchy::{CacheHierarchy, LevelStats};
