//! Cache and hierarchy configuration.

use kona_types::{ByteSize, KonaError, Result, CACHE_LINE_SIZE, PAGE_SIZE_4K};

/// Geometry of one cache level.
///
/// # Examples
///
/// ```
/// # use kona_cache_sim::CacheConfig;
/// let l1 = CacheConfig::new("L1d", 32 * 1024, 8, 64).unwrap();
/// assert_eq!(l1.sets(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    name: String,
    capacity_bytes: u64,
    ways: usize,
    block_size: u64,
}

impl CacheConfig {
    /// Creates a cache configuration.
    ///
    /// A `capacity_bytes` of zero is allowed and denotes a degenerate cache
    /// that misses every access — used for the "0% local cache" points of
    /// the paper's sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::InvalidConfig`] if `block_size` is not a power
    /// of two, `ways` is zero, or a non-zero capacity is not divisible into
    /// whole sets of `ways * block_size`.
    pub fn new(
        name: impl Into<String>,
        capacity_bytes: u64,
        ways: usize,
        block_size: u64,
    ) -> Result<Self> {
        if !block_size.is_power_of_two() {
            return Err(KonaError::InvalidConfig(format!(
                "block size {block_size} must be a power of two"
            )));
        }
        if ways == 0 {
            return Err(KonaError::InvalidConfig("ways must be at least 1".into()));
        }
        if capacity_bytes > 0 {
            let way_bytes = ways as u64 * block_size;
            if !capacity_bytes.is_multiple_of(way_bytes) {
                return Err(KonaError::InvalidConfig(format!(
                    "capacity {capacity_bytes} not divisible by ways*block ({way_bytes})"
                )));
            }
        }
        Ok(CacheConfig {
            name: name.into(),
            capacity_bytes,
            ways,
            block_size,
        })
    }

    /// Level name (e.g. `"L1d"`, `"FMem"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> ByteSize {
        ByteSize(self.capacity_bytes)
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Block (line) size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Number of sets (zero for a zero-capacity cache).
    pub fn sets(&self) -> usize {
        if self.capacity_bytes == 0 {
            0
        } else {
            (self.capacity_bytes / (self.ways as u64 * self.block_size)) as usize
        }
    }
}

/// Configuration for a whole hierarchy: an ordered list of levels from
/// closest-to-CPU outwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Levels in order (index 0 = L1).
    pub levels: Vec<CacheConfig>,
}

impl HierarchyConfig {
    /// The paper's evaluation platform: dual-socket Skylake. Per-core
    /// 32 KiB 8-way L1d, 1 MiB 16-way L2, and a 22 MiB 11-way shared LLC
    /// (single-core view), all with 64 B lines.
    pub fn skylake() -> Self {
        HierarchyConfig {
            levels: vec![
                CacheConfig::new("L1d", 32 * 1024, 8, CACHE_LINE_SIZE).expect("static config"),
                CacheConfig::new("L2", 1024 * 1024, 16, CACHE_LINE_SIZE).expect("static config"),
                CacheConfig::new("LLC", 22 * 1024 * 1024, 11, CACHE_LINE_SIZE)
                    .expect("static config"),
            ],
        }
    }

    /// Skylake hierarchy plus an FMem DRAM-cache level of `capacity_bytes`
    /// with page-sized blocks — the Kona configuration of KCacheSim.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::InvalidConfig`] if the capacity does not divide
    /// into whole 4-way sets of `block_size`.
    pub fn skylake_with_fmem(capacity_bytes: u64, ways: usize, block_size: u64) -> Result<Self> {
        let mut cfg = Self::skylake();
        cfg.levels
            .push(CacheConfig::new("FMem", capacity_bytes, ways, block_size)?);
        Ok(cfg)
    }

    /// Default FMem geometry from the paper: 4-way set-associative with
    /// 4 KiB blocks (§4.4).
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::InvalidConfig`] if the capacity does not divide
    /// into whole sets.
    pub fn skylake_with_default_fmem(capacity_bytes: u64) -> Result<Self> {
        Self::skylake_with_fmem(capacity_bytes, 4, PAGE_SIZE_4K)
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::skylake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config() {
        let c = CacheConfig::new("L1", 32 * 1024, 8, 64).unwrap();
        assert_eq!(c.sets(), 64);
        assert_eq!(c.ways(), 8);
        assert_eq!(c.block_size(), 64);
        assert_eq!(c.name(), "L1");
        assert_eq!(c.capacity().bytes(), 32 * 1024);
    }

    #[test]
    fn zero_capacity_is_valid() {
        let c = CacheConfig::new("null", 0, 4, 64).unwrap();
        assert_eq!(c.sets(), 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(CacheConfig::new("x", 1024, 4, 63).is_err()); // non-pow2 block
        assert!(CacheConfig::new("x", 1024, 0, 64).is_err()); // zero ways
        assert!(CacheConfig::new("x", 1000, 4, 64).is_err()); // indivisible
    }

    #[test]
    fn skylake_shape() {
        let h = HierarchyConfig::skylake();
        assert_eq!(h.depth(), 3);
        assert_eq!(h.levels[0].name(), "L1d");
        assert_eq!(h.levels[2].capacity().bytes(), 22 * 1024 * 1024);
    }

    #[test]
    fn fmem_level_appended() {
        let h = HierarchyConfig::skylake_with_default_fmem(1 << 30).unwrap();
        assert_eq!(h.depth(), 4);
        let fmem = &h.levels[3];
        assert_eq!(fmem.ways(), 4);
        assert_eq!(fmem.block_size(), PAGE_SIZE_4K);
    }
}
