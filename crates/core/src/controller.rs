//! The rack controller.
//!
//! "Disaggregated memory allocation is handled by a rack controller, which
//! allocates memory at a coarse granularity, using large slabs ... off the
//! critical path of the application. Each memory node has to register with
//! the controller the amount of memory offered" (§4.1). We implement the
//! centralized design the paper assumes, with pluggable placement: the
//! paper's round-robin default, plus capacity-aware policies
//! (free-capacity-weighted and power-of-two-choices) for skewed racks.

use kona_types::rng::{Rng, StdRng};
use kona_types::{ByteSize, KonaError, RemoteAddr, Result};
use std::fmt;

/// A slab granted by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabGrant {
    /// Where the slab lives.
    pub remote: RemoteAddr,
    /// Slab length in bytes.
    pub len: u64,
}

/// One live node's occupancy as reported by [`Controller::occupancy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeOccupancy {
    /// The node id.
    pub id: u32,
    /// Position in the controller's registration order (stable; placement
    /// policies use it for rotation).
    pub index: usize,
    /// Bytes currently granted out of this node.
    pub used: u64,
    /// The node's registered capacity in bytes.
    pub capacity: u64,
}

impl NodeOccupancy {
    /// Bytes not yet granted.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }
}

/// How the controller picks the node for the next slab grant.
///
/// Implementations are deterministic given their seed: the simulator's
/// byte-identical replay guarantee extends through placement.
pub trait PlacementPolicy: fmt::Debug + Send {
    /// Short stable name (appears in experiment banners).
    fn name(&self) -> &'static str;

    /// Picks one of `candidates` (all eligible: live, not excluded, with a
    /// free slab), returning an index into the slice. `total_nodes` is the
    /// rack size including ineligible nodes, for rotation arithmetic.
    fn pick(&mut self, candidates: &[NodeOccupancy], total_nodes: usize) -> usize;

    /// Clones the policy behind the trait object (placement state and all),
    /// so [`Controller`] stays `Clone` for checkpoint/replay.
    fn clone_box(&self) -> Box<dyn PlacementPolicy>;
}

impl Clone for Box<dyn PlacementPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The paper's default: rotate over nodes in registration order.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl PlacementPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick(&mut self, candidates: &[NodeOccupancy], total_nodes: usize) -> usize {
        let n = total_nodes.max(1);
        let chosen = (0..candidates.len())
            .min_by_key(|&i| (candidates[i].index + n - self.next % n) % n)
            .expect("candidates is non-empty");
        self.next = (candidates[chosen].index + 1) % n;
        chosen
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

/// Samples nodes with probability proportional to free capacity, so a
/// half-empty node absorbs twice the grants of a three-quarters-full one
/// and the rack fills evenly even when node sizes differ.
#[derive(Debug, Clone)]
pub struct CapacityWeighted {
    rng: StdRng,
}

impl CapacityWeighted {
    /// Creates the policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        CapacityWeighted {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl PlacementPolicy for CapacityWeighted {
    fn name(&self) -> &'static str {
        "capacity"
    }

    fn pick(&mut self, candidates: &[NodeOccupancy], _total_nodes: usize) -> usize {
        let total_free: u64 = candidates.iter().map(|c| c.free()).sum();
        if total_free == 0 {
            return 0;
        }
        let mut ticket = self.rng.gen_range(0..total_free);
        for (i, c) in candidates.iter().enumerate() {
            if ticket < c.free() {
                return i;
            }
            ticket -= c.free();
        }
        candidates.len() - 1
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

/// Power-of-two-choices: sample two candidates uniformly, grant on the one
/// with more free capacity. Near-balanced load with O(1) state — the
/// classic d=2 result.
#[derive(Debug, Clone)]
pub struct PowerOfTwoChoices {
    rng: StdRng,
}

impl PowerOfTwoChoices {
    /// Creates the policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        PowerOfTwoChoices {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl PlacementPolicy for PowerOfTwoChoices {
    fn name(&self) -> &'static str {
        "p2c"
    }

    fn pick(&mut self, candidates: &[NodeOccupancy], _total_nodes: usize) -> usize {
        let n = candidates.len();
        let a = self.rng.gen_range(0..n as u64) as usize;
        let b = self.rng.gen_range(0..n as u64) as usize;
        if candidates[b].free() > candidates[a].free() {
            b
        } else {
            a
        }
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

/// The centralized rack controller: tracks each node's registered pool,
/// hands out slabs under a pluggable [`PlacementPolicy`] (round-robin by
/// default), and reclaims freed slabs into per-node free lists so capacity
/// cycles instead of ratcheting.
///
/// # Examples
///
/// ```
/// # use kona::Controller;
/// # use kona_types::ByteSize;
/// let mut ctl = Controller::new(ByteSize::mib(1).bytes());
/// ctl.register_node(0, ByteSize::mib(4).bytes());
/// let slab = ctl.allocate_slab().unwrap();
/// assert_eq!(slab.remote.node(), 0);
/// assert_eq!(slab.len, ByteSize::mib(1).bytes());
/// ```
#[derive(Debug, Clone)]
pub struct Controller {
    slab_size: u64,
    nodes: Vec<NodeState>,
    policy: Box<dyn PlacementPolicy>,
    slabs_granted: u64,
    slabs_reclaimed: u64,
}

#[derive(Debug, Clone)]
struct NodeState {
    id: u32,
    /// Next never-granted offset (bump allocation frontier).
    cursor: u64,
    capacity: u64,
    removed: bool,
    /// Reclaimed slab offsets below `cursor`, reissued lowest-first.
    free: Vec<u64>,
}

impl Controller {
    /// Creates a controller granting slabs of `slab_size` bytes under
    /// round-robin placement.
    ///
    /// # Panics
    ///
    /// Panics if `slab_size` is zero.
    pub fn new(slab_size: u64) -> Self {
        assert!(slab_size > 0, "slab size must be positive");
        Controller {
            slab_size,
            nodes: Vec::new(),
            policy: Box::new(RoundRobin::default()),
            slabs_granted: 0,
            slabs_reclaimed: 0,
        }
    }

    /// The configured slab size.
    pub fn slab_size(&self) -> u64 {
        self.slab_size
    }

    /// Replaces the placement policy (takes effect on the next grant).
    pub fn set_policy(&mut self, policy: Box<dyn PlacementPolicy>) {
        self.policy = policy;
    }

    /// The active placement policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Registers a memory node offering `capacity` bytes.
    pub fn register_node(&mut self, id: u32, capacity: u64) {
        self.nodes.push(NodeState {
            id,
            cursor: 0,
            capacity,
            removed: false,
            free: Vec::new(),
        });
    }

    /// Removes a node from the pool (no new slabs will target it).
    pub fn remove_node(&mut self, id: u32) {
        for n in &mut self.nodes {
            if n.id == id {
                n.removed = true;
            }
        }
    }

    /// Resurrects a removed node with a clean slate: it becomes
    /// grantable again from offset zero, its old grants forgotten. Only
    /// correct once every slab it hosted has been evacuated
    /// (re-replicated elsewhere) and its contents re-synced — the
    /// lease/fencing rejoin path guarantees both. No-op for a live or
    /// never-registered node.
    pub fn reinstate_node(&mut self, id: u32) {
        for n in &mut self.nodes {
            if n.id == id && n.removed {
                n.removed = false;
                n.cursor = 0;
                n.free.clear();
            }
        }
    }

    /// Whether `id` is registered and not removed.
    pub fn is_live(&self, id: u32) -> bool {
        self.nodes.iter().any(|n| n.id == id && !n.removed)
    }

    fn node_used(&self, n: &NodeState) -> u64 {
        n.cursor - n.free.len() as u64 * self.slab_size
    }

    /// Bytes still allocatable across all live nodes.
    pub fn available(&self) -> ByteSize {
        ByteSize(
            self.nodes
                .iter()
                .filter(|n| !n.removed)
                .map(|n| {
                    (n.capacity - n.cursor) / self.slab_size * self.slab_size
                        + n.free.len() as u64 * self.slab_size
                })
                .sum(),
        )
    }

    /// Total slabs granted so far.
    pub fn slabs_granted(&self) -> u64 {
        self.slabs_granted
    }

    /// Total slabs returned via [`Controller::free_slab`].
    pub fn slabs_reclaimed(&self) -> u64 {
        self.slabs_reclaimed
    }

    /// Per-node occupancy of every live node, in registration order.
    pub fn occupancy(&self) -> Vec<NodeOccupancy> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.removed)
            .map(|(index, n)| NodeOccupancy {
                id: n.id,
                index,
                used: self.node_used(n),
                capacity: n.capacity,
            })
            .collect()
    }

    /// Human-readable per-node occupancy, e.g.
    /// `node0 4.0 MiB/4.0 MiB, node1 3.0 MiB/4.0 MiB`.
    pub fn occupancy_summary(&self) -> String {
        self.occupancy()
            .iter()
            .map(|o| format!("node{} {}/{}", o.id, ByteSize(o.used), ByteSize(o.capacity)))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Allocates one slab on a node chosen by the placement policy.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::OutOfRemoteMemory`] when no node can fit a
    /// slab.
    pub fn allocate_slab(&mut self) -> Result<SlabGrant> {
        self.allocate_slab_excluding(&[])
    }

    /// Allocates one slab on a node not in `exclude` — used to place
    /// replicas on distinct nodes.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::OutOfRemoteMemory`] when no eligible node can
    /// fit a slab; the error carries a per-node occupancy summary.
    pub fn allocate_slab_excluding(&mut self, exclude: &[u32]) -> Result<SlabGrant> {
        let candidates: Vec<NodeOccupancy> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                !n.removed
                    && !exclude.contains(&n.id)
                    && (!n.free.is_empty() || n.cursor + self.slab_size <= n.capacity)
            })
            .map(|(index, n)| NodeOccupancy {
                id: n.id,
                index,
                used: self.node_used(n),
                capacity: n.capacity,
            })
            .collect();
        if candidates.is_empty() {
            return Err(KonaError::OutOfRemoteMemory {
                requested: self.slab_size,
                available: self.available().bytes(),
                occupancy: self.occupancy_summary(),
            });
        }
        let chosen = self.policy.pick(&candidates, self.nodes.len());
        debug_assert!(chosen < candidates.len(), "policy picked out of range");
        let idx = candidates[chosen.min(candidates.len() - 1)].index;
        let node = &mut self.nodes[idx];
        let offset = if node.free.is_empty() {
            let off = node.cursor;
            node.cursor += self.slab_size;
            off
        } else {
            // Reissue reclaimed slabs lowest-offset-first: deterministic,
            // and keeps the touched footprint compact.
            node.free.sort_unstable();
            node.free.remove(0)
        };
        self.slabs_granted += 1;
        Ok(SlabGrant {
            remote: RemoteAddr::new(node.id, offset),
            len: self.slab_size,
        })
    }

    /// Returns a previously granted slab to its node's free list, making
    /// the capacity allocatable again.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::UnknownMemoryNode`] if no node matches, and
    /// [`KonaError::InvalidConfig`] for offsets that were never granted
    /// (misaligned, beyond the frontier, or already free).
    pub fn free_slab(&mut self, remote: RemoteAddr) -> Result<()> {
        let slab = self.slab_size;
        let node = self
            .nodes
            .iter_mut()
            .find(|n| n.id == remote.node())
            .ok_or(KonaError::UnknownMemoryNode(remote.node()))?;
        let offset = remote.offset();
        if !offset.is_multiple_of(slab) || offset + slab > node.cursor {
            return Err(KonaError::InvalidConfig(format!(
                "free of ungranted slab at {remote}"
            )));
        }
        if node.free.contains(&offset) {
            return Err(KonaError::InvalidConfig(format!(
                "double free of slab at {remote}"
            )));
        }
        node.free.push(offset);
        self.slabs_reclaimed += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> Controller {
        let mut c = Controller::new(1 << 20);
        c.register_node(0, 4 << 20);
        c.register_node(1, 4 << 20);
        c
    }

    #[test]
    fn round_robin_across_nodes() {
        let mut c = controller();
        let a = c.allocate_slab().unwrap();
        let b = c.allocate_slab().unwrap();
        assert_ne!(a.remote.node(), b.remote.node());
        let c2 = c.allocate_slab().unwrap();
        assert_eq!(c2.remote.node(), a.remote.node());
        assert_eq!(c2.remote.offset(), 1 << 20);
        assert_eq!(c.slabs_granted(), 3);
    }

    #[test]
    fn exhaustion() {
        let mut c = controller();
        for _ in 0..8 {
            c.allocate_slab().unwrap();
        }
        let err = c.allocate_slab().unwrap_err();
        assert!(matches!(err, KonaError::OutOfRemoteMemory { .. }));
        assert_eq!(c.available().bytes(), 0);
        // The error names every node with its fill level.
        let msg = err.to_string();
        assert!(msg.contains("node0 4.0 MiB/4.0 MiB"), "got: {msg}");
        assert!(msg.contains("node1"), "got: {msg}");
    }

    #[test]
    fn exclusion_for_replicas() {
        let mut c = controller();
        let primary = c.allocate_slab().unwrap();
        let replica = c.allocate_slab_excluding(&[primary.remote.node()]).unwrap();
        assert_ne!(replica.remote.node(), primary.remote.node());
    }

    #[test]
    fn removed_node_skipped() {
        let mut c = controller();
        c.remove_node(0);
        for _ in 0..4 {
            assert_eq!(c.allocate_slab().unwrap().remote.node(), 1);
        }
        assert!(c.allocate_slab().is_err());
        assert!(!c.is_live(0));
        assert!(c.is_live(1));
    }

    #[test]
    fn no_nodes_errors() {
        let mut c = Controller::new(4096);
        assert!(c.allocate_slab().is_err());
    }

    #[test]
    fn available_counts_whole_slabs() {
        let mut c = Controller::new(1 << 20);
        c.register_node(0, (1 << 20) + 512);
        assert_eq!(c.available().bytes(), 1 << 20);
    }

    #[test]
    fn free_slab_recycles_capacity() {
        let mut c = controller();
        let grants: Vec<_> = (0..8).map(|_| c.allocate_slab().unwrap()).collect();
        assert!(c.allocate_slab().is_err());
        c.free_slab(grants[2].remote).unwrap();
        c.free_slab(grants[5].remote).unwrap();
        assert_eq!(c.available().bytes(), 2 << 20);
        assert_eq!(c.slabs_reclaimed(), 2);
        // Reissued slabs land exactly where the freed ones were.
        let again = c.allocate_slab().unwrap();
        assert!(grants[2..].iter().any(|g| g.remote == again.remote));
        let again2 = c.allocate_slab().unwrap();
        assert_ne!(again.remote, again2.remote);
        assert!(c.allocate_slab().is_err());
    }

    #[test]
    fn free_slab_rejects_bogus_and_double_free() {
        let mut c = controller();
        let g = c.allocate_slab().unwrap();
        // Never-granted offset (beyond the frontier).
        assert!(c.free_slab(RemoteAddr::new(0, 3 << 20)).is_err());
        // Misaligned.
        assert!(c.free_slab(RemoteAddr::new(g.remote.node(), 17)).is_err());
        // Unknown node.
        assert!(matches!(
            c.free_slab(RemoteAddr::new(99, 0)),
            Err(KonaError::UnknownMemoryNode(99))
        ));
        c.free_slab(g.remote).unwrap();
        let err = c.free_slab(g.remote).unwrap_err();
        assert!(err.to_string().contains("double free"), "got: {err}");
    }

    #[test]
    fn occupancy_reports_live_nodes() {
        let mut c = controller();
        c.allocate_slab().unwrap();
        c.allocate_slab().unwrap();
        c.allocate_slab().unwrap();
        let occ = c.occupancy();
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[0].used + occ[1].used, 3 << 20);
        assert!(occ.iter().all(|o| o.capacity == 4 << 20));
        c.remove_node(1);
        assert_eq!(c.occupancy().len(), 1);
        assert!(c.occupancy_summary().starts_with("node0 "));
    }

    #[test]
    fn capacity_weighted_prefers_empty_nodes() {
        let mut c = Controller::new(1 << 20);
        c.register_node(0, 64 << 20);
        c.register_node(1, 4 << 20);
        c.set_policy(Box::new(CapacityWeighted::new(7)));
        assert_eq!(c.policy_name(), "capacity");
        let mut on_big = 0;
        for _ in 0..32 {
            if c.allocate_slab().unwrap().remote.node() == 0 {
                on_big += 1;
            }
        }
        // The 16x-larger node should absorb the overwhelming majority.
        assert!(on_big >= 24, "only {on_big}/32 grants on the large node");
    }

    #[test]
    fn power_of_two_choices_balances() {
        let mut c = Controller::new(1 << 20);
        for id in 0..4 {
            c.register_node(id, 16 << 20);
        }
        c.set_policy(Box::new(PowerOfTwoChoices::new(11)));
        for _ in 0..32 {
            c.allocate_slab().unwrap();
        }
        let occ = c.occupancy();
        let max = occ.iter().map(|o| o.used).max().unwrap();
        let min = occ.iter().map(|o| o.used).min().unwrap();
        // d=2 keeps the spread tight: no node runs away from the pack.
        assert!(max - min <= 6 << 20, "spread {}", (max - min) >> 20);
    }

    #[test]
    fn policies_are_deterministic() {
        for policy in 0..2 {
            let mk = |seed: u64| -> Vec<u32> {
                let mut c = Controller::new(1 << 20);
                for id in 0..3 {
                    c.register_node(id, 8 << 20);
                }
                c.set_policy(if policy == 0 {
                    Box::new(CapacityWeighted::new(seed))
                } else {
                    Box::new(PowerOfTwoChoices::new(seed))
                });
                (0..12).map(|_| c.allocate_slab().unwrap().remote.node()).collect()
            };
            assert_eq!(mk(42), mk(42));
        }
    }
}
