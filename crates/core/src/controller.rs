//! The rack controller.
//!
//! "Disaggregated memory allocation is handled by a rack controller, which
//! allocates memory at a coarse granularity, using large slabs ... off the
//! critical path of the application. Each memory node has to register with
//! the controller the amount of memory offered" (§4.1). We implement the
//! centralized design the paper assumes.

use kona_types::{ByteSize, KonaError, RemoteAddr, Result};

/// A slab granted by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabGrant {
    /// Where the slab lives.
    pub remote: RemoteAddr,
    /// Slab length in bytes.
    pub len: u64,
}

/// The centralized rack controller: tracks each node's registered pool and
/// hands out slabs round-robin across nodes (spreading load, and giving
/// replication distinct nodes to target).
///
/// # Examples
///
/// ```
/// # use kona::Controller;
/// # use kona_types::ByteSize;
/// let mut ctl = Controller::new(ByteSize::mib(1).bytes());
/// ctl.register_node(0, ByteSize::mib(4).bytes());
/// let slab = ctl.allocate_slab().unwrap();
/// assert_eq!(slab.remote.node(), 0);
/// assert_eq!(slab.len, ByteSize::mib(1).bytes());
/// ```
#[derive(Debug, Clone)]
pub struct Controller {
    slab_size: u64,
    /// Per node: (id, next free offset, capacity).
    nodes: Vec<NodeState>,
    next_node: usize,
    slabs_granted: u64,
}

#[derive(Debug, Clone)]
struct NodeState {
    id: u32,
    cursor: u64,
    capacity: u64,
    removed: bool,
}

impl Controller {
    /// Creates a controller granting slabs of `slab_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `slab_size` is zero.
    pub fn new(slab_size: u64) -> Self {
        assert!(slab_size > 0, "slab size must be positive");
        Controller {
            slab_size,
            nodes: Vec::new(),
            next_node: 0,
            slabs_granted: 0,
        }
    }

    /// The configured slab size.
    pub fn slab_size(&self) -> u64 {
        self.slab_size
    }

    /// Registers a memory node offering `capacity` bytes.
    pub fn register_node(&mut self, id: u32, capacity: u64) {
        self.nodes.push(NodeState {
            id,
            cursor: 0,
            capacity,
            removed: false,
        });
    }

    /// Removes a node from the pool (no new slabs will target it).
    pub fn remove_node(&mut self, id: u32) {
        for n in &mut self.nodes {
            if n.id == id {
                n.removed = true;
            }
        }
    }

    /// Bytes still allocatable across all live nodes.
    pub fn available(&self) -> ByteSize {
        ByteSize(
            self.nodes
                .iter()
                .filter(|n| !n.removed)
                .map(|n| (n.capacity - n.cursor) / self.slab_size * self.slab_size)
                .sum(),
        )
    }

    /// Total slabs granted so far.
    pub fn slabs_granted(&self) -> u64 {
        self.slabs_granted
    }

    /// Allocates one slab, round-robin over live nodes with space.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::OutOfRemoteMemory`] when no node can fit a
    /// slab.
    pub fn allocate_slab(&mut self) -> Result<SlabGrant> {
        self.allocate_slab_excluding(&[])
    }

    /// Allocates one slab on a node not in `exclude` — used to place
    /// replicas on distinct nodes.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::OutOfRemoteMemory`] when no eligible node can
    /// fit a slab.
    pub fn allocate_slab_excluding(&mut self, exclude: &[u32]) -> Result<SlabGrant> {
        let n = self.nodes.len();
        for i in 0..n {
            let idx = (self.next_node + i) % n.max(1);
            let node = &mut self.nodes[idx];
            if node.removed
                || exclude.contains(&node.id)
                || node.cursor + self.slab_size > node.capacity
            {
                continue;
            }
            let grant = SlabGrant {
                remote: RemoteAddr::new(node.id, node.cursor),
                len: self.slab_size,
            };
            node.cursor += self.slab_size;
            self.next_node = (idx + 1) % n;
            self.slabs_granted += 1;
            return Ok(grant);
        }
        Err(KonaError::OutOfRemoteMemory {
            requested: self.slab_size,
            available: self.available().bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> Controller {
        let mut c = Controller::new(1 << 20);
        c.register_node(0, 4 << 20);
        c.register_node(1, 4 << 20);
        c
    }

    #[test]
    fn round_robin_across_nodes() {
        let mut c = controller();
        let a = c.allocate_slab().unwrap();
        let b = c.allocate_slab().unwrap();
        assert_ne!(a.remote.node(), b.remote.node());
        let c2 = c.allocate_slab().unwrap();
        assert_eq!(c2.remote.node(), a.remote.node());
        assert_eq!(c2.remote.offset(), 1 << 20);
        assert_eq!(c.slabs_granted(), 3);
    }

    #[test]
    fn exhaustion() {
        let mut c = controller();
        for _ in 0..8 {
            c.allocate_slab().unwrap();
        }
        let err = c.allocate_slab().unwrap_err();
        assert!(matches!(err, KonaError::OutOfRemoteMemory { .. }));
        assert_eq!(c.available().bytes(), 0);
    }

    #[test]
    fn exclusion_for_replicas() {
        let mut c = controller();
        let primary = c.allocate_slab().unwrap();
        let replica = c.allocate_slab_excluding(&[primary.remote.node()]).unwrap();
        assert_ne!(replica.remote.node(), primary.remote.node());
    }

    #[test]
    fn removed_node_skipped() {
        let mut c = controller();
        c.remove_node(0);
        for _ in 0..4 {
            assert_eq!(c.allocate_slab().unwrap().remote.node(), 1);
        }
        assert!(c.allocate_slab().is_err());
    }

    #[test]
    fn no_nodes_errors() {
        let mut c = Controller::new(4096);
        assert!(c.allocate_slab().is_err());
    }

    #[test]
    fn available_counts_whole_slabs() {
        let mut c = Controller::new(1 << 20);
        c.register_node(0, (1 << 20) + 512);
        assert_eq!(c.available().bytes(), 1 << 20);
    }
}
