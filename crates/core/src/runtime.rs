//! The Kona runtime and the [`RemoteMemoryRuntime`] interface.

use crate::alloc::SlabAllocator;
use crate::config::{ClusterConfig, DataMode};
use crate::controller::Controller;
use crate::eviction::EvictionHandler;
use crate::failure::{FailurePolicy, FailureState, McEvent};
use crate::metrics::{names, RuntimeCounters};
use crate::poller::Poller;
use crate::stats::RuntimeStats;
use kona_coherence::AgentId;
use kona_fpga::{CpuAccessOutcome, FpgaConfig, KonaFpga, VictimPage};
use kona_net::{Fabric, FaultInjector, NetworkModel, WorkRequest};
use kona_telemetry::{EventKind, Histogram, OpKind, Telemetry, Track};
use kona_trace::TraceEvent;
use kona_types::{
    AccessKind, FxHashMap, KonaError, MemAccess, Nanos, PageNumber, RemoteAddr, Result, VfMemAddr,
    VirtAddr, CACHE_LINE_SIZE, PAGE_SIZE_4K,
};
use std::collections::BTreeMap;

/// The common interface of Kona and the VM baselines.
///
/// Both runtimes are driven identically (same traces, same allocation
/// calls, same eviction policy), so measured differences isolate the
/// mechanism — the paper's §6.1 methodology.
pub trait RemoteMemoryRuntime {
    /// Runtime name for reports (e.g. `"Kona"`, `"Kona-VM"`).
    fn name(&self) -> &str;

    /// Allocates `bytes` of transparently-remote memory.
    ///
    /// # Errors
    ///
    /// Fails when the rack is out of remote memory.
    fn allocate(&mut self, bytes: u64) -> Result<VirtAddr>;

    /// Returns an allocation of `bytes` at `addr`.
    fn free(&mut self, addr: VirtAddr, bytes: u64);

    /// Performs one application memory access, returning the simulated
    /// time charged to the application.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses or unrecoverable network failures.
    fn access(&mut self, access: MemAccess) -> Result<Nanos>;

    /// Writes `data` at `addr` (access + data movement).
    ///
    /// # Errors
    ///
    /// As for [`RemoteMemoryRuntime::access`].
    fn write_bytes(&mut self, addr: VirtAddr, data: &[u8]) -> Result<Nanos>;

    /// Reads into `buf` from `addr` (access + data movement).
    ///
    /// # Errors
    ///
    /// As for [`RemoteMemoryRuntime::access`].
    fn read_bytes(&mut self, addr: VirtAddr, buf: &mut [u8]) -> Result<Nanos>;

    /// Pushes all dirty local state to remote memory; returns the time
    /// charged to the application.
    ///
    /// # Errors
    ///
    /// Propagates network failures.
    fn sync(&mut self) -> Result<Nanos>;

    /// Accumulated statistics.
    fn stats(&self) -> RuntimeStats;

    /// Replays a trace through [`RemoteMemoryRuntime::access`], returning
    /// total application time (trace timestamps are ignored; the runtime's
    /// simulated costs define time).
    ///
    /// # Errors
    ///
    /// Stops at the first access error.
    fn run_trace(&mut self, events: &[TraceEvent]) -> Result<Nanos> {
        let mut total = Nanos::ZERO;
        for e in events {
            total += self.access(e.access)?;
        }
        Ok(total)
    }
}

#[derive(Debug, Clone)]
struct SlabInfo {
    len: u64,
    replicas: Vec<RemoteAddr>,
}

/// The coherence-based remote-memory runtime (the paper's contribution).
///
/// Virtual addresses map identity onto VFMem: the paper keeps all remote
/// data in VFMem and everything else in CMem; our simulated applications
/// allocate only remote data, so the identity map loses nothing.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct KonaRuntime {
    config: ClusterConfig,
    fpga: KonaFpga,
    fabric: Fabric,
    controller: Controller,
    allocator: SlabAllocator,
    eviction: EvictionHandler,
    poller: Poller,
    failure: FailureState,
    telemetry: Telemetry,
    counters: RuntimeCounters,
    fetch_ns: Histogram,
    vfmem_cursor: u64,
    slabs: BTreeMap<u64, SlabInfo>,
    /// Page data for FMem-resident pages (Tracked mode only).
    local_pages: FxHashMap<u64, Vec<u8>>,
    next_wr_id: u64,
    /// Whether degraded mode is currently applied to the components
    /// (prefetch shedding, widened eviction batching).
    degraded_active: bool,
    /// Black-box dumps (flight traces + fault log) captured at recovery
    /// milestones; bounded to the most recent few.
    flight_dumps: Vec<String>,
    /// Abandoned-flush count already reflected in `flight_dumps`.
    seen_abandoned: u64,
}

impl KonaRuntime {
    /// Builds a runtime over a fresh simulated rack.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        Self::with_telemetry(config, Telemetry::disabled())
    }

    /// Builds a runtime whose components all report into `telemetry` —
    /// metrics land in its registry, and span events go to its recorder
    /// (pass [`Telemetry::with_tracing`] for a Perfetto-exportable
    /// timeline).
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn with_telemetry(config: ClusterConfig, telemetry: Telemetry) -> Result<Self> {
        config.validate()?;
        let mut fabric = Fabric::new(NetworkModel::connectx5());
        let mut controller = Controller::new(config.slab_size.bytes());
        let data_capacity = config.node_capacity.bytes();
        let log_capacity = config.log_capacity.bytes();
        for id in 0..config.memory_nodes {
            fabric.add_node(id, data_capacity + log_capacity);
            fabric.register(id, 0, data_capacity)?;
            fabric.register(id, data_capacity, log_capacity)?;
            controller.register_node(id, data_capacity);
        }
        fabric.set_telemetry(&telemetry);
        if let Some(plan) = &config.fault_plan {
            fabric.set_fault_injector(FaultInjector::new(plan.clone()));
        }
        let mut fpga = KonaFpga::new(FpgaConfig {
            cpu_agents: config.cpu_agents.max(1),
            cpu_cache_lines: config.cpu_cache_lines,
            fmem_pages: config.local_cache_pages,
            fmem_ways: config.fmem_ways,
            prefetcher: config.prefetcher.clone(),
        });
        fpga.set_telemetry(&telemetry);
        let mut eviction = EvictionHandler::new(data_capacity, log_capacity as usize);
        eviction.set_telemetry(&telemetry);
        eviction.set_retry_policy(config.retry.clone());
        // Losing more than `replicas - 1` nodes would leave some page with
        // no up-to-date copy, so that is the abandonment budget.
        eviction.set_max_node_losses(config.replicas.saturating_sub(1));
        let failure = FailureState::with_config(
            FailurePolicy::default(),
            config.degraded,
            config.retry.seed,
        );
        Ok(KonaRuntime {
            eviction,
            fpga,
            fabric,
            controller,
            allocator: SlabAllocator::new(),
            poller: Poller::new(),
            failure,
            counters: RuntimeCounters::new(&telemetry),
            fetch_ns: telemetry.histogram(names::FETCH_NS),
            telemetry,
            vfmem_cursor: 0,
            slabs: BTreeMap::new(),
            local_pages: FxHashMap::default(),
            config,
            next_wr_id: 0,
            degraded_active: false,
            flight_dumps: Vec::new(),
            seen_abandoned: 0,
        })
    }

    /// The telemetry handle the runtime reports into (clone it to export
    /// metrics or the span timeline).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The fabric, for failure injection in tests and examples.
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// The FPGA model, for inspection.
    pub fn fpga(&self) -> &KonaFpga {
        &self.fpga
    }

    /// Eviction-phase breakdown (Fig 11c).
    pub fn eviction_breakdown(&self) -> crate::eviction::EvictionBreakdown {
        self.eviction.breakdown()
    }

    /// Sets the failure policy (§4.5).
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.failure.set_policy(policy);
    }

    /// Selects the eviction copy engine (§4.2's optional `copy-dirty-data`
    /// hardware primitive).
    pub fn set_copy_engine(&mut self, engine: crate::eviction::CopyEngine) {
        self.eviction.set_copy_engine(engine);
    }

    /// Machine-check events retained so far (bounded ring; see
    /// [`FailureState::event_capacity`]).
    pub fn mce_events(&self) -> Vec<McEvent> {
        self.failure.events().copied().collect()
    }

    /// The failure bookkeeping (policy counts, degraded windows).
    pub fn failure_state(&self) -> &FailureState {
        &self.failure
    }

    /// Whether degraded mode is currently active (prefetch shedding plus
    /// widened eviction batching).
    pub fn is_degraded(&self) -> bool {
        self.degraded_active
    }

    /// Eviction counters (flush retries, abandoned nodes, batching).
    pub fn eviction_stats(&self) -> crate::eviction::EvictionStats {
        self.eviction.stats()
    }

    /// Re-applies degraded mode to the components when the state machine
    /// has flipped since the last check.
    fn update_degraded(&mut self) {
        let degraded = self.failure.is_degraded(self.fabric.now());
        if degraded != self.degraded_active {
            self.degraded_active = degraded;
            if degraded {
                self.counters.degraded_entries.inc();
                self.note_flight_dump("degraded_mode_entered");
            }
            self.fpga.set_prefetch_shedding(degraded);
            self.eviction.set_degraded(degraded);
        }
    }

    /// Black-box dumps captured whenever recovery abandoned a node or
    /// degraded mode tripped: the flight recorder's last completed traces
    /// plus the fault log, as JSON. Oldest first, bounded to the last
    /// [`KonaRuntime::FLIGHT_DUMPS_MAX`].
    pub fn flight_dumps(&self) -> &[String] {
        &self.flight_dumps
    }

    /// How many black-box dumps are retained.
    pub const FLIGHT_DUMPS_MAX: usize = 4;

    /// Captures a black-box dump if causal tracing is on.
    fn note_flight_dump(&mut self, reason: &str) {
        if !self.telemetry.causal_enabled() {
            return;
        }
        let mut lost: Vec<u32> = self.eviction.lost_nodes().iter().copied().collect();
        lost.sort_unstable();
        let mces: Vec<String> = self
            .failure
            .events()
            .map(|e| format!("{{\"addr\":{},\"at_ns\":{}}}", e.addr.raw(), e.at.as_ns()))
            .collect();
        let fs = self.fabric.fault_stats();
        let dump = format!(
            "{{\"reason\":\"{reason}\",\"sim_now_ns\":{},\"lost_nodes\":{lost:?},\
             \"mce_events\":[{}],\"fault_log\":{{\"dropped\":{},\"corrupted\":{},\
             \"timed_out\":{},\"node_down_rejections\":{},\"spiked_chains\":{}}},\
             \"traces\":{}}}",
            self.fabric.now().as_ns(),
            mces.join(","),
            fs.dropped,
            fs.corrupted,
            fs.timed_out,
            fs.node_down_rejections,
            fs.spiked_chains,
            self.telemetry.flight_json(),
        );
        if self.flight_dumps.len() == Self::FLIGHT_DUMPS_MAX {
            self.flight_dumps.remove(0);
        }
        self.flight_dumps.push(dump);
    }

    /// Captures a dump when the eviction handler abandoned another node
    /// since the last check.
    fn check_abandoned(&mut self) {
        let abandoned = self.eviction.stats().abandoned_flushes;
        if abandoned > self.seen_abandoned {
            self.seen_abandoned = abandoned;
            self.note_flight_dump("node_abandoned");
        }
    }

    /// Performs an access issued by a specific CPU core (cache agent).
    /// Threads sharing lines exercise the full MESI protocol: writes by
    /// one core invalidate the others' copies, and the resulting dirty
    /// writebacks reach the FPGA's tracker like any others.
    ///
    /// # Errors
    ///
    /// As for [`RemoteMemoryRuntime::access`].
    ///
    /// # Panics
    ///
    /// Panics if `core` is not below the configured
    /// [`ClusterConfig::cpu_agents`].
    pub fn access_from_core(&mut self, core: u32, access: MemAccess) -> Result<Nanos> {
        let mut elapsed = Nanos::ZERO;
        let start = access.addr.line_start().raw();
        let end = access.end().raw();
        let mut line = start;
        loop {
            elapsed += self.access_line_from(AgentId(core), VfMemAddr::new(line), access.kind)?;
            line += CACHE_LINE_SIZE;
            if line >= end {
                break;
            }
        }
        if access.kind.is_write() {
            self.counters.app_dirty_bytes.add(u64::from(access.len));
        }
        self.counters.charge_app(elapsed);
        Ok(elapsed)
    }

    fn wr_id(&mut self) -> u64 {
        self.next_wr_id += 1;
        self.next_wr_id
    }

    /// Resolves the replica addresses backing `page`, if any.
    fn replicas_for(&self, page: PageNumber) -> Vec<RemoteAddr> {
        let base = page.base_vfmem().raw();
        if let Some((&slab_base, info)) = self.slabs.range(..=base).next_back() {
            if base < slab_base + info.len {
                return info
                    .replicas
                    .iter()
                    .map(|r| r.add(base - slab_base))
                    .collect();
            }
        }
        Vec::new()
    }

    /// Grabs a slab (plus replicas) from the controller and wires it up,
    /// handing the space to the fine-grained allocator.
    fn grow(&mut self) -> Result<()> {
        let (base, len) = self.grow_reserved()?;
        self.allocator.add_slab(base, len);
        Ok(())
    }

    /// Grabs a slab (plus replicas) and wires it into translation without
    /// exposing it to the fine-grained allocator (whole-slab allocations).
    fn grow_reserved(&mut self) -> Result<(VfMemAddr, u64)> {
        let primary = self.controller.allocate_slab()?;
        let mut replicas = Vec::new();
        let mut used = vec![primary.remote.node()];
        for _ in 1..self.config.replicas {
            let grant = self.controller.allocate_slab_excluding(&used)?;
            used.push(grant.remote.node());
            replicas.push(grant.remote);
        }
        let base = VfMemAddr::new(self.vfmem_cursor);
        self.vfmem_cursor += primary.len;
        self.fpga
            .translation_mut()
            .register(base, primary.len, primary.remote)?;
        self.slabs.insert(
            base.raw(),
            SlabInfo {
                len: primary.len,
                replicas,
            },
        );
        Ok((base, primary.len))
    }

    /// Fetches `page` from remote memory with the full §4.5 recovery
    /// pipeline: per-target retries with exponential backoff and jitter,
    /// failover from the primary to replicas, then the configured failure
    /// policy if every copy stays unreachable.
    fn fetch_page(&mut self, page: PageNumber) -> Result<Nanos> {
        self.update_degraded();
        match self.fetch_page_attempt(page) {
            Ok(t) => Ok(t),
            // The policy governs *network* failures; structural errors
            // (no translation, unregistered memory) propagate untouched.
            Err(err) if err.is_transient() => self.fetch_page_failed(page, err),
            Err(err) => Err(err),
        }
    }

    /// One pass over all targets (primary first, replicas on failover),
    /// each retried under the cluster's [`RetryPolicy`]. Returns the last
    /// error when every copy is unreachable; policy handling is the
    /// caller's job.
    fn fetch_page_attempt(&mut self, page: PageNumber) -> Result<Nanos> {
        // Read-your-writes: if the page has unflushed log entries, flush
        // them so the fetched copy is current.
        let mut elapsed = Nanos::ZERO;
        if self.eviction.is_pending(page.raw()) {
            elapsed += self
                .eviction
                .flush_all(&mut self.fabric, &mut self.poller)?;
            self.update_degraded();
            self.check_abandoned();
        }

        let primary = self.fpga.translate_page(page)?;
        let mut targets = vec![primary];
        targets.extend(self.replicas_for(page));
        // Never read from a node whose writeback was abandoned — its copy
        // is stale. The stable sort keeps primary-first among the healthy.
        if !self.eviction.lost_nodes().is_empty() {
            let lost = self.eviction.lost_nodes().clone();
            targets.sort_by_key(|t| lost.contains(&t.node()));
        }

        let retry = self.config.retry.clone();
        let mut last_err = None;
        'targets: for (i, target) in targets.iter().enumerate() {
            let mut attempt = 0u32;
            // Per-verb deadline: stop burning backoff on one target once
            // its accumulated delay exceeds the budget; fail over instead.
            let mut target_delay = Nanos::ZERO;
            loop {
                let wr_id = self.wr_id();
                let wr = WorkRequest::read(wr_id, *target, PAGE_SIZE_4K).signaled();
                match self.poller.post_and_poll(&mut self.fabric, vec![wr]) {
                    Ok((time, completions)) => {
                        if i > 0 {
                            self.counters.failovers.inc();
                            // Failovers stay visible under the legacy MCE
                            // counter too (pre-failover dashboards).
                            self.counters.mce_events.inc();
                        }
                        if self.config.data_mode == DataMode::Tracked {
                            let data = completions
                                .first()
                                .map(|c| c.data.to_vec())
                                .unwrap_or_else(|| vec![0; PAGE_SIZE_4K as usize]);
                            self.local_pages.insert(page.raw(), data);
                        }
                        self.counters.remote_fetches.inc();
                        self.fetch_ns.record(time.as_ns());
                        return Ok(elapsed + time);
                    }
                    Err(e)
                        if e.is_transient()
                            && attempt + 1 < retry.max_attempts
                            && target_delay < retry.verb_deadline =>
                    {
                        if let Some(node) = e.failed_node() {
                            self.failure.note_transient(node, self.fabric.now());
                        }
                        self.counters.retries.inc();
                        let backoff = retry.backoff_for(attempt, self.failure.rng_mut());
                        attempt += 1;
                        self.counters.backoff_ns.add(backoff.as_ns());
                        // Backing off advances simulated time, so a
                        // scheduled flap can clear while we wait.
                        self.fabric.advance_time(backoff);
                        self.telemetry.span_leaf_inherit(EventKind::Backoff, backoff);
                        elapsed += backoff;
                        target_delay += backoff;
                        self.update_degraded();
                    }
                    Err(e) => {
                        if e.is_transient() {
                            if let Some(node) = e.failed_node() {
                                self.failure.note_transient(node, self.fabric.now());
                                self.update_degraded();
                            }
                        }
                        last_err = Some(e);
                        continue 'targets;
                    }
                }
            }
        }
        Err(last_err.expect("at least one target attempted"))
    }

    /// Applies the configured [`FailurePolicy`] after every copy of
    /// `page` proved unreachable.
    fn fetch_page_failed(&mut self, page: PageNumber, err: KonaError) -> Result<Nanos> {
        let addr = page.base_vfmem();
        match self.failure.policy() {
            FailurePolicy::HandleMce => {
                // §4.5: the coherence timeout surfaces as a machine-check
                // exception; record it and report to the operator.
                self.telemetry.retag_trace(OpKind::Recovery);
                self.telemetry.instant(Track::App, EventKind::Mce);
                self.failure.record(addr, self.counters.app_time());
                self.counters.mce_events.inc();
                Err(KonaError::CoherenceTimeout {
                    addr,
                    deadline_ns: self.config.retry.verb_deadline.as_ns(),
                })
            }
            FailurePolicy::PageFaultFallback => {
                // §4.5: the page is marked not-present so software regains
                // control. Charge a fault's worth of time; when the fabric
                // knows the outage's end (a scheduled flap), wait it out
                // and retry the fetch ourselves.
                self.telemetry.retag_trace(OpKind::Recovery);
                self.counters.charge_app(Nanos::micros(3));
                self.telemetry
                    .span_leaf(Track::App, EventKind::PageFault, Nanos::micros(3));
                self.failure.note_fallback();
                if let Some(node) = err.failed_node() {
                    if let Some(back_at) = self.fabric.node_back_at(node) {
                        let now = self.fabric.now();
                        let wait = back_at.saturating_sub(now);
                        self.fabric.advance_time(wait);
                        self.telemetry
                            .span_leaf(Track::App, EventKind::Backoff, wait);
                        self.counters.fallback_waits.inc();
                        self.update_degraded();
                        return self
                            .fetch_page_attempt(page)
                            .map(|t| t + wait);
                    }
                }
                Err(err)
            }
        }
    }

    fn handle_victim(&mut self, victim: &VictimPage) -> Result<()> {
        let page_data = self.local_pages.get(&victim.page.raw());
        if self.config.data_mode == DataMode::Tracked && page_data.is_none() && victim.is_dirty()
        {
            // Degenerate (zero-cache) configurations write data through
            // directly; there is nothing to ship from a local copy.
            self.local_pages.remove(&victim.page.raw());
            return Ok(());
        }
        let primary = self.fpga.translate_page(victim.page)?;
        let replicas = self.replicas_for(victim.page);
        let time = self.eviction.evict_page(
            victim,
            page_data.map(Vec::as_slice),
            primary,
            &replicas,
            &mut self.fabric,
            &mut self.poller,
        )?;
        // Eviction runs on its own thread, concurrent with the app.
        self.counters.charge_background(time);
        self.local_pages.remove(&victim.page.raw());
        self.check_abandoned();
        Ok(())
    }

    fn access_line(&mut self, addr: VfMemAddr, kind: AccessKind) -> Result<Nanos> {
        self.access_line_from(AgentId(0), addr, kind)
    }

    fn access_line_from(
        &mut self,
        agent: AgentId,
        addr: VfMemAddr,
        kind: AccessKind,
    ) -> Result<Nanos> {
        if !self.telemetry.causal_enabled() {
            return self.access_line_inner(agent, addr, kind);
        }
        self.telemetry.trace_begin(OpKind::Access);
        let res = self.access_line_inner(agent, addr, kind);
        self.telemetry
            .trace_end(*res.as_ref().unwrap_or(&Nanos::ZERO));
        res
    }

    fn access_line_inner(
        &mut self,
        agent: AgentId,
        addr: VfMemAddr,
        kind: AccessKind,
    ) -> Result<Nanos> {
        match self.fpga.cpu_access_from(agent, addr, kind) {
            CpuAccessOutcome::CpuCacheHit => {
                self.counters.local_hits.inc();
                let t = self.config.latency.cpu_cache_hit;
                self.telemetry.span_leaf(Track::App, EventKind::LocalHit, t);
                Ok(t)
            }
            CpuAccessOutcome::FMemHit => {
                self.counters.local_hits.inc();
                let t = self.config.latency.fmem_fill;
                self.telemetry.span_leaf(Track::App, EventKind::FmemFill, t);
                Ok(t)
            }
            CpuAccessOutcome::RemoteFetch {
                page,
                victims,
                prefetch,
            } => {
                for victim in &victims {
                    self.handle_victim(victim)?;
                }
                let fetch_span = self.telemetry.span_open(Track::App, EventKind::RemoteFetch);
                let fetch = match self.fetch_page(page) {
                    Ok(t) => {
                        self.telemetry.span_close(fetch_span, t);
                        t
                    }
                    Err(e) => {
                        self.telemetry.span_close(fetch_span, Nanos::ZERO);
                        return Err(e);
                    }
                };
                for p in prefetch {
                    // Prefetches run off the critical path.
                    let pf_span = self
                        .telemetry
                        .span_open(Track::Background, EventKind::Prefetch);
                    match self.fetch_page(p) {
                        Ok(t) => {
                            self.telemetry.span_close(pf_span, t);
                            self.counters.charge_background(t);
                            self.counters.prefetches.inc();
                        }
                        Err(e) => {
                            self.telemetry.span_close(pf_span, Nanos::ZERO);
                            return Err(e);
                        }
                    }
                }
                let fill = self.config.latency.fmem_fill;
                self.telemetry.span_leaf(Track::App, EventKind::FmemFill, fill);
                Ok(fetch + fill)
            }
        }
    }

    /// Direct write-through for pages that cannot be held locally
    /// (degenerate zero-cache configurations).
    fn write_through(&mut self, addr: VfMemAddr, data: &[u8]) -> Result<Nanos> {
        let remote = self.fpga.translate_page(addr.page_number())?;
        let wr_id = self.wr_id();
        let wr = WorkRequest::write(
            wr_id,
            remote.add(addr.page_offset()),
            data.to_vec(),
        )
        .signaled();
        let (time, _) = self.poller.post_and_poll(&mut self.fabric, vec![wr])?;
        Ok(time)
    }

    fn read_through(&mut self, addr: VfMemAddr, buf: &mut [u8]) -> Result<Nanos> {
        let remote = self.fpga.translate_page(addr.page_number())?;
        let wr_id = self.wr_id();
        let wr = WorkRequest::read(wr_id, remote.add(addr.page_offset()), buf.len() as u64)
            .signaled();
        let (time, completions) = self.poller.post_and_poll(&mut self.fabric, vec![wr])?;
        if let Some(c) = completions.first() {
            buf.copy_from_slice(&c.data);
        }
        Ok(time)
    }
}

impl RemoteMemoryRuntime for KonaRuntime {
    fn name(&self) -> &str {
        "Kona"
    }

    fn allocate(&mut self, bytes: u64) -> Result<VirtAddr> {
        // Requests near or above the slab size are served as whole
        // contiguous slabs (the controller's coarse granularity); smaller
        // objects go through AllocLib's size-class allocator.
        if bytes > self.config.slab_size.bytes() / 2 {
            let base = self.vfmem_cursor;
            let slabs = bytes.div_ceil(self.config.slab_size.bytes());
            for _ in 0..slabs {
                self.grow_reserved()?;
            }
            return Ok(VirtAddr::new(base));
        }
        while self.allocator.needs_slab(bytes) {
            self.grow()?;
        }
        let addr = self.allocator.allocate(bytes)?;
        Ok(VirtAddr::new(addr.raw()))
    }

    fn free(&mut self, addr: VirtAddr, bytes: u64) {
        self.allocator.free(VfMemAddr::new(addr.raw()), bytes);
    }

    fn access(&mut self, access: MemAccess) -> Result<Nanos> {
        let mut elapsed = Nanos::ZERO;
        let start = access.addr.line_start().raw();
        let end = access.end().raw();
        let mut line = start;
        loop {
            elapsed += self.access_line(VfMemAddr::new(line), access.kind)?;
            line += CACHE_LINE_SIZE;
            if line >= end {
                break;
            }
        }
        if access.kind.is_write() {
            self.counters.app_dirty_bytes.add(u64::from(access.len));
        }
        self.counters.charge_app(elapsed);
        Ok(elapsed)
    }

    fn write_bytes(&mut self, addr: VirtAddr, data: &[u8]) -> Result<Nanos> {
        // Access and data movement interleave per cache line: the line's
        // bytes must reach the local page copy *before* the next line's
        // fetch can evict (and ship) this page, or eviction would write
        // stale data over the remote copy.
        let mut elapsed = Nanos::ZERO;
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            // Chunk: up to the end of the current cache line.
            let in_line = (CACHE_LINE_SIZE - a.raw() % CACHE_LINE_SIZE) as usize;
            let chunk = in_line.min(data.len() - off);
            elapsed += self.access_line(VfMemAddr::new(a.line_start().raw()), AccessKind::Write)?;
            if self.config.data_mode == DataMode::Tracked {
                let page = a.page_number();
                if let Some(pd) = self.local_pages.get_mut(&page.raw()) {
                    let s = a.page_offset() as usize;
                    pd[s..s + chunk].copy_from_slice(&data[off..off + chunk]);
                } else {
                    let t =
                        self.write_through(VfMemAddr::new(a.raw()), &data[off..off + chunk])?;
                    elapsed += t;
                }
            }
            off += chunk;
        }
        self.counters.app_dirty_bytes.add(data.len() as u64);
        self.counters.charge_app(elapsed);
        Ok(elapsed)
    }

    fn read_bytes(&mut self, addr: VirtAddr, buf: &mut [u8]) -> Result<Nanos> {
        // Interleaved per line, mirroring write_bytes: the line's bytes are
        // copied out while its page is guaranteed resident.
        let mut elapsed = Nanos::ZERO;
        let len = buf.len();
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let in_line = (CACHE_LINE_SIZE - a.raw() % CACHE_LINE_SIZE) as usize;
            let chunk = in_line.min(len - off);
            elapsed += self.access_line(VfMemAddr::new(a.line_start().raw()), AccessKind::Read)?;
            if self.config.data_mode == DataMode::Tracked {
                let page = a.page_number();
                if let Some(pd) = self.local_pages.get(&page.raw()) {
                    let s = a.page_offset() as usize;
                    buf[off..off + chunk].copy_from_slice(&pd[s..s + chunk]);
                } else {
                    let t = self.read_through(
                        VfMemAddr::new(a.raw()),
                        &mut buf[off..off + chunk],
                    )?;
                    elapsed += t;
                }
            }
            off += chunk;
        }
        self.counters.charge_app(elapsed);
        Ok(elapsed)
    }

    fn sync(&mut self) -> Result<Nanos> {
        if !self.telemetry.causal_enabled() {
            return self.sync_inner();
        }
        self.telemetry.trace_begin(OpKind::Sync);
        let res = self.sync_inner();
        self.telemetry
            .trace_end(*res.as_ref().unwrap_or(&Nanos::ZERO));
        res
    }

    fn stats(&self) -> RuntimeStats {
        // Derived entirely from the registry: the eviction handler bumps
        // the shared pages-evicted / writeback-bytes counters itself.
        self.counters.to_stats()
    }
}

impl KonaRuntime {
    fn sync_inner(&mut self) -> Result<Nanos> {
        self.update_degraded();
        let mut elapsed = Nanos::ZERO;
        // Write back dirty lines of pages still resident in FMem.
        let resident: Vec<PageNumber> = self.fpga.resident_pages_list();
        for page in resident {
            let dirty = self.fpga.snoop_page_dirty(page);
            if !dirty.any() {
                continue;
            }
            let victim = VictimPage {
                page,
                dirty_lines: dirty,
            };
            let page_data = self.local_pages.get(&page.raw());
            let primary = self.fpga.translate_page(page)?;
            let replicas = self.replicas_for(page);
            elapsed += self.eviction.evict_page(
                &victim,
                page_data.map(Vec::as_slice),
                primary,
                &replicas,
                &mut self.fabric,
                &mut self.poller,
            )?;
        }
        elapsed += self
            .eviction
            .flush_all(&mut self.fabric, &mut self.poller)?;
        self.check_abandoned();
        self.counters.charge_app(elapsed);
        Ok(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> KonaRuntime {
        KonaRuntime::new(ClusterConfig::small()).unwrap()
    }

    #[test]
    fn allocate_grows_slabs_on_demand() {
        let mut rt = runtime();
        let a = rt.allocate(1024).unwrap();
        let b = rt.allocate(1024).unwrap();
        assert_ne!(a, b);
        assert!(rt.controller.slabs_granted() >= 1);
    }

    #[test]
    fn write_read_roundtrip_within_cache() {
        let mut rt = runtime();
        let addr = rt.allocate(8192).unwrap();
        rt.write_bytes(addr, &[0xAB; 300]).unwrap();
        let mut buf = [0u8; 300];
        rt.read_bytes(addr, &mut buf).unwrap();
        assert_eq!(buf, [0xAB; 300]);
    }

    #[test]
    fn roundtrip_survives_eviction_pressure() {
        // Cache of 8 pages; write 32 pages of distinct data, then verify.
        let mut cfg = ClusterConfig::small().with_local_cache_pages(8);
        cfg.cpu_cache_lines = 64;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let base = rt.allocate(32 * 4096).unwrap();
        for p in 0..32u64 {
            let pattern = [p as u8 + 1; 64];
            rt.write_bytes(base + p * 4096 + 128, &pattern).unwrap();
        }
        for p in 0..32u64 {
            let mut buf = [0u8; 64];
            rt.read_bytes(base + p * 4096 + 128, &mut buf).unwrap();
            assert_eq!(buf, [p as u8 + 1; 64], "page {p} corrupted");
        }
        assert!(rt.stats().pages_evicted > 0, "pressure must evict");
    }

    #[test]
    fn no_page_faults_ever() {
        let mut rt = runtime();
        let addr = rt.allocate(1 << 16).unwrap();
        for i in 0..256u64 {
            rt.access(MemAccess::write(addr + i * 64, 8)).unwrap();
        }
        let s = rt.stats();
        assert_eq!(s.major_faults, 0);
        assert_eq!(s.minor_faults, 0);
        assert_eq!(s.tlb_invalidations, 0);
        assert!(s.remote_fetches > 0);
    }

    #[test]
    fn repeated_access_hits_cpu_cache() {
        let mut rt = runtime();
        let addr = rt.allocate(4096).unwrap();
        let cold = rt.access(MemAccess::read(addr, 8)).unwrap();
        let warm = rt.access(MemAccess::read(addr, 8)).unwrap();
        assert!(warm < cold / 100, "warm {warm} vs cold {cold}");
        assert_eq!(warm, rt.config.latency.cpu_cache_hit);
    }

    #[test]
    fn sync_pushes_dirty_lines_to_remote() {
        let mut rt = runtime();
        let addr = rt.allocate(4096).unwrap();
        rt.write_bytes(addr, &[0x5A; 64]).unwrap();
        rt.sync().unwrap();
        // The data must now be present on the remote node.
        let primary = rt.fpga.translate_page(addr.page_number()).unwrap();
        let node = rt.fabric.node(primary.node()).unwrap();
        assert_eq!(
            node.read_bytes(primary.offset(), 64),
            &[0x5A; 64][..]
        );
    }

    #[test]
    fn access_unallocated_address_fails() {
        let mut rt = runtime();
        let err = rt
            .access(MemAccess::read(VirtAddr::new(1 << 40), 8))
            .unwrap_err();
        assert!(matches!(err, KonaError::NoRemoteTranslation(_)));
    }

    #[test]
    fn failed_node_with_mce_policy_errors() {
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let addr = rt.allocate(64 * 4096).unwrap();
        // Find which node backs the first page, then fail it after
        // flushing the page out of the local cache.
        let node = rt.fpga.translate_page(addr.page_number()).unwrap().node();
        for p in 1..32u64 {
            rt.access(MemAccess::read(addr + p * 4096, 8)).unwrap();
        }
        rt.fabric_mut().fail_node(node).unwrap();
        // The first page was evicted; re-fetching it must hit the failure.
        let err = rt.access(MemAccess::read(addr, 8)).unwrap_err();
        assert!(matches!(err, KonaError::CoherenceTimeout { .. }));
        assert_eq!(rt.mce_events().len(), 1);
        assert_eq!(rt.failure_state().policy_counts().mce, 1);
        // The fetch was retried before surfacing the MCE.
        assert!(rt.stats().retries > 0);
        assert!(rt.stats().backoff_time > Nanos::ZERO);
    }

    #[test]
    fn failed_node_recovers_with_fallback_policy() {
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        rt.set_failure_policy(FailurePolicy::PageFaultFallback);
        let addr = rt.allocate(64 * 4096).unwrap();
        let node = rt.fpga.translate_page(addr.page_number()).unwrap().node();
        for p in 1..32u64 {
            rt.access(MemAccess::read(addr + p * 4096, 8)).unwrap();
        }
        rt.fabric_mut().fail_node(node).unwrap();
        assert!(rt.access(MemAccess::read(addr, 8)).is_err());
        assert!(rt.mce_events().is_empty(), "fallback must not raise MCE");
        assert_eq!(rt.failure_state().policy_counts().fallback, 1);
        // Outage resolves; the retried access succeeds.
        rt.fabric_mut().recover_node(node);
        assert!(rt.access(MemAccess::read(addr, 8)).is_ok());
    }

    #[test]
    fn replication_enables_failover_reads() {
        let mut cfg = ClusterConfig::small()
            .with_replicas(2)
            .with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let addr = rt.allocate(64 * 4096).unwrap();
        rt.write_bytes(addr, &[0x11; 64]).unwrap();
        rt.sync().unwrap();
        // Push the page out of the local cache.
        for p in 1..40u64 {
            rt.access(MemAccess::read(addr + p * 4096, 8)).unwrap();
        }
        rt.sync().unwrap();
        // Fail the primary; the read must come from the replica.
        let primary_node = rt.fpga.translate_page(addr.page_number()).unwrap().node();
        rt.fabric_mut().fail_node(primary_node).unwrap();
        let mut buf = [0u8; 64];
        rt.read_bytes(addr, &mut buf).unwrap();
        assert_eq!(buf, [0x11; 64]);
        assert!(rt.stats().failovers > 0);
    }

    #[test]
    fn eviction_is_background_work() {
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let addr = rt.allocate(64 * 4096).unwrap();
        for p in 0..64u64 {
            rt.access(MemAccess::write(addr + p * 4096, 8)).unwrap();
        }
        let s = rt.stats();
        assert!(s.background_time > Nanos::ZERO);
        assert!(s.pages_evicted > 0);
    }

    #[test]
    fn timing_mode_skips_data() {
        let mut rt = KonaRuntime::new(ClusterConfig::small().timing_only()).unwrap();
        let addr = rt.allocate(4096).unwrap();
        let t = rt.access(MemAccess::write(addr, 64)).unwrap();
        assert!(t > Nanos::ZERO);
        assert!(rt.local_pages.is_empty());
    }

    #[test]
    fn multi_core_sharing_is_coherent() {
        let mut cfg = ClusterConfig::small().with_cpu_agents(2);
        cfg.cpu_cache_lines = 256;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let addr = rt.allocate(4096).unwrap();
        // Core 0 writes; core 1 reads the same line: the read downgrades
        // core 0's modified copy, producing an observed writeback.
        rt.access_from_core(0, MemAccess::write(addr, 8)).unwrap();
        let before = rt.fpga().stats().writebacks_observed;
        rt.access_from_core(1, MemAccess::read(addr, 8)).unwrap();
        assert!(rt.fpga().stats().writebacks_observed > before);
        // Core 1 writing invalidates core 0's copy; a subsequent core-0
        // read misses its own cache (but hits FMem, no remote fetch).
        rt.access_from_core(1, MemAccess::write(addr, 8)).unwrap();
        let fetches = rt.stats().remote_fetches;
        rt.access_from_core(0, MemAccess::read(addr, 8)).unwrap();
        assert_eq!(rt.stats().remote_fetches, fetches);
    }

    #[test]
    fn hardware_copy_engine_reduces_background_time() {
        let mk = |engine| {
            let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
            cfg.cpu_cache_lines = 64;
            let mut rt = KonaRuntime::new(cfg).unwrap();
            rt.set_copy_engine(engine);
            let addr = rt.allocate(64 * 4096).unwrap();
            for p in 0..64u64 {
                rt.access(MemAccess::write(addr + p * 4096, 8)).unwrap();
            }
            rt.sync().unwrap();
            rt.stats().background_time
        };
        let sw = mk(crate::eviction::CopyEngine::SoftwareAvx);
        let hw = mk(crate::eviction::CopyEngine::HardwareDma);
        assert!(hw < sw, "dma {hw} should beat software {sw}");
    }

    /// Evicts the first page of `addr` out of the local cache and returns
    /// the node backing it.
    fn evict_first_page(rt: &mut KonaRuntime, addr: VirtAddr) -> u32 {
        let node = rt.fpga.translate_page(addr.page_number()).unwrap().node();
        for p in 1..32u64 {
            rt.access(MemAccess::read(addr + p * 4096, 8)).unwrap();
        }
        node
    }

    #[test]
    fn retries_ride_out_a_scheduled_flap() {
        use kona_net::{FaultInjector, FaultPlan};
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        cfg.retry.base_backoff = Nanos::micros(40);
        cfg.retry.max_backoff = Nanos::micros(200);
        cfg.retry.jitter = 0.0;
        cfg.retry.verb_deadline = Nanos::micros(500);
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let addr = rt.allocate(64 * 4096).unwrap();
        let node = evict_first_page(&mut rt, addr);
        let now = rt.fabric_mut().now();
        rt.fabric_mut().set_fault_injector(FaultInjector::new(
            FaultPlan::calm(11).with_flap(node, now, Nanos::micros(30)),
        ));
        // The first post hits the downed node; the 40 µs backoff outlasts
        // the 30 µs flap and the retry succeeds.
        rt.access(MemAccess::read(addr, 8)).unwrap();
        let s = rt.stats();
        assert_eq!(s.retries, 1);
        assert_eq!(s.backoff_time, Nanos::micros(40));
        assert_eq!(s.failovers, 0, "same node, not a failover");
    }

    #[test]
    fn fallback_waits_out_a_long_flap() {
        use kona_net::{FaultInjector, FaultPlan};
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        cfg.retry.jitter = 0.0;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        rt.set_failure_policy(FailurePolicy::PageFaultFallback);
        let addr = rt.allocate(64 * 4096).unwrap();
        let pattern = [0x7E; 64];
        rt.write_bytes(addr, &pattern).unwrap();
        rt.sync().unwrap();
        let node = evict_first_page(&mut rt, addr);
        let now = rt.fabric_mut().now();
        rt.fabric_mut().set_fault_injector(FaultInjector::new(
            FaultPlan::calm(11).with_flap(node, now, Nanos::millis(2)),
        ));
        // Retries exhaust while the node is down, but the fabric knows
        // when the flap ends: the fallback waits it out and re-fetches.
        let mut buf = [0u8; 64];
        rt.read_bytes(addr, &mut buf).unwrap();
        assert_eq!(buf, pattern);
        let s = rt.stats();
        assert_eq!(s.fallback_waits, 1);
        assert!(s.retries > 0);
        assert!(rt.mce_events().is_empty(), "no MCE on the fallback path");
    }

    #[test]
    fn repeated_failures_enter_and_exit_degraded_mode() {
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        cfg.degraded.failure_threshold = 2;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let addr = rt.allocate(64 * 4096).unwrap();
        let node = evict_first_page(&mut rt, addr);
        rt.fabric_mut().fail_node(node).unwrap();
        assert!(rt.access(MemAccess::read(addr, 8)).is_err());
        // The transient failures during the retry loop crossed the
        // threshold: prefetches shed, eviction batching widened.
        assert!(rt.is_degraded());
        assert!(rt.fpga().prefetch_shedding());
        assert_eq!(rt.stats().degraded_entries, 1);
        // Outage clears and the cooloff passes: healthy again. The fresh
        // page forces a remote fetch, which re-evaluates degraded mode.
        rt.fabric_mut().recover_node(node);
        rt.fabric_mut().advance_time(Nanos::millis(5));
        rt.access(MemAccess::read(addr + 40 * 4096, 8)).unwrap();
        assert!(!rt.is_degraded());
        assert!(!rt.fpga().prefetch_shedding());
        assert_eq!(rt.stats().degraded_entries, 1, "one entry, not re-counted");
    }

    #[test]
    fn fault_plan_in_config_installs_injector() {
        use kona_net::FaultPlan;
        let mut cfg = ClusterConfig::small();
        cfg.fault_plan = Some(FaultPlan::calm(42));
        let mut rt = KonaRuntime::new(cfg).unwrap();
        assert!(rt.fabric_mut().fault_injector().is_some());
        let addr = rt.allocate(4096).unwrap();
        rt.write_bytes(addr, &[9u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        rt.read_bytes(addr, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 64]);
    }

    #[test]
    fn run_trace_accumulates() {
        let mut rt = runtime();
        let addr = rt.allocate(1 << 16).unwrap();
        let events: Vec<TraceEvent> = (0..16u64)
            .map(|i| {
                TraceEvent::new(
                    Nanos::from_ns(i),
                    MemAccess::read(addr + i * 4096 % (1 << 16), 8),
                )
            })
            .collect();
        let t = rt.run_trace(&events).unwrap();
        assert!(t > Nanos::ZERO);
        assert_eq!(rt.stats().app_time, t);
    }
}
