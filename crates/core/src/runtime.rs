//! The Kona runtime and the [`RemoteMemoryRuntime`] interface.

use crate::alloc::SlabAllocator;
use crate::config::{ClusterConfig, DataMode};
use crate::controller::{Controller, NodeOccupancy};
use crate::eviction::EvictionHandler;
use crate::failure::{FailurePolicy, FailureState, McEvent};
use crate::metrics::{names, RuntimeCounters};
use crate::poller::Poller;
use crate::stats::RuntimeStats;
use kona_coherence::AgentId;
use kona_fpga::{CpuAccessOutcome, FpgaConfig, KonaFpga, VictimPage};
use kona_net::{Fabric, FaultInjector, NetworkModel, WorkRequest};
use kona_telemetry::{EventKind, Histogram, OpKind, Telemetry, Track};
use kona_trace::TraceEvent;
use kona_types::{
    AccessKind, FxHashMap, KonaError, MemAccess, Nanos, PageNumber, RemoteAddr, Result, VfMemAddr,
    VirtAddr, CACHE_LINE_SIZE, PAGE_SIZE_4K,
};
use std::collections::BTreeMap;

/// The common interface of Kona and the VM baselines.
///
/// Both runtimes are driven identically (same traces, same allocation
/// calls, same eviction policy), so measured differences isolate the
/// mechanism — the paper's §6.1 methodology.
pub trait RemoteMemoryRuntime {
    /// Runtime name for reports (e.g. `"Kona"`, `"Kona-VM"`).
    fn name(&self) -> &str;

    /// Allocates `bytes` of transparently-remote memory.
    ///
    /// # Errors
    ///
    /// Fails when the rack is out of remote memory.
    fn allocate(&mut self, bytes: u64) -> Result<VirtAddr>;

    /// Returns an allocation of `bytes` at `addr`.
    fn free(&mut self, addr: VirtAddr, bytes: u64);

    /// Performs one application memory access, returning the simulated
    /// time charged to the application.
    ///
    /// # Errors
    ///
    /// Fails on unmapped addresses or unrecoverable network failures.
    fn access(&mut self, access: MemAccess) -> Result<Nanos>;

    /// Writes `data` at `addr` (access + data movement).
    ///
    /// # Errors
    ///
    /// As for [`RemoteMemoryRuntime::access`].
    fn write_bytes(&mut self, addr: VirtAddr, data: &[u8]) -> Result<Nanos>;

    /// Reads into `buf` from `addr` (access + data movement).
    ///
    /// # Errors
    ///
    /// As for [`RemoteMemoryRuntime::access`].
    fn read_bytes(&mut self, addr: VirtAddr, buf: &mut [u8]) -> Result<Nanos>;

    /// Pushes all dirty local state to remote memory; returns the time
    /// charged to the application.
    ///
    /// # Errors
    ///
    /// Propagates network failures.
    fn sync(&mut self) -> Result<Nanos>;

    /// Accumulated statistics.
    fn stats(&self) -> RuntimeStats;

    /// Replays a trace through [`RemoteMemoryRuntime::access`], returning
    /// total application time (trace timestamps are ignored; the runtime's
    /// simulated costs define time).
    ///
    /// # Errors
    ///
    /// Stops at the first access error.
    fn run_trace(&mut self, events: &[TraceEvent]) -> Result<Nanos> {
        let mut total = Nanos::ZERO;
        for e in events {
            total += self.access(e.access)?;
        }
        Ok(total)
    }
}

#[derive(Debug, Clone)]
struct SlabInfo {
    len: u64,
    replicas: Vec<RemoteAddr>,
}

/// The coherence-based remote-memory runtime (the paper's contribution).
///
/// Virtual addresses map identity onto VFMem: the paper keeps all remote
/// data in VFMem and everything else in CMem; our simulated applications
/// allocate only remote data, so the identity map loses nothing.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct KonaRuntime {
    config: ClusterConfig,
    fpga: KonaFpga,
    fabric: Fabric,
    controller: Controller,
    allocator: SlabAllocator,
    eviction: EvictionHandler,
    poller: Poller,
    failure: FailureState,
    telemetry: Telemetry,
    counters: RuntimeCounters,
    fetch_ns: Histogram,
    vfmem_cursor: u64,
    slabs: BTreeMap<u64, SlabInfo>,
    /// Page data for FMem-resident pages (Tracked mode only).
    local_pages: FxHashMap<u64, Vec<u8>>,
    next_wr_id: u64,
    /// Whether degraded mode is currently applied to the components
    /// (prefetch shedding, widened eviction batching).
    degraded_active: bool,
    /// QoS override: prefetch shedding forced on by the serving front end
    /// (graceful degradation of a low-priority tenant), independent of
    /// the failure-driven degraded mode.
    qos_shed: bool,
    /// Whether a new node abandonment immediately triggers
    /// [`KonaRuntime::repair_lost_nodes`] (the cluster control plane
    /// turns this on; off by default to keep single-rack behaviour
    /// identical to earlier revisions).
    auto_repair: bool,
    /// Black-box dumps (flight traces + fault log) captured at recovery
    /// milestones; bounded to the most recent few.
    flight_dumps: Vec<String>,
    /// Abandoned-flush count already reflected in `flight_dumps`.
    seen_abandoned: u64,
}

impl KonaRuntime {
    /// Builds a runtime over a fresh simulated rack.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        Self::with_telemetry(config, Telemetry::disabled())
    }

    /// Builds a runtime whose components all report into `telemetry` —
    /// metrics land in its registry, and span events go to its recorder
    /// (pass [`Telemetry::with_tracing`] for a Perfetto-exportable
    /// timeline).
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn with_telemetry(config: ClusterConfig, telemetry: Telemetry) -> Result<Self> {
        config.validate()?;
        let mut fabric = Fabric::new(NetworkModel::connectx5());
        let mut controller = Controller::new(config.slab_size.bytes());
        controller.set_policy(config.placement.build(config.retry.seed ^ 0x70AC));
        let data_capacity = config.node_capacity.bytes();
        let log_capacity = config.log_capacity.bytes();
        for id in 0..config.memory_nodes {
            fabric.add_node(id, data_capacity + log_capacity);
            fabric.register(id, 0, data_capacity)?;
            fabric.register(id, data_capacity, log_capacity)?;
            controller.register_node(id, data_capacity);
        }
        fabric.set_telemetry(&telemetry);
        if let Some(plan) = &config.fault_plan {
            fabric.set_fault_injector(FaultInjector::new(plan.clone()));
        }
        let mut fpga = KonaFpga::new(FpgaConfig {
            cpu_agents: config.cpu_agents.max(1),
            cpu_cache_lines: config.cpu_cache_lines,
            fmem_pages: config.local_cache_pages,
            fmem_ways: config.fmem_ways,
            prefetcher: config.prefetcher.clone(),
        });
        fpga.set_telemetry(&telemetry);
        let mut eviction = EvictionHandler::new(data_capacity, log_capacity as usize);
        eviction.set_telemetry(&telemetry);
        eviction.set_retry_policy(config.retry.clone());
        // Losing more than `replicas - 1` nodes would leave some page with
        // no up-to-date copy, so that is the abandonment budget.
        eviction.set_max_node_losses(config.replicas.saturating_sub(1));
        let failure = FailureState::with_config(
            FailurePolicy::default(),
            config.degraded,
            config.retry.seed,
        );
        Ok(KonaRuntime {
            eviction,
            fpga,
            fabric,
            controller,
            allocator: SlabAllocator::new(),
            poller: Poller::new(),
            failure,
            counters: RuntimeCounters::new(&telemetry),
            fetch_ns: telemetry.histogram(names::FETCH_NS),
            telemetry,
            vfmem_cursor: 0,
            slabs: BTreeMap::new(),
            local_pages: FxHashMap::default(),
            config,
            next_wr_id: 0,
            degraded_active: false,
            qos_shed: false,
            auto_repair: false,
            flight_dumps: Vec::new(),
            seen_abandoned: 0,
        })
    }

    /// The telemetry handle the runtime reports into (clone it to export
    /// metrics or the span timeline).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The fabric, for failure injection in tests and examples.
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// The FPGA model, for inspection.
    pub fn fpga(&self) -> &KonaFpga {
        &self.fpga
    }

    /// Eviction-phase breakdown (Fig 11c).
    pub fn eviction_breakdown(&self) -> crate::eviction::EvictionBreakdown {
        self.eviction.breakdown()
    }

    /// Sets the failure policy (§4.5).
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.failure.set_policy(policy);
    }

    /// Selects the eviction copy engine (§4.2's optional `copy-dirty-data`
    /// hardware primitive).
    pub fn set_copy_engine(&mut self, engine: crate::eviction::CopyEngine) {
        self.eviction.set_copy_engine(engine);
    }

    /// Machine-check events retained so far (bounded ring; see
    /// [`FailureState::event_capacity`]).
    pub fn mce_events(&self) -> Vec<McEvent> {
        self.failure.events().copied().collect()
    }

    /// The failure bookkeeping (policy counts, degraded windows).
    pub fn failure_state(&self) -> &FailureState {
        &self.failure
    }

    /// Whether degraded mode is currently active (prefetch shedding plus
    /// widened eviction batching).
    pub fn is_degraded(&self) -> bool {
        self.degraded_active
    }

    /// Eviction counters (flush retries, abandoned nodes, batching).
    pub fn eviction_stats(&self) -> crate::eviction::EvictionStats {
        self.eviction.stats()
    }

    /// Re-applies degraded mode to the components when the state machine
    /// has flipped since the last check.
    fn update_degraded(&mut self) {
        let degraded = self.failure.is_degraded(self.fabric.now());
        if degraded != self.degraded_active {
            self.degraded_active = degraded;
            if degraded {
                self.counters.degraded_entries.inc();
                self.note_flight_dump("degraded_mode_entered");
            }
            self.fpga.set_prefetch_shedding(degraded || self.qos_shed);
            self.eviction.set_degraded(degraded);
        }
    }

    /// QoS hook: forces prefetch shedding on or off for the current
    /// caller, on top of the failure-driven degraded mode (shedding stays
    /// on while either wants it). The serving front end brackets a shed
    /// tenant's operations with this so only that tenant's speculative
    /// traffic is dropped — demand fetches are never affected.
    pub fn set_prefetch_shedding(&mut self, shed: bool) {
        self.qos_shed = shed;
        self.fpga.set_prefetch_shedding(shed || self.degraded_active);
    }

    /// QoS hook: assigns FMem eviction priority `priority` to the pages
    /// backing `[base, base + bytes)`. Higher priority means protected;
    /// when an FMem set overflows, the lowest-priority way is evicted
    /// first (ties fall back to LRU, so priority 0 everywhere is exactly
    /// the historical policy). Setting 0 restores the default.
    pub fn set_eviction_priority(&mut self, base: VirtAddr, bytes: u64, priority: i8) {
        if bytes == 0 {
            return;
        }
        let start = base.page_number().raw();
        let end = VirtAddr::new(base.raw() + bytes - 1).page_number().raw() + 1;
        self.fpga.set_page_priority(start, end, priority);
    }

    /// Black-box dumps captured whenever recovery abandoned a node or
    /// degraded mode tripped: the flight recorder's last completed traces
    /// plus the fault log, as JSON. Oldest first, bounded to the last
    /// [`KonaRuntime::FLIGHT_DUMPS_MAX`].
    pub fn flight_dumps(&self) -> &[String] {
        &self.flight_dumps
    }

    /// How many black-box dumps are retained.
    pub const FLIGHT_DUMPS_MAX: usize = 4;

    /// Captures a black-box dump if causal tracing is on.
    fn note_flight_dump(&mut self, reason: &str) {
        if !self.telemetry.causal_enabled() {
            return;
        }
        let mut lost: Vec<u32> = self.eviction.lost_nodes().iter().copied().collect();
        lost.sort_unstable();
        let mces: Vec<String> = self
            .failure
            .events()
            .map(|e| format!("{{\"addr\":{},\"at_ns\":{}}}", e.addr.raw(), e.at.as_ns()))
            .collect();
        let fs = self.fabric.fault_stats();
        let dump = format!(
            "{{\"reason\":\"{reason}\",\"sim_now_ns\":{},\"lost_nodes\":{lost:?},\
             \"mce_events\":[{}],\"fault_log\":{{\"dropped\":{},\"corrupted\":{},\
             \"timed_out\":{},\"node_down_rejections\":{},\"spiked_chains\":{}}},\
             \"traces\":{}}}",
            self.fabric.now().as_ns(),
            mces.join(","),
            fs.dropped,
            fs.corrupted,
            fs.timed_out,
            fs.node_down_rejections,
            fs.spiked_chains,
            self.telemetry.flight_json(),
        );
        if self.flight_dumps.len() == Self::FLIGHT_DUMPS_MAX {
            self.flight_dumps.remove(0);
        }
        self.flight_dumps.push(dump);
    }

    /// Captures a dump when the eviction handler abandoned another node
    /// since the last check.
    fn check_abandoned(&mut self) {
        let abandoned = self.eviction.stats().abandoned_flushes;
        if abandoned > self.seen_abandoned {
            self.seen_abandoned = abandoned;
            self.note_flight_dump("node_abandoned");
            if self.auto_repair {
                // Best-effort: grant exhaustion leaves the affected slabs
                // observably under-replicated for the control plane's
                // next sweep to retry.
                let _ = self.repair_lost_nodes();
            }
        }
    }

    /// Performs an access issued by a specific CPU core (cache agent).
    /// Threads sharing lines exercise the full MESI protocol: writes by
    /// one core invalidate the others' copies, and the resulting dirty
    /// writebacks reach the FPGA's tracker like any others.
    ///
    /// # Errors
    ///
    /// As for [`RemoteMemoryRuntime::access`].
    ///
    /// # Panics
    ///
    /// Panics if `core` is not below the configured
    /// [`ClusterConfig::cpu_agents`].
    pub fn access_from_core(&mut self, core: u32, access: MemAccess) -> Result<Nanos> {
        let mut elapsed = Nanos::ZERO;
        let start = access.addr.line_start().raw();
        let end = access.end().raw();
        let mut line = start;
        loop {
            elapsed += self.access_line_from(AgentId(core), VfMemAddr::new(line), access.kind)?;
            line += CACHE_LINE_SIZE;
            if line >= end {
                break;
            }
        }
        if access.kind.is_write() {
            self.counters.app_dirty_bytes.add(u64::from(access.len));
        }
        self.counters.charge_app(elapsed);
        self.telemetry.observe_time(self.fabric.now());
        Ok(elapsed)
    }

    fn wr_id(&mut self) -> u64 {
        self.next_wr_id += 1;
        self.next_wr_id
    }

    /// Resolves the replica addresses backing `page`, if any.
    fn replicas_for(&self, page: PageNumber) -> Vec<RemoteAddr> {
        let base = page.base_vfmem().raw();
        if let Some((&slab_base, info)) = self.slabs.range(..=base).next_back() {
            if base < slab_base + info.len {
                return info
                    .replicas
                    .iter()
                    .map(|r| r.add(base - slab_base))
                    .collect();
            }
        }
        Vec::new()
    }

    /// Grabs a slab (plus replicas) from the controller and wires it up,
    /// handing the space to the fine-grained allocator.
    fn grow(&mut self) -> Result<()> {
        let (base, len) = self.grow_reserved()?;
        self.allocator.add_slab(base, len);
        Ok(())
    }

    /// Grabs a slab (plus replicas) and wires it into translation without
    /// exposing it to the fine-grained allocator (whole-slab allocations).
    fn grow_reserved(&mut self) -> Result<(VfMemAddr, u64)> {
        let primary = self.controller.allocate_slab()?;
        let mut replicas = Vec::new();
        let mut used = vec![primary.remote.node()];
        for _ in 1..self.config.replicas {
            let grant = self.controller.allocate_slab_excluding(&used)?;
            used.push(grant.remote.node());
            replicas.push(grant.remote);
        }
        let base = VfMemAddr::new(self.vfmem_cursor);
        self.vfmem_cursor += primary.len;
        self.fpga
            .translation_mut()
            .register(base, primary.len, primary.remote)?;
        self.slabs.insert(
            base.raw(),
            SlabInfo {
                len: primary.len,
                replicas,
            },
        );
        Ok((base, primary.len))
    }

    /// Fetches `page` from remote memory with the full §4.5 recovery
    /// pipeline: per-target retries with exponential backoff and jitter,
    /// failover from the primary to replicas, then the configured failure
    /// policy if every copy stays unreachable.
    fn fetch_page(&mut self, page: PageNumber) -> Result<Nanos> {
        self.update_degraded();
        match self.fetch_page_attempt(page) {
            Ok(t) => Ok(t),
            // The policy governs *network* failures; structural errors
            // (no translation, unregistered memory) propagate untouched.
            Err(err) if err.is_transient() => self.fetch_page_failed(page, err),
            Err(err) => Err(err),
        }
    }

    /// One pass over all targets (primary first, replicas on failover),
    /// each retried under the cluster's [`RetryPolicy`]. Returns the last
    /// error when every copy is unreachable; policy handling is the
    /// caller's job.
    fn fetch_page_attempt(&mut self, page: PageNumber) -> Result<Nanos> {
        // Read-your-writes: if the page has unflushed log entries, flush
        // them so the fetched copy is current.
        let mut elapsed = Nanos::ZERO;
        if self.eviction.is_pending(page.raw()) {
            elapsed += self
                .eviction
                .flush_all(&mut self.fabric, &mut self.poller)?;
            self.update_degraded();
            self.check_abandoned();
        }

        let primary = self.fpga.translate_page(page)?;
        let mut targets = vec![primary];
        targets.extend(self.replicas_for(page));
        // Never read from a node whose writeback was abandoned — its copy
        // is stale. The stable sort keeps primary-first among the healthy.
        if !self.eviction.lost_nodes().is_empty() {
            let lost = self.eviction.lost_nodes().clone();
            targets.sort_by_key(|t| lost.contains(&t.node()));
        }

        let retry = self.config.retry.clone();
        let mut last_err = None;
        'targets: for (i, target) in targets.iter().enumerate() {
            let mut attempt = 0u32;
            // Per-verb deadline: stop burning backoff on one target once
            // its accumulated delay exceeds the budget; fail over instead.
            let mut target_delay = Nanos::ZERO;
            loop {
                let wr_id = self.wr_id();
                let wr = WorkRequest::read(wr_id, *target, PAGE_SIZE_4K).signaled();
                match self.poller.post_and_poll(&mut self.fabric, vec![wr]) {
                    Ok((time, completions)) => {
                        if i > 0 {
                            self.counters.failovers.inc();
                            // Failovers stay visible under the legacy MCE
                            // counter too (pre-failover dashboards).
                            self.counters.mce_events.inc();
                        }
                        if self.config.data_mode == DataMode::Tracked {
                            let data = completions
                                .first()
                                .map(|c| c.data.to_vec())
                                .unwrap_or_else(|| vec![0; PAGE_SIZE_4K as usize]);
                            self.local_pages.insert(page.raw(), data);
                        }
                        self.counters.remote_fetches.inc();
                        self.fetch_ns.record(time.as_ns());
                        return Ok(elapsed + time);
                    }
                    Err(e)
                        if e.is_transient()
                            && attempt + 1 < retry.max_attempts
                            && target_delay < retry.verb_deadline =>
                    {
                        if let Some(node) = e.failed_node() {
                            self.failure.note_transient(node, self.fabric.now());
                        }
                        self.counters.retries.inc();
                        let backoff = retry.backoff_for(attempt, self.failure.rng_mut());
                        attempt += 1;
                        self.counters.backoff_ns.add(backoff.as_ns());
                        // Backing off advances simulated time, so a
                        // scheduled flap can clear while we wait.
                        self.fabric.advance_time(backoff);
                        self.telemetry.span_leaf_inherit(EventKind::Backoff, backoff);
                        elapsed += backoff;
                        target_delay += backoff;
                        self.update_degraded();
                    }
                    Err(e) => {
                        if e.is_transient() {
                            if let Some(node) = e.failed_node() {
                                self.failure.note_transient(node, self.fabric.now());
                                self.update_degraded();
                            }
                        }
                        last_err = Some(e);
                        continue 'targets;
                    }
                }
            }
        }
        Err(last_err.expect("at least one target attempted"))
    }

    /// Applies the configured [`FailurePolicy`] after every copy of
    /// `page` proved unreachable.
    fn fetch_page_failed(&mut self, page: PageNumber, err: KonaError) -> Result<Nanos> {
        let addr = page.base_vfmem();
        match self.failure.policy() {
            FailurePolicy::HandleMce => {
                // §4.5: the coherence timeout surfaces as a machine-check
                // exception; record it and report to the operator.
                self.telemetry.retag_trace(OpKind::Recovery);
                self.telemetry.instant(Track::App, EventKind::Mce);
                self.failure.record(addr, self.counters.app_time());
                self.counters.mce_events.inc();
                Err(KonaError::CoherenceTimeout {
                    addr,
                    deadline_ns: self.config.retry.verb_deadline.as_ns(),
                })
            }
            FailurePolicy::PageFaultFallback => {
                // §4.5: the page is marked not-present so software regains
                // control. Charge a fault's worth of time; when the fabric
                // knows the outage's end (a scheduled flap), wait it out
                // and retry the fetch ourselves.
                self.telemetry.retag_trace(OpKind::Recovery);
                self.counters.charge_app(Nanos::micros(3));
                self.telemetry
                    .span_leaf(Track::App, EventKind::PageFault, Nanos::micros(3));
                self.failure.note_fallback();
                if let Some(node) = err.failed_node() {
                    if let Some(back_at) = self.fabric.node_back_at(node) {
                        let now = self.fabric.now();
                        let wait = back_at.saturating_sub(now);
                        self.fabric.advance_time(wait);
                        self.telemetry
                            .span_leaf(Track::App, EventKind::Backoff, wait);
                        self.counters.fallback_waits.inc();
                        self.update_degraded();
                        return self
                            .fetch_page_attempt(page)
                            .map(|t| t + wait);
                    }
                }
                Err(err)
            }
        }
    }

    fn handle_victim(&mut self, victim: &VictimPage) -> Result<()> {
        let page_data = self.local_pages.get(&victim.page.raw());
        if self.config.data_mode == DataMode::Tracked && page_data.is_none() && victim.is_dirty()
        {
            // Degenerate (zero-cache) configurations write data through
            // directly; there is nothing to ship from a local copy.
            self.local_pages.remove(&victim.page.raw());
            return Ok(());
        }
        let primary = self.fpga.translate_page(victim.page)?;
        let replicas = self.replicas_for(victim.page);
        let time = self.eviction.evict_page(
            victim,
            page_data.map(Vec::as_slice),
            primary,
            &replicas,
            &mut self.fabric,
            &mut self.poller,
        )?;
        // Eviction runs on its own thread, concurrent with the app.
        self.counters.charge_background(time);
        self.local_pages.remove(&victim.page.raw());
        self.check_abandoned();
        Ok(())
    }

    fn access_line(&mut self, addr: VfMemAddr, kind: AccessKind) -> Result<Nanos> {
        self.access_line_from(AgentId(0), addr, kind)
    }

    fn access_line_from(
        &mut self,
        agent: AgentId,
        addr: VfMemAddr,
        kind: AccessKind,
    ) -> Result<Nanos> {
        if !self.telemetry.causal_enabled() {
            return self.access_line_inner(agent, addr, kind);
        }
        self.telemetry.trace_begin(OpKind::Access);
        let res = self.access_line_inner(agent, addr, kind);
        self.telemetry
            .trace_end(*res.as_ref().unwrap_or(&Nanos::ZERO));
        res
    }

    fn access_line_inner(
        &mut self,
        agent: AgentId,
        addr: VfMemAddr,
        kind: AccessKind,
    ) -> Result<Nanos> {
        match self.fpga.cpu_access_from(agent, addr, kind) {
            CpuAccessOutcome::CpuCacheHit => {
                self.counters.local_hits.inc();
                let t = self.config.latency.cpu_cache_hit;
                self.telemetry.span_leaf(Track::App, EventKind::LocalHit, t);
                Ok(t)
            }
            CpuAccessOutcome::FMemHit => {
                self.counters.local_hits.inc();
                let t = self.config.latency.fmem_fill;
                self.telemetry.span_leaf(Track::App, EventKind::FmemFill, t);
                Ok(t)
            }
            CpuAccessOutcome::RemoteFetch {
                page,
                victims,
                prefetch,
            } => {
                for victim in &victims {
                    self.handle_victim(victim)?;
                }
                let fetch_span = self.telemetry.span_open(Track::App, EventKind::RemoteFetch);
                let fetch = match self.fetch_page(page) {
                    Ok(t) => {
                        self.telemetry.span_close(fetch_span, t);
                        t
                    }
                    Err(e) => {
                        self.telemetry.span_close(fetch_span, Nanos::ZERO);
                        return Err(e);
                    }
                };
                for p in prefetch {
                    // Prefetches run off the critical path.
                    let pf_span = self
                        .telemetry
                        .span_open(Track::Background, EventKind::Prefetch);
                    match self.fetch_page(p) {
                        Ok(t) => {
                            self.telemetry.span_close(pf_span, t);
                            self.counters.charge_background(t);
                            self.counters.prefetches.inc();
                        }
                        Err(e) => {
                            self.telemetry.span_close(pf_span, Nanos::ZERO);
                            return Err(e);
                        }
                    }
                }
                let fill = self.config.latency.fmem_fill;
                self.telemetry.span_leaf(Track::App, EventKind::FmemFill, fill);
                Ok(fetch + fill)
            }
        }
    }

    /// Direct write-through for pages that cannot be held locally
    /// (degenerate zero-cache configurations).
    fn write_through(&mut self, addr: VfMemAddr, data: &[u8]) -> Result<Nanos> {
        let remote = self.fpga.translate_page(addr.page_number())?;
        let wr_id = self.wr_id();
        let wr = WorkRequest::write(
            wr_id,
            remote.add(addr.page_offset()),
            data.to_vec(),
        )
        .signaled();
        let (time, _) = self.poller.post_and_poll(&mut self.fabric, vec![wr])?;
        Ok(time)
    }

    fn read_through(&mut self, addr: VfMemAddr, buf: &mut [u8]) -> Result<Nanos> {
        let remote = self.fpga.translate_page(addr.page_number())?;
        let wr_id = self.wr_id();
        let wr = WorkRequest::read(wr_id, remote.add(addr.page_offset()), buf.len() as u64)
            .signaled();
        let (time, completions) = self.poller.post_and_poll(&mut self.fabric, vec![wr])?;
        if let Some(c) = completions.first() {
            buf.copy_from_slice(&c.data);
        }
        Ok(time)
    }
}

impl RemoteMemoryRuntime for KonaRuntime {
    fn name(&self) -> &str {
        "Kona"
    }

    fn allocate(&mut self, bytes: u64) -> Result<VirtAddr> {
        // Requests near or above the slab size are served as whole
        // contiguous slabs (the controller's coarse granularity); smaller
        // objects go through AllocLib's size-class allocator.
        if bytes > self.config.slab_size.bytes() / 2 {
            let base = self.vfmem_cursor;
            let slabs = bytes.div_ceil(self.config.slab_size.bytes());
            for _ in 0..slabs {
                self.grow_reserved()?;
            }
            return Ok(VirtAddr::new(base));
        }
        while self.allocator.needs_slab(bytes) {
            self.grow()?;
        }
        let addr = self.allocator.allocate(bytes)?;
        Ok(VirtAddr::new(addr.raw()))
    }

    fn free(&mut self, addr: VirtAddr, bytes: u64) {
        // Mirror of `allocate`: whole-slab allocations hand their slabs
        // back to the rack controller; AllocLib objects go back on their
        // size-class free list.
        if bytes > self.config.slab_size.bytes() / 2 {
            self.reclaim_slabs(addr, bytes);
            return;
        }
        self.allocator.free(VfMemAddr::new(addr.raw()), bytes);
    }

    fn access(&mut self, access: MemAccess) -> Result<Nanos> {
        let mut elapsed = Nanos::ZERO;
        let start = access.addr.line_start().raw();
        let end = access.end().raw();
        let mut line = start;
        loop {
            elapsed += self.access_line(VfMemAddr::new(line), access.kind)?;
            line += CACHE_LINE_SIZE;
            if line >= end {
                break;
            }
        }
        if access.kind.is_write() {
            self.counters.app_dirty_bytes.add(u64::from(access.len));
        }
        self.counters.charge_app(elapsed);
        self.telemetry.observe_time(self.fabric.now());
        Ok(elapsed)
    }

    fn write_bytes(&mut self, addr: VirtAddr, data: &[u8]) -> Result<Nanos> {
        // Access and data movement interleave per cache line: the line's
        // bytes must reach the local page copy *before* the next line's
        // fetch can evict (and ship) this page, or eviction would write
        // stale data over the remote copy.
        let mut elapsed = Nanos::ZERO;
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            // Chunk: up to the end of the current cache line.
            let in_line = (CACHE_LINE_SIZE - a.raw() % CACHE_LINE_SIZE) as usize;
            let chunk = in_line.min(data.len() - off);
            elapsed += self.access_line(VfMemAddr::new(a.line_start().raw()), AccessKind::Write)?;
            if self.config.data_mode == DataMode::Tracked {
                let page = a.page_number();
                if let Some(pd) = self.local_pages.get_mut(&page.raw()) {
                    let s = a.page_offset() as usize;
                    pd[s..s + chunk].copy_from_slice(&data[off..off + chunk]);
                } else {
                    let t =
                        self.write_through(VfMemAddr::new(a.raw()), &data[off..off + chunk])?;
                    elapsed += t;
                }
            }
            off += chunk;
        }
        self.counters.app_dirty_bytes.add(data.len() as u64);
        self.counters.charge_app(elapsed);
        self.telemetry.observe_time(self.fabric.now());
        Ok(elapsed)
    }

    fn read_bytes(&mut self, addr: VirtAddr, buf: &mut [u8]) -> Result<Nanos> {
        // Interleaved per line, mirroring write_bytes: the line's bytes are
        // copied out while its page is guaranteed resident.
        let mut elapsed = Nanos::ZERO;
        let len = buf.len();
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let in_line = (CACHE_LINE_SIZE - a.raw() % CACHE_LINE_SIZE) as usize;
            let chunk = in_line.min(len - off);
            elapsed += self.access_line(VfMemAddr::new(a.line_start().raw()), AccessKind::Read)?;
            if self.config.data_mode == DataMode::Tracked {
                let page = a.page_number();
                if let Some(pd) = self.local_pages.get(&page.raw()) {
                    let s = a.page_offset() as usize;
                    buf[off..off + chunk].copy_from_slice(&pd[s..s + chunk]);
                } else {
                    let t = self.read_through(
                        VfMemAddr::new(a.raw()),
                        &mut buf[off..off + chunk],
                    )?;
                    elapsed += t;
                }
            }
            off += chunk;
        }
        self.counters.charge_app(elapsed);
        self.telemetry.observe_time(self.fabric.now());
        Ok(elapsed)
    }

    fn sync(&mut self) -> Result<Nanos> {
        let res = if !self.telemetry.causal_enabled() {
            self.sync_inner()
        } else {
            self.telemetry.trace_begin(OpKind::Sync);
            let res = self.sync_inner();
            self.telemetry
                .trace_end(*res.as_ref().unwrap_or(&Nanos::ZERO));
            res
        };
        self.telemetry.observe_time(self.fabric.now());
        res
    }

    fn stats(&self) -> RuntimeStats {
        // Derived entirely from the registry: the eviction handler bumps
        // the shared pages-evicted / writeback-bytes counters itself.
        self.counters.to_stats()
    }
}

impl KonaRuntime {
    fn sync_inner(&mut self) -> Result<Nanos> {
        self.update_degraded();
        let mut elapsed = Nanos::ZERO;
        // Write back dirty lines of pages still resident in FMem.
        let resident: Vec<PageNumber> = self.fpga.resident_pages_list();
        for page in resident {
            let dirty = self.fpga.snoop_page_dirty(page);
            if !dirty.any() {
                continue;
            }
            let victim = VictimPage {
                page,
                dirty_lines: dirty,
            };
            let page_data = self.local_pages.get(&page.raw());
            let primary = self.fpga.translate_page(page)?;
            let replicas = self.replicas_for(page);
            elapsed += self.eviction.evict_page(
                &victim,
                page_data.map(Vec::as_slice),
                primary,
                &replicas,
                &mut self.fabric,
                &mut self.poller,
            )?;
        }
        elapsed += self
            .eviction
            .flush_all(&mut self.fabric, &mut self.poller)?;
        self.check_abandoned();
        self.counters.charge_app(elapsed);
        Ok(elapsed)
    }
}

/// Cluster control-plane operations: occupancy accounting, slab
/// migration, rebalancing and post-crash re-replication. These are the
/// rack-scale duties the paper assigns to the memory controller (§4.5);
/// `kona-cluster` drives them from its control plane.
impl KonaRuntime {
    /// Chunk size for slab copies over the fabric (matches the eviction
    /// log's batching granularity).
    const COPY_CHUNK: u64 = 64 * 1024;

    /// Turns automatic re-replication after a node abandonment on or
    /// off. Off by default so single-rack behaviour matches earlier
    /// revisions; the cluster control plane turns it on.
    pub fn set_auto_repair(&mut self, on: bool) {
        self.auto_repair = on;
    }

    /// Per-node occupancy as accounted by the rack controller.
    pub fn node_occupancy(&self) -> Vec<NodeOccupancy> {
        self.controller.occupancy()
    }

    /// Human-readable controller occupancy (for logs and error text).
    pub fn occupancy_summary(&self) -> String {
        self.controller.occupancy_summary()
    }

    /// Name of the active placement policy.
    pub fn placement_name(&self) -> &'static str {
        self.controller.policy_name()
    }

    /// Bases and lengths of the currently mapped slabs.
    pub fn slab_map(&self) -> Vec<(u64, u64)> {
        self.slabs.iter().map(|(&b, i)| (b, i.len)).collect()
    }

    /// Opts in to journaling flushed cache-line-log batches so the
    /// cluster layer can replay them into per-node memory runtimes.
    pub fn enable_shipment_journal(&mut self) {
        self.eviction.enable_shipment_journal();
    }

    /// Drains the journaled `(node, flush time, encoded batch)`
    /// shipments accumulated since the last drain.
    pub fn drain_log_shipments(&mut self) -> crate::log::ShipmentBatch {
        self.eviction.drain_shipments()
    }

    /// Like [`KonaRuntime::drain_log_shipments`] but swaps into the
    /// caller's reusable batch, so a steady ship-and-ingest loop
    /// allocates nothing.
    pub fn drain_log_shipments_into(&mut self, out: &mut crate::log::ShipmentBatch) {
        self.eviction.drain_shipments_into(out);
    }

    /// Slabs currently missing part of their replication budget: the
    /// primary or a replica sits on a lost node, or the replica list is
    /// short of `replicas - 1`.
    pub fn under_replicated_slabs(&self) -> usize {
        let lost = self.eviction.lost_nodes();
        let want = self.config.replicas.saturating_sub(1);
        self.slabs
            .iter()
            .filter(|&(&base, info)| {
                let primary_bad = self
                    .fpga
                    .translate_page(VfMemAddr::new(base).page_number())
                    .map(|r| lost.contains(&r.node()))
                    .unwrap_or(true);
                primary_bad
                    || info.replicas.len() < want
                    || info.replicas.iter().any(|r| lost.contains(&r.node()))
            })
            .count()
    }

    /// Moves the slab at `base` (a slab base address) to a node chosen
    /// by the placement policy among nodes not already hosting a copy.
    /// The image is copied over the fabric, translation repoints to the
    /// new location, and the vacated slab returns to its node's free
    /// list. Returns the bytes moved.
    ///
    /// # Errors
    ///
    /// Fails when `base` maps no slab, no eligible node has capacity, or
    /// the copy hits an unrecoverable network failure (the original
    /// placement is kept in that case).
    pub fn migrate_slab(&mut self, base: u64) -> Result<u64> {
        self.migrate_slab_to(VfMemAddr::new(base), &[])
            .map(|(bytes, _)| bytes)
    }

    /// Migrates slabs off the fullest node until the occupancy gap
    /// between the fullest and emptiest live nodes is at most
    /// `max_skew_slabs` slabs (floored at one slab — a one-slab gap
    /// cannot be improved by moving a slab). Each move targets the
    /// emptiest node. Returns the total bytes moved.
    ///
    /// # Errors
    ///
    /// As for [`KonaRuntime::migrate_slab`]; slabs moved before the
    /// error stay moved.
    pub fn rebalance(&mut self, max_skew_slabs: u64) -> Result<u64> {
        let span = self.telemetry.span_open(Track::Cluster, EventKind::Rebalance);
        match self.rebalance_inner(max_skew_slabs) {
            Ok((moved, t)) => {
                self.telemetry.span_close(span, t);
                Ok(moved)
            }
            Err(e) => {
                self.telemetry.span_close(span, Nanos::ZERO);
                Err(e)
            }
        }
    }

    fn rebalance_inner(&mut self, max_skew_slabs: u64) -> Result<(u64, Nanos)> {
        let slab = self.config.slab_size.bytes();
        let mut moved = 0u64;
        let mut elapsed = Nanos::ZERO;
        // Bounded sweep: each move shrinks the gap by one slab, so this
        // only guards against pathological configurations.
        for _ in 0..64 {
            let occ = self.controller.occupancy();
            if occ.len() < 2 {
                break;
            }
            let fullest = *occ
                .iter()
                .max_by_key(|o| (o.used, std::cmp::Reverse(o.id)))
                .expect("occupancy non-empty");
            let emptiest = *occ
                .iter()
                .min_by_key(|o| (o.used, o.id))
                .expect("occupancy non-empty");
            // A gap of one slab is the balance floor: moving a slab
            // across it just flips which node is fullest.
            let floor = max_skew_slabs.max(1);
            if fullest.used.saturating_sub(emptiest.used) <= floor.saturating_mul(slab) {
                break;
            }
            // First slab whose primary lives on the fullest node.
            let candidate = self.slabs.keys().copied().find(|&b| {
                self.fpga
                    .translate_page(VfMemAddr::new(b).page_number())
                    .map(|r| r.node() == fullest.id)
                    .unwrap_or(false)
            });
            let Some(base) = candidate else { break };
            // Steer the move to the emptiest node by excluding the rest.
            let exclude: Vec<u32> = occ
                .iter()
                .map(|o| o.id)
                .filter(|&id| id != emptiest.id)
                .collect();
            let (bytes, t) = self.migrate_slab_to(VfMemAddr::new(base), &exclude)?;
            moved += bytes;
            elapsed += t;
        }
        Ok((moved, elapsed))
    }

    fn migrate_slab_to(&mut self, base: VfMemAddr, exclude: &[u32]) -> Result<(u64, Nanos)> {
        let info = self
            .slabs
            .get(&base.raw())
            .cloned()
            .ok_or_else(|| KonaError::InvalidConfig(format!("no slab at {:#x}", base.raw())))?;
        // Unflushed log entries carry pre-resolved remote addresses, so
        // push them to the old location before copying its image.
        let mut elapsed = self
            .eviction
            .flush_all(&mut self.fabric, &mut self.poller)?;
        self.check_abandoned();
        let src = self.fpga.translate_page(base.page_number())?;
        let mut hosts: Vec<u32> = vec![src.node()];
        hosts.extend(info.replicas.iter().map(|r| r.node()));
        hosts.extend_from_slice(exclude);
        let grant = self.controller.allocate_slab_excluding(&hosts)?;
        let span = self.telemetry.span_open(Track::Cluster, EventKind::Migration);
        match self.copy_remote(src, grant.remote, info.len) {
            Ok(t) => {
                self.telemetry.span_close(span, t);
                self.counters.charge_background(t);
                elapsed += t;
            }
            Err(e) => {
                self.telemetry.span_close(span, Nanos::ZERO);
                let _ = self.controller.free_slab(grant.remote);
                return Err(e);
            }
        }
        self.fpga.translation_mut().unregister(base);
        self.fpga
            .translation_mut()
            .register(base, info.len, grant.remote)?;
        let _ = self.controller.free_slab(src);
        self.counters.migration_bytes.add(info.len);
        Ok((info.len, elapsed))
    }

    /// Re-replicates every slab that references a lost node, restoring
    /// the configured K-way budget (the lost-node protocol extended to
    /// the rack: the control plane re-creates the lost copies on healthy
    /// nodes).
    ///
    /// Lost nodes are first withdrawn from the controller so replacement
    /// grants never land on them. For each affected slab a healthy copy
    /// is the source — a surviving replica is promoted to primary when
    /// the primary itself was lost — and the image is copied to a fresh
    /// grant over the fabric. Once a lost node no longer backs any slab
    /// it is marked repaired, which replenishes the eviction handler's
    /// loss budget. Returns the number of replacement copies created.
    ///
    /// # Errors
    ///
    /// Propagates grant exhaustion and unrecoverable network failures;
    /// slabs repaired before the error stay repaired, and the remainder
    /// stay visible through [`KonaRuntime::under_replicated_slabs`].
    pub fn repair_lost_nodes(&mut self) -> Result<u64> {
        let lost = self.eviction.lost_nodes().clone();
        if lost.is_empty() {
            return Ok(0);
        }
        // Stop granting on lost nodes before placing any replacement.
        for &n in &lost {
            self.controller.remove_node(n);
        }
        // Push pending log entries to the survivors so copied images are
        // current. Failures here are exactly what repair absorbs.
        if let Ok(t) = self.eviction.flush_all(&mut self.fabric, &mut self.poller) {
            self.counters.charge_background(t);
        }
        let mut created = 0u64;
        let bases: Vec<u64> = self.slabs.keys().copied().collect();
        for base_raw in bases {
            let base = VfMemAddr::new(base_raw);
            let info = self.slabs.get(&base_raw).cloned().expect("slab exists");
            let primary = self.fpga.translate_page(base.page_number())?;
            let primary_lost = lost.contains(&primary.node());
            let replica_lost = info.replicas.iter().any(|r| lost.contains(&r.node()));
            if !primary_lost && !replica_lost {
                continue;
            }
            let mut replicas = info.replicas.clone();
            let mut source = primary;
            if primary_lost {
                let Some(idx) = replicas.iter().position(|r| !lost.contains(&r.node()))
                else {
                    // Every copy was lost: nothing to copy from. Leave
                    // the slab in place so the loss stays observable.
                    continue;
                };
                source = replicas.remove(idx);
                self.fpga.translation_mut().unregister(base);
                self.fpga.translation_mut().register(base, info.len, source)?;
            }
            replicas.retain(|r| !lost.contains(&r.node()));
            self.slabs
                .get_mut(&base_raw)
                .expect("slab exists")
                .replicas = replicas.clone();
            let want = self.config.replicas.saturating_sub(1);
            while replicas.len() < want {
                let mut hosts: Vec<u32> = vec![source.node()];
                hosts.extend(replicas.iter().map(|r| r.node()));
                let grant = self.controller.allocate_slab_excluding(&hosts)?;
                let span = self.telemetry.span_open(Track::Cluster, EventKind::Migration);
                match self.copy_remote(source, grant.remote, info.len) {
                    Ok(t) => {
                        self.telemetry.span_close(span, t);
                        self.counters.charge_background(t);
                    }
                    Err(e) => {
                        self.telemetry.span_close(span, Nanos::ZERO);
                        let _ = self.controller.free_slab(grant.remote);
                        return Err(e);
                    }
                }
                self.counters.migration_bytes.add(info.len);
                self.counters.rereplications.inc();
                self.failure.note_rereplication();
                replicas.push(grant.remote);
                self.slabs
                    .get_mut(&base_raw)
                    .expect("slab exists")
                    .replicas = replicas.clone();
                created += 1;
            }
        }
        // A lost node with no remaining references is fully evacuated;
        // repairing it replenishes the eviction handler's loss budget.
        let mut evacuated: Vec<u32> = lost.into_iter().collect();
        evacuated.sort_unstable();
        for n in evacuated {
            if !self.slab_references_node(n) {
                self.eviction.note_node_repaired(n);
            }
        }
        Ok(created)
    }

    /// Nodes out of service right now — lost, whether or not their
    /// data has since been re-replicated — sorted for determinism.
    pub fn lost_nodes(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.eviction.lost_nodes().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Whether no live slab still depends on `node`: either it was
    /// never lost, or every slab it held has been re-replicated onto
    /// healthy nodes. A fenced node may only rejoin once this holds —
    /// its quarantined (possibly stale) copies are no longer load-
    /// bearing, so a wipe-and-resync cannot lose data.
    pub fn node_evacuated(&self, node: u32) -> bool {
        !self.eviction.lost_nodes().contains(&node) || self.eviction.node_repaired(node)
    }

    /// Proactively marks `node` lost — the control plane fencing a
    /// member whose lease expired, rather than waiting for a flush to
    /// time out against it. Returns `false` when the `replicas − 1`
    /// loss budget is already spent, in which case the node is left
    /// unfenced and the caller must wait for a repair to complete.
    pub fn fence_node(&mut self, node: u32) -> bool {
        self.eviction.note_node_lost(node)
    }

    /// Brings a previously lost node back into service. With `wipe`
    /// the node rejoins empty — its controller entry is resurrected
    /// with a clean free list and its memory pool is zeroed, so stale
    /// pre-partition contents cannot be served (the fenced-rejoin
    /// path). Without `wipe` the node is simply unmarked, keeping
    /// whatever it held — the naive heal that integrity scrubbing
    /// exists to catch.
    pub fn reinstate_node(&mut self, node: u32, wipe: bool) {
        self.eviction.reinstate_node(node);
        if wipe {
            self.controller.reinstate_node(node);
            if let Some(mem) = self.fabric.node_mut(node) {
                mem.wipe();
            }
        }
    }

    /// Every mapped slab as `(base, len, copies)` with the primary
    /// first — the scrub walker's view of where each byte should live.
    pub fn slab_copies(&self) -> Vec<(u64, u64, Vec<RemoteAddr>)> {
        self.slabs
            .iter()
            .map(|(&base, info)| {
                let mut copies = Vec::with_capacity(1 + info.replicas.len());
                if let Ok(primary) =
                    self.fpga.translate_page(VfMemAddr::new(base).page_number())
                {
                    copies.push(primary);
                }
                copies.extend(info.replicas.iter().copied());
                (base, info.len, copies)
            })
            .collect()
    }

    /// Writes `data` to `dst` over the fabric in
    /// [`KonaRuntime::COPY_CHUNK`] pieces, retrying transient faults —
    /// the scrubber re-copying a divergent replica from a good copy.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable network failures; chunks written
    /// before the error stay written (re-scrub picks up the rest).
    pub fn write_remote_retrying(&mut self, dst: RemoteAddr, data: &[u8]) -> Result<Nanos> {
        let mut elapsed = Nanos::ZERO;
        let mut off = 0usize;
        while off < data.len() {
            let chunk = (Self::COPY_CHUNK as usize).min(data.len() - off);
            let piece = data[off..off + chunk].to_vec();
            let (t, _) = self.post_retrying(|id| {
                WorkRequest::write(id, dst.add(off as u64), piece.clone()).signaled()
            })?;
            elapsed += t;
            off += chunk;
        }
        self.counters.charge_background(elapsed);
        Ok(elapsed)
    }

    fn slab_references_node(&self, node: u32) -> bool {
        self.slabs.iter().any(|(&base, info)| {
            self.fpga
                .translate_page(VfMemAddr::new(base).page_number())
                .map(|r| r.node() == node)
                .unwrap_or(false)
                || info.replicas.iter().any(|r| r.node() == node)
        })
    }

    /// Copies `len` bytes from `src` to `dst` over the fabric in
    /// [`KonaRuntime::COPY_CHUNK`] pieces (RDMA read from the survivor,
    /// write to the replacement), retrying transient faults under the
    /// cluster's retry policy.
    fn copy_remote(&mut self, src: RemoteAddr, dst: RemoteAddr, len: u64) -> Result<Nanos> {
        let mut elapsed = Nanos::ZERO;
        let mut off = 0u64;
        while off < len {
            let chunk = Self::COPY_CHUNK.min(len - off);
            let (t_read, completions) =
                self.post_retrying(|id| WorkRequest::read(id, src.add(off), chunk).signaled())?;
            elapsed += t_read;
            let data = completions
                .first()
                .map(|c| c.data.to_vec())
                .unwrap_or_else(|| vec![0; chunk as usize]);
            let (t_write, _) = self
                .post_retrying(|id| WorkRequest::write(id, dst.add(off), data.clone()).signaled())?;
            elapsed += t_write;
            off += chunk;
        }
        Ok(elapsed)
    }

    /// Posts one work request, retrying transient failures with the
    /// retry policy's backoff (no failover: the caller picks targets).
    fn post_retrying<F>(&mut self, mut make: F) -> Result<(Nanos, Vec<kona_net::Completion>)>
    where
        F: FnMut(u64) -> WorkRequest,
    {
        let retry = self.config.retry.clone();
        let mut attempt = 0u32;
        let mut waited = Nanos::ZERO;
        loop {
            let id = self.wr_id();
            match self.poller.post_and_poll(&mut self.fabric, vec![make(id)]) {
                Ok((t, completions)) => return Ok((waited + t, completions)),
                Err(e) if e.is_transient() && attempt + 1 < retry.max_attempts => {
                    self.counters.retries.inc();
                    let backoff = retry.backoff_for(attempt, self.failure.rng_mut());
                    attempt += 1;
                    self.counters.backoff_ns.add(backoff.as_ns());
                    self.fabric.advance_time(backoff);
                    waited += backoff;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Returns the whole-slab allocation at `addr` to the controller:
    /// pending log entries are flushed (they carry pre-resolved remote
    /// addresses that must not land in a re-granted slab), resident
    /// pages are dropped without writeback, translation entries are
    /// withdrawn, and every backing slab — primary and replicas — goes
    /// back on its node's free list for reuse.
    fn reclaim_slabs(&mut self, addr: VirtAddr, bytes: u64) {
        if let Ok(t) = self.eviction.flush_all(&mut self.fabric, &mut self.poller) {
            self.counters.charge_background(t);
        }
        self.check_abandoned();
        let slab = self.config.slab_size.bytes();
        let count = bytes.div_ceil(slab);
        for k in 0..count {
            let base = addr.raw() + k * slab;
            let Some(info) = self.slabs.remove(&base) else {
                continue;
            };
            let mut page = base;
            while page < base + info.len {
                let pn = VfMemAddr::new(page).page_number();
                if self.fpga.fmem_resident(pn) {
                    let _ = self.fpga.evict_page(pn);
                }
                self.local_pages.remove(&pn.raw());
                page += PAGE_SIZE_4K;
            }
            if let Some(primary) = self.fpga.translation_mut().unregister(VfMemAddr::new(base)) {
                let _ = self.controller.free_slab(primary);
            }
            for r in info.replicas {
                let _ = self.controller.free_slab(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> KonaRuntime {
        KonaRuntime::new(ClusterConfig::small()).unwrap()
    }

    #[test]
    fn allocate_grows_slabs_on_demand() {
        let mut rt = runtime();
        let a = rt.allocate(1024).unwrap();
        let b = rt.allocate(1024).unwrap();
        assert_ne!(a, b);
        assert!(rt.controller.slabs_granted() >= 1);
    }

    #[test]
    fn write_read_roundtrip_within_cache() {
        let mut rt = runtime();
        let addr = rt.allocate(8192).unwrap();
        rt.write_bytes(addr, &[0xAB; 300]).unwrap();
        let mut buf = [0u8; 300];
        rt.read_bytes(addr, &mut buf).unwrap();
        assert_eq!(buf, [0xAB; 300]);
    }

    #[test]
    fn roundtrip_survives_eviction_pressure() {
        // Cache of 8 pages; write 32 pages of distinct data, then verify.
        let mut cfg = ClusterConfig::small().with_local_cache_pages(8);
        cfg.cpu_cache_lines = 64;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let base = rt.allocate(32 * 4096).unwrap();
        for p in 0..32u64 {
            let pattern = [p as u8 + 1; 64];
            rt.write_bytes(base + p * 4096 + 128, &pattern).unwrap();
        }
        for p in 0..32u64 {
            let mut buf = [0u8; 64];
            rt.read_bytes(base + p * 4096 + 128, &mut buf).unwrap();
            assert_eq!(buf, [p as u8 + 1; 64], "page {p} corrupted");
        }
        assert!(rt.stats().pages_evicted > 0, "pressure must evict");
    }

    #[test]
    fn no_page_faults_ever() {
        let mut rt = runtime();
        let addr = rt.allocate(1 << 16).unwrap();
        for i in 0..256u64 {
            rt.access(MemAccess::write(addr + i * 64, 8)).unwrap();
        }
        let s = rt.stats();
        assert_eq!(s.major_faults, 0);
        assert_eq!(s.minor_faults, 0);
        assert_eq!(s.tlb_invalidations, 0);
        assert!(s.remote_fetches > 0);
    }

    #[test]
    fn repeated_access_hits_cpu_cache() {
        let mut rt = runtime();
        let addr = rt.allocate(4096).unwrap();
        let cold = rt.access(MemAccess::read(addr, 8)).unwrap();
        let warm = rt.access(MemAccess::read(addr, 8)).unwrap();
        assert!(warm < cold / 100, "warm {warm} vs cold {cold}");
        assert_eq!(warm, rt.config.latency.cpu_cache_hit);
    }

    #[test]
    fn sync_pushes_dirty_lines_to_remote() {
        let mut rt = runtime();
        let addr = rt.allocate(4096).unwrap();
        rt.write_bytes(addr, &[0x5A; 64]).unwrap();
        rt.sync().unwrap();
        // The data must now be present on the remote node.
        let primary = rt.fpga.translate_page(addr.page_number()).unwrap();
        let node = rt.fabric.node(primary.node()).unwrap();
        assert_eq!(
            node.read_bytes(primary.offset(), 64),
            &[0x5A; 64][..]
        );
    }

    #[test]
    fn access_unallocated_address_fails() {
        let mut rt = runtime();
        let err = rt
            .access(MemAccess::read(VirtAddr::new(1 << 40), 8))
            .unwrap_err();
        assert!(matches!(err, KonaError::NoRemoteTranslation(_)));
    }

    #[test]
    fn failed_node_with_mce_policy_errors() {
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let addr = rt.allocate(64 * 4096).unwrap();
        // Find which node backs the first page, then fail it after
        // flushing the page out of the local cache.
        let node = rt.fpga.translate_page(addr.page_number()).unwrap().node();
        for p in 1..32u64 {
            rt.access(MemAccess::read(addr + p * 4096, 8)).unwrap();
        }
        rt.fabric_mut().fail_node(node).unwrap();
        // The first page was evicted; re-fetching it must hit the failure.
        let err = rt.access(MemAccess::read(addr, 8)).unwrap_err();
        assert!(matches!(err, KonaError::CoherenceTimeout { .. }));
        assert_eq!(rt.mce_events().len(), 1);
        assert_eq!(rt.failure_state().policy_counts().mce, 1);
        // The fetch was retried before surfacing the MCE.
        assert!(rt.stats().retries > 0);
        assert!(rt.stats().backoff_time > Nanos::ZERO);
    }

    #[test]
    fn failed_node_recovers_with_fallback_policy() {
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        rt.set_failure_policy(FailurePolicy::PageFaultFallback);
        let addr = rt.allocate(64 * 4096).unwrap();
        let node = rt.fpga.translate_page(addr.page_number()).unwrap().node();
        for p in 1..32u64 {
            rt.access(MemAccess::read(addr + p * 4096, 8)).unwrap();
        }
        rt.fabric_mut().fail_node(node).unwrap();
        assert!(rt.access(MemAccess::read(addr, 8)).is_err());
        assert!(rt.mce_events().is_empty(), "fallback must not raise MCE");
        assert_eq!(rt.failure_state().policy_counts().fallback, 1);
        // Outage resolves; the retried access succeeds.
        rt.fabric_mut().recover_node(node);
        assert!(rt.access(MemAccess::read(addr, 8)).is_ok());
    }

    #[test]
    fn replication_enables_failover_reads() {
        let mut cfg = ClusterConfig::small()
            .with_replicas(2)
            .with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let addr = rt.allocate(64 * 4096).unwrap();
        rt.write_bytes(addr, &[0x11; 64]).unwrap();
        rt.sync().unwrap();
        // Push the page out of the local cache.
        for p in 1..40u64 {
            rt.access(MemAccess::read(addr + p * 4096, 8)).unwrap();
        }
        rt.sync().unwrap();
        // Fail the primary; the read must come from the replica.
        let primary_node = rt.fpga.translate_page(addr.page_number()).unwrap().node();
        rt.fabric_mut().fail_node(primary_node).unwrap();
        let mut buf = [0u8; 64];
        rt.read_bytes(addr, &mut buf).unwrap();
        assert_eq!(buf, [0x11; 64]);
        assert!(rt.stats().failovers > 0);
    }

    #[test]
    fn eviction_is_background_work() {
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let addr = rt.allocate(64 * 4096).unwrap();
        for p in 0..64u64 {
            rt.access(MemAccess::write(addr + p * 4096, 8)).unwrap();
        }
        let s = rt.stats();
        assert!(s.background_time > Nanos::ZERO);
        assert!(s.pages_evicted > 0);
    }

    #[test]
    fn timing_mode_skips_data() {
        let mut rt = KonaRuntime::new(ClusterConfig::small().timing_only()).unwrap();
        let addr = rt.allocate(4096).unwrap();
        let t = rt.access(MemAccess::write(addr, 64)).unwrap();
        assert!(t > Nanos::ZERO);
        assert!(rt.local_pages.is_empty());
    }

    #[test]
    fn multi_core_sharing_is_coherent() {
        let mut cfg = ClusterConfig::small().with_cpu_agents(2);
        cfg.cpu_cache_lines = 256;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let addr = rt.allocate(4096).unwrap();
        // Core 0 writes; core 1 reads the same line: the read downgrades
        // core 0's modified copy, producing an observed writeback.
        rt.access_from_core(0, MemAccess::write(addr, 8)).unwrap();
        let before = rt.fpga().stats().writebacks_observed;
        rt.access_from_core(1, MemAccess::read(addr, 8)).unwrap();
        assert!(rt.fpga().stats().writebacks_observed > before);
        // Core 1 writing invalidates core 0's copy; a subsequent core-0
        // read misses its own cache (but hits FMem, no remote fetch).
        rt.access_from_core(1, MemAccess::write(addr, 8)).unwrap();
        let fetches = rt.stats().remote_fetches;
        rt.access_from_core(0, MemAccess::read(addr, 8)).unwrap();
        assert_eq!(rt.stats().remote_fetches, fetches);
    }

    #[test]
    fn hardware_copy_engine_reduces_background_time() {
        let mk = |engine| {
            let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
            cfg.cpu_cache_lines = 64;
            let mut rt = KonaRuntime::new(cfg).unwrap();
            rt.set_copy_engine(engine);
            let addr = rt.allocate(64 * 4096).unwrap();
            for p in 0..64u64 {
                rt.access(MemAccess::write(addr + p * 4096, 8)).unwrap();
            }
            rt.sync().unwrap();
            rt.stats().background_time
        };
        let sw = mk(crate::eviction::CopyEngine::SoftwareAvx);
        let hw = mk(crate::eviction::CopyEngine::HardwareDma);
        assert!(hw < sw, "dma {hw} should beat software {sw}");
    }

    /// Evicts the first page of `addr` out of the local cache and returns
    /// the node backing it.
    fn evict_first_page(rt: &mut KonaRuntime, addr: VirtAddr) -> u32 {
        let node = rt.fpga.translate_page(addr.page_number()).unwrap().node();
        for p in 1..32u64 {
            rt.access(MemAccess::read(addr + p * 4096, 8)).unwrap();
        }
        node
    }

    #[test]
    fn retries_ride_out_a_scheduled_flap() {
        use kona_net::{FaultInjector, FaultPlan};
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        cfg.retry.base_backoff = Nanos::micros(40);
        cfg.retry.max_backoff = Nanos::micros(200);
        cfg.retry.jitter = 0.0;
        cfg.retry.verb_deadline = Nanos::micros(500);
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let addr = rt.allocate(64 * 4096).unwrap();
        let node = evict_first_page(&mut rt, addr);
        let now = rt.fabric_mut().now();
        rt.fabric_mut().set_fault_injector(FaultInjector::new(
            FaultPlan::calm(11).with_flap(node, now, Nanos::micros(30)),
        ));
        // The first post hits the downed node; the 40 µs backoff outlasts
        // the 30 µs flap and the retry succeeds.
        rt.access(MemAccess::read(addr, 8)).unwrap();
        let s = rt.stats();
        assert_eq!(s.retries, 1);
        assert_eq!(s.backoff_time, Nanos::micros(40));
        assert_eq!(s.failovers, 0, "same node, not a failover");
    }

    #[test]
    fn fallback_waits_out_a_long_flap() {
        use kona_net::{FaultInjector, FaultPlan};
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        cfg.retry.jitter = 0.0;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        rt.set_failure_policy(FailurePolicy::PageFaultFallback);
        let addr = rt.allocate(64 * 4096).unwrap();
        let pattern = [0x7E; 64];
        rt.write_bytes(addr, &pattern).unwrap();
        rt.sync().unwrap();
        let node = evict_first_page(&mut rt, addr);
        let now = rt.fabric_mut().now();
        rt.fabric_mut().set_fault_injector(FaultInjector::new(
            FaultPlan::calm(11).with_flap(node, now, Nanos::millis(2)),
        ));
        // Retries exhaust while the node is down, but the fabric knows
        // when the flap ends: the fallback waits it out and re-fetches.
        let mut buf = [0u8; 64];
        rt.read_bytes(addr, &mut buf).unwrap();
        assert_eq!(buf, pattern);
        let s = rt.stats();
        assert_eq!(s.fallback_waits, 1);
        assert!(s.retries > 0);
        assert!(rt.mce_events().is_empty(), "no MCE on the fallback path");
    }

    #[test]
    fn repeated_failures_enter_and_exit_degraded_mode() {
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        cfg.degraded.failure_threshold = 2;
        let mut rt = KonaRuntime::new(cfg).unwrap();
        let addr = rt.allocate(64 * 4096).unwrap();
        let node = evict_first_page(&mut rt, addr);
        rt.fabric_mut().fail_node(node).unwrap();
        assert!(rt.access(MemAccess::read(addr, 8)).is_err());
        // The transient failures during the retry loop crossed the
        // threshold: prefetches shed, eviction batching widened.
        assert!(rt.is_degraded());
        assert!(rt.fpga().prefetch_shedding());
        assert_eq!(rt.stats().degraded_entries, 1);
        // Outage clears and the cooloff passes: healthy again. The fresh
        // page forces a remote fetch, which re-evaluates degraded mode.
        rt.fabric_mut().recover_node(node);
        rt.fabric_mut().advance_time(Nanos::millis(5));
        rt.access(MemAccess::read(addr + 40 * 4096, 8)).unwrap();
        assert!(!rt.is_degraded());
        assert!(!rt.fpga().prefetch_shedding());
        assert_eq!(rt.stats().degraded_entries, 1, "one entry, not re-counted");
    }

    #[test]
    fn fault_plan_in_config_installs_injector() {
        use kona_net::FaultPlan;
        let mut cfg = ClusterConfig::small();
        cfg.fault_plan = Some(FaultPlan::calm(42));
        let mut rt = KonaRuntime::new(cfg).unwrap();
        assert!(rt.fabric_mut().fault_injector().is_some());
        let addr = rt.allocate(4096).unwrap();
        rt.write_bytes(addr, &[9u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        rt.read_bytes(addr, &mut buf).unwrap();
        assert_eq!(buf, [9u8; 64]);
    }

    #[test]
    fn run_trace_accumulates() {
        let mut rt = runtime();
        let addr = rt.allocate(1 << 16).unwrap();
        let events: Vec<TraceEvent> = (0..16u64)
            .map(|i| {
                TraceEvent::new(
                    Nanos::from_ns(i),
                    MemAccess::read(addr + i * 4096 % (1 << 16), 8),
                )
            })
            .collect();
        let t = rt.run_trace(&events).unwrap();
        assert!(t > Nanos::ZERO);
        assert_eq!(rt.stats().app_time, t);
    }
}
