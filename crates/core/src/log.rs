//! The cache-line log and its receiver.
//!
//! "Kona uses a software log based on a ring buffer design similar to FaRM
//! to transfer dirty cache lines. We copy and aggregate the dirty
//! cache-lines into the log, and use RDMA writes to transfer the log to
//! the remote host. The Cache-line Log Receiver running on a thread on the
//! remote host distributes the cache-lines from the received log into
//! their locations and sends an acknowledgment" (§4.4).

use kona_net::{CopyModel, NodeMemory};
use kona_types::{Nanos, RemoteAddr};

/// Per-entry header: node (4) + offset (8) + length (4).
const ENTRY_HEADER_BYTES: usize = 16;

/// Fixed cost of decoding one log entry on the remote thread.
const PER_ENTRY_UNPACK: Nanos = Nanos::from_ns(15);

/// One aggregated run of dirty bytes destined for a remote address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Destination of the dirty run.
    pub remote: RemoteAddr,
    /// The dirty bytes (one or more contiguous cache lines).
    pub data: Vec<u8>,
}

impl LogEntry {
    /// Bytes this entry occupies in the log (header + payload).
    pub fn encoded_len(&self) -> usize {
        ENTRY_HEADER_BYTES + self.data.len()
    }
}

/// The local, RDMA-registered aggregation buffer for dirty cache lines.
///
/// Entries from *different pages* are aggregated into the same log, so one
/// RDMA write ships many scattered dirty lines — "Kona aggregates dirty
/// cache-lines in the RDMA buffer, whether they are contiguous or not, and
/// can issue fewer RDMA writes, of larger size" (§6.4).
///
/// # Examples
///
/// ```
/// # use kona::{CacheLineLog, LogEntry};
/// # use kona_types::RemoteAddr;
/// let mut log = CacheLineLog::new(1024);
/// assert!(log.append(LogEntry { remote: RemoteAddr::new(0, 64), data: vec![1; 64] }));
/// let encoded = log.drain_encoded();
/// assert_eq!(encoded.len(), 16 + 64);
/// assert_eq!(log.used_bytes(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct CacheLineLog {
    buffer: Vec<u8>,
    capacity: usize,
    entries: usize,
}

impl CacheLineLog {
    /// Creates a log with `capacity` bytes of buffer space.
    ///
    /// # Panics
    ///
    /// Panics if the capacity cannot hold even one cache-line entry.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity >= ENTRY_HEADER_BYTES + 64,
            "log capacity too small"
        );
        CacheLineLog {
            buffer: Vec::with_capacity(capacity),
            capacity,
            entries: 0,
        }
    }

    /// Buffer capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently buffered.
    pub fn used_bytes(&self) -> usize {
        self.buffer.len()
    }

    /// Entries currently buffered.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Returns `true` if `entry` would not fit without a flush.
    pub fn is_full_for(&self, entry: &LogEntry) -> bool {
        self.buffer.len() + entry.encoded_len() > self.capacity
    }

    /// Returns `true` if a segment of `payload_len` bytes fits without a
    /// flush.
    pub fn has_room_for(&self, payload_len: usize) -> bool {
        self.buffer.len() + ENTRY_HEADER_BYTES + payload_len <= self.capacity
    }

    /// Appends an entry; returns `false` (and buffers nothing) if it does
    /// not fit — flush first.
    pub fn append(&mut self, entry: LogEntry) -> bool {
        self.append_segment(entry.remote, entry.data.len(), Some(&entry.data))
    }

    /// Appends one dirty segment without materializing a [`LogEntry`]:
    /// the header and payload are serialized straight into the log
    /// buffer. `data` is the segment's bytes (`None` packs zeros, the
    /// timing-only mode). Returns `false` (and buffers nothing) if the
    /// segment does not fit — flush first.
    ///
    /// This is the eviction hot path: packing from
    /// [`LineBitmap::segments`](kona_types::LineBitmap::segments) this
    /// way performs exactly one copy per segment per target, with no
    /// intermediate allocations.
    pub fn append_segment(&mut self, remote: RemoteAddr, len: usize, data: Option<&[u8]>) -> bool {
        if !self.has_room_for(len) {
            return false;
        }
        self.buffer.extend_from_slice(&remote.node().to_le_bytes());
        self.buffer.extend_from_slice(&remote.offset().to_le_bytes());
        self.buffer.extend_from_slice(&(len as u32).to_le_bytes());
        match data {
            Some(d) => {
                debug_assert_eq!(d.len(), len, "segment length mismatch");
                self.buffer.extend_from_slice(d);
            }
            None => self.buffer.resize(self.buffer.len() + len, 0),
        }
        self.entries += 1;
        true
    }

    /// Takes the encoded buffer, leaving the log empty.
    pub fn drain_encoded(&mut self) -> Vec<u8> {
        self.entries = 0;
        std::mem::take(&mut self.buffer)
    }

    /// Hands a drained buffer's allocation back to the log so the next
    /// fill cycle reuses it instead of growing a fresh one. No-op if the
    /// log already holds entries or a larger allocation.
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.buffer.is_empty() && self.buffer.capacity() < buf.capacity() {
            buf.clear();
            self.buffer = buf;
        }
    }

    /// Counts the entries in an encoded log by walking headers — no
    /// payload is materialized.
    ///
    /// # Panics
    ///
    /// Panics on a malformed buffer, as [`CacheLineLog::decode`] does.
    pub fn entry_count(encoded: &[u8]) -> usize {
        let mut count = 0;
        let mut pos = 0;
        while pos < encoded.len() {
            assert!(pos + ENTRY_HEADER_BYTES <= encoded.len(), "truncated header");
            let len =
                u32::from_le_bytes(encoded[pos + 12..pos + 16].try_into().expect("4 bytes"))
                    as usize;
            pos += ENTRY_HEADER_BYTES + len;
            assert!(pos <= encoded.len(), "truncated payload");
            count += 1;
        }
        count
    }

    /// Decodes an encoded log back into entries.
    ///
    /// # Panics
    ///
    /// Panics on a malformed buffer (truncated header or payload) — logs
    /// are produced by [`CacheLineLog::append`], so corruption indicates a
    /// simulator bug.
    pub fn decode(encoded: &[u8]) -> Vec<LogEntry> {
        let mut entries = Vec::new();
        let mut pos = 0;
        while pos < encoded.len() {
            assert!(pos + ENTRY_HEADER_BYTES <= encoded.len(), "truncated header");
            let node = u32::from_le_bytes(encoded[pos..pos + 4].try_into().expect("4 bytes"));
            let offset =
                u64::from_le_bytes(encoded[pos + 4..pos + 12].try_into().expect("8 bytes"));
            let len =
                u32::from_le_bytes(encoded[pos + 12..pos + 16].try_into().expect("4 bytes"))
                    as usize;
            pos += ENTRY_HEADER_BYTES;
            assert!(pos + len <= encoded.len(), "truncated payload");
            entries.push(LogEntry {
                remote: RemoteAddr::new(node, offset),
                data: encoded[pos..pos + len].to_vec(),
            });
            pos += len;
        }
        entries
    }
}

/// An arena-backed batch of shipped logs: the journal the eviction
/// handler keeps for the cluster layer's memory-node runtimes.
///
/// Earlier versions journaled `Vec<(node, time, Vec<u8>)>`, cloning every
/// encoded log into its own allocation and reallocating the outer vector
/// each batch. The batch instead packs all encoded bytes into one arena
/// with a small index, and the whole structure is reusable: draining
/// swaps buffers rather than freeing them, so a steady-state
/// ship-and-ingest loop performs no allocation at all.
///
/// # Examples
///
/// ```
/// # use kona::ShipmentBatch;
/// # use kona_types::Nanos;
/// let mut batch = ShipmentBatch::default();
/// batch.record(3, Nanos::from_ns(100), &[1, 2, 3]);
/// let shipped: Vec<_> = batch.iter().collect();
/// assert_eq!(shipped, vec![(3, Nanos::from_ns(100), &[1u8, 2, 3][..])]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShipmentBatch {
    /// `(node, flush time, arena offset, length)` per shipped log.
    index: Vec<(u32, Nanos, u32, u32)>,
    arena: Vec<u8>,
}

impl ShipmentBatch {
    /// Appends one shipped log, copying `encoded` into the arena.
    pub fn record(&mut self, node: u32, at: Nanos, encoded: &[u8]) {
        let offset = u32::try_from(self.arena.len()).expect("shipment arena exceeds 4 GiB");
        let len = u32::try_from(encoded.len()).expect("encoded log exceeds 4 GiB");
        self.arena.extend_from_slice(encoded);
        self.index.push((node, at, offset, len));
    }

    /// Number of shipped logs in the batch.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the batch holds no shipments.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Empties the batch, keeping both allocations for reuse.
    pub fn clear(&mut self) {
        self.index.clear();
        self.arena.clear();
    }

    /// Iterates the batch as `(node, flush time, encoded log)` views into
    /// the arena, in shipment order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Nanos, &[u8])> + '_ {
        self.index.iter().map(move |&(node, at, offset, len)| {
            (node, at, &self.arena[offset as usize..(offset + len) as usize])
        })
    }
}

/// What the receiver did with one log buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiverReport {
    /// Entries unpacked.
    pub entries: usize,
    /// Payload bytes written to their home locations.
    pub bytes_applied: u64,
    /// Simulated time the remote thread spent ("the overhead of the remote
    /// thread is small, consisting of a few memory reads and writes").
    pub unpack_time: Nanos,
}

/// The remote thread that unpacks a received log into the node's memory.
#[derive(Debug, Clone, Default)]
pub struct LogReceiver {
    copy: CopyModel,
    /// Lifetime totals.
    total_entries: u64,
    total_bytes: u64,
}

impl LogReceiver {
    /// Creates a receiver with the default copy model.
    pub fn new() -> Self {
        LogReceiver::default()
    }

    /// Lifetime `(entries, bytes)` processed.
    pub fn totals(&self) -> (u64, u64) {
        (self.total_entries, self.total_bytes)
    }

    /// Unpacks `encoded` into `node`, writing each entry's payload at its
    /// home offset. Entries targeting other nodes are skipped (a log is
    /// shipped per node).
    pub fn apply(&mut self, node: &mut NodeMemory, encoded: &[u8]) -> ReceiverReport {
        let mut report = ReceiverReport {
            entries: 0,
            bytes_applied: 0,
            unpack_time: Nanos::ZERO,
        };
        for entry in CacheLineLog::decode(encoded) {
            if entry.remote.node() != node.id() {
                continue;
            }
            node.local_write(entry.remote.offset(), &entry.data);
            report.entries += 1;
            report.bytes_applied += entry.data.len() as u64;
            // "A few memory reads and writes" per entry: pointer chasing
            // through the log plus a streaming copy to the home address.
            report.unpack_time +=
                PER_ENTRY_UNPACK + self.copy.streaming_copy(entry.data.len() as u64);
        }
        self.total_entries += report.entries as u64;
        self.total_bytes += report.bytes_applied;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::rng::{Rng, StdRng};

    fn entry(node: u32, offset: u64, byte: u8, len: usize) -> LogEntry {
        LogEntry {
            remote: RemoteAddr::new(node, offset),
            data: vec![byte; len],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut log = CacheLineLog::new(4096);
        let e1 = entry(0, 64, 0xAA, 64);
        let e2 = entry(1, 4096, 0xBB, 128);
        assert!(log.append(e1.clone()));
        assert!(log.append(e2.clone()));
        assert_eq!(log.entries(), 2);
        let encoded = log.drain_encoded();
        assert_eq!(CacheLineLog::decode(&encoded), vec![e1, e2]);
        assert_eq!(log.entries(), 0);
    }

    #[test]
    fn append_respects_capacity() {
        let mut log = CacheLineLog::new(100);
        assert!(log.append(entry(0, 0, 1, 64)));
        let big = entry(0, 64, 2, 64);
        assert!(log.is_full_for(&big));
        assert!(!log.append(big));
        assert_eq!(log.entries(), 1);
    }

    #[test]
    fn receiver_applies_to_home_addresses() {
        let mut node = NodeMemory::new(0, 8192);
        let mut log = CacheLineLog::new(4096);
        log.append(entry(0, 128, 0xCD, 64));
        log.append(entry(1, 0, 0xEE, 64)); // other node: skipped
        let encoded = log.drain_encoded();
        let mut rx = LogReceiver::new();
        let report = rx.apply(&mut node, &encoded);
        assert_eq!(report.entries, 1);
        assert_eq!(report.bytes_applied, 64);
        assert!(report.unpack_time > Nanos::ZERO);
        assert_eq!(node.read_bytes(128, 64), &[0xCD; 64][..]);
        assert_eq!(rx.totals(), (1, 64));
    }

    #[test]
    #[should_panic]
    fn truncated_buffer_panics() {
        CacheLineLog::decode(&[0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn tiny_capacity_panics() {
        CacheLineLog::new(32);
    }

    /// Any sequence of entries round-trips through encode/decode.
    #[test]
    fn prop_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x106);
        for _ in 0..64 {
            let mut log = CacheLineLog::new(1 << 20);
            let entries: Vec<LogEntry> = (0..rng.gen_range(1usize..20))
                .map(|i| LogEntry {
                    remote: RemoteAddr::new(rng.gen_range(0u32..4), rng.gen_range(0u64..1 << 20)),
                    data: vec![i as u8; rng.gen_range(1usize..256)],
                })
                .collect();
            for e in &entries {
                assert!(log.append(e.clone()));
            }
            let decoded = CacheLineLog::decode(&log.drain_encoded());
            assert_eq!(decoded, entries);
        }
    }
}
