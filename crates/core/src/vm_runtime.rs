//! Kona-VM: the virtual-memory baseline runtime.
//!
//! A faithful model of the page-based remote-memory design every
//! state-of-the-art system shares (§2): page faults detect remote
//! accesses, write-protection faults track dirty data at 4 KiB
//! granularity, and eviction unmaps pages (TLB invalidations) and ships
//! *entire* pages over RDMA.
//!
//! Kona-VM uses the same LRU eviction policy and the same cache capacity
//! as [`crate::KonaRuntime`], so "the results reflect the difference
//! between page and cache-line granularities and not a difference in
//! eviction algorithms" (§6.1). [`VmProfile`]s reproduce the measured
//! remote-access latencies of the paper's systems: Kona-VM / LegoOS at
//! 10 µs and Infiniswap at 40 µs (§6.2).

use crate::alloc::SlabAllocator;
use crate::config::{ClusterConfig, DataMode};
use crate::controller::Controller;
use crate::metrics::RuntimeCounters;
use crate::runtime::RemoteMemoryRuntime;
use crate::stats::RuntimeStats;
use kona_cache_sim::{CacheConfig, SetAssocCache};
use kona_fpga::RemoteTranslation;
use kona_net::{CopyModel, Fabric, NetworkModel, WorkRequest};
use kona_telemetry::{EventKind, SpanEvent, Telemetry, Track, VerbOpcode};
use kona_types::{
    AccessKind, FxHashMap, MemAccess, Nanos, PageNumber, RemoteAddr, Result, VfMemAddr, VirtAddr,
    CACHE_LINE_SIZE, PAGE_SIZE_4K,
};
use kona_vm_sim::{LruPageList, Mmu, PageFaultKind, VmCosts};

/// Pages batched into one RDMA eviction chain.
const EVICT_BATCH_PAGES: usize = 16;

/// A named latency/behaviour profile for the VM baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmProfile {
    name: &'static str,
    /// End-to-end remote fetch latency, including the page fault and the
    /// software stack (the paper's measured constants).
    remote_fetch: Nanos,
    /// Whether dirty data is tracked with write-protection faults.
    write_protect: bool,
}

impl VmProfile {
    /// The paper's own VM baseline (userfaultfd-based): ~10 µs remote
    /// fetch, "similar remote access latency with LegoOS" (§6.2).
    pub fn kona_vm() -> Self {
        VmProfile {
            name: "Kona-VM",
            remote_fetch: Nanos::micros(10),
            write_protect: true,
        }
    }

    /// LegoOS: 10 µs remote fetch (§2.1).
    pub fn legoos() -> Self {
        VmProfile {
            name: "LegoOS",
            remote_fetch: Nanos::micros(10),
            write_protect: true,
        }
    }

    /// Infiniswap: 40 µs remote fetch (§2.1).
    pub fn infiniswap() -> Self {
        VmProfile {
            name: "Infiniswap",
            remote_fetch: Nanos::micros(40),
            write_protect: true,
        }
    }

    /// Kona-VM without write protection: only one fault per page, but
    /// dirty tracking is impossible — "this version cannot track dirty
    /// pages so it is incomplete" (§6.1). Evictions are silent.
    pub fn kona_vm_nowp() -> Self {
        VmProfile {
            name: "Kona-VM-NoWP",
            remote_fetch: Nanos::micros(10),
            write_protect: false,
        }
    }

    /// The profile's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The remote-fetch latency constant.
    pub fn remote_fetch_latency(&self) -> Nanos {
        self.remote_fetch
    }
}

/// The page-fault-based baseline runtime.
///
/// # Examples
///
/// ```
/// use kona::{ClusterConfig, RemoteMemoryRuntime, VmProfile, VmRuntime};
///
/// let mut rt = VmRuntime::new(ClusterConfig::small(), VmProfile::kona_vm()).unwrap();
/// let addr = rt.allocate(4096).unwrap();
/// rt.write_bytes(addr, &[7; 64]).unwrap();
/// let mut buf = [0u8; 64];
/// rt.read_bytes(addr, &mut buf).unwrap();
/// assert_eq!(buf, [7; 64]);
/// assert!(rt.stats().major_faults >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct VmRuntime {
    profile: VmProfile,
    config: ClusterConfig,
    mmu: Mmu,
    lru: LruPageList,
    cpu_cache: SetAssocCache,
    fabric: Fabric,
    controller: Controller,
    allocator: SlabAllocator,
    translation: RemoteTranslation,
    copy: CopyModel,
    /// Resident page data (virtual page number → bytes).
    resident: FxHashMap<u64, Vec<u8>>,
    /// Dirty pages staged for a batched RDMA eviction write.
    evict_batch: Vec<(RemoteAddr, Vec<u8>)>,
    telemetry: Telemetry,
    counters: RuntimeCounters,
    next_wr_id: u64,
    vfmem_cursor: u64,
}

impl VmRuntime {
    /// Builds the baseline over a fresh simulated rack.
    ///
    /// # Errors
    ///
    /// Returns [`kona_types::KonaError::InvalidConfig`] on an inconsistent
    /// configuration.
    pub fn new(config: ClusterConfig, profile: VmProfile) -> Result<Self> {
        Self::with_telemetry(config, profile, Telemetry::disabled())
    }

    /// Builds the baseline with an explicit telemetry handle; metrics and
    /// (when tracing is enabled) span events are published through it.
    ///
    /// # Errors
    ///
    /// Returns [`kona_types::KonaError::InvalidConfig`] on an inconsistent
    /// configuration.
    pub fn with_telemetry(
        config: ClusterConfig,
        profile: VmProfile,
        telemetry: Telemetry,
    ) -> Result<Self> {
        config.validate()?;
        let mut fabric = Fabric::new(NetworkModel::connectx5());
        let mut controller = Controller::new(config.slab_size.bytes());
        for id in 0..config.memory_nodes {
            fabric.add_node(id, config.node_capacity.bytes());
            fabric.register(id, 0, config.node_capacity.bytes())?;
            controller.register_node(id, config.node_capacity.bytes());
        }
        fabric.set_telemetry(&telemetry);
        let mut mmu = Mmu::new(VmCosts::default());
        mmu.set_telemetry(&telemetry);
        let cpu_cache = SetAssocCache::new(CacheConfig::new(
            "cpu",
            config.cpu_cache_lines as u64 * CACHE_LINE_SIZE,
            8,
            CACHE_LINE_SIZE,
        )?);
        let counters = RuntimeCounters::new(&telemetry);
        Ok(VmRuntime {
            profile,
            mmu,
            lru: LruPageList::new(),
            cpu_cache,
            fabric,
            controller,
            allocator: SlabAllocator::new(),
            translation: RemoteTranslation::new(),
            copy: CopyModel::skylake(),
            resident: FxHashMap::default(),
            evict_batch: Vec::new(),
            telemetry,
            counters,
            config,
            next_wr_id: 0,
            vfmem_cursor: 0,
        })
    }

    /// The configured profile.
    pub fn profile(&self) -> VmProfile {
        self.profile
    }

    /// The telemetry handle metrics and traces are published through.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The fabric, for failure injection.
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    fn wr_id(&mut self) -> u64 {
        self.next_wr_id += 1;
        self.next_wr_id
    }

    fn remote_of(&self, page: PageNumber) -> Result<RemoteAddr> {
        self.translation.translate(page.base_vfmem())
    }

    /// Fetches a page: the single constant the paper measures, covering
    /// fault entry, software stack and the RDMA transfer.
    fn fetch_page(&mut self, page: PageNumber) -> Result<Nanos> {
        let fault_start = self.counters.app_time();
        let remote = self.remote_of(page)?;
        // Read-your-writes: if this page's writeback is still staged in the
        // eviction batch, push the batch out before fetching.
        if self
            .evict_batch
            .iter()
            .any(|(r, _)| r.node() == remote.node() && r.offset() == remote.offset())
        {
            self.flush_evict_batch()?;
        }
        let wr_id = self.wr_id();
        let wr = WorkRequest::read(wr_id, remote, PAGE_SIZE_4K).signaled();
        // The RDMA time is already included in the profile's measured
        // remote-fetch latency; the fabric call moves data and counts stats.
        let (_, completions) = self.fabric.post(vec![wr])?;
        if self.config.data_mode == DataMode::Tracked {
            let data = completions
                .first()
                .map(|c| c.data.to_vec())
                .unwrap_or_else(|| vec![0; PAGE_SIZE_4K as usize]);
            self.resident.insert(page.raw(), data);
        }
        // Map present; write-protected when dirty tracking is on.
        self.mmu.map(page, !self.profile.write_protect);
        self.lru.touch(page);
        self.counters.remote_fetches.inc();
        self.counters.major_faults.inc();
        if self.telemetry.tracing_enabled() {
            self.telemetry.record(SpanEvent::new(
                Track::App,
                fault_start,
                self.profile.remote_fetch,
                EventKind::PageFault,
            ));
        }

        let mut elapsed = self.profile.remote_fetch;
        // Make room if over capacity.
        while self.lru.len() > self.config.local_cache_pages.max(1) {
            elapsed += self.evict_lru()?;
        }
        Ok(elapsed)
    }

    /// Evicts the LRU page: unmap (TLB invalidation on the app's time),
    /// and for dirty pages a full-page copy + batched RDMA write on the
    /// eviction thread's time.
    fn evict_lru(&mut self) -> Result<Nanos> {
        let Some(victim) = self.lru.pop_lru() else {
            return Ok(Nanos::ZERO);
        };
        let pte = self.mmu.unmap(victim);
        self.cpu_cache_invalidate_page(victim);
        self.counters.tlb_invalidations.inc();
        self.counters.pages_evicted.inc();
        // Unmapping requires a local invalidation plus a shootdown IPI
        // round: the eviction thread always runs beside the app thread, so
        // other cores may cache the translation (§2.1: "evicting pages ...
        // incurs additional TLB invalidations").
        let mut app_cost = self.mmu.costs().tlb_invalidate + self.mmu.costs().tlb_shootdown;
        if self.telemetry.tracing_enabled() {
            self.telemetry.record(SpanEvent::new(
                Track::App,
                self.counters.app_time(),
                app_cost,
                EventKind::TlbShootdown,
            ));
        }

        let dirty = pte.is_some_and(|p| p.dirty);
        let data = self.resident.remove(&victim.raw());
        if dirty && self.profile.write_protect {
            let bytes = data.unwrap_or_else(|| vec![0; PAGE_SIZE_4K as usize]);
            // Local copy into the RDMA-registered buffer.
            self.counters.charge_background(self.copy.avx_copy(PAGE_SIZE_4K));
            let remote = self.remote_of(victim)?;
            self.evict_batch.push((remote, bytes));
            self.counters.writeback_bytes.add(PAGE_SIZE_4K);
            if self.evict_batch.len() >= EVICT_BATCH_PAGES {
                self.flush_evict_batch()?;
            }
        }
        // NoWP cannot know what is dirty; it evicts silently (incomplete).
        self.counters.charge_app(app_cost);
        app_cost += Nanos::ZERO;
        Ok(app_cost)
    }

    fn flush_evict_batch(&mut self) -> Result<()> {
        if self.evict_batch.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.evict_batch);
        let n = batch.len();
        let mut chain: Vec<WorkRequest> = batch
            .into_iter()
            .map(|(remote, data)| {
                let wr_id = self.wr_id();
                WorkRequest::write(wr_id, remote, data)
            })
            .collect();
        if let Some(last) = chain.last_mut() {
            *last = last.clone().signaled();
        }
        let flush_start = self.counters.background_time();
        let (time, _) = self.fabric.post(chain)?;
        self.counters.charge_background(time);
        if self.telemetry.tracing_enabled() {
            self.telemetry.record(SpanEvent::new(
                Track::Background,
                flush_start,
                time,
                EventKind::Verb {
                    opcode: VerbOpcode::Write,
                    bytes: n as u64 * PAGE_SIZE_4K,
                },
            ));
            self.telemetry.record(SpanEvent::new(
                Track::Background,
                flush_start,
                time,
                EventKind::Writeback,
            ));
        }
        Ok(())
    }

    fn cpu_cache_invalidate_page(&mut self, page: PageNumber) {
        let base = page.base_virt().raw();
        for i in 0..(PAGE_SIZE_4K / CACHE_LINE_SIZE) {
            self.cpu_cache
                .invalidate(VirtAddr::new(base + i * CACHE_LINE_SIZE));
        }
    }

    /// Registers the next slab at the linear VFMem cursor.
    fn grow_slab(&mut self) -> Result<(u64, u64)> {
        let grant = self.controller.allocate_slab()?;
        let base = self.vfmem_cursor;
        self.vfmem_cursor += grant.len;
        self.translation
            .register(VfMemAddr::new(base), grant.len, grant.remote)?;
        Ok((base, grant.len))
    }

    fn access_line(&mut self, addr: VirtAddr, kind: AccessKind) -> Result<Nanos> {
        let mut elapsed = Nanos::ZERO;
        // Resolve faults (at most: major, then write-protect).
        for _ in 0..3 {
            match self.mmu.translate(addr, kind) {
                Ok(tr) => {
                    elapsed += tr.cost;
                    self.lru.touch(tr.page);
                    // CPU cache hit vs DRAM (CMem) access.
                    elapsed += if self.cpu_cache.access(addr).is_hit() {
                        self.counters.local_hits.inc();
                        self.config.latency.cpu_cache_hit
                    } else {
                        self.config.latency.cmem
                    };
                    return Ok(elapsed);
                }
                Err(fault) => match fault.kind {
                    PageFaultKind::MajorFetch => {
                        // The profile latency subsumes the raise cost.
                        elapsed += self.fetch_page(fault.page)?;
                    }
                    PageFaultKind::WriteProtect => {
                        elapsed += fault.raise_cost;
                        self.counters.minor_faults.inc();
                        self.mmu.make_writable(fault.page);
                    }
                },
            }
        }
        unreachable!("faults must resolve within two rounds");
    }
}

impl RemoteMemoryRuntime for VmRuntime {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn allocate(&mut self, bytes: u64) -> Result<VirtAddr> {
        // Whole-slab path for large requests, size-class path for small
        // ones — mirroring KonaRuntime so both runtimes lay data out
        // identically.
        if bytes > self.config.slab_size.bytes() / 2 {
            let base = self.vfmem_cursor;
            let slabs = bytes.div_ceil(self.config.slab_size.bytes());
            for _ in 0..slabs {
                self.grow_slab()?;
            }
            return Ok(VirtAddr::new(base));
        }
        while self.allocator.needs_slab(bytes) {
            let (base, len) = self.grow_slab()?;
            self.allocator.add_slab(VfMemAddr::new(base), len);
        }
        let addr = self.allocator.allocate(bytes)?;
        Ok(VirtAddr::new(addr.raw()))
    }

    fn free(&mut self, addr: VirtAddr, bytes: u64) {
        self.allocator.free(VfMemAddr::new(addr.raw()), bytes);
    }

    fn access(&mut self, access: MemAccess) -> Result<Nanos> {
        let mut elapsed = Nanos::ZERO;
        let start = access.addr.line_start().raw();
        let end = access.end().raw();
        let mut line = start;
        loop {
            elapsed += self.access_line(VirtAddr::new(line), access.kind)?;
            line += CACHE_LINE_SIZE;
            if line >= end {
                break;
            }
        }
        if access.kind.is_write() {
            self.counters.app_dirty_bytes.add(u64::from(access.len));
        }
        self.counters.charge_app(elapsed);
        Ok(elapsed)
    }

    fn write_bytes(&mut self, addr: VirtAddr, data: &[u8]) -> Result<Nanos> {
        // Per-page interleaving: the page's bytes are updated while it is
        // guaranteed resident, before a later page's fault can evict it.
        let mut elapsed = Nanos::ZERO;
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            let in_page = (PAGE_SIZE_4K - a.page_offset()) as usize;
            let chunk = in_page.min(data.len() - off);
            elapsed += self.access(MemAccess::write(a, chunk as u32))?;
            if self.config.data_mode == DataMode::Tracked {
                let page = a.page_number();
                let pd = self
                    .resident
                    .get_mut(&page.raw())
                    .expect("page resident after access");
                let s = a.page_offset() as usize;
                pd[s..s + chunk].copy_from_slice(&data[off..off + chunk]);
            }
            off += chunk;
        }
        Ok(elapsed)
    }

    fn read_bytes(&mut self, addr: VirtAddr, buf: &mut [u8]) -> Result<Nanos> {
        let mut elapsed = Nanos::ZERO;
        let len = buf.len();
        let mut off = 0usize;
        while off < len {
            let a = addr + off as u64;
            let in_page = (PAGE_SIZE_4K - a.page_offset()) as usize;
            let chunk = in_page.min(len - off);
            elapsed += self.access(MemAccess::read(a, chunk as u32))?;
            if self.config.data_mode == DataMode::Tracked {
                let page = a.page_number();
                let pd = self
                    .resident
                    .get(&page.raw())
                    .expect("page resident after access");
                let s = a.page_offset() as usize;
                buf[off..off + chunk].copy_from_slice(&pd[s..s + chunk]);
            }
            off += chunk;
        }
        Ok(elapsed)
    }

    fn sync(&mut self) -> Result<Nanos> {
        let sync_start = self.counters.app_time();
        let mut elapsed = Nanos::ZERO;
        // Write back all dirty resident pages (full pages) and re-protect.
        let dirty_pages = self.mmu.dirty_pages();
        for page in dirty_pages {
            let data = match self.resident.get(&page.raw()) {
                Some(d) => d.clone(),
                None => vec![0; PAGE_SIZE_4K as usize],
            };
            elapsed += self.copy.avx_copy(PAGE_SIZE_4K);
            let remote = self.remote_of(page)?;
            self.evict_batch.push((remote, data));
            self.counters.writeback_bytes.add(PAGE_SIZE_4K);
            // Re-protect to resume dirty tracking: TLB invalidation.
            if self.profile.write_protect {
                self.mmu.protect(page, false);
                self.counters.tlb_invalidations.inc();
                elapsed += self.mmu.costs().tlb_invalidate;
            }
            if self.evict_batch.len() >= EVICT_BATCH_PAGES {
                self.flush_evict_batch_foreground(&mut elapsed)?;
            }
        }
        self.flush_evict_batch_foreground(&mut elapsed)?;
        self.counters.charge_app(elapsed);
        if self.telemetry.tracing_enabled() {
            self.telemetry
                .record(SpanEvent::new(Track::App, sync_start, elapsed, EventKind::Sync));
        }
        Ok(elapsed)
    }

    fn stats(&self) -> RuntimeStats {
        let mut s = self.counters.to_stats();
        s.tlb_invalidations = s
            .tlb_invalidations
            .max(self.mmu.tlb_stats().invalidations);
        s
    }
}

impl VmRuntime {
    fn flush_evict_batch_foreground(&mut self, elapsed: &mut Nanos) -> Result<()> {
        if self.evict_batch.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.evict_batch);
        let mut chain: Vec<WorkRequest> = batch
            .into_iter()
            .map(|(remote, data)| {
                let wr_id = self.wr_id();
                WorkRequest::write(wr_id, remote, data)
            })
            .collect();
        if let Some(last) = chain.last_mut() {
            *last = last.clone().signaled();
        }
        let (time, _) = self.fabric.post(chain)?;
        *elapsed += time;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime(profile: VmProfile) -> VmRuntime {
        VmRuntime::new(ClusterConfig::small(), profile).unwrap()
    }

    #[test]
    fn first_touch_takes_major_fault() {
        let mut rt = runtime(VmProfile::kona_vm());
        let addr = rt.allocate(4096).unwrap();
        let t = rt.access(MemAccess::read(addr, 8)).unwrap();
        assert!(t >= Nanos::micros(10));
        assert_eq!(rt.stats().major_faults, 1);
    }

    #[test]
    fn first_write_takes_write_protect_fault() {
        let mut rt = runtime(VmProfile::kona_vm());
        let addr = rt.allocate(4096).unwrap();
        rt.access(MemAccess::read(addr, 8)).unwrap();
        rt.access(MemAccess::write(addr, 8)).unwrap();
        assert_eq!(rt.stats().minor_faults, 1);
        // Second write: no further fault.
        rt.access(MemAccess::write(addr, 8)).unwrap();
        assert_eq!(rt.stats().minor_faults, 1);
    }

    #[test]
    fn nowp_skips_write_fault() {
        let mut rt = runtime(VmProfile::kona_vm_nowp());
        let addr = rt.allocate(4096).unwrap();
        rt.access(MemAccess::write(addr, 8)).unwrap();
        assert_eq!(rt.stats().minor_faults, 0);
    }

    #[test]
    fn warm_access_is_fast() {
        let mut rt = runtime(VmProfile::kona_vm());
        let addr = rt.allocate(4096).unwrap();
        rt.access(MemAccess::read(addr, 8)).unwrap();
        let warm = rt.access(MemAccess::read(addr, 8)).unwrap();
        assert!(warm <= Nanos::from_ns(100), "warm access {warm}");
    }

    #[test]
    fn infiniswap_slower_than_kona_vm() {
        let mut a = runtime(VmProfile::kona_vm());
        let mut b = runtime(VmProfile::infiniswap());
        let addr_a = a.allocate(1 << 16).unwrap();
        let addr_b = b.allocate(1 << 16).unwrap();
        let mut ta = Nanos::ZERO;
        let mut tb = Nanos::ZERO;
        for p in 0..16u64 {
            ta += a.access(MemAccess::read(addr_a + p * 4096, 8)).unwrap();
            tb += b.access(MemAccess::read(addr_b + p * 4096, 8)).unwrap();
        }
        assert!(tb > ta * 3, "infiniswap {tb} vs kona-vm {ta}");
    }

    #[test]
    fn eviction_writes_full_pages() {
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        let mut rt = VmRuntime::new(cfg, VmProfile::kona_vm()).unwrap();
        let addr = rt.allocate(64 * 4096).unwrap();
        for p in 0..32u64 {
            rt.access(MemAccess::write(addr + p * 4096, 8)).unwrap();
        }
        let s = rt.stats();
        assert!(s.pages_evicted > 0);
        // Full-page writebacks: 4096 bytes per dirty evicted page even
        // though only 8 bytes were written.
        assert!(s.writeback_bytes >= s.pages_evicted * 4096 / 2);
        assert!(s.write_amplification() > 100.0);
    }

    #[test]
    fn data_survives_eviction_roundtrip() {
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        let mut rt = VmRuntime::new(cfg, VmProfile::kona_vm()).unwrap();
        let base = rt.allocate(32 * 4096).unwrap();
        for p in 0..32u64 {
            rt.write_bytes(base + p * 4096, &[p as u8 + 1; 64]).unwrap();
        }
        for p in 0..32u64 {
            let mut buf = [0u8; 64];
            rt.read_bytes(base + p * 4096, &mut buf).unwrap();
            assert_eq!(buf, [p as u8 + 1; 64], "page {p}");
        }
    }

    #[test]
    fn sync_reprotects_pages() {
        let mut rt = runtime(VmProfile::kona_vm());
        let addr = rt.allocate(4096).unwrap();
        rt.access(MemAccess::write(addr, 8)).unwrap();
        rt.sync().unwrap();
        // Next write faults again (tracking was reset).
        let minors_before = rt.stats().minor_faults;
        rt.access(MemAccess::write(addr, 8)).unwrap();
        assert_eq!(rt.stats().minor_faults, minors_before + 1);
    }

    #[test]
    fn tlb_invalidations_accumulate_on_eviction() {
        let mut cfg = ClusterConfig::small().with_local_cache_pages(4);
        cfg.cpu_cache_lines = 64;
        let mut rt = VmRuntime::new(cfg, VmProfile::kona_vm()).unwrap();
        let addr = rt.allocate(64 * 4096).unwrap();
        for p in 0..32u64 {
            rt.access(MemAccess::read(addr + p * 4096, 8)).unwrap();
        }
        assert!(rt.stats().tlb_invalidations > 0);
    }

    #[test]
    fn profiles_expose_constants() {
        assert_eq!(VmProfile::infiniswap().remote_fetch_latency(), Nanos::micros(40));
        assert_eq!(VmProfile::legoos().name(), "LegoOS");
    }
}
