//! # Kona: a coherence-based software runtime for disaggregated memory
//!
//! A from-scratch Rust reproduction of *"Rethinking Software Runtimes for
//! Disaggregated Memory"* (ASPLOS '21). Kona offers remote memory to
//! applications transparently, replacing the three virtual-memory
//! mechanisms page-based systems rely on with cache-coherence-based
//! hardware primitives:
//!
//! | operation | page-based systems | Kona |
//! |---|---|---|
//! | fetch remote data | page fault → 4 KiB fetch | cache miss → FPGA fill (`cache-remote-data`) |
//! | track dirty data | write-protect faults, 4 KiB | observed writebacks, 64 B (`track-local-data`) |
//! | evict cached data | unmap + TLB shootdown + full-page RDMA | cache-line log of dirty lines only |
//!
//! The unavailable hardware (a cache-coherent FPGA and an RDMA testbed) is
//! simulated by the substrate crates (`kona-fpga`, `kona-coherence`,
//! `kona-net`); this crate implements the *software runtime* on top:
//!
//! * [`Controller`] — the rack controller allocating coarse slabs across
//!   memory nodes.
//! * [`SlabAllocator`] — KLib's AllocLib, interposing on allocations and
//!   carving fine-grained objects out of pre-allocated slabs.
//! * [`CacheLineLog`] / [`LogReceiver`] — the FaRM-style ring-buffer log
//!   that ships aggregated dirty cache lines, and the remote thread that
//!   unpacks them.
//! * [`EvictionHandler`] — writes only dirty lines back, with optional
//!   replication (§4.5).
//! * [`KonaRuntime`] — the coherence-based runtime (the paper's
//!   contribution).
//! * [`VmRuntime`] — the page-fault baseline (Kona-VM; with profiles
//!   reproducing Infiniswap's and LegoOS's measured latencies).
//!
//! Both runtimes implement [`RemoteMemoryRuntime`], use the *same* eviction
//! policy, and are driven by the same traces, so measured differences come
//! from the mechanism — exactly the paper's §6.1 methodology.
//!
//! # Examples
//!
//! ```
//! use kona::{ClusterConfig, KonaRuntime, RemoteMemoryRuntime};
//! use kona_types::{AccessKind, MemAccess};
//!
//! let mut rt = KonaRuntime::new(ClusterConfig::small()).unwrap();
//! let base = rt.allocate(1 << 16).unwrap();
//! rt.write_bytes(base, b"hello disaggregated world").unwrap();
//! let mut buf = [0u8; 25];
//! rt.read_bytes(base, &mut buf).unwrap();
//! assert_eq!(&buf, b"hello disaggregated world");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod config;
mod controller;
mod eviction;
mod failure;
mod log;
pub mod metrics;
mod poller;
mod runtime;
pub mod shard;
mod stats;
mod vm_runtime;

pub use alloc::SlabAllocator;
pub use config::{ClusterConfig, DataMode, DegradedConfig, LatencyProfile, PlacementKind, RetryPolicy};
pub use controller::{
    CapacityWeighted, Controller, NodeOccupancy, PlacementPolicy, PowerOfTwoChoices, RoundRobin,
    SlabGrant,
};
pub use eviction::{CopyEngine, EvictionBreakdown, EvictionHandler, EvictionStats};
pub use failure::{FailurePolicy, FailureState, McEvent, PolicyCounts};
pub use log::{CacheLineLog, LogEntry, LogReceiver, ReceiverReport, ShipmentBatch};
pub use poller::Poller;
pub use runtime::{KonaRuntime, RemoteMemoryRuntime};
pub use shard::{seeded_script, ShardOp, ShardReport, ShardedRun, ShipmentDigest};
pub use stats::RuntimeStats;
pub use vm_runtime::{VmProfile, VmRuntime};
