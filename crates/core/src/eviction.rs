//! The Eviction Handler: cache-line granularity writeback.
//!
//! Where a virtual-memory runtime must write entire 4 KiB pages back, Kona
//! "evicts 4KB pages, but writes only the dirty cache-lines to the remote
//! hosts" (§6.4): it scans the page's dirty bitmap, copies each dirty
//! segment into the per-node [`CacheLineLog`], and ships full logs with a
//! single RDMA write. The remote [`LogReceiver`] unpacks entries to their
//! home addresses and acknowledges.
//!
//! The handler accounts its time in the four phases of the paper's Fig 11c
//! breakdown: **Bitmap** scan, **Copy** into the RDMA buffer, **RDMA
//! write**, and **Ack wait**.

use crate::config::RetryPolicy;
use crate::log::{CacheLineLog, LogReceiver, ShipmentBatch};
use crate::metrics::names;
use crate::poller::Poller;
use kona_fpga::VictimPage;
use kona_net::{CopyModel, Fabric, WorkRequest};
use kona_telemetry::{Counter, EventKind, Histogram, Telemetry, Track};
use kona_types::rng::StdRng;
use kona_types::{FxHashMap, FxHashSet, Nanos, RemoteAddr, Result, CACHE_LINE_SIZE, PAGE_SIZE_4K};

/// Cost of scanning one page's 64-bit dirty bitmap.
const BITMAP_SCAN: Nanos = Nanos::from_ns(50);
/// Cache-miss latency charged once per dirty segment gathered (the first
/// touch of the segment in application memory).
const SEGMENT_GATHER: Nanos = Nanos::from_ns(60);

/// How dirty segments are copied into the RDMA log buffer.
///
/// §4.2 proposes `copy-dirty-data` as an *optional* third hardware
/// primitive: "The Eviction Handler copies dirty cache lines or pages to
/// the remote host. While this operation can be realized on current
/// hardware, it could also benefit from hardware acceleration."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CopyEngine {
    /// Software copy with AVX streaming (the paper's implementation).
    #[default]
    SoftwareAvx,
    /// The hypothetical `copy-dirty-data` primitive: the FPGA gathers
    /// dirty lines straight out of FMem into the log with no CPU
    /// involvement — no per-segment cache-miss gather, and DMA-rate
    /// copies.
    HardwareDma,
}

impl CopyEngine {
    /// Time to gather and copy one dirty segment of `bytes` bytes.
    fn segment_copy_time(self, copy: &CopyModel, bytes: u64) -> Nanos {
        match self {
            CopyEngine::SoftwareAvx => SEGMENT_GATHER + copy.avx_copy(bytes),
            // DMA engines pipeline descriptor setup with the transfer:
            // a small fixed descriptor cost plus streaming bandwidth.
            CopyEngine::HardwareDma => Nanos::from_ns(10) + copy.streaming_copy(bytes),
        }
    }
}

/// Time spent in each phase of cache-line eviction (Fig 11c).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionBreakdown {
    /// Scanning dirty bitmaps.
    pub bitmap: Nanos,
    /// Copying dirty lines into the RDMA log buffer.
    pub copy: Nanos,
    /// RDMA writes of the log.
    pub rdma_write: Nanos,
    /// Waiting for the receiver's acknowledgment.
    pub ack_wait: Nanos,
}

impl EvictionBreakdown {
    /// Total time across phases.
    pub fn total(&self) -> Nanos {
        self.bitmap + self.copy + self.rdma_write + self.ack_wait
    }

    /// Phase shares in percent `[bitmap, copy, rdma, ack]` (zeros when no
    /// time has accumulated).
    pub fn shares(&self) -> [f64; 4] {
        let total = self.total().as_ns() as f64;
        if total == 0.0 {
            return [0.0; 4];
        }
        [
            self.bitmap.as_ns() as f64 / total * 100.0,
            self.copy.as_ns() as f64 / total * 100.0,
            self.rdma_write.as_ns() as f64 / total * 100.0,
            self.ack_wait.as_ns() as f64 / total * 100.0,
        ]
    }
}

/// Eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionStats {
    /// Pages processed (dirty or clean).
    pub pages_evicted: u64,
    /// Pages that were clean and evicted silently.
    pub silent_evictions: u64,
    /// Dirty cache lines shipped.
    pub lines_written: u64,
    /// Dirty payload bytes shipped (goodput numerator).
    pub dirty_bytes_written: u64,
    /// Log flushes performed.
    pub flushes: u64,
    /// Flush posts retried after a transient fabric fault.
    pub flush_retries: u64,
    /// Node logs abandoned after retries exhausted (replicas hold the
    /// data; the node is marked lost and never read again).
    pub abandoned_flushes: u64,
    /// Writeback targets skipped because their node is marked lost.
    pub skipped_targets: u64,
    /// Degraded-mode flushes that combined all node logs into one chain.
    pub batched_flushes: u64,
    /// Lost nodes whose data has been re-replicated elsewhere (the loss
    /// budget regenerates by this much).
    pub repaired_nodes: u64,
}

impl EvictionStats {
    /// Accumulates another handler's counters (shard-merge aggregation).
    pub fn merge(&mut self, other: &EvictionStats) {
        self.pages_evicted += other.pages_evicted;
        self.silent_evictions += other.silent_evictions;
        self.lines_written += other.lines_written;
        self.dirty_bytes_written += other.dirty_bytes_written;
        self.flushes += other.flushes;
        self.flush_retries += other.flush_retries;
        self.abandoned_flushes += other.abandoned_flushes;
        self.skipped_targets += other.skipped_targets;
        self.batched_flushes += other.batched_flushes;
        self.repaired_nodes += other.repaired_nodes;
    }
}

/// The eviction handler.
///
/// One [`CacheLineLog`] per memory node aggregates entries; logs flush when
/// full or on [`EvictionHandler::flush_all`]. Pages with entries still
/// buffered are *pending*: the runtime must flush before re-fetching such a
/// page, or it would read stale remote data.
#[derive(Debug, Clone)]
pub struct EvictionHandler {
    logs: FxHashMap<u32, CacheLineLog>,
    receivers: FxHashMap<u32, LogReceiver>,
    /// Offset of each node's log landing region.
    log_region_offset: u64,
    log_capacity: usize,
    copy: CopyModel,
    engine: CopyEngine,
    breakdown: EvictionBreakdown,
    stats: EvictionStats,
    /// VFMem pages with unflushed log entries.
    pending_pages: FxHashSet<u64>,
    /// Retry policy for flush posts that hit transient fabric faults.
    retry: RetryPolicy,
    /// Jitter PRNG for flush-retry backoff (seeded; deterministic runs).
    rng: StdRng,
    /// How many nodes may be abandoned before flush errors become fatal.
    /// The runtime sets this to `replicas` (losing more would leave a
    /// page with no up-to-date copy).
    max_node_losses: usize,
    /// Nodes whose log was abandoned mid-run: their remote copy is stale,
    /// so they take no further writebacks and must not serve reads.
    lost_nodes: FxHashSet<u32>,
    /// Lost nodes whose slabs have since been re-replicated onto healthy
    /// nodes: they still take no writebacks, but they no longer consume
    /// the loss budget (the K-way guarantee has been restored).
    repaired_nodes: FxHashSet<u32>,
    /// When `Some`, every successfully flushed `(node, time, encoded log)`
    /// batch is journaled here for the cluster layer's memory-node
    /// runtimes to ingest (log application is idempotent, so re-applying
    /// the journal is safe). Arena-backed: see [`ShipmentBatch`].
    journal: Option<ShipmentBatch>,
    /// Degraded mode: widen batching by combining every node's log into
    /// one chained post per flush cycle.
    degraded: bool,
    telemetry: Telemetry,
    /// Shares cells with the runtime's counters (same registry names).
    pages_evicted: Counter,
    writeback_bytes: Counter,
    evict_ns: Histogram,
}

impl EvictionHandler {
    /// Creates a handler whose logs land at `log_region_offset` on each
    /// node and hold `log_capacity` bytes.
    pub fn new(log_region_offset: u64, log_capacity: usize) -> Self {
        let telemetry = Telemetry::disabled();
        EvictionHandler {
            logs: FxHashMap::default(),
            receivers: FxHashMap::default(),
            log_region_offset,
            log_capacity,
            copy: CopyModel::skylake(),
            engine: CopyEngine::default(),
            breakdown: EvictionBreakdown::default(),
            stats: EvictionStats::default(),
            pending_pages: FxHashSet::default(),
            retry: RetryPolicy::default(),
            rng: StdRng::seed_from_u64(RetryPolicy::default().seed ^ 0xE71C),
            max_node_losses: 0,
            lost_nodes: FxHashSet::default(),
            repaired_nodes: FxHashSet::default(),
            journal: None,
            degraded: false,
            pages_evicted: telemetry.counter(names::PAGES_EVICTED),
            writeback_bytes: telemetry.counter(names::WRITEBACK_BYTES),
            evict_ns: telemetry.histogram(names::EVICT_NS),
            telemetry,
        }
    }

    /// Routes the handler's metrics and span events into `telemetry`. The
    /// eviction counters resolve to the same registry cells as the
    /// runtime's (see [`crate::metrics::names`]), so stats stay exact.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.pages_evicted = telemetry.counter(names::PAGES_EVICTED);
        self.writeback_bytes = telemetry.counter(names::WRITEBACK_BYTES);
        self.evict_ns = telemetry.histogram(names::EVICT_NS);
        self.telemetry = telemetry.clone();
    }

    /// Selects the copy engine (§4.2's optional `copy-dirty-data`
    /// hardware primitive vs the default software AVX copy).
    pub fn set_copy_engine(&mut self, engine: CopyEngine) {
        self.engine = engine;
    }

    /// The active copy engine.
    pub fn copy_engine(&self) -> CopyEngine {
        self.engine
    }

    /// Sets the retry policy for flush posts (re-seeds the backoff PRNG
    /// from the policy's seed so identical configs replay identically).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.rng = StdRng::seed_from_u64(retry.seed ^ 0xE71C);
        self.retry = retry;
    }

    /// Sets how many nodes may be abandoned (log dropped, node marked
    /// lost) before a failed flush becomes a hard error.
    pub fn set_max_node_losses(&mut self, max: usize) {
        self.max_node_losses = max;
    }

    /// Enables or disables degraded-mode flushing (all node logs combined
    /// into one chained post per flush cycle).
    pub fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    /// Whether degraded-mode flushing is active.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Nodes abandoned after exhausting flush retries. Their remote copy
    /// is stale: the runtime must not fetch from them.
    pub fn lost_nodes(&self) -> &FxHashSet<u32> {
        &self.lost_nodes
    }

    /// Marks a lost node's data as re-replicated onto healthy nodes: the
    /// node stays lost (no writebacks, no reads) but stops consuming the
    /// loss budget, so a *further* node loss can again be absorbed.
    pub fn note_node_repaired(&mut self, node: u32) {
        if self.lost_nodes.contains(&node) && self.repaired_nodes.insert(node) {
            self.stats.repaired_nodes += 1;
        }
    }

    /// Proactively marks `node` lost — the control plane fencing a node
    /// whose lease expired, rather than waiting for a flush to it to
    /// fail. Consumes the same loss budget as a flush abandonment.
    /// Returns `false` (and leaves the node alone) when the budget is
    /// already exhausted: fencing the node would leave some page with no
    /// up-to-date copy, so the caller must keep retrying instead.
    pub fn note_node_lost(&mut self, node: u32) -> bool {
        if self.lost_nodes.contains(&node) {
            return true;
        }
        if self.unrepaired_losses() >= self.max_node_losses {
            return false;
        }
        self.lost_nodes.insert(node);
        self.stats.abandoned_flushes += 1;
        true
    }

    /// Fully reinstates a node the control plane has re-synced: it
    /// leaves the lost set entirely, takes writebacks and serves reads
    /// again, and a *future* loss of it consumes fresh budget. Compare
    /// [`EvictionHandler::note_node_repaired`], which only returns the
    /// budget while keeping the node quarantined.
    pub fn reinstate_node(&mut self, node: u32) {
        self.lost_nodes.remove(&node);
        self.repaired_nodes.remove(&node);
    }

    /// Whether a lost node's data has been re-replicated elsewhere
    /// (see [`EvictionHandler::note_node_repaired`]).
    pub fn node_repaired(&self, node: u32) -> bool {
        self.repaired_nodes.contains(&node)
    }

    /// Lost nodes still counting against the loss budget (lost minus
    /// repaired).
    pub fn unrepaired_losses(&self) -> usize {
        self.lost_nodes
            .iter()
            .filter(|n| !self.repaired_nodes.contains(n))
            .count()
    }

    /// Starts journaling flushed log batches (see
    /// [`EvictionHandler::drain_shipments`]).
    pub fn enable_shipment_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(ShipmentBatch::default());
        }
    }

    /// Drains the journal of successfully shipped `(node, flush time,
    /// encoded log)` batches accumulated since the last drain. Empty when
    /// journaling was never enabled.
    pub fn drain_shipments(&mut self) -> ShipmentBatch {
        self.journal.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Like [`EvictionHandler::drain_shipments`], but swaps the journal
    /// into the caller's batch so both sides keep their allocations: a
    /// steady ship-and-ingest loop reuses the same two arenas forever.
    pub fn drain_shipments_into(&mut self, out: &mut ShipmentBatch) {
        out.clear();
        if let Some(journal) = self.journal.as_mut() {
            std::mem::swap(journal, out);
        }
    }

    /// Accumulated phase breakdown.
    pub fn breakdown(&self) -> EvictionBreakdown {
        self.breakdown
    }

    /// Counters.
    pub fn stats(&self) -> EvictionStats {
        self.stats
    }

    /// Whether `page` has unflushed log entries.
    pub fn is_pending(&self, page_number: u64) -> bool {
        self.pending_pages.contains(&page_number)
    }

    /// Evicts one victim page: gathers its dirty segments into the logs of
    /// the primary (and any replica) homes. Returns the time spent; full
    /// logs are flushed inline.
    ///
    /// `page_data` supplies the page's bytes (`None` in timing-only mode,
    /// shipping zeros).
    ///
    /// # Errors
    ///
    /// Propagates fabric errors from inline flushes.
    pub fn evict_page(
        &mut self,
        victim: &VictimPage,
        page_data: Option<&[u8]>,
        primary: RemoteAddr,
        replicas: &[RemoteAddr],
        fabric: &mut Fabric,
        poller: &mut Poller,
    ) -> Result<Nanos> {
        let _wall = kona_telemetry::host_scope("eviction_pack");
        let span = self.telemetry.span_open(Track::Background, EventKind::Evict);
        let res = self.evict_page_inner(victim, page_data, primary, replicas, fabric, poller);
        self.telemetry
            .span_close(span, *res.as_ref().unwrap_or(&Nanos::ZERO));
        self.telemetry.observe_time(fabric.now());
        res
    }

    fn evict_page_inner(
        &mut self,
        victim: &VictimPage,
        page_data: Option<&[u8]>,
        primary: RemoteAddr,
        replicas: &[RemoteAddr],
        fabric: &mut Fabric,
        poller: &mut Poller,
    ) -> Result<Nanos> {
        let mut elapsed = BITMAP_SCAN;
        self.breakdown.bitmap += BITMAP_SCAN;
        self.telemetry
            .span_leaf(Track::Background, EventKind::BitmapScan, BITMAP_SCAN);
        self.stats.pages_evicted += 1;
        self.pages_evicted.inc();

        if !victim.is_dirty() {
            self.stats.silent_evictions += 1;
            self.note_eviction(elapsed);
            return Ok(elapsed);
        }

        // Pack straight off the bitmap's segment iterator: no staging of
        // segment ranges, no per-segment payload buffer — each dirty run
        // is serialized directly into the per-node log exactly once per
        // target.
        for (start, len) in victim.dirty_lines.segments() {
            let byte_off = start as u64 * CACHE_LINE_SIZE;
            let byte_len = len as u64 * CACHE_LINE_SIZE;
            let src = page_data.map(|page| &page[byte_off as usize..(byte_off + byte_len) as usize]);
            // Gather + copy into the log buffer (charged once per target).
            // Lost nodes take no writebacks; goodput is counted on the
            // first surviving target (normally the primary).
            let mut counted = false;
            for target in std::iter::once(&primary).chain(replicas) {
                let node = target.node();
                if self.lost_nodes.contains(&node) {
                    self.stats.skipped_targets += 1;
                    continue;
                }
                let copy_time = self.engine.segment_copy_time(&self.copy, byte_len);
                self.breakdown.copy += copy_time;
                self.telemetry
                    .span_leaf(Track::Background, EventKind::SegmentCopy, copy_time);
                elapsed += copy_time;
                // Try-append first: one map lookup on the fast path, the
                // flush-then-retry re-lookup only when the log is full
                // (`append_segment` buffers nothing when it declines).
                let capacity = self.log_capacity;
                let appended = self
                    .logs
                    .entry(node)
                    .or_insert_with(|| CacheLineLog::new(capacity))
                    .append_segment(target.add(byte_off), byte_len as usize, src);
                if !appended {
                    elapsed += self.flush_node(node, fabric, poller)?;
                    let retried = self
                        .logs
                        .get_mut(&node)
                        .expect("log just ensured")
                        .append_segment(target.add(byte_off), byte_len as usize, src);
                    assert!(retried, "segment must fit after flush");
                }
                if !counted {
                    counted = true;
                    self.stats.lines_written += len as u64;
                    self.stats.dirty_bytes_written += byte_len;
                    self.writeback_bytes.add(byte_len);
                }
            }
        }
        self.pending_pages.insert(victim.page.raw());
        self.note_eviction(elapsed);
        Ok(elapsed)
    }

    /// Records one page eviction in the latency histogram.
    fn note_eviction(&mut self, elapsed: Nanos) {
        self.evict_ns.record(elapsed.as_ns());
    }

    /// Flushes one node's log: RDMA-writes the encoded buffer to the log
    /// region, lets the receiver unpack it, and waits for the ack.
    ///
    /// Transient fabric faults (dropped/corrupted/timed-out verbs, a node
    /// mid-flap) are retried under the handler's [`RetryPolicy`]; the log
    /// write is idempotent, so re-posting after a mid-chain fault is safe.
    /// When retries exhaust and the node-loss budget allows, the node is
    /// *abandoned*: its log is dropped (replicas hold the data) and it is
    /// recorded in [`EvictionHandler::lost_nodes`] so it never serves a
    /// stale read.
    ///
    /// # Errors
    ///
    /// Propagates non-transient fabric errors (unregistered log region,
    /// manually failed node) and transient ones past the loss budget.
    pub fn flush_node(
        &mut self,
        node: u32,
        fabric: &mut Fabric,
        poller: &mut Poller,
    ) -> Result<Nanos> {
        let Some(log) = self.logs.get_mut(&node) else {
            return Ok(Nanos::ZERO);
        };
        if log.used_bytes() == 0 {
            return Ok(Nanos::ZERO);
        }
        if self.lost_nodes.contains(&node) {
            // Entries queued before the node was abandoned: drop them,
            // the replicas carry the data.
            log.drain_encoded();
            if self.logs.values().all(|l| l.used_bytes() == 0) {
                self.pending_pages.clear();
            }
            return Ok(Nanos::ZERO);
        }
        let encoded = log.drain_encoded();
        self.stats.flushes += 1;

        // One RDMA write for the whole log ("Kona submits a single request
        // to the NIC for the whole log", §6.4). The fabric emits the verb
        // leaf on the network track; this span owns backoffs and the ack
        // wait (its uncovered residual attributes to the wire).
        let wb_span = self
            .telemetry
            .span_open(Track::Background, EventKind::Writeback);
        let mut backoff_total = Nanos::ZERO;
        let mut attempt = 0u32;
        let rdma_time = loop {
            let wr = WorkRequest::write(
                u64::from(node),
                RemoteAddr::new(node, self.log_region_offset),
                encoded.clone(),
            )
            .signaled();
            match poller.post_and_poll(fabric, vec![wr]) {
                Ok((t, _)) => break t,
                Err(e) if e.is_transient() && attempt + 1 < self.retry.max_attempts => {
                    self.stats.flush_retries += 1;
                    let backoff = self.retry.backoff_for(attempt, &mut self.rng);
                    attempt += 1;
                    // Back off on the eviction thread; simulated time
                    // advances so scheduled flaps can clear meanwhile.
                    fabric.advance_time(backoff);
                    self.telemetry
                        .span_leaf(Track::Background, EventKind::Backoff, backoff);
                    backoff_total += backoff;
                }
                Err(e) => {
                    if e.is_transient() && self.unrepaired_losses() < self.max_node_losses {
                        self.lost_nodes.insert(node);
                        self.stats.abandoned_flushes += 1;
                        if self.logs.values().all(|l| l.used_bytes() == 0) {
                            self.pending_pages.clear();
                        }
                        self.telemetry.span_close(wb_span, backoff_total);
                        return Ok(backoff_total);
                    }
                    self.telemetry.span_close(wb_span, backoff_total);
                    return Err(e);
                }
            }
        };
        self.breakdown.rdma_write += rdma_time;
        if let Some(journal) = &mut self.journal {
            journal.record(node, fabric.now(), &encoded);
        }

        // Remote thread unpacks and acknowledges. "The process is
        // asynchronous: the acknowledgment latency can be hidden by
        // continuing to process more dirty cache-lines during the waiting
        // time" (§4.4) — with double-buffered logs only a residual of the
        // unpack + ack round trip lands on the eviction thread.
        let receiver = self.receivers.entry(node).or_default();
        let node_mem = fabric
            .node_mut(node)
            .expect("post succeeded, node must exist");
        let report = receiver.apply(node_mem, &encoded);
        let ack_time = (report.unpack_time + fabric.model().verb_time(0)) / 4;
        self.breakdown.ack_wait += ack_time;
        self.telemetry
            .span_close(wb_span, backoff_total + rdma_time + ack_time);
        // The drained buffer goes back to the node's log: steady-state
        // flush cycles reuse one allocation per node.
        if let Some(log) = self.logs.get_mut(&node) {
            log.recycle(encoded);
        }

        // The flush resolves every pending page (logs are per-node but
        // clearing conservatively is correct and simple).
        if self.logs.values().all(|l| l.used_bytes() == 0) {
            self.pending_pages.clear();
        }
        Ok(backoff_total + rdma_time + ack_time)
    }

    /// Flushes every node's log. In degraded mode the per-node logs are
    /// combined into one work-request chain (one doorbell for the whole
    /// cycle) instead of one post per node — wider batching trades ack
    /// latency for fewer exposures to a flaky fabric.
    ///
    /// # Errors
    ///
    /// Propagates fabric errors.
    pub fn flush_all(&mut self, fabric: &mut Fabric, poller: &mut Poller) -> Result<Nanos> {
        let span = self.telemetry.span_open(Track::Background, EventKind::Flush);
        let res = self.flush_all_inner(fabric, poller);
        self.telemetry
            .span_close(span, *res.as_ref().unwrap_or(&Nanos::ZERO));
        self.telemetry.observe_time(fabric.now());
        res
    }

    fn flush_all_inner(&mut self, fabric: &mut Fabric, poller: &mut Poller) -> Result<Nanos> {
        let total = if self.degraded {
            self.flush_all_batched(fabric, poller)?
        } else {
            let mut nodes: Vec<u32> = self.logs.keys().copied().collect();
            nodes.sort_unstable();
            let mut total = Nanos::ZERO;
            for node in nodes {
                total += self.flush_node(node, fabric, poller)?;
            }
            total
        };
        self.pending_pages.clear();
        Ok(total)
    }

    /// Degraded-mode flush: every node's log in one chained post, retried
    /// as a whole (idempotent, so a mid-chain fault re-posts safely).
    /// Nodes that keep failing are dropped from the batch within the
    /// loss budget, exactly as in [`EvictionHandler::flush_node`].
    fn flush_all_batched(&mut self, fabric: &mut Fabric, poller: &mut Poller) -> Result<Nanos> {
        let mut nodes: Vec<u32> = self
            .logs
            .iter()
            .filter(|(_, log)| log.used_bytes() > 0)
            .map(|(&node, _)| node)
            .collect();
        nodes.sort_unstable();
        let mut batch: Vec<(u32, Vec<u8>)> = Vec::new();
        for node in nodes {
            let log = self.logs.get_mut(&node).expect("node key from logs");
            if self.lost_nodes.contains(&node) {
                log.drain_encoded();
                continue;
            }
            batch.push((node, log.drain_encoded()));
        }
        if batch.is_empty() {
            return Ok(Nanos::ZERO);
        }
        self.stats.batched_flushes += 1;
        self.stats.flushes += batch.len() as u64;
        let wb_span = self
            .telemetry
            .span_open(Track::Background, EventKind::Writeback);
        let mut backoff_total = Nanos::ZERO;
        let mut attempt = 0u32;
        let rdma_time = loop {
            let last = batch.len() - 1;
            let chain: Vec<WorkRequest> = batch
                .iter()
                .enumerate()
                .map(|(i, (node, encoded))| {
                    let wr = WorkRequest::write(
                        u64::from(*node),
                        RemoteAddr::new(*node, self.log_region_offset),
                        encoded.clone(),
                    );
                    if i == last {
                        wr.signaled()
                    } else {
                        wr
                    }
                })
                .collect();
            match poller.post_and_poll(fabric, chain) {
                Ok((t, _)) => break t,
                Err(e) if e.is_transient() && attempt + 1 < self.retry.max_attempts => {
                    self.stats.flush_retries += 1;
                    let backoff = self.retry.backoff_for(attempt, &mut self.rng);
                    attempt += 1;
                    fabric.advance_time(backoff);
                    self.telemetry
                        .span_leaf(Track::Background, EventKind::Backoff, backoff);
                    backoff_total += backoff;
                }
                Err(e) => {
                    let lose = e.failed_node().filter(|_| {
                        e.is_transient() && self.unrepaired_losses() < self.max_node_losses
                    });
                    let Some(node) = lose else {
                        self.telemetry.span_close(wb_span, backoff_total);
                        return Err(e);
                    };
                    self.lost_nodes.insert(node);
                    self.stats.abandoned_flushes += 1;
                    batch.retain(|(n, _)| *n != node);
                    if batch.is_empty() {
                        self.telemetry.span_close(wb_span, backoff_total);
                        return Ok(backoff_total);
                    }
                    attempt = 0;
                }
            }
        };
        self.breakdown.rdma_write += rdma_time;
        if let Some(journal) = &mut self.journal {
            let now = fabric.now();
            for (node, encoded) in &batch {
                journal.record(*node, now, encoded);
            }
        }

        // Each receiver unpacks its own log; acks ride back together, so
        // only one verb round trip is charged for the whole batch.
        let mut unpack_total = Nanos::ZERO;
        for (node, encoded) in batch {
            let receiver = self.receivers.entry(node).or_default();
            let node_mem = fabric
                .node_mut(node)
                .expect("post succeeded, node must exist");
            let report = receiver.apply(node_mem, &encoded);
            unpack_total += report.unpack_time;
            if let Some(log) = self.logs.get_mut(&node) {
                log.recycle(encoded);
            }
        }
        let ack_time = (unpack_total + fabric.model().verb_time(0)) / 4;
        self.breakdown.ack_wait += ack_time;
        self.telemetry
            .span_close(wb_span, backoff_total + rdma_time + ack_time);
        Ok(backoff_total + rdma_time + ack_time)
    }

    /// The dirty-data amplification achieved by this handler so far:
    /// wire payload bytes over dirty bytes (1.0 = no amplification). A
    /// page-granularity evictor would ship `pages × 4096` instead.
    pub fn amplification(&self) -> f64 {
        if self.stats.dirty_bytes_written == 0 {
            return 0.0;
        }
        // Kona ships exactly the dirty bytes (plus small headers).
        1.0
    }

    /// What a 4 KiB-granularity evictor would have shipped for the same
    /// dirty pages, in bytes.
    pub fn page_granularity_equivalent_bytes(&self) -> u64 {
        (self.stats.pages_evicted - self.stats.silent_evictions) * PAGE_SIZE_4K
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_net::NetworkModel;
    use kona_types::rng::{Rng, StdRng};
    use kona_types::{LineBitmap, PageNumber, LINES_PER_PAGE_4K};

    fn fabric_with_nodes(n: u32) -> Fabric {
        let mut f = Fabric::new(NetworkModel::connectx5());
        for id in 0..n {
            f.add_node(id, (1 << 20) + 65536);
            f.register(id, 0, 1 << 20).unwrap();
            f.register(id, 1 << 20, 65536).unwrap(); // log region
        }
        f
    }

    fn victim(page: u64, dirty: &[usize]) -> VictimPage {
        let mut bm = LineBitmap::new(LINES_PER_PAGE_4K);
        for &l in dirty {
            bm.set(l);
        }
        VictimPage {
            page: PageNumber(page),
            dirty_lines: bm,
        }
    }

    #[test]
    fn clean_page_is_silent() {
        let mut h = EvictionHandler::new(1 << 20, 65536);
        let mut f = fabric_with_nodes(1);
        let mut p = Poller::new();
        let t = h
            .evict_page(&victim(0, &[]), None, RemoteAddr::new(0, 0), &[], &mut f, &mut p)
            .unwrap();
        assert_eq!(t, BITMAP_SCAN);
        assert_eq!(h.stats().silent_evictions, 1);
        assert_eq!(h.stats().dirty_bytes_written, 0);
    }

    #[test]
    fn dirty_lines_reach_remote_home() {
        let mut h = EvictionHandler::new(1 << 20, 65536);
        let mut f = fabric_with_nodes(1);
        let mut p = Poller::new();
        let mut page = vec![0u8; 4096];
        page[64..128].fill(0x77); // line 1 dirty
        h.evict_page(
            &victim(0, &[1]),
            Some(&page),
            RemoteAddr::new(0, 8192),
            &[],
            &mut f,
            &mut p,
        )
        .unwrap();
        assert!(h.is_pending(0));
        h.flush_all(&mut f, &mut p).unwrap();
        assert!(!h.is_pending(0));
        // Line 1 of the page landed at home offset 8192 + 64.
        assert_eq!(f.node(0).unwrap().read_bytes(8192 + 64, 64), &[0x77; 64][..]);
        // Neighbouring lines untouched.
        assert_eq!(f.node(0).unwrap().read_bytes(8192, 64), &[0u8; 64][..]);
        assert_eq!(h.stats().lines_written, 1);
        assert_eq!(h.stats().dirty_bytes_written, 64);
    }

    #[test]
    fn contiguous_segment_is_one_entry() {
        let mut h = EvictionHandler::new(1 << 20, 65536);
        let mut f = fabric_with_nodes(1);
        let mut p = Poller::new();
        h.evict_page(
            &victim(0, &[3, 4, 5]),
            None,
            RemoteAddr::new(0, 0),
            &[],
            &mut f,
            &mut p,
        )
        .unwrap();
        // One 3-line segment: copy charged once (gather) not thrice.
        let copies = h.breakdown().copy;
        let expected = SEGMENT_GATHER + CopyModel::skylake().avx_copy(192);
        assert_eq!(copies, expected);
        assert_eq!(h.stats().lines_written, 3);
    }

    #[test]
    fn full_log_flushes_inline() {
        // Tiny log: one 64-line page worth of entries overflows it.
        let mut h = EvictionHandler::new(1 << 20, 1024);
        let mut f = fabric_with_nodes(1);
        let mut p = Poller::new();
        let all: Vec<usize> = (0..LINES_PER_PAGE_4K).step_by(2).collect();
        h.evict_page(&victim(0, &all), None, RemoteAddr::new(0, 0), &[], &mut f, &mut p)
            .unwrap();
        assert!(h.stats().flushes >= 1, "inline flush expected");
    }

    #[test]
    fn replication_writes_to_all_targets() {
        let mut h = EvictionHandler::new(1 << 20, 65536);
        let mut f = fabric_with_nodes(2);
        let mut p = Poller::new();
        let mut page = vec![0u8; 4096];
        page[..64].fill(0x42);
        h.evict_page(
            &victim(0, &[0]),
            Some(&page),
            RemoteAddr::new(0, 0),
            &[RemoteAddr::new(1, 0)],
            &mut f,
            &mut p,
        )
        .unwrap();
        h.flush_all(&mut f, &mut p).unwrap();
        assert_eq!(f.node(0).unwrap().read_bytes(0, 64), &[0x42; 64][..]);
        assert_eq!(f.node(1).unwrap().read_bytes(0, 64), &[0x42; 64][..]);
        // Goodput accounting counts the primary only.
        assert_eq!(h.stats().dirty_bytes_written, 64);
    }

    #[test]
    fn breakdown_phases_all_populated() {
        let mut h = EvictionHandler::new(1 << 20, 65536);
        let mut f = fabric_with_nodes(1);
        let mut p = Poller::new();
        for page in 0..8u64 {
            h.evict_page(
                &victim(page, &[0, 1, 10]),
                None,
                RemoteAddr::new(0, page * 4096),
                &[],
                &mut f,
                &mut p,
            )
            .unwrap();
        }
        h.flush_all(&mut f, &mut p).unwrap();
        let b = h.breakdown();
        assert!(b.bitmap > Nanos::ZERO);
        assert!(b.copy > Nanos::ZERO);
        assert!(b.rdma_write > Nanos::ZERO);
        assert!(b.ack_wait > Nanos::ZERO);
        let shares = b.shares();
        assert!((shares.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn hardware_copy_engine_is_faster() {
        let mut fabric_a = fabric_with_nodes(1);
        let mut fabric_b = fabric_with_nodes(1);
        let mut pa = Poller::new();
        let mut pb = Poller::new();
        let mut sw = EvictionHandler::new(1 << 20, 65536);
        let mut hw = EvictionHandler::new(1 << 20, 65536);
        hw.set_copy_engine(CopyEngine::HardwareDma);
        assert_eq!(hw.copy_engine(), CopyEngine::HardwareDma);
        for p in 0..32u64 {
            sw.evict_page(&victim(p, &[0, 5, 9]), None, RemoteAddr::new(0, p * 4096), &[], &mut fabric_a, &mut pa)
                .unwrap();
            hw.evict_page(&victim(p, &[0, 5, 9]), None, RemoteAddr::new(0, p * 4096), &[], &mut fabric_b, &mut pb)
                .unwrap();
        }
        assert!(
            hw.breakdown().copy < sw.breakdown().copy / 2,
            "hw {:?} vs sw {:?}",
            hw.breakdown().copy,
            sw.breakdown().copy
        );
        // Identical data movement either way.
        assert_eq!(hw.stats().dirty_bytes_written, sw.stats().dirty_bytes_written);
    }

    /// For any dirty bitmap and page contents, exactly the dirty lines
    /// reach their remote home — no more, no less, byte for byte.
    #[test]
    fn prop_exact_dirty_lines_transferred() {
        let mut rng = StdRng::seed_from_u64(0xE71C);
        for _ in 0..32 {
            let dirty: Vec<bool> = (0..LINES_PER_PAGE_4K).map(|_| rng.gen()).collect();
            let seed: u8 = rng.gen();
            let mut h = EvictionHandler::new(1 << 20, 65536);
            let mut f = fabric_with_nodes(1);
            let mut p = Poller::new();
            let mut bm = LineBitmap::new(LINES_PER_PAGE_4K);
            let mut page = vec![0u8; 4096];
            for (i, byte) in page.iter_mut().enumerate() {
                *byte = (i as u8).wrapping_add(seed).max(1);
            }
            for (i, &d) in dirty.iter().enumerate() {
                if d {
                    bm.set(i);
                }
            }
            let victim = VictimPage {
                page: PageNumber(0),
                dirty_lines: bm,
            };
            h.evict_page(&victim, Some(&page), RemoteAddr::new(0, 0), &[], &mut f, &mut p)
                .unwrap();
            h.flush_all(&mut f, &mut p).unwrap();
            let node = f.node(0).unwrap();
            for (line, &d) in dirty.iter().enumerate() {
                let off = line as u64 * 64;
                let remote = node.read_bytes(off, 64);
                if d {
                    assert_eq!(
                        remote,
                        &page[off as usize..off as usize + 64],
                        "dirty line {line} corrupted"
                    );
                } else {
                    assert_eq!(remote, &[0u8; 64][..], "clean line {line} written");
                }
            }
            let expected: u64 = dirty.iter().filter(|&&d| d).count() as u64 * 64;
            assert_eq!(h.stats().dirty_bytes_written, expected);
        }
    }

    #[test]
    fn flush_retry_rides_out_a_flap() {
        use kona_net::{FaultInjector, FaultPlan};
        let mut h = EvictionHandler::new(1 << 20, 65536);
        h.set_retry_policy(RetryPolicy {
            max_attempts: 4,
            base_backoff: Nanos::micros(40),
            max_backoff: Nanos::micros(200),
            jitter: 0.0,
            ..RetryPolicy::default()
        });
        let mut f = fabric_with_nodes(1);
        f.set_fault_injector(FaultInjector::new(
            FaultPlan::calm(7).with_flap(0, Nanos::ZERO, Nanos::micros(30)),
        ));
        let mut p = Poller::new();
        let mut page = vec![0u8; 4096];
        page[..64].fill(0x5A);
        h.evict_page(&victim(0, &[0]), Some(&page), RemoteAddr::new(0, 0), &[], &mut f, &mut p)
            .unwrap();
        h.flush_all(&mut f, &mut p).unwrap();
        // First post hits the down node; the 40 µs backoff outlasts the
        // 30 µs flap and the retry lands the data.
        assert_eq!(h.stats().flush_retries, 1);
        assert!(h.lost_nodes().is_empty());
        assert_eq!(f.node(0).unwrap().read_bytes(0, 64), &[0x5A; 64][..]);
    }

    #[test]
    fn exhausted_retries_abandon_node_within_budget() {
        use kona_net::{FaultInjector, FaultPlan};
        let mut h = EvictionHandler::new(1 << 20, 65536);
        h.set_retry_policy(RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        });
        h.set_max_node_losses(1);
        let mut f = fabric_with_nodes(2);
        f.set_fault_injector(FaultInjector::new(
            FaultPlan::calm(7).with_crash(0, Nanos::ZERO),
        ));
        let mut p = Poller::new();
        let mut page = vec![0u8; 4096];
        page[..64].fill(0x33);
        h.evict_page(
            &victim(0, &[0]),
            Some(&page),
            RemoteAddr::new(0, 0),
            &[RemoteAddr::new(1, 0)],
            &mut f,
            &mut p,
        )
        .unwrap();
        h.flush_all(&mut f, &mut p).unwrap();
        // The crashed primary is abandoned; the replica holds the data.
        assert!(h.lost_nodes().contains(&0));
        assert_eq!(h.stats().abandoned_flushes, 1);
        assert_eq!(f.node(1).unwrap().read_bytes(0, 64), &[0x33; 64][..]);
        // Later evictions skip the lost node but still count goodput.
        let before = h.stats().dirty_bytes_written;
        h.evict_page(
            &victim(1, &[0]),
            Some(&page),
            RemoteAddr::new(0, 4096),
            &[RemoteAddr::new(1, 4096)],
            &mut f,
            &mut p,
        )
        .unwrap();
        assert_eq!(h.stats().skipped_targets, 1);
        assert_eq!(h.stats().dirty_bytes_written, before + 64);
        h.flush_all(&mut f, &mut p).unwrap();
        assert_eq!(f.node(1).unwrap().read_bytes(4096, 64), &[0x33; 64][..]);
    }

    #[test]
    fn exhausted_retries_without_budget_error_out() {
        use kona_net::{FaultInjector, FaultPlan};
        let mut h = EvictionHandler::new(1 << 20, 65536);
        h.set_retry_policy(RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        });
        let mut f = fabric_with_nodes(1);
        f.set_fault_injector(FaultInjector::new(
            FaultPlan::calm(7).with_crash(0, Nanos::ZERO),
        ));
        let mut p = Poller::new();
        h.evict_page(&victim(0, &[0]), None, RemoteAddr::new(0, 0), &[], &mut f, &mut p)
            .unwrap();
        assert!(h.flush_all(&mut f, &mut p).is_err());
    }

    #[test]
    fn degraded_mode_batches_all_logs_into_one_post() {
        let mut h = EvictionHandler::new(1 << 20, 65536);
        h.set_degraded(true);
        assert!(h.is_degraded());
        let mut f = fabric_with_nodes(2);
        let mut p = Poller::new();
        let mut page = vec![0u8; 4096];
        page[..64].fill(0x42);
        h.evict_page(
            &victim(0, &[0]),
            Some(&page),
            RemoteAddr::new(0, 0),
            &[RemoteAddr::new(1, 0)],
            &mut f,
            &mut p,
        )
        .unwrap();
        h.flush_all(&mut f, &mut p).unwrap();
        assert_eq!(h.stats().batched_flushes, 1);
        assert_eq!(h.stats().flushes, 2, "both node logs in the batch");
        assert_eq!(f.node(0).unwrap().read_bytes(0, 64), &[0x42; 64][..]);
        assert_eq!(f.node(1).unwrap().read_bytes(0, 64), &[0x42; 64][..]);
        // The whole cycle was one doorbell.
        assert_eq!(f.stats().posts, 1);
        assert!(!h.is_pending(0));
    }

    #[test]
    fn shipment_journal_records_flushed_batches() {
        let mut h = EvictionHandler::new(1 << 20, 65536);
        h.enable_shipment_journal();
        let mut f = fabric_with_nodes(2);
        let mut p = Poller::new();
        let mut page = vec![0u8; 4096];
        page[..64].fill(0x21);
        h.evict_page(
            &victim(0, &[0]),
            Some(&page),
            RemoteAddr::new(0, 0),
            &[RemoteAddr::new(1, 0)],
            &mut f,
            &mut p,
        )
        .unwrap();
        assert!(h.drain_shipments().is_empty(), "nothing shipped yet");
        h.flush_all(&mut f, &mut p).unwrap();
        let shipped = h.drain_shipments();
        assert_eq!(shipped.len(), 2, "one batch per node");
        let mut nodes: Vec<u32> = shipped.iter().map(|(n, _, _)| n).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1]);
        // Journaled bytes are the encoded log: header + one line.
        assert!(shipped.iter().all(|(_, _, enc)| enc.len() == 16 + 64));
        // Drain empties the journal; the swapping drain keeps reusing the
        // caller's arena.
        assert!(h.drain_shipments().is_empty());
        let mut reuse = shipped;
        h.evict_page(&victim(1, &[0]), Some(&page), RemoteAddr::new(0, 4096), &[], &mut f, &mut p)
            .unwrap();
        h.flush_all(&mut f, &mut p).unwrap();
        h.drain_shipments_into(&mut reuse);
        assert_eq!(reuse.len(), 1);
        h.drain_shipments_into(&mut reuse);
        assert!(reuse.is_empty());
        // Journaling is opt-in: a fresh handler journals nothing.
        let mut h2 = EvictionHandler::new(1 << 20, 65536);
        let mut f2 = fabric_with_nodes(1);
        h2.evict_page(&victim(0, &[0]), Some(&page), RemoteAddr::new(0, 0), &[], &mut f2, &mut p)
            .unwrap();
        h2.flush_all(&mut f2, &mut p).unwrap();
        assert!(h2.drain_shipments().is_empty());
    }

    #[test]
    fn repaired_node_replenishes_loss_budget() {
        use kona_net::{FaultInjector, FaultPlan};
        let mut h = EvictionHandler::new(1 << 20, 65536);
        h.set_retry_policy(RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        });
        h.set_max_node_losses(1);
        let mut f = fabric_with_nodes(3);
        f.set_fault_injector(FaultInjector::new(
            FaultPlan::calm(7)
                .with_crash(0, Nanos::ZERO)
                .with_crash(1, Nanos::ZERO),
        ));
        let mut p = Poller::new();
        let mut page = vec![0u8; 4096];
        page[..64].fill(0x44);
        h.evict_page(
            &victim(0, &[0]),
            Some(&page),
            RemoteAddr::new(0, 0),
            &[RemoteAddr::new(2, 0)],
            &mut f,
            &mut p,
        )
        .unwrap();
        h.flush_all(&mut f, &mut p).unwrap();
        assert!(h.lost_nodes().contains(&0));
        assert_eq!(h.unrepaired_losses(), 1);
        // Budget exhausted: losing node 1 now would be fatal ...
        h.evict_page(
            &victim(1, &[0]),
            Some(&page),
            RemoteAddr::new(1, 0),
            &[RemoteAddr::new(2, 4096)],
            &mut f,
            &mut p,
        )
        .unwrap();
        assert!(h.flush_all(&mut f, &mut p).is_err());
        // ... but after re-replication repairs node 0, the budget
        // regenerates and node 1's loss is absorbed.
        h.note_node_repaired(0);
        assert_eq!(h.unrepaired_losses(), 0);
        assert_eq!(h.stats().repaired_nodes, 1);
        h.evict_page(
            &victim(2, &[0]),
            Some(&page),
            RemoteAddr::new(1, 8192),
            &[RemoteAddr::new(2, 8192)],
            &mut f,
            &mut p,
        )
        .unwrap();
        h.flush_all(&mut f, &mut p).unwrap();
        assert!(h.lost_nodes().contains(&1));
        assert_eq!(h.unrepaired_losses(), 1);
        assert_eq!(f.node(2).unwrap().read_bytes(8192, 64), &[0x44; 64][..]);
        // Repairing an unknown node is a no-op.
        h.note_node_repaired(99);
        assert_eq!(h.stats().repaired_nodes, 1);
    }

    #[test]
    fn page_equivalent_bytes() {
        let mut h = EvictionHandler::new(1 << 20, 65536);
        let mut f = fabric_with_nodes(1);
        let mut p = Poller::new();
        h.evict_page(&victim(0, &[0]), None, RemoteAddr::new(0, 0), &[], &mut f, &mut p)
            .unwrap();
        h.evict_page(&victim(1, &[]), None, RemoteAddr::new(0, 4096), &[], &mut f, &mut p)
            .unwrap();
        assert_eq!(h.page_granularity_equivalent_bytes(), 4096);
        assert_eq!(h.amplification(), 1.0);
    }
}
