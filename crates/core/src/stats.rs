//! Aggregate runtime statistics.

use kona_types::Nanos;

/// Statistics common to both runtimes; fields not applicable to a runtime
/// stay zero (e.g. Kona never takes page faults).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Simulated time on the application's critical path.
    pub app_time: Nanos,
    /// Simulated time spent by background work (eviction, prefetch) that
    /// runs concurrently with the application.
    pub background_time: Nanos,
    /// Line/page accesses served locally (CPU caches, FMem or CMem cache).
    pub local_hits: u64,
    /// Fetches from remote memory.
    pub remote_fetches: u64,
    /// Major page faults taken (VM runtimes only).
    pub major_faults: u64,
    /// Write-protection faults taken (VM runtimes only).
    pub minor_faults: u64,
    /// TLB invalidations + shootdowns performed (VM runtimes only).
    pub tlb_invalidations: u64,
    /// Pages evicted from the local cache.
    pub pages_evicted: u64,
    /// Dirty payload bytes written back to remote memory.
    pub writeback_bytes: u64,
    /// Bytes the application actually dirtied (for amplification).
    pub app_dirty_bytes: u64,
    /// Pages prefetched (Kona only).
    pub prefetches: u64,
    /// Machine-check events observed on network failures (Kona only).
    pub mce_events: u64,
}

impl RuntimeStats {
    /// Wall-clock estimate: the application and the eviction thread run
    /// concurrently, so the run completes when the slower of the two does.
    pub fn wall_time(&self) -> Nanos {
        self.app_time.max(self.background_time)
    }

    /// Write amplification actually incurred on the wire: bytes written
    /// back over bytes dirtied (0 when nothing was dirtied).
    pub fn write_amplification(&self) -> f64 {
        if self.app_dirty_bytes == 0 {
            return 0.0;
        }
        self.writeback_bytes as f64 / self.app_dirty_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_time_is_max() {
        let s = RuntimeStats {
            app_time: Nanos::micros(5),
            background_time: Nanos::micros(9),
            ..Default::default()
        };
        assert_eq!(s.wall_time(), Nanos::micros(9));
    }

    #[test]
    fn amplification() {
        let s = RuntimeStats {
            writeback_bytes: 4096,
            app_dirty_bytes: 64,
            ..Default::default()
        };
        assert_eq!(s.write_amplification(), 64.0);
        assert_eq!(RuntimeStats::default().write_amplification(), 0.0);
    }
}
