//! Aggregate runtime statistics.

use kona_types::Nanos;
use std::fmt;

/// Statistics common to both runtimes; fields not applicable to a runtime
/// stay zero (e.g. Kona never takes page faults).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Simulated time on the application's critical path.
    pub app_time: Nanos,
    /// Simulated time spent by background work (eviction, prefetch) that
    /// runs concurrently with the application.
    pub background_time: Nanos,
    /// Line/page accesses served locally (CPU caches, FMem or CMem cache).
    pub local_hits: u64,
    /// Fetches from remote memory.
    pub remote_fetches: u64,
    /// Major page faults taken (VM runtimes only).
    pub major_faults: u64,
    /// Write-protection faults taken (VM runtimes only).
    pub minor_faults: u64,
    /// TLB invalidations + shootdowns performed (VM runtimes only).
    pub tlb_invalidations: u64,
    /// Pages evicted from the local cache.
    pub pages_evicted: u64,
    /// Dirty payload bytes written back to remote memory.
    pub writeback_bytes: u64,
    /// Bytes the application actually dirtied (for amplification).
    pub app_dirty_bytes: u64,
    /// Pages prefetched (Kona only).
    pub prefetches: u64,
    /// Machine-check events observed on network failures (Kona only).
    pub mce_events: u64,
    /// Verb retries after transient failures (Kona only).
    pub retries: u64,
    /// Simulated time spent backing off between retries.
    pub backoff_time: Nanos,
    /// Reads served by a replica after the primary failed (Kona only).
    pub failovers: u64,
    /// Times the runtime entered degraded mode (Kona only).
    pub degraded_entries: u64,
    /// Page-fault-fallback waits that rode out a scheduled outage.
    pub fallback_waits: u64,
    /// Bytes copied between memory nodes by slab migration and
    /// re-replication (rebalance traffic; Kona only).
    pub migration_bytes: u64,
    /// Slabs re-replicated after a permanent node loss (Kona only).
    pub rereplications: u64,
    /// Span events lost to telemetry ring-buffer overflow; nonzero means
    /// the exported timeline is a suffix of the run (raise the trace
    /// capacity to keep it all).
    pub spans_dropped: u64,
}

impl RuntimeStats {
    /// Wall-clock estimate: the application and the eviction thread run
    /// concurrently, so the run completes when the slower of the two does.
    pub fn wall_time(&self) -> Nanos {
        self.app_time.max(self.background_time)
    }

    /// Write amplification actually incurred on the wire: bytes written
    /// back over bytes dirtied (0 when nothing was dirtied).
    pub fn write_amplification(&self) -> f64 {
        if self.app_dirty_bytes == 0 {
            return 0.0;
        }
        self.writeback_bytes as f64 / self.app_dirty_bytes as f64
    }

    /// Fraction of accesses served locally: `local_hits / (local_hits +
    /// remote_fetches)` (0 when nothing was accessed).
    pub fn local_hit_ratio(&self) -> f64 {
        let total = self.local_hits + self.remote_fetches;
        if total == 0 {
            return 0.0;
        }
        self.local_hits as f64 / total as f64
    }

    /// Accumulates `other` into `self`, field by field (times add: merged
    /// stats describe sequential phases of one run, or shards of work).
    pub fn merge(&mut self, other: &RuntimeStats) {
        self.app_time += other.app_time;
        self.background_time += other.background_time;
        self.local_hits += other.local_hits;
        self.remote_fetches += other.remote_fetches;
        self.major_faults += other.major_faults;
        self.minor_faults += other.minor_faults;
        self.tlb_invalidations += other.tlb_invalidations;
        self.pages_evicted += other.pages_evicted;
        self.writeback_bytes += other.writeback_bytes;
        self.app_dirty_bytes += other.app_dirty_bytes;
        self.prefetches += other.prefetches;
        self.mce_events += other.mce_events;
        self.retries += other.retries;
        self.backoff_time += other.backoff_time;
        self.failovers += other.failovers;
        self.degraded_entries += other.degraded_entries;
        self.fallback_waits += other.fallback_waits;
        self.migration_bytes += other.migration_bytes;
        self.rereplications += other.rereplications;
        self.spans_dropped += other.spans_dropped;
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "app {}  background {}  wall {}",
            self.app_time,
            self.background_time,
            self.wall_time()
        )?;
        writeln!(
            f,
            "local hits {}  remote fetches {}  hit ratio {:.1}%",
            self.local_hits,
            self.remote_fetches,
            self.local_hit_ratio() * 100.0
        )?;
        writeln!(
            f,
            "faults major/minor {}/{}  tlb invalidations {}",
            self.major_faults, self.minor_faults, self.tlb_invalidations
        )?;
        writeln!(
            f,
            "evicted {} pages  writeback {} B / dirtied {} B (amp {:.2}x)  \
             prefetches {}  mce {}",
            self.pages_evicted,
            self.writeback_bytes,
            self.app_dirty_bytes,
            self.write_amplification(),
            self.prefetches,
            self.mce_events
        )?;
        writeln!(
            f,
            "retries {} (backoff {})  failovers {}  degraded entries {}  \
             fallback waits {}",
            self.retries,
            self.backoff_time,
            self.failovers,
            self.degraded_entries,
            self.fallback_waits
        )?;
        write!(
            f,
            "migration {} B  rereplications {}  spans dropped {}",
            self.migration_bytes, self.rereplications, self.spans_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_time_is_max() {
        let s = RuntimeStats {
            app_time: Nanos::micros(5),
            background_time: Nanos::micros(9),
            ..Default::default()
        };
        assert_eq!(s.wall_time(), Nanos::micros(9));
    }

    #[test]
    fn amplification() {
        let s = RuntimeStats {
            writeback_bytes: 4096,
            app_dirty_bytes: 64,
            ..Default::default()
        };
        assert_eq!(s.write_amplification(), 64.0);
        assert_eq!(RuntimeStats::default().write_amplification(), 0.0);
    }

    #[test]
    fn hit_ratio() {
        let s = RuntimeStats {
            local_hits: 3,
            remote_fetches: 1,
            ..Default::default()
        };
        assert_eq!(s.local_hit_ratio(), 0.75);
        assert_eq!(RuntimeStats::default().local_hit_ratio(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = RuntimeStats {
            app_time: Nanos::micros(1),
            local_hits: 2,
            writeback_bytes: 64,
            ..Default::default()
        };
        let b = RuntimeStats {
            app_time: Nanos::micros(2),
            background_time: Nanos::micros(4),
            local_hits: 3,
            mce_events: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.app_time, Nanos::micros(3));
        assert_eq!(a.background_time, Nanos::micros(4));
        assert_eq!(a.local_hits, 5);
        assert_eq!(a.writeback_bytes, 64);
        assert_eq!(a.mce_events, 1);
    }

    #[test]
    fn merge_adds_failure_fields() {
        let mut a = RuntimeStats {
            retries: 2,
            backoff_time: Nanos::micros(10),
            failovers: 1,
            ..Default::default()
        };
        let b = RuntimeStats {
            retries: 3,
            backoff_time: Nanos::micros(5),
            degraded_entries: 1,
            fallback_waits: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.retries, 5);
        assert_eq!(a.backoff_time, Nanos::micros(15));
        assert_eq!(a.failovers, 1);
        assert_eq!(a.degraded_entries, 1);
        assert_eq!(a.fallback_waits, 2);
        let text = a.to_string();
        assert!(text.contains("retries 5"));
        assert!(text.contains("failovers 1"));
    }

    #[test]
    fn display_mentions_key_fields() {
        let s = RuntimeStats {
            local_hits: 10,
            remote_fetches: 2,
            pages_evicted: 4,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("remote fetches 2"));
        assert!(text.contains("evicted 4 pages"));
        assert!(text.contains("hit ratio 83.3%"));
        assert!(text.contains("spans dropped 0"));
    }

    #[test]
    fn spans_dropped_merges_and_displays() {
        let mut a = RuntimeStats {
            spans_dropped: 2,
            ..Default::default()
        };
        let b = RuntimeStats {
            spans_dropped: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.spans_dropped, 5);
        assert!(a.to_string().contains("spans dropped 5"));
    }
}
