//! AllocLib: the allocation interposition library.
//!
//! "KLib uses AllocLib, an allocation interposition library that handles
//! fine-grained local memory allocations ... interposes on applications'
//! malloc and mmap calls and ensures that there is sufficient disaggregated
//! memory available" (§4.1). "Kona allocates remote memory proactively in
//! batches, so the allocation is not on the critical path. Kona uses a
//! local memory allocator to split a large slab for smaller allocations"
//! (§4.4).
//!
//! [`SlabAllocator`] carves a contiguous VFMem address space out of
//! controller-granted slabs: a bump allocator with per-size-class free
//! lists for `free`/reuse.

use kona_types::{align_up, FxHashMap, KonaError, Result, VfMemAddr, CACHE_LINE_SIZE};

/// Size classes are powers of two from 64 B up.
fn size_class(bytes: u64) -> u64 {
    bytes.max(CACHE_LINE_SIZE).next_power_of_two()
}

/// A slab-backed allocator over the VFMem address space.
///
/// The runtime feeds it slabs (contiguous VFMem ranges already backed by
/// remote memory); applications allocate and free objects from them.
///
/// # Examples
///
/// ```
/// # use kona::SlabAllocator;
/// # use kona_types::VfMemAddr;
/// let mut alloc = SlabAllocator::new();
/// alloc.add_slab(VfMemAddr::new(0), 4096);
/// let a = alloc.allocate(100).unwrap();
/// let b = alloc.allocate(100).unwrap();
/// assert_ne!(a, b);
/// alloc.free(a, 100);
/// assert_eq!(alloc.allocate(100).unwrap(), a); // reused
/// ```
#[derive(Debug, Clone, Default)]
pub struct SlabAllocator {
    /// Slabs still holding unallocated space: (cursor, end).
    slabs: Vec<(u64, u64)>,
    /// Per size-class free lists of object addresses.
    free_lists: FxHashMap<u64, Vec<u64>>,
    /// Live objects: address → size class. Lets `free` reject addresses
    /// that are not (or are no longer) allocated.
    allocated: FxHashMap<u64, u64>,
    /// Total bytes handed out minus freed (size-class granularity).
    live_bytes: u64,
    /// Total capacity added.
    capacity: u64,
    /// Rejected `free` calls (double frees / never-allocated addresses).
    double_frees: u64,
}

impl SlabAllocator {
    /// Creates an allocator with no slabs.
    pub fn new() -> Self {
        SlabAllocator::default()
    }

    /// Adds a slab `[base, base + len)` of backed VFMem.
    pub fn add_slab(&mut self, base: VfMemAddr, len: u64) {
        self.slabs.push((base.raw(), base.raw() + len));
        self.capacity += len;
    }

    /// Bytes currently allocated (rounded to size classes).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Total slab capacity added.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Whether a new slab is needed to satisfy an allocation of `bytes`.
    pub fn needs_slab(&self, bytes: u64) -> bool {
        let class = size_class(bytes);
        if self.free_lists.get(&class).is_some_and(|l| !l.is_empty()) {
            return false;
        }
        !self
            .slabs
            .iter()
            .any(|&(cursor, end)| align_up(cursor, class) + class <= end)
    }

    /// Allocates `bytes` (rounded up to a power-of-two size class,
    /// cache-line aligned).
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::OutOfLocalReservation`] when no slab has room;
    /// the caller (the Resource Manager) should grab another slab from the
    /// controller and retry.
    pub fn allocate(&mut self, bytes: u64) -> Result<VfMemAddr> {
        let class = size_class(bytes);
        if let Some(addr) = self.free_lists.get_mut(&class).and_then(Vec::pop) {
            self.live_bytes += class;
            self.allocated.insert(addr, class);
            return Ok(VfMemAddr::new(addr));
        }
        for (cursor, end) in &mut self.slabs {
            let aligned = align_up(*cursor, class);
            if aligned + class <= *end {
                *cursor = aligned + class;
                self.live_bytes += class;
                self.allocated.insert(aligned, class);
                return Ok(VfMemAddr::new(aligned));
            }
        }
        Err(KonaError::OutOfLocalReservation)
    }

    /// Returns an object of `bytes` at `addr` to the allocator, reporting
    /// whether the free was accepted.
    ///
    /// `bytes` must be the size passed to [`SlabAllocator::allocate`].
    /// A double free, a never-allocated address, or a size landing in the
    /// wrong class is rejected (returns `false`, counted in
    /// [`SlabAllocator::double_frees`]) instead of corrupting the free
    /// lists — the interposition library's analogue of glibc's
    /// `free(): invalid pointer` abort.
    pub fn free(&mut self, addr: VfMemAddr, bytes: u64) -> bool {
        let class = size_class(bytes);
        match self.allocated.get(&addr.raw()) {
            Some(&held) if held == class => {
                self.allocated.remove(&addr.raw());
                self.free_lists.entry(class).or_default().push(addr.raw());
                self.live_bytes = self.live_bytes.saturating_sub(class);
                true
            }
            _ => {
                self.double_frees += 1;
                false
            }
        }
    }

    /// Rejected `free` calls so far (double frees, bad addresses, wrong
    /// sizes).
    pub fn double_frees(&self) -> u64 {
        self.double_frees
    }

    /// Number of currently live objects.
    pub fn live_objects(&self) -> usize {
        self.allocated.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes() {
        assert_eq!(size_class(1), 64);
        assert_eq!(size_class(64), 64);
        assert_eq!(size_class(65), 128);
        assert_eq!(size_class(4096), 4096);
    }

    #[test]
    fn bump_allocation_is_disjoint_and_aligned() {
        let mut a = SlabAllocator::new();
        a.add_slab(VfMemAddr::new(0), 1 << 16);
        let mut addrs = Vec::new();
        for _ in 0..16 {
            let p = a.allocate(100).unwrap();
            assert_eq!(p.raw() % 128, 0, "allocation not class-aligned");
            addrs.push(p.raw());
        }
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 16);
        assert_eq!(a.live_bytes(), 16 * 128);
    }

    #[test]
    fn exhaustion_and_refill() {
        let mut a = SlabAllocator::new();
        a.add_slab(VfMemAddr::new(0), 256);
        a.allocate(128).unwrap();
        a.allocate(128).unwrap();
        assert!(a.needs_slab(128));
        assert_eq!(a.allocate(128).unwrap_err(), KonaError::OutOfLocalReservation);
        a.add_slab(VfMemAddr::new(4096), 256);
        assert!(!a.needs_slab(128));
        assert_eq!(a.allocate(128).unwrap().raw(), 4096);
    }

    #[test]
    fn free_list_reuse() {
        let mut a = SlabAllocator::new();
        a.add_slab(VfMemAddr::new(0), 4096);
        let p = a.allocate(200).unwrap();
        let live = a.live_bytes();
        a.free(p, 200);
        assert_eq!(a.live_bytes(), live - 256);
        assert!(!a.needs_slab(200));
        assert_eq!(a.allocate(256).unwrap(), p);
    }

    #[test]
    fn different_classes_do_not_mix() {
        let mut a = SlabAllocator::new();
        a.add_slab(VfMemAddr::new(0), 4096);
        let small = a.allocate(64).unwrap();
        a.free(small, 64);
        let big = a.allocate(128).unwrap();
        assert_ne!(big, small); // 64-class free slot not reused for 128
    }

    #[test]
    fn double_free_detected() {
        let mut a = SlabAllocator::new();
        a.add_slab(VfMemAddr::new(0), 4096);
        let p = a.allocate(64).unwrap();
        assert!(a.free(p, 64));
        assert!(!a.free(p, 64), "double free accepted");
        assert_eq!(a.double_frees(), 1);
        // Never-allocated address.
        assert!(!a.free(VfMemAddr::new(0x9999), 64));
        // Wrong size class.
        let q = a.allocate(64).unwrap();
        assert!(!a.free(q, 4096));
        assert_eq!(a.double_frees(), 3);
        assert_eq!(a.live_objects(), 1);
        // Rejections never corrupt the free lists: the one freed slot is
        // reused once and only once.
        let r1 = a.allocate(64).unwrap();
        assert_ne!(r1, q);
        let r2 = a.allocate(64).unwrap();
        assert_ne!(r2, r1);
        assert_ne!(r2, q);
    }

    #[test]
    fn multiple_slabs_searched() {
        let mut a = SlabAllocator::new();
        a.add_slab(VfMemAddr::new(0), 64);
        a.add_slab(VfMemAddr::new(1 << 20), 4096);
        a.allocate(64).unwrap();
        // First slab exhausted; next allocation comes from the second.
        assert_eq!(a.allocate(64).unwrap().raw(), 1 << 20);
    }
}
