//! Failure handling (§4.5).
//!
//! A slow or failed network is dangerous for coherence-based remote
//! memory: "the cache coherence protocol can result in a timeout due to
//! slow or failed network operations, which triggers a machine check
//! exception (MCE)". The paper offers two mitigations, both modelled here:
//!
//! * handle the MCE (Intel machine-check architecture), retrying or
//!   reporting to the operator — [`FailurePolicy::HandleMce`];
//! * fall back to page faults: mark the affected pages not-present so
//!   software regains control and can wait out the outage —
//!   [`FailurePolicy::PageFaultFallback`].
//!
//! Memory-node *data* loss is mitigated by replication during eviction
//! (see [`crate::EvictionHandler`] and [`crate::KonaRuntime`]'s replica
//! failover).
//!
//! [`FailureState`] is the runtime's failure bookkeeping: a bounded ring
//! of machine-check events (long chaos runs must not grow memory without
//! bound), per-policy event counters, per-node transient-failure health
//! windows, and the degraded-mode clock (enter when a node flaps past the
//! threshold, exit after a cooloff with no failures).

use crate::config::DegradedConfig;
use kona_types::rng::StdRng;
use kona_types::{FxHashMap, Nanos, VfMemAddr};
use std::collections::VecDeque;

/// Default capacity of the machine-check event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// How the runtime reacts when a remote fetch fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Record a machine-check event and surface the error to the caller
    /// (the default on hardware without MCE recovery).
    #[default]
    HandleMce,
    /// Mark the page not-present and retry through the page-fault path
    /// after the outage clears; the access is charged the fault cost plus
    /// one retry round-trip. When the fabric knows the outage's end (a
    /// scheduled flap), the runtime waits it out and retries itself.
    PageFaultFallback,
}

/// A recorded machine-check event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McEvent {
    /// The VFMem address whose fill failed.
    pub addr: VfMemAddr,
    /// Application time at which the failure surfaced.
    pub at: Nanos,
}

/// How many terminal failures each policy has absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyCounts {
    /// Failures surfaced as machine-check events.
    pub mce: u64,
    /// Failures routed through the page-fault fallback.
    pub fallback: u64,
    /// Slabs re-replicated onto healthy nodes after a permanent node
    /// loss (the cluster layer's repair protocol).
    pub rereplications: u64,
}

/// Failure bookkeeping shared by the runtime.
#[derive(Debug, Clone)]
pub struct FailureState {
    policy: FailurePolicy,
    /// Bounded ring of recent events; oldest dropped first.
    events: VecDeque<McEvent>,
    capacity: usize,
    /// Events recorded over the whole run (including dropped ones).
    recorded_total: u64,
    counts: PolicyCounts,
    degraded_cfg: DegradedConfig,
    /// Per-node times of recent transient failures (pruned to the window).
    health: FxHashMap<u32, VecDeque<Nanos>>,
    /// When degraded mode ends; `None` = healthy.
    degraded_until: Option<Nanos>,
    /// Jitter PRNG for retry backoff (seeded; deterministic runs).
    rng: StdRng,
}

impl Default for FailureState {
    fn default() -> Self {
        FailureState::new(FailurePolicy::default())
    }
}

impl FailureState {
    /// Creates state with the given policy, default degraded triggers and
    /// the default event capacity.
    pub fn new(policy: FailurePolicy) -> Self {
        FailureState::with_config(policy, DegradedConfig::default(), 0x5EED_CAFE)
    }

    /// Creates state with explicit degraded-mode triggers and backoff
    /// jitter seed.
    pub fn with_config(policy: FailurePolicy, degraded: DegradedConfig, seed: u64) -> Self {
        FailureState {
            policy,
            events: VecDeque::new(),
            capacity: DEFAULT_EVENT_CAPACITY,
            recorded_total: 0,
            counts: PolicyCounts::default(),
            degraded_cfg: degraded,
            health: FxHashMap::default(),
            degraded_until: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Changes the event-ring capacity (existing overflow is trimmed).
    pub fn set_event_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.events.len() > self.capacity {
            self.events.pop_front();
        }
    }

    /// The event-ring capacity.
    pub fn event_capacity(&self) -> usize {
        self.capacity
    }

    /// The active policy.
    pub fn policy(&self) -> FailurePolicy {
        self.policy
    }

    /// Changes the policy.
    pub fn set_policy(&mut self, policy: FailurePolicy) {
        self.policy = policy;
    }

    /// The backoff jitter PRNG (the runtime draws retry jitter here so
    /// the whole run shares one deterministic stream).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Records a terminal failure event under the active policy.
    pub fn record(&mut self, addr: VfMemAddr, at: Nanos) {
        self.recorded_total += 1;
        match self.policy {
            FailurePolicy::HandleMce => self.counts.mce += 1,
            FailurePolicy::PageFaultFallback => self.counts.fallback += 1,
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(McEvent { addr, at });
    }

    /// The retained events, oldest first (at most
    /// [`FailureState::event_capacity`] of them).
    pub fn events(&self) -> impl Iterator<Item = &McEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Events recorded over the whole run, including ones the ring has
    /// since dropped.
    pub fn recorded_total(&self) -> u64 {
        self.recorded_total
    }

    /// Per-policy terminal-failure counters.
    pub fn policy_counts(&self) -> PolicyCounts {
        self.counts
    }

    /// Counts a failure routed through the page-fault fallback. Unlike
    /// [`FailureState::record`], no machine-check event is retained —
    /// the whole point of the fallback is that no MCE is raised.
    pub fn note_fallback(&mut self) {
        self.counts.fallback += 1;
    }

    /// Counts one slab re-replicated after a permanent node loss.
    pub fn note_rereplication(&mut self) {
        self.counts.rereplications += 1;
    }

    /// Drops all retained events (counters are preserved).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Notes a *transient* failure on `node` at simulated time `now` and
    /// returns `true` if this pushed the runtime into (or extended)
    /// degraded mode.
    pub fn note_transient(&mut self, node: u32, now: Nanos) -> bool {
        if !self.degraded_cfg.enabled {
            return false;
        }
        let window = self.degraded_cfg.window;
        let recent = self.health.entry(node).or_default();
        recent.push_back(now);
        while let Some(&front) = recent.front() {
            if front + window < now {
                recent.pop_front();
            } else {
                break;
            }
        }
        if recent.len() as u32 >= self.degraded_cfg.failure_threshold {
            self.degraded_until = Some(now + self.degraded_cfg.cooloff);
            return true;
        }
        false
    }

    /// Whether the runtime is degraded at simulated time `now`.
    pub fn is_degraded(&self, now: Nanos) -> bool {
        self.degraded_until.is_some_and(|until| now < until)
    }

    /// Recent transient-failure count for `node` (un-pruned; diagnostic).
    pub fn node_failure_count(&self, node: u32) -> usize {
        self.health.get(&node).map_or(0, VecDeque::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_inspect() {
        let mut st = FailureState::new(FailurePolicy::PageFaultFallback);
        assert_eq!(st.policy(), FailurePolicy::PageFaultFallback);
        st.record(VfMemAddr::new(0x1000), Nanos::micros(5));
        assert_eq!(st.event_count(), 1);
        assert_eq!(st.events().next().unwrap().addr, VfMemAddr::new(0x1000));
        st.set_policy(FailurePolicy::HandleMce);
        assert_eq!(st.policy(), FailurePolicy::HandleMce);
    }

    #[test]
    fn default_policy_is_mce() {
        assert_eq!(FailurePolicy::default(), FailurePolicy::HandleMce);
    }

    #[test]
    fn event_ring_is_bounded() {
        let mut st = FailureState::new(FailurePolicy::HandleMce);
        st.set_event_capacity(8);
        for i in 0..100u64 {
            st.record(VfMemAddr::new(i * 0x1000), Nanos::from_ns(i));
        }
        assert_eq!(st.event_count(), 8);
        assert_eq!(st.recorded_total(), 100);
        // Oldest dropped: the ring holds the last 8.
        let first = st.events().next().unwrap();
        assert_eq!(first.addr, VfMemAddr::new(92 * 0x1000));
        // Shrinking trims from the front.
        st.set_event_capacity(2);
        assert_eq!(st.event_count(), 2);
        assert_eq!(st.events().next().unwrap().addr, VfMemAddr::new(98 * 0x1000));
        st.clear();
        assert_eq!(st.event_count(), 0);
        assert_eq!(st.recorded_total(), 100, "counters survive clear");
    }

    #[test]
    fn per_policy_counters() {
        let mut st = FailureState::new(FailurePolicy::HandleMce);
        st.record(VfMemAddr::new(0), Nanos::ZERO);
        st.record(VfMemAddr::new(64), Nanos::ZERO);
        st.set_policy(FailurePolicy::PageFaultFallback);
        st.record(VfMemAddr::new(128), Nanos::ZERO);
        let counts = st.policy_counts();
        assert_eq!(counts.mce, 2);
        assert_eq!(counts.fallback, 1);
    }

    #[test]
    fn degraded_mode_enters_and_cools_off() {
        let cfg = DegradedConfig {
            enabled: true,
            failure_threshold: 3,
            window: Nanos::micros(100),
            cooloff: Nanos::micros(50),
        };
        let mut st = FailureState::with_config(FailurePolicy::HandleMce, cfg, 1);
        assert!(!st.note_transient(0, Nanos::micros(1)));
        assert!(!st.note_transient(0, Nanos::micros(2)));
        assert!(!st.is_degraded(Nanos::micros(2)));
        // Third failure within the window trips the threshold.
        assert!(st.note_transient(0, Nanos::micros(3)));
        assert!(st.is_degraded(Nanos::micros(3)));
        assert!(st.is_degraded(Nanos::micros(52)));
        // Past the cooloff with no further failures: healthy again.
        assert!(!st.is_degraded(Nanos::micros(54)));
    }

    #[test]
    fn window_prunes_old_failures() {
        let cfg = DegradedConfig {
            enabled: true,
            failure_threshold: 3,
            window: Nanos::micros(10),
            cooloff: Nanos::micros(50),
        };
        let mut st = FailureState::with_config(FailurePolicy::HandleMce, cfg, 1);
        // Three failures, but spread wider than the window each time.
        assert!(!st.note_transient(1, Nanos::micros(0)));
        assert!(!st.note_transient(1, Nanos::micros(20)));
        assert!(!st.note_transient(1, Nanos::micros(40)));
        assert!(!st.is_degraded(Nanos::micros(40)));
        assert_eq!(st.node_failure_count(1), 1, "window pruned to latest");
    }

    #[test]
    fn disabled_degraded_never_triggers() {
        let mut st = FailureState::with_config(
            FailurePolicy::HandleMce,
            DegradedConfig::disabled(),
            1,
        );
        for _ in 0..10 {
            assert!(!st.note_transient(0, Nanos::micros(1)));
        }
        assert!(!st.is_degraded(Nanos::micros(1)));
    }

    #[test]
    fn failures_are_tracked_per_node() {
        let cfg = DegradedConfig {
            enabled: true,
            failure_threshold: 2,
            window: Nanos::micros(100),
            cooloff: Nanos::micros(50),
        };
        let mut st = FailureState::with_config(FailurePolicy::HandleMce, cfg, 1);
        // One failure each on two nodes: neither node crosses its own
        // threshold.
        assert!(!st.note_transient(0, Nanos::micros(1)));
        assert!(!st.note_transient(1, Nanos::micros(2)));
        assert!(!st.is_degraded(Nanos::micros(2)));
        // Second failure on node 0 trips it.
        assert!(st.note_transient(0, Nanos::micros(3)));
    }
}
