//! Failure handling (§4.5).
//!
//! A slow or failed network is dangerous for coherence-based remote
//! memory: "the cache coherence protocol can result in a timeout due to
//! slow or failed network operations, which triggers a machine check
//! exception (MCE)". The paper offers two mitigations, both modelled here:
//!
//! * handle the MCE (Intel machine-check architecture), retrying or
//!   reporting to the operator — [`FailurePolicy::HandleMce`];
//! * fall back to page faults: mark the affected pages not-present so
//!   software regains control and can wait out the outage —
//!   [`FailurePolicy::PageFaultFallback`].
//!
//! Memory-node *data* loss is mitigated by replication during eviction
//! (see [`crate::EvictionHandler`] and [`crate::KonaRuntime`]'s replica
//! failover).

use kona_types::{Nanos, VfMemAddr};

/// How the runtime reacts when a remote fetch fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Record a machine-check event and surface the error to the caller
    /// (the default on hardware without MCE recovery).
    #[default]
    HandleMce,
    /// Mark the page not-present and retry through the page-fault path
    /// after the outage clears; the access is charged the fault cost plus
    /// one retry round-trip.
    PageFaultFallback,
}

/// A recorded machine-check event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McEvent {
    /// The VFMem address whose fill failed.
    pub addr: VfMemAddr,
    /// Application time at which the failure surfaced.
    pub at: Nanos,
}

/// Failure bookkeeping shared by the runtime.
#[derive(Debug, Clone, Default)]
pub struct FailureState {
    policy: FailurePolicy,
    events: Vec<McEvent>,
}

impl FailureState {
    /// Creates state with the given policy.
    pub fn new(policy: FailurePolicy) -> Self {
        FailureState {
            policy,
            events: Vec::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> FailurePolicy {
        self.policy
    }

    /// Changes the policy.
    pub fn set_policy(&mut self, policy: FailurePolicy) {
        self.policy = policy;
    }

    /// Records an event.
    pub fn record(&mut self, addr: VfMemAddr, at: Nanos) {
        self.events.push(McEvent { addr, at });
    }

    /// All recorded events.
    pub fn events(&self) -> &[McEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_inspect() {
        let mut st = FailureState::new(FailurePolicy::PageFaultFallback);
        assert_eq!(st.policy(), FailurePolicy::PageFaultFallback);
        st.record(VfMemAddr::new(0x1000), Nanos::micros(5));
        assert_eq!(st.events().len(), 1);
        assert_eq!(st.events()[0].addr, VfMemAddr::new(0x1000));
        st.set_policy(FailurePolicy::HandleMce);
        assert_eq!(st.policy(), FailurePolicy::HandleMce);
    }

    #[test]
    fn default_policy_is_mce() {
        assert_eq!(FailurePolicy::default(), FailurePolicy::HandleMce);
    }
}
