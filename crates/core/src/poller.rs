//! The Poller: completion processing for RDMA operations.
//!
//! "An additional component, the Poller, optimizes the RDMA communication
//! with the controller and with the memory nodes, by polling for RDMA
//! completions" (§4.1). The simulator executes chains synchronously, so
//! the Poller's job reduces to draining completions and accounting for
//! them — but routing every post through it keeps the component structure
//! (and its counters) faithful to the paper.

use kona_net::{Completion, Fabric, QueuePair, WorkRequest};
use kona_types::{Nanos, Result};

/// Polls for and accounts RDMA completions.
///
/// Completions land on the poller's [`QueuePair`]'s completion queue and
/// are drained by polling, as on real verbs hardware.
///
/// # Examples
///
/// ```
/// # use kona::Poller;
/// # use kona_net::{Fabric, NetworkModel, WorkRequest};
/// # use kona_types::RemoteAddr;
/// let mut fabric = Fabric::new(NetworkModel::connectx5());
/// fabric.add_node(0, 4096);
/// fabric.register(0, 0, 4096).unwrap();
/// let mut poller = Poller::new();
/// let wr = WorkRequest::write(1, RemoteAddr::new(0, 0), vec![0; 64]).signaled();
/// let (_, comps) = poller.post_and_poll(&mut fabric, vec![wr]).unwrap();
/// assert_eq!(comps.len(), 1);
/// assert_eq!(poller.completions(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Poller {
    qp: QueuePair,
    posts: u64,
    completions: u64,
}

impl Poller {
    /// Creates a poller with a fresh queue pair.
    pub fn new() -> Self {
        Poller::default()
    }

    /// Chains posted through this poller.
    pub fn posts(&self) -> u64 {
        self.posts
    }

    /// Completions drained.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Completions queued but not yet polled.
    pub fn pending(&self) -> usize {
        self.qp.pending()
    }

    /// Posts a chain, enqueues its completions on the queue pair, and
    /// polls them all.
    ///
    /// # Errors
    ///
    /// Propagates any [`Fabric::post`] error.
    pub fn post_and_poll(
        &mut self,
        fabric: &mut Fabric,
        chain: Vec<WorkRequest>,
    ) -> Result<(Nanos, Vec<Completion>)> {
        let (time, completions) = fabric.post(chain)?;
        self.posts += 1;
        for c in completions {
            self.qp.push_completion(c);
        }
        let mut polled = Vec::with_capacity(self.qp.pending());
        while let Some(c) = self.qp.poll() {
            polled.push(c);
        }
        self.completions += polled.len() as u64;
        Ok((time, polled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_net::NetworkModel;
    use kona_types::RemoteAddr;

    #[test]
    fn counters_accumulate() {
        let mut fabric = Fabric::new(NetworkModel::connectx5());
        fabric.add_node(0, 4096);
        fabric.register(0, 0, 4096).unwrap();
        let mut poller = Poller::new();
        for i in 0..3u64 {
            let wr = WorkRequest::write(i, RemoteAddr::new(0, 0), vec![0; 64]).signaled();
            poller.post_and_poll(&mut fabric, vec![wr]).unwrap();
        }
        assert_eq!(poller.posts(), 3);
        assert_eq!(poller.completions(), 3);
    }

    #[test]
    fn errors_propagate_without_counting() {
        let mut fabric = Fabric::new(NetworkModel::connectx5());
        let mut poller = Poller::new();
        let wr = WorkRequest::write(0, RemoteAddr::new(9, 0), vec![0; 64]);
        assert!(poller.post_and_poll(&mut fabric, vec![wr]).is_err());
        assert_eq!(poller.posts(), 0);
    }
}
