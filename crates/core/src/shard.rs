//! The shard-parallel simulation engine.
//!
//! One Kona simulation is a long serial chain: every access walks the
//! CPU caches, the coherence directory, the FPGA's FMem and translation
//! state and (on a miss) the fabric — all single-threaded. PR 2's
//! [`par_map`](kona_types::par_map) only parallelizes *across* runs, so a
//! single big experiment point still takes a single core.
//!
//! This module splits one run. A [`ShardPlan`] stripes the page space
//! into a fixed number of **logical shards** (page `p` → shard
//! `p % logical`); each logical shard owns a complete vertical slice of
//! the runtime — its own eviction handler and shipment journal, its own
//! coherence directory and FMem partition, its own fabric, fault-injector
//! and RNG streams (seeded by
//! [`derive_shard_seed`](kona_types::derive_shard_seed)), its own
//! telemetry registry and trace-span ring. Shards share nothing, so
//! [`ShardedRun::execute`] can run them on `--shards N` worker threads
//! and merge results **in shard order**, making the combined output
//! byte-identical at every worker count:
//!
//! * counters and stats merge by field ([`RuntimeStats::merge`] and
//!   friends);
//! * metric registries absorb in shard order into one [`MetricsDump`];
//! * time-series windows merge index-wise ([`SeriesData::merge`]);
//! * trace spans merge by `(start, shard)`
//!   ([`merge_span_streams`](kona_telemetry::merge_span_streams));
//! * shipment journals sequence by `(time, shard)`
//!   ([`sequence_streams`](kona_types::sequence_streams)).
//!
//! The logical shard count is part of the *model* (it decides which pages
//! share a directory partition), so it stays fixed while `--shards`
//! varies; [`ShardReport::fingerprint`] captures the merged history and
//! is the byte-equality witness used by the determinism tests and CI.
//!
//! # Examples
//!
//! ```
//! use kona::{ClusterConfig, ShardedRun};
//! use kona_types::{ShardPlan, Shards};
//!
//! let run = ShardedRun::new(ClusterConfig::small(), 256).with_plan(ShardPlan::new(4));
//! let script = kona::seeded_script(256, 2_000, 42);
//! let serial = run.execute(&script, Shards::serial()).unwrap();
//! let wide = run.execute(&script, Shards::new(4)).unwrap();
//! assert_eq!(serial.fingerprint(), wide.fingerprint());
//! ```

use crate::config::{ClusterConfig, DataMode};
use crate::eviction::EvictionStats;
use crate::failure::FailurePolicy;
use crate::log::ShipmentBatch;
use crate::runtime::{KonaRuntime, RemoteMemoryRuntime};
use crate::stats::RuntimeStats;
use kona_coherence::CoherenceStats;
use kona_fpga::FpgaStats;
use kona_net::{FaultStats, NetStats};
use kona_telemetry::{
    host_scope, merge_span_streams, MetricsDump, Profile, Registry, SeriesData, SpanEvent,
    Telemetry,
};
use kona_types::rng::{Rng, StdRng};
use kona_types::{
    par_map, sequence_streams, Jobs, Nanos, Result, ShardPlan, Shards, VirtAddr, CACHE_LINE_SIZE,
    FxHashMap, LINES_PER_PAGE_4K, PAGE_SIZE_4K,
};

/// One scripted operation against the sharded page space.
///
/// Pages are *global* logical page ids in `0..pages`; the engine routes
/// each op to the owning shard ([`ShardPlan::shard_of_page`]) while
/// preserving per-shard order, so a script is a deterministic workload
/// regardless of worker count. Accesses stay within one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOp {
    /// Store `len` bytes of `fill` at line `line` of page `page`.
    Write {
        /// Global logical page id.
        page: u64,
        /// Cache line within the page (`0..64`).
        line: u32,
        /// Bytes stored from the line start (`1..=64`).
        len: u32,
        /// Payload byte.
        fill: u8,
    },
    /// Load `len` bytes from line `line` of page `page` (verified against
    /// a model when data tracking is on).
    Read {
        /// Global logical page id.
        page: u64,
        /// Cache line within the page (`0..64`).
        line: u32,
        /// Bytes loaded from the line start (`1..=64`).
        len: u32,
    },
    /// Flush all dirty state (broadcast to every shard at this point of
    /// the script).
    Sync,
}

/// A compact, order-preserving digest of one flushed log batch, used in
/// the sequenced shipment stream so the merged journal history can be
/// fingerprinted without retaining payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipmentDigest {
    /// Destination memory node (within the shard's fabric).
    pub node: u32,
    /// Encoded batch length in bytes.
    pub bytes: u64,
    /// FNV-1a hash of the encoded batch.
    pub checksum: u64,
}

/// Generates a deterministic mixed read/write script over `pages` global
/// pages: ~60 % line-granularity stores with varying lengths and fills,
/// ~40 % loads, a global [`ShardOp::Sync`] every 1024 ops and one at the
/// end. The same `(pages, ops, seed)` always yields the same script.
pub fn seeded_script(pages: u64, ops: usize, seed: u64) -> Vec<ShardOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut script = Vec::with_capacity(ops + ops / 1024 + 1);
    for i in 0..ops {
        let page = rng.gen_range(0..pages.max(1));
        let line = rng.gen_range(0..LINES_PER_PAGE_4K as u32);
        if rng.gen_bool(0.6) {
            script.push(ShardOp::Write {
                page,
                line,
                len: rng.gen_range(8..=CACHE_LINE_SIZE as u32),
                fill: rng.gen(),
            });
        } else {
            script.push(ShardOp::Read {
                page,
                line,
                len: CACHE_LINE_SIZE as u32,
            });
        }
        if i % 1024 == 1023 {
            script.push(ShardOp::Sync);
        }
    }
    script.push(ShardOp::Sync);
    script
}

/// What one logical shard produced; merged in shard order by
/// [`ShardedRun::execute`]. Everything here is `Send` (plain data), so
/// outcomes can cross worker-thread boundaries.
#[derive(Debug)]
struct ShardOutcome {
    stats: RuntimeStats,
    eviction: EvictionStats,
    fpga: FpgaStats,
    coherence: CoherenceStats,
    net: NetStats,
    faults: FaultStats,
    dump: MetricsDump,
    series: Option<SeriesData>,
    events: Vec<SpanEvent>,
    profile: Option<Profile>,
    shipments: Vec<(Nanos, ShipmentDigest)>,
    ops: u64,
    failed: u64,
    app_time: Nanos,
}

/// The merged result of a sharded run.
///
/// Every field is a deterministic, shard-order merge of the per-shard
/// histories — independent of the worker count that produced them.
/// [`ShardReport::fingerprint`] folds the lot into one string for
/// byte-equality assertions.
#[derive(Debug)]
pub struct ShardReport {
    /// The logical decomposition that ran.
    pub plan: ShardPlan,
    /// Global pages in the run's page space.
    pub pages: u64,
    /// Field-wise sum of every shard's runtime counters.
    pub stats: RuntimeStats,
    /// Field-wise sum of every shard's eviction counters.
    pub eviction: EvictionStats,
    /// Field-wise sum of every shard's FPGA counters.
    pub fpga: FpgaStats,
    /// Field-wise sum of every shard's coherence-directory counters.
    pub coherence: CoherenceStats,
    /// Field-wise sum of every shard's fabric counters.
    pub net: NetStats,
    /// Field-wise sum of every shard's injected-fault counters.
    pub faults: FaultStats,
    /// All shard metric registries absorbed in shard order (includes the
    /// per-shard `shard.<i>.ops` counters).
    pub dump: MetricsDump,
    /// Index-wise merge of the shard time-series (when windows were on).
    pub series: Option<SeriesData>,
    /// Trace spans merged by `(start, shard)` (when tracing was on).
    pub events: Vec<SpanEvent>,
    /// Path-keyed merge of the per-shard simulated-time profiles (when
    /// tracing was on). Each shard folds its own span stream — span ids
    /// are per-telemetry, so folding before the merge is what keeps
    /// paths unambiguous — and path-keyed addition is order-independent,
    /// so the merged profile is byte-identical at any worker count.
    pub profile: Option<Profile>,
    /// Shipment-journal batches sequenced by `(flush time, shard)`.
    pub shipments: Vec<(Nanos, u32, ShipmentDigest)>,
    /// Ops executed by each logical shard (skew diagnosis).
    pub shard_ops: Vec<u64>,
    /// Ops per shard that failed on an injected fault (tolerated, like
    /// the chaos workloads; the final sync still has to succeed).
    pub shard_failed: Vec<u64>,
    /// Slowest shard's simulated application time — the run's simulated
    /// completion time under perfect shard parallelism.
    pub app_time_max: Nanos,
}

impl ShardReport {
    /// Total ops executed across all shards.
    pub fn total_ops(&self) -> u64 {
        self.shard_ops.iter().sum()
    }

    /// Ratio of the busiest shard's op count to the lightest's (1.0 is
    /// perfectly balanced; the health-monitor example alerts above 2.0).
    pub fn ops_skew(&self) -> f64 {
        let max = self.shard_ops.iter().copied().max().unwrap_or(0);
        let min = self.shard_ops.iter().copied().min().unwrap_or(0);
        if min == 0 {
            return if max == 0 { 1.0 } else { f64::INFINITY };
        }
        max as f64 / min as f64
    }

    /// A deterministic digest of the merged run history: per-shard op and
    /// time streams, every merged counter block, the sequenced shipment
    /// journal and the metric dump. Two runs of the same script with the
    /// same plan produce byte-identical fingerprints at **any** worker
    /// count — this is the equality the determinism suite and the CI
    /// shard-smoke job assert.
    pub fn fingerprint(&self) -> String {
        let mut ship_hash = FNV_OFFSET;
        for &(at, shard, digest) in &self.shipments {
            for limb in [
                at.as_ns(),
                u64::from(shard),
                u64::from(digest.node),
                digest.bytes,
                digest.checksum,
            ] {
                ship_hash = fnv_fold(ship_hash, limb);
            }
        }
        let mut dump_hash = FNV_OFFSET;
        for (name, value) in &self.dump.counters {
            dump_hash = fnv_bytes(dump_hash, name.as_bytes());
            dump_hash = fnv_fold(dump_hash, *value);
        }
        let mut span_hash = FNV_OFFSET;
        for event in &self.events {
            span_hash = fnv_fold(span_hash, event.start.as_ns());
            span_hash = fnv_fold(span_hash, event.duration.as_ns());
        }
        let s = &self.stats;
        format!(
            "shard-run logical={} pages={} ops={:?} failed={:?} app_ns={} wall_ns={} \
             hits={} fetches={} evicted={} wb={} dirty={} retries={} failovers={} \
             fallback={} degraded={} mce={} | ev lines={} bytes={} flushes={} \
             fretry={} abandoned={} skipped={} | net req={} wire={} faulted={} \
             | faults drop={} corrupt={} timeout={} down={} spike={} \
             | fpga fmem={} fetch={} wbobs={} snoops={} | coh dir={} inv={} wb={} \
             | ships={} h={:016x} spans={} h={:016x} dump h={:016x}",
            self.plan.logical(),
            self.pages,
            self.shard_ops,
            self.shard_failed,
            s.app_time.as_ns(),
            self.app_time_max.as_ns(),
            s.local_hits,
            s.remote_fetches,
            s.pages_evicted,
            s.writeback_bytes,
            s.app_dirty_bytes,
            s.retries,
            s.failovers,
            s.fallback_waits,
            s.degraded_entries,
            s.mce_events,
            self.eviction.lines_written,
            self.eviction.dirty_bytes_written,
            self.eviction.flushes,
            self.eviction.flush_retries,
            self.eviction.abandoned_flushes,
            self.eviction.skipped_targets,
            self.net.requests,
            self.net.wire_bytes,
            self.net.faulted_posts,
            self.faults.dropped,
            self.faults.corrupted,
            self.faults.timed_out,
            self.faults.node_down_rejections,
            self.faults.spiked_chains,
            self.fpga.fmem_hits,
            self.fpga.remote_fetches,
            self.fpga.writebacks_observed,
            self.fpga.page_snoops,
            self.coherence.directory_transactions,
            self.coherence.invalidations,
            self.coherence.writebacks,
            self.shipments.len(),
            ship_hash,
            self.events.len(),
            span_hash,
            dump_hash,
        )
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fnv_fold(hash: u64, value: u64) -> u64 {
    fnv_bytes(hash, &value.to_le_bytes())
}

/// A single simulation partitioned over logical shards.
///
/// Configure once, [`execute`](ShardedRun::execute) many times: the same
/// script produces the same [`ShardReport::fingerprint`] at every
/// [`Shards`] width. See the [module documentation](self) for the
/// decomposition rules.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    config: ClusterConfig,
    plan: ShardPlan,
    pages: u64,
    window_ns: u64,
    trace_capacity: usize,
    policy: Option<FailurePolicy>,
}

impl ShardedRun {
    /// A sharded run over `pages` global pages with the default logical
    /// decomposition, no time-series windows and no tracing. Each shard
    /// slices `config` with [`ClusterConfig::shard_slice`].
    pub fn new(config: ClusterConfig, pages: u64) -> Self {
        ShardedRun {
            config,
            plan: ShardPlan::default(),
            pages: pages.max(1),
            window_ns: 0,
            trace_capacity: 0,
            policy: None,
        }
    }

    /// Replaces the logical decomposition (model change: per-shard
    /// histories differ across plans, not across worker counts).
    #[must_use]
    pub fn with_plan(mut self, plan: ShardPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Enables per-shard time-series collection with `window_ns` windows;
    /// the merged report carries the index-wise merge.
    #[must_use]
    pub fn with_windows(mut self, window_ns: u64) -> Self {
        self.window_ns = window_ns;
        self
    }

    /// Enables per-shard span tracing with a ring of `capacity` events;
    /// the merged report carries the `(start, shard)`-ordered timeline.
    #[must_use]
    pub fn with_tracing(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Installs a failure policy on every shard runtime (required for
    /// fault plans that take nodes down — the chaos workloads use
    /// [`FailurePolicy::PageFaultFallback`]).
    #[must_use]
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// The logical decomposition in use.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// Routes `script` to the owning shards and runs every logical shard
    /// to completion on up to `shards` worker threads, then merges the
    /// per-shard histories in shard order.
    ///
    /// # Errors
    ///
    /// Propagates the first runtime error from any shard (allocation
    /// exhaustion, unrecoverable network failure).
    ///
    /// # Panics
    ///
    /// Panics if data verification fails — a read observing bytes that
    /// differ from the model is a simulator bug, not an input error.
    pub fn execute(&self, script: &[ShardOp], shards: Shards) -> Result<ShardReport> {
        let logical = self.plan.logical() as usize;
        let mut streams: Vec<Vec<ShardOp>> = vec![Vec::new(); logical];
        for &op in script {
            match op {
                ShardOp::Write { page, .. } | ShardOp::Read { page, .. } => {
                    streams[self.plan.shard_of_page(page) as usize].push(op);
                }
                ShardOp::Sync => {
                    for stream in &mut streams {
                        stream.push(op);
                    }
                }
            }
        }

        let outcomes: Vec<Result<ShardOutcome>> =
            par_map(Jobs::new(shards.get()), streams, |shard, stream| {
                self.run_shard(shard as u32, &stream)
            });
        let mut merged: Vec<ShardOutcome> = Vec::with_capacity(logical);
        for outcome in outcomes {
            merged.push(outcome?);
        }

        let mut stats = RuntimeStats::default();
        let mut eviction = EvictionStats::default();
        let mut fpga = FpgaStats::default();
        let mut coherence = CoherenceStats::default();
        let mut net = NetStats::default();
        let mut faults = FaultStats::default();
        let mut registry = Registry::new();
        let mut series: Option<SeriesData> = None;
        let mut profile: Option<Profile> = None;
        let mut app_time_max = Nanos::ZERO;
        let _wall = host_scope("shard_merge");
        for outcome in &merged {
            stats.merge(&outcome.stats);
            eviction.merge(&outcome.eviction);
            fpga.merge(&outcome.fpga);
            coherence.merge(&outcome.coherence);
            net.merge(&outcome.net);
            faults.merge(&outcome.faults);
            registry.absorb(&outcome.dump);
            if let Some(shard_series) = &outcome.series {
                match &mut series {
                    Some(all) => all.merge(shard_series),
                    None => series = Some(shard_series.clone()),
                }
            }
            if let Some(shard_profile) = &outcome.profile {
                match &mut profile {
                    Some(all) => all.merge(shard_profile),
                    None => profile = Some(shard_profile.clone()),
                }
            }
            app_time_max = app_time_max.max(outcome.app_time);
        }
        let shard_ops: Vec<u64> = merged.iter().map(|o| o.ops).collect();
        let shard_failed: Vec<u64> = merged.iter().map(|o| o.failed).collect();
        let mut event_streams = Vec::with_capacity(logical);
        let mut shipment_streams = Vec::with_capacity(logical);
        for outcome in merged {
            event_streams.push(outcome.events);
            shipment_streams.push(outcome.shipments);
        }
        Ok(ShardReport {
            plan: self.plan,
            pages: self.pages,
            stats,
            eviction,
            fpga,
            coherence,
            net,
            faults,
            dump: registry.dump(),
            series,
            profile,
            events: merge_span_streams(event_streams),
            shipments: sequence_streams(shipment_streams),
            shard_ops,
            shard_failed,
            app_time_max,
        })
    }

    /// Runs one logical shard's op stream to completion on its own
    /// vertical slice of the runtime.
    fn run_shard(&self, shard: u32, stream: &[ShardOp]) -> Result<ShardOutcome> {
        let slice = self.config.shard_slice(shard, self.plan.logical());
        let verify = matches!(slice.data_mode, DataMode::Tracked);
        let telemetry = if self.trace_capacity > 0 {
            Telemetry::with_tracing(self.trace_capacity)
        } else {
            Telemetry::disabled()
        };
        if self.window_ns > 0 {
            telemetry.enable_timeseries(self.window_ns);
        }
        telemetry.set_trace_id_base((u64::from(shard) + 1) << 32);
        let ops_counter = telemetry.counter_interned("shard.", shard, "ops");

        let mut rt = KonaRuntime::with_telemetry(slice, telemetry.clone())?;
        if let Some(policy) = self.policy {
            rt.set_failure_policy(policy);
        }
        rt.enable_shipment_journal();
        let owned = self.plan.pages_owned(shard, self.pages).max(1);
        let base = rt.allocate(owned * PAGE_SIZE_4K)?;

        let mut model: FxHashMap<u64, u8> = FxHashMap::default();
        let mut buf = [0u8; CACHE_LINE_SIZE as usize];
        let mut line_data = [0u8; CACHE_LINE_SIZE as usize];
        let mut clock = Nanos::ZERO;
        let mut ops = 0u64;
        let addr_of = |page: u64, line: u32| -> VirtAddr {
            base + self.plan.local_index(page) * PAGE_SIZE_4K
                + u64::from(line) * CACHE_LINE_SIZE
        };
        let mut failed = 0u64;
        for &op in stream {
            // Injected faults fail individual ops (counted, like the
            // chaos workloads); the final sync below must still succeed.
            match op {
                ShardOp::Write { page, line, len, fill } => {
                    let addr = addr_of(page, line);
                    line_data[..len as usize].fill(fill);
                    match rt.write_bytes(addr, &line_data[..len as usize]) {
                        Ok(t) => {
                            clock += t;
                            if verify {
                                for j in 0..u64::from(len) {
                                    model.insert(addr.raw() + j, fill);
                                }
                            }
                        }
                        Err(_) => failed += 1,
                    }
                }
                ShardOp::Read { page, line, len } => {
                    let addr = addr_of(page, line);
                    match rt.read_bytes(addr, &mut buf[..len as usize]) {
                        Ok(t) => {
                            clock += t;
                            if verify {
                                for j in 0..u64::from(len) {
                                    if let Some(&expect) = model.get(&(addr.raw() + j)) {
                                        assert_eq!(
                                            buf[j as usize], expect,
                                            "shard {shard} read mismatch at {addr:?}+{j}"
                                        );
                                    }
                                }
                            }
                        }
                        Err(_) => failed += 1,
                    }
                }
                ShardOp::Sync => match rt.sync() {
                    Ok(t) => clock += t,
                    Err(_) => failed += 1,
                },
            }
            ops += 1;
            ops_counter.inc();
            if self.window_ns > 0 {
                telemetry.observe_time(clock);
            }
        }
        clock += rt.sync()?;

        let mut batch = ShipmentBatch::default();
        rt.drain_log_shipments_into(&mut batch);
        let shipments: Vec<(Nanos, ShipmentDigest)> = batch
            .iter()
            .map(|(node, at, encoded)| {
                (
                    at,
                    ShipmentDigest {
                        node,
                        bytes: encoded.len() as u64,
                        checksum: fnv_bytes(FNV_OFFSET, encoded),
                    },
                )
            })
            .collect();

        // Fold this shard's profile from its own span stream *before* the
        // merge: span ids are allocated per telemetry instance, so parent
        // links only resolve against the stream that produced them.
        let events = telemetry.events();
        let profile = (self.trace_capacity > 0).then(|| Profile::from_spans(&events));

        Ok(ShardOutcome {
            stats: rt.stats(),
            eviction: rt.eviction_stats(),
            fpga: rt.fpga().stats(),
            coherence: rt.fpga().coherence_stats(),
            net: rt.fabric_mut().stats(),
            faults: rt.fabric_mut().fault_stats(),
            dump: telemetry.dump(),
            series: telemetry.series(),
            events,
            profile,
            shipments,
            ops,
            failed,
            app_time: clock,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run(pages: u64) -> ShardedRun {
        ShardedRun::new(ClusterConfig::small(), pages).with_plan(ShardPlan::new(4))
    }

    #[test]
    fn worker_count_does_not_change_the_fingerprint() {
        let run = small_run(64);
        let script = seeded_script(64, 1500, 7);
        let serial = run.execute(&script, Shards::serial()).unwrap();
        let two = run.execute(&script, Shards::new(2)).unwrap();
        let wide = run.execute(&script, Shards::new(8)).unwrap();
        assert_eq!(serial.fingerprint(), two.fingerprint());
        assert_eq!(serial.fingerprint(), wide.fingerprint());
        // Syncs broadcast to every shard; point ops run exactly once.
        let syncs = script.iter().filter(|o| matches!(o, ShardOp::Sync)).count();
        assert_eq!(serial.total_ops() as usize, script.len() - syncs + syncs * 4);
    }

    #[test]
    fn shard_ops_counters_reach_the_dump() {
        let run = small_run(32);
        let script = seeded_script(32, 400, 11);
        let report = run.execute(&script, Shards::serial()).unwrap();
        for shard in 0..4u32 {
            let name = format!("shard.{shard}.ops");
            assert!(
                report.dump.counters.get(&name).copied().unwrap_or(0) > 0,
                "{name} missing from merged dump"
            );
        }
        assert!(report.ops_skew() >= 1.0);
        assert!(report.stats.app_dirty_bytes > 0);
    }

    #[test]
    fn plans_change_history_but_stay_deterministic() {
        let script = seeded_script(64, 800, 3);
        let four = small_run(64).execute(&script, Shards::serial()).unwrap();
        let eight = ShardedRun::new(ClusterConfig::small(), 64)
            .with_plan(ShardPlan::new(8))
            .execute(&script, Shards::new(3))
            .unwrap();
        assert_ne!(four.fingerprint(), eight.fingerprint());
        let again = ShardedRun::new(ClusterConfig::small(), 64)
            .with_plan(ShardPlan::new(8))
            .execute(&script, Shards::serial())
            .unwrap();
        assert_eq!(eight.fingerprint(), again.fingerprint());
    }

    #[test]
    fn windows_and_tracing_merge_deterministically() {
        let run = small_run(48)
            .with_windows(kona_telemetry::DEFAULT_WINDOW_NS)
            .with_tracing(1 << 14);
        let script = seeded_script(48, 600, 19);
        let serial = run.execute(&script, Shards::serial()).unwrap();
        let wide = run.execute(&script, Shards::new(4)).unwrap();
        assert_eq!(serial.fingerprint(), wide.fingerprint());
        assert!(serial.series.is_some());
        assert!(!serial.events.is_empty());
        let serial_json = serial.series.unwrap().to_json();
        let wide_json = wide.series.unwrap().to_json();
        assert_eq!(serial_json, wide_json);
    }
}
