//! Cluster and latency configuration.

use kona_fpga::NextPagePrefetcher;
use kona_types::{ByteSize, KonaError, Nanos, Result, PAGE_SIZE_4K};

/// Whether the runtime moves real bytes or only simulates timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataMode {
    /// Full data fidelity: remote pools hold real bytes; reads return what
    /// was written. Used by correctness tests and examples.
    #[default]
    Tracked,
    /// Timing only: transfers are charged but payloads are zeros. Used by
    /// large benchmark sweeps where holding the working set in host memory
    /// would be wasteful.
    Timing,
}

/// Local memory latencies of the reference architecture (§4.3).
///
/// CMem is CPU-attached DRAM; FMem is FPGA-attached DRAM reached over the
/// coherent interconnect, "1.5X slower than accessing the local socket"
/// being the paper's NUMA comparison point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyProfile {
    /// Access served by the CPU cache hierarchy.
    pub cpu_cache_hit: Nanos,
    /// CPU-attached DRAM access.
    pub cmem: Nanos,
    /// Line fill from FMem over the coherent interconnect.
    pub fmem_fill: Nanos,
}

impl Default for LatencyProfile {
    fn default() -> Self {
        LatencyProfile {
            cpu_cache_hit: Nanos::from_ns(2),
            cmem: Nanos::from_ns(85),
            fmem_fill: Nanos::from_ns(250),
        }
    }
}

/// Configuration of a simulated rack: one compute node plus memory nodes.
///
/// # Examples
///
/// ```
/// # use kona::ClusterConfig;
/// let cfg = ClusterConfig::small();
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of memory nodes.
    pub memory_nodes: u32,
    /// Capacity of each memory node in bytes.
    pub node_capacity: ByteSize,
    /// Slab size for coarse-grain controller allocations.
    pub slab_size: ByteSize,
    /// Local DRAM cache capacity in pages (FMem for Kona, the page cache
    /// for VM baselines).
    pub local_cache_pages: usize,
    /// FMem associativity (Kona only; §4.4 uses 4).
    pub fmem_ways: usize,
    /// Replication factor for evicted data (§4.5); 1 = no replication.
    pub replicas: usize,
    /// CPU cache capacity in lines, as seen by the coherence directory.
    pub cpu_cache_lines: usize,
    /// Number of CPU cores (coherence agents) the FPGA's directory
    /// observes; cores share VFMem coherently.
    pub cpu_agents: usize,
    /// Prefetcher for Kona's FPGA.
    pub prefetcher: NextPagePrefetcher,
    /// Latency profile.
    pub latency: LatencyProfile,
    /// Data fidelity mode.
    pub data_mode: DataMode,
    /// Ring-buffer capacity of each node's cache-line log, in bytes.
    pub log_capacity: ByteSize,
}

impl ClusterConfig {
    /// A laptop-scale cluster for tests and examples: two 32 MiB memory
    /// nodes, 1 MiB slabs, a 1024-page (4 MiB) local cache.
    pub fn small() -> Self {
        ClusterConfig {
            memory_nodes: 2,
            node_capacity: ByteSize::mib(32),
            slab_size: ByteSize::mib(1),
            local_cache_pages: 1024,
            fmem_ways: 4,
            replicas: 1,
            cpu_cache_lines: 8192,
            cpu_agents: 1,
            prefetcher: NextPagePrefetcher::disabled(),
            latency: LatencyProfile::default(),
            data_mode: DataMode::Tracked,
            log_capacity: ByteSize::kib(64),
        }
    }

    /// Returns the configuration with a different local cache size.
    #[must_use]
    pub fn with_local_cache_pages(mut self, pages: usize) -> Self {
        self.local_cache_pages = pages;
        self
    }

    /// Returns the configuration with a different replication factor.
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Returns the configuration in timing-only mode.
    #[must_use]
    pub fn timing_only(mut self) -> Self {
        self.data_mode = DataMode::Timing;
        self
    }

    /// Returns the configuration with the given prefetcher.
    #[must_use]
    pub fn with_prefetcher(mut self, prefetcher: NextPagePrefetcher) -> Self {
        self.prefetcher = prefetcher;
        self
    }

    /// Returns the configuration with `cores` CPU coherence agents.
    #[must_use]
    pub fn with_cpu_agents(mut self, cores: usize) -> Self {
        self.cpu_agents = cores;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::InvalidConfig`] when sizes are zero, the slab
    /// size is not page-aligned or exceeds the node capacity, the replica
    /// count is zero or exceeds the node count, or the local cache is not
    /// divisible into FMem sets.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| Err(KonaError::InvalidConfig(msg));
        if self.memory_nodes == 0 {
            return fail("at least one memory node required".into());
        }
        if self.slab_size.bytes() == 0 || !self.slab_size.bytes().is_multiple_of(PAGE_SIZE_4K) {
            return fail(format!(
                "slab size {} must be a non-zero multiple of 4 KiB",
                self.slab_size
            ));
        }
        if self.slab_size > self.node_capacity {
            return fail("slab larger than node capacity".into());
        }
        if self.replicas == 0 || self.replicas > self.memory_nodes as usize {
            return fail(format!(
                "replicas {} must be in 1..={}",
                self.replicas, self.memory_nodes
            ));
        }
        if self.fmem_ways == 0
            || (self.local_cache_pages > 0 && !self.local_cache_pages.is_multiple_of(self.fmem_ways))
        {
            return fail(format!(
                "local cache pages {} not divisible into {}-way sets",
                self.local_cache_pages, self.fmem_ways
            ));
        }
        if self.cpu_cache_lines == 0 {
            return fail("cpu cache must hold at least one line".into());
        }
        if self.cpu_agents == 0 {
            return fail("at least one CPU agent required".into());
        }
        if self.log_capacity.bytes() < 1024 {
            return fail("cache-line log must be at least 1 KiB".into());
        }
        Ok(())
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_is_valid() {
        assert!(ClusterConfig::small().validate().is_ok());
    }

    #[test]
    fn invalid_configs_detected() {
        let mut c = ClusterConfig::small();
        c.memory_nodes = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::small();
        c.slab_size = ByteSize(1000);
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::small();
        c.replicas = 5;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::small();
        c.local_cache_pages = 7;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::small();
        c.log_capacity = ByteSize(100);
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders() {
        let c = ClusterConfig::small()
            .with_local_cache_pages(64)
            .with_replicas(2)
            .timing_only();
        assert_eq!(c.local_cache_pages, 64);
        assert_eq!(c.replicas, 2);
        assert_eq!(c.data_mode, DataMode::Timing);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn latency_defaults_ordered() {
        let l = LatencyProfile::default();
        assert!(l.cpu_cache_hit < l.cmem);
        assert!(l.cmem < l.fmem_fill);
    }
}
