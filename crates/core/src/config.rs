//! Cluster and latency configuration.

use crate::controller::{CapacityWeighted, PlacementPolicy, PowerOfTwoChoices, RoundRobin};
use kona_fpga::NextPagePrefetcher;
use kona_net::FaultPlan;
use kona_types::rng::{Rng, StdRng};
use kona_types::{ByteSize, KonaError, Nanos, Result, PAGE_SIZE_4K};

/// Which [`PlacementPolicy`] the rack controller runs.
///
/// A plain enum (rather than a boxed trait object) so `ClusterConfig`
/// stays `Clone + Debug` trivially and experiment binaries can parse it
/// from a flag; [`PlacementKind::build`] produces the live policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementKind {
    /// Rotate grants over nodes in registration order (the paper's
    /// baseline).
    #[default]
    RoundRobin,
    /// Sample nodes with probability proportional to free capacity.
    CapacityWeighted,
    /// Sample two nodes, grant on the emptier (d=2 choices).
    PowerOfTwoChoices,
}

impl PlacementKind {
    /// Instantiates the policy, seeding any internal PRNG from `seed`.
    pub fn build(self, seed: u64) -> Box<dyn PlacementPolicy> {
        match self {
            PlacementKind::RoundRobin => Box::new(RoundRobin::default()),
            PlacementKind::CapacityWeighted => Box::new(CapacityWeighted::new(seed)),
            PlacementKind::PowerOfTwoChoices => Box::new(PowerOfTwoChoices::new(seed)),
        }
    }

    /// Parses the experiment-flag spelling (`round-robin`, `capacity`,
    /// `p2c`).
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::InvalidConfig`] for unknown names.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "round-robin" | "rr" => Ok(PlacementKind::RoundRobin),
            "capacity" => Ok(PlacementKind::CapacityWeighted),
            "p2c" => Ok(PlacementKind::PowerOfTwoChoices),
            other => Err(KonaError::InvalidConfig(format!(
                "unknown placement policy '{other}' (expected round-robin, capacity or p2c)"
            ))),
        }
    }
}

/// Whether the runtime moves real bytes or only simulates timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataMode {
    /// Full data fidelity: remote pools hold real bytes; reads return what
    /// was written. Used by correctness tests and examples.
    #[default]
    Tracked,
    /// Timing only: transfers are charged but payloads are zeros. Used by
    /// large benchmark sweeps where holding the working set in host memory
    /// would be wasteful.
    Timing,
}

/// Local memory latencies of the reference architecture (§4.3).
///
/// CMem is CPU-attached DRAM; FMem is FPGA-attached DRAM reached over the
/// coherent interconnect, "1.5X slower than accessing the local socket"
/// being the paper's NUMA comparison point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyProfile {
    /// Access served by the CPU cache hierarchy.
    pub cpu_cache_hit: Nanos,
    /// CPU-attached DRAM access.
    pub cmem: Nanos,
    /// Line fill from FMem over the coherent interconnect.
    pub fmem_fill: Nanos,
}

impl Default for LatencyProfile {
    fn default() -> Self {
        LatencyProfile {
            cpu_cache_hit: Nanos::from_ns(2),
            cmem: Nanos::from_ns(85),
            fmem_fill: Nanos::from_ns(250),
        }
    }
}

/// Retry policy for transient remote failures (§4.5 recovery).
///
/// Transient errors (injected verb faults, flapping nodes) are retried
/// with exponential backoff plus seeded jitter; permanent errors
/// (unregistered memory, unknown nodes) are never retried. The jitter
/// PRNG is seeded, so retry timing is deterministic for a given seed.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per target before giving up (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each subsequent retry.
    pub base_backoff: Nanos,
    /// Cap on any single backoff.
    pub max_backoff: Nanos,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a random
    /// factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter PRNG.
    pub seed: u64,
    /// Per-verb deadline reported in machine-check events
    /// ([`kona_types::KonaError::CoherenceTimeout`]).
    pub verb_deadline: Nanos,
}

impl RetryPolicy {
    /// No retries at all: one attempt per target.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff to sleep after attempt number `attempt` (0-based):
    /// exponential from [`RetryPolicy::base_backoff`], capped at
    /// [`RetryPolicy::max_backoff`], with multiplicative jitter drawn
    /// from `rng`.
    pub fn backoff_for(&self, attempt: u32, rng: &mut StdRng) -> Nanos {
        let exp = self
            .base_backoff
            .as_ns()
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff.as_ns());
        if self.jitter <= 0.0 {
            return Nanos::from_ns(exp);
        }
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * rng.gen::<f64>();
        Nanos::from_ns((exp as f64 * factor) as u64)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::InvalidConfig`] on zero attempts or a jitter
    /// fraction outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(KonaError::InvalidConfig(
                "retry max_attempts must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(KonaError::InvalidConfig(format!(
                "retry jitter {} outside [0, 1]",
                self.jitter
            )));
        }
        if self.base_backoff > self.max_backoff {
            return Err(KonaError::InvalidConfig(format!(
                "retry base backoff {} exceeds max backoff {}",
                self.base_backoff, self.max_backoff
            )));
        }
        Ok(())
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Nanos::micros(10),
            max_backoff: Nanos::micros(200),
            jitter: 0.25,
            seed: 0x5EED_CAFE,
            verb_deadline: Nanos::micros(30),
        }
    }
}

/// Degraded-mode configuration: when a node flaps, the runtime sheds
/// prefetching (don't waste fetches that may fail) and widens eviction
/// batching (combine every node's log flush into one chained post) until
/// the fabric has been quiet for a cooloff period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedConfig {
    /// Master switch.
    pub enabled: bool,
    /// Transient failures within [`DegradedConfig::window`] that trigger
    /// degraded mode.
    pub failure_threshold: u32,
    /// Sliding window over which failures are counted (simulated time).
    pub window: Nanos,
    /// How long after the last failure the runtime stays degraded.
    pub cooloff: Nanos,
}

impl DegradedConfig {
    /// Degraded mode disabled entirely.
    pub fn disabled() -> Self {
        DegradedConfig {
            enabled: false,
            ..DegradedConfig::default()
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::InvalidConfig`] on a zero threshold or window.
    pub fn validate(&self) -> Result<()> {
        if self.failure_threshold == 0 {
            return Err(KonaError::InvalidConfig(
                "degraded failure_threshold must be at least 1".into(),
            ));
        }
        if self.window == Nanos::ZERO {
            return Err(KonaError::InvalidConfig(
                "degraded window must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

impl Default for DegradedConfig {
    fn default() -> Self {
        DegradedConfig {
            enabled: true,
            failure_threshold: 3,
            window: Nanos::millis(1),
            cooloff: Nanos::millis(2),
        }
    }
}

/// Configuration of a simulated rack: one compute node plus memory nodes.
///
/// # Examples
///
/// ```
/// # use kona::ClusterConfig;
/// let cfg = ClusterConfig::small();
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of memory nodes.
    pub memory_nodes: u32,
    /// Capacity of each memory node in bytes.
    pub node_capacity: ByteSize,
    /// Slab size for coarse-grain controller allocations.
    pub slab_size: ByteSize,
    /// Local DRAM cache capacity in pages (FMem for Kona, the page cache
    /// for VM baselines).
    pub local_cache_pages: usize,
    /// FMem associativity (Kona only; §4.4 uses 4).
    pub fmem_ways: usize,
    /// Replication factor for evicted data (§4.5); 1 = no replication.
    pub replicas: usize,
    /// CPU cache capacity in lines, as seen by the coherence directory.
    pub cpu_cache_lines: usize,
    /// Number of CPU cores (coherence agents) the FPGA's directory
    /// observes; cores share VFMem coherently.
    pub cpu_agents: usize,
    /// Prefetcher for Kona's FPGA.
    pub prefetcher: NextPagePrefetcher,
    /// Latency profile.
    pub latency: LatencyProfile,
    /// Data fidelity mode.
    pub data_mode: DataMode,
    /// Ring-buffer capacity of each node's cache-line log, in bytes.
    pub log_capacity: ByteSize,
    /// Retry/backoff policy on the remote fetch and eviction paths.
    pub retry: RetryPolicy,
    /// Degraded-mode triggers (§4.5 recovery under flapping nodes).
    pub degraded: DegradedConfig,
    /// Optional fault plan installed into the fabric at construction
    /// (chaos testing; `None` = healthy network).
    pub fault_plan: Option<FaultPlan>,
    /// Slab placement policy run by the rack controller.
    pub placement: PlacementKind,
}

impl ClusterConfig {
    /// A laptop-scale cluster for tests and examples: two 32 MiB memory
    /// nodes, 1 MiB slabs, a 1024-page (4 MiB) local cache.
    pub fn small() -> Self {
        ClusterConfig {
            memory_nodes: 2,
            node_capacity: ByteSize::mib(32),
            slab_size: ByteSize::mib(1),
            local_cache_pages: 1024,
            fmem_ways: 4,
            replicas: 1,
            cpu_cache_lines: 8192,
            cpu_agents: 1,
            prefetcher: NextPagePrefetcher::disabled(),
            latency: LatencyProfile::default(),
            data_mode: DataMode::Tracked,
            log_capacity: ByteSize::kib(64),
            retry: RetryPolicy::default(),
            degraded: DegradedConfig::default(),
            fault_plan: None,
            placement: PlacementKind::RoundRobin,
        }
    }

    /// Returns the configuration with a different local cache size.
    #[must_use]
    pub fn with_local_cache_pages(mut self, pages: usize) -> Self {
        self.local_cache_pages = pages;
        self
    }

    /// Returns the configuration with a different replication factor.
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Returns the configuration in timing-only mode.
    #[must_use]
    pub fn timing_only(mut self) -> Self {
        self.data_mode = DataMode::Timing;
        self
    }

    /// Returns the configuration with the given prefetcher.
    #[must_use]
    pub fn with_prefetcher(mut self, prefetcher: NextPagePrefetcher) -> Self {
        self.prefetcher = prefetcher;
        self
    }

    /// Returns the configuration with `cores` CPU coherence agents.
    #[must_use]
    pub fn with_cpu_agents(mut self, cores: usize) -> Self {
        self.cpu_agents = cores;
        self
    }

    /// Returns the configuration with the given retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Returns the configuration with the given degraded-mode triggers.
    #[must_use]
    pub fn with_degraded(mut self, degraded: DegradedConfig) -> Self {
        self.degraded = degraded;
        self
    }

    /// Returns the configuration with `plan` installed into the fabric at
    /// construction (deterministic chaos testing).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Returns the configuration with the given slab placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementKind) -> Self {
        self.placement = placement;
        self
    }

    /// Carves out shard `shard`'s slice of a `logical`-way decomposition:
    /// the local cache, CPU cache and node capacity are divided `logical`
    /// ways (respecting FMem-way and slab-size granularity), and the retry
    /// seed and any fault plan are reseeded with
    /// [`derive_shard_seed`](kona_types::derive_shard_seed) so each shard
    /// runs a decorrelated but fully deterministic stream. Slicing the
    /// *same* config for the *same* `(shard, logical)` always yields the
    /// same slice, independent of worker count.
    #[must_use]
    pub fn shard_slice(&self, shard: u32, logical: u32) -> Self {
        let logical = logical.max(1) as usize;
        let mut slice = self.clone();
        slice.local_cache_pages =
            (self.local_cache_pages / logical / self.fmem_ways).max(1) * self.fmem_ways;
        slice.cpu_cache_lines = (self.cpu_cache_lines / logical).max(1);
        let slab = self.slab_size.bytes();
        slice.node_capacity =
            ByteSize(((self.node_capacity.bytes() / logical as u64) / slab).max(1) * slab);
        slice.retry.seed = kona_types::derive_shard_seed(self.retry.seed, shard);
        slice.fault_plan = self.fault_plan.clone().map(|plan| plan.for_shard(shard));
        slice
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`KonaError::InvalidConfig`] when sizes are zero, the slab
    /// size is not page-aligned or exceeds the node capacity, the replica
    /// count is zero or exceeds the node count, or the local cache is not
    /// divisible into FMem sets.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| Err(KonaError::InvalidConfig(msg));
        if self.memory_nodes == 0 {
            return fail("at least one memory node required".into());
        }
        if self.slab_size.bytes() == 0 || !self.slab_size.bytes().is_multiple_of(PAGE_SIZE_4K) {
            return fail(format!(
                "slab size {} must be a non-zero multiple of 4 KiB",
                self.slab_size
            ));
        }
        if self.slab_size > self.node_capacity {
            return fail("slab larger than node capacity".into());
        }
        if self.replicas == 0 || self.replicas > self.memory_nodes as usize {
            return fail(format!(
                "replicas {} must be in 1..={}",
                self.replicas, self.memory_nodes
            ));
        }
        if self.fmem_ways == 0
            || (self.local_cache_pages > 0 && !self.local_cache_pages.is_multiple_of(self.fmem_ways))
        {
            return fail(format!(
                "local cache pages {} not divisible into {}-way sets",
                self.local_cache_pages, self.fmem_ways
            ));
        }
        if self.cpu_cache_lines == 0 {
            return fail("cpu cache must hold at least one line".into());
        }
        if self.cpu_agents == 0 {
            return fail("at least one CPU agent required".into());
        }
        if self.log_capacity.bytes() < 1024 {
            return fail("cache-line log must be at least 1 KiB".into());
        }
        self.retry.validate()?;
        self.degraded.validate()?;
        if let Some(plan) = &self.fault_plan {
            plan.validate()?;
        }
        Ok(())
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_is_valid() {
        assert!(ClusterConfig::small().validate().is_ok());
    }

    #[test]
    fn invalid_configs_detected() {
        let mut c = ClusterConfig::small();
        c.memory_nodes = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::small();
        c.slab_size = ByteSize(1000);
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::small();
        c.replicas = 5;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::small();
        c.local_cache_pages = 7;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::small();
        c.log_capacity = ByteSize(100);
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders() {
        let c = ClusterConfig::small()
            .with_local_cache_pages(64)
            .with_replicas(2)
            .timing_only();
        assert_eq!(c.local_cache_pages, 64);
        assert_eq!(c.replicas, 2);
        assert_eq!(c.data_mode, DataMode::Timing);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn retry_policy_validation_and_backoff() {
        let p = RetryPolicy::default();
        assert!(p.validate().is_ok());
        assert!(RetryPolicy {
            max_attempts: 0,
            ..p.clone()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            jitter: 1.5,
            ..p.clone()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            base_backoff: Nanos::millis(1),
            max_backoff: Nanos::micros(1),
            ..p.clone()
        }
        .validate()
        .is_err());
        // Backoff grows exponentially, stays within jitter bounds, and is
        // capped.
        let mut rng = StdRng::seed_from_u64(1);
        let b0 = p.backoff_for(0, &mut rng).as_ns() as f64;
        let base = p.base_backoff.as_ns() as f64;
        assert!(b0 >= base * (1.0 - p.jitter) - 1.0 && b0 <= base * (1.0 + p.jitter) + 1.0);
        let b_large = p.backoff_for(30, &mut rng);
        assert!(b_large <= Nanos::from_ns((p.max_backoff.as_ns() as f64 * 1.26) as u64));
        // Deterministic for a fixed rng stream.
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert_eq!(p.backoff_for(2, &mut r1), p.backoff_for(2, &mut r2));
        // No-jitter policies are exact.
        let exact = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(exact.backoff_for(1, &mut rng), Nanos::micros(20));
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn degraded_config_validation() {
        assert!(DegradedConfig::default().validate().is_ok());
        assert!(!DegradedConfig::disabled().enabled);
        let mut d = DegradedConfig::default();
        d.failure_threshold = 0;
        assert!(d.validate().is_err());
        let mut d = DegradedConfig::default();
        d.window = Nanos::ZERO;
        assert!(d.validate().is_err());
    }

    #[test]
    fn fault_plan_validated_through_cluster_config() {
        use kona_net::FaultPlan;
        let good = ClusterConfig::small().with_fault_plan(FaultPlan::calm(1));
        assert!(good.validate().is_ok());
        let bad =
            ClusterConfig::small().with_fault_plan(FaultPlan::calm(1).with_drop_prob(2.0));
        assert!(bad.validate().is_err());
        let bad_retry = ClusterConfig::small().with_retry(RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        });
        assert!(bad_retry.validate().is_err());
    }

    #[test]
    fn placement_kind_parses_and_builds() {
        assert_eq!(
            PlacementKind::parse("round-robin").unwrap(),
            PlacementKind::RoundRobin
        );
        assert_eq!(
            PlacementKind::parse("capacity").unwrap(),
            PlacementKind::CapacityWeighted
        );
        assert_eq!(
            PlacementKind::parse("p2c").unwrap(),
            PlacementKind::PowerOfTwoChoices
        );
        assert!(PlacementKind::parse("zeal").is_err());
        for kind in [
            PlacementKind::RoundRobin,
            PlacementKind::CapacityWeighted,
            PlacementKind::PowerOfTwoChoices,
        ] {
            let policy = kind.build(7);
            assert!(!policy.name().is_empty());
        }
        let c = ClusterConfig::small().with_placement(PlacementKind::CapacityWeighted);
        assert_eq!(c.placement, PlacementKind::CapacityWeighted);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn latency_defaults_ordered() {
        let l = LatencyProfile::default();
        assert!(l.cpu_cache_hit < l.cmem);
        assert!(l.cmem < l.fmem_fill);
    }
}
