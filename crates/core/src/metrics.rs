//! Metric names and pre-resolved counter handles for the runtimes.
//!
//! Both runtimes keep their statistics *in* the telemetry registry: the
//! `kona.*` counters below are the single source of truth, and
//! [`RuntimeStats`](crate::RuntimeStats) is derived from them on demand.
//! Holding pre-resolved [`Counter`] handles keeps the hot paths free of
//! string lookups.

use crate::stats::RuntimeStats;
use kona_telemetry::{Counter, Telemetry};
use kona_types::Nanos;

/// Registry names of the runtime counters (one per
/// [`RuntimeStats`](crate::RuntimeStats) field). Exposed so tools and
/// tests can look metrics up in a [`kona_telemetry::MetricsSnapshot`].
pub mod names {
    /// Simulated application-critical-path time, in nanoseconds.
    pub const APP_TIME_NS: &str = "kona.app_time_ns";
    /// Simulated background (eviction/prefetch) time, in nanoseconds.
    pub const BACKGROUND_TIME_NS: &str = "kona.background_time_ns";
    /// Accesses served locally (CPU caches, FMem or CMem).
    pub const LOCAL_HITS: &str = "kona.local_hits";
    /// Fetches from remote memory.
    pub const REMOTE_FETCHES: &str = "kona.remote_fetches";
    /// Major page faults (VM runtimes only).
    pub const MAJOR_FAULTS: &str = "kona.major_faults";
    /// Write-protect faults (VM runtimes only).
    pub const MINOR_FAULTS: &str = "kona.minor_faults";
    /// TLB invalidations and shootdowns (VM runtimes only).
    pub const TLB_INVALIDATIONS: &str = "kona.tlb_invalidations";
    /// Pages evicted from the local cache.
    pub const PAGES_EVICTED: &str = "kona.pages_evicted";
    /// Dirty payload bytes written back to remote memory.
    pub const WRITEBACK_BYTES: &str = "kona.writeback_bytes";
    /// Bytes the application actually dirtied.
    pub const APP_DIRTY_BYTES: &str = "kona.app_dirty_bytes";
    /// Pages prefetched (Kona only).
    pub const PREFETCHES: &str = "kona.prefetches";
    /// Machine-check events on network failures (Kona only).
    pub const MCE_EVENTS: &str = "kona.mce_events";
    /// Verb retries after transient failures (Kona only).
    pub const RETRIES: &str = "kona.retries";
    /// Simulated time spent backing off between retries, in nanoseconds.
    pub const BACKOFF_NS: &str = "kona.backoff_ns";
    /// Reads served by a replica after the primary failed (Kona only).
    pub const FAILOVERS: &str = "kona.failovers";
    /// Times the runtime entered degraded mode (Kona only).
    pub const DEGRADED_ENTRIES: &str = "kona.degraded_entries";
    /// Page-fault-fallback waits that rode out a scheduled outage.
    pub const FALLBACK_WAITS: &str = "kona.fallback_waits";
    /// Bytes copied between memory nodes by slab migration and
    /// re-replication (rebalance traffic; Kona only).
    pub const MIGRATION_BYTES: &str = "kona.migration_bytes";
    /// Slabs re-replicated after a permanent node loss (Kona only).
    pub const REREPLICATIONS: &str = "kona.rereplications";
    /// Remote-fetch latency histogram, in nanoseconds.
    pub const FETCH_NS: &str = "kona.fetch_ns";
    /// Per-page eviction latency histogram, in nanoseconds.
    pub const EVICT_NS: &str = "kona.evict_ns";
}

/// One pre-resolved [`Counter`] per [`RuntimeStats`] field.
///
/// The registry is the store; this struct only caches the handles and
/// converts back and forth. Counters resolved from the same
/// [`Telemetry`] elsewhere (e.g. the eviction handler's
/// [`names::PAGES_EVICTED`]) share the same underlying cells, so every
/// component bumps the one authoritative value.
#[derive(Debug, Clone)]
pub(crate) struct RuntimeCounters {
    pub app_time_ns: Counter,
    pub background_time_ns: Counter,
    pub local_hits: Counter,
    pub remote_fetches: Counter,
    pub major_faults: Counter,
    pub minor_faults: Counter,
    pub tlb_invalidations: Counter,
    pub pages_evicted: Counter,
    pub writeback_bytes: Counter,
    pub app_dirty_bytes: Counter,
    pub prefetches: Counter,
    pub mce_events: Counter,
    pub retries: Counter,
    pub backoff_ns: Counter,
    pub failovers: Counter,
    pub degraded_entries: Counter,
    pub fallback_waits: Counter,
    pub migration_bytes: Counter,
    pub rereplications: Counter,
    pub spans_dropped: Counter,
}

impl RuntimeCounters {
    pub fn new(telemetry: &Telemetry) -> Self {
        RuntimeCounters {
            app_time_ns: telemetry.counter(names::APP_TIME_NS),
            background_time_ns: telemetry.counter(names::BACKGROUND_TIME_NS),
            local_hits: telemetry.counter(names::LOCAL_HITS),
            remote_fetches: telemetry.counter(names::REMOTE_FETCHES),
            major_faults: telemetry.counter(names::MAJOR_FAULTS),
            minor_faults: telemetry.counter(names::MINOR_FAULTS),
            tlb_invalidations: telemetry.counter(names::TLB_INVALIDATIONS),
            pages_evicted: telemetry.counter(names::PAGES_EVICTED),
            writeback_bytes: telemetry.counter(names::WRITEBACK_BYTES),
            app_dirty_bytes: telemetry.counter(names::APP_DIRTY_BYTES),
            prefetches: telemetry.counter(names::PREFETCHES),
            mce_events: telemetry.counter(names::MCE_EVENTS),
            retries: telemetry.counter(names::RETRIES),
            backoff_ns: telemetry.counter(names::BACKOFF_NS),
            failovers: telemetry.counter(names::FAILOVERS),
            degraded_entries: telemetry.counter(names::DEGRADED_ENTRIES),
            fallback_waits: telemetry.counter(names::FALLBACK_WAITS),
            migration_bytes: telemetry.counter(names::MIGRATION_BYTES),
            rereplications: telemetry.counter(names::REREPLICATIONS),
            spans_dropped: telemetry.counter(kona_telemetry::SPANS_DROPPED),
        }
    }

    /// The application clock (components that need "now" on the app
    /// thread read it here).
    pub fn app_time(&self) -> Nanos {
        Nanos::from_ns(self.app_time_ns.get())
    }

    /// The background (eviction/prefetch) clock.
    pub fn background_time(&self) -> Nanos {
        Nanos::from_ns(self.background_time_ns.get())
    }

    /// Charges `t` to the application clock.
    pub fn charge_app(&self, t: Nanos) {
        self.app_time_ns.add(t.as_ns());
    }

    /// Charges `t` to the background clock.
    pub fn charge_background(&self, t: Nanos) {
        self.background_time_ns.add(t.as_ns());
    }

    /// Materializes a [`RuntimeStats`] from the registry values.
    pub fn to_stats(&self) -> RuntimeStats {
        RuntimeStats {
            app_time: self.app_time(),
            background_time: self.background_time(),
            local_hits: self.local_hits.get(),
            remote_fetches: self.remote_fetches.get(),
            major_faults: self.major_faults.get(),
            minor_faults: self.minor_faults.get(),
            tlb_invalidations: self.tlb_invalidations.get(),
            pages_evicted: self.pages_evicted.get(),
            writeback_bytes: self.writeback_bytes.get(),
            app_dirty_bytes: self.app_dirty_bytes.get(),
            prefetches: self.prefetches.get(),
            mce_events: self.mce_events.get(),
            retries: self.retries.get(),
            backoff_time: Nanos::from_ns(self.backoff_ns.get()),
            failovers: self.failovers.get(),
            degraded_entries: self.degraded_entries.get(),
            fallback_waits: self.fallback_waits.get(),
            migration_bytes: self.migration_bytes.get(),
            rereplications: self.rereplications.get(),
            spans_dropped: self.spans_dropped.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roundtrip_to_stats() {
        let tel = Telemetry::disabled();
        let c = RuntimeCounters::new(&tel);
        c.charge_app(Nanos::micros(2));
        c.charge_background(Nanos::from_ns(7));
        c.local_hits.add(3);
        c.pages_evicted.inc();
        let s = c.to_stats();
        assert_eq!(s.app_time, Nanos::micros(2));
        assert_eq!(s.background_time, Nanos::from_ns(7));
        assert_eq!(s.local_hits, 3);
        assert_eq!(s.pages_evicted, 1);
        // The registry holds the same values under the public names.
        let snap = tel.snapshot();
        assert_eq!(snap.counter(names::APP_TIME_NS), Some(2_000));
        assert_eq!(snap.counter(names::PAGES_EVICTED), Some(1));
    }

    #[test]
    fn handles_share_cells_by_name() {
        let tel = Telemetry::disabled();
        let a = RuntimeCounters::new(&tel);
        let b = RuntimeCounters::new(&tel);
        a.pages_evicted.inc();
        b.pages_evicted.inc();
        assert_eq!(a.to_stats().pages_evicted, 2);
    }
}
