//! Memory-access traces and locality analysis for Kona.
//!
//! This crate provides:
//!
//! * [`TraceEvent`] / [`Trace`] — timestamped application memory accesses,
//!   the interchange format between workload generators
//!   (`kona-workloads`) and every simulator in the workspace.
//! * [`Windows`] — splitting a trace into fixed real-time windows, the way
//!   the paper's Pin-based methodology measures behaviour "online in each
//!   window" (§2.1; Table 2 uses 10 s windows, KTracker uses 1 s).
//! * [`amplification`] — dirty-data amplification at 4 KiB-page, 2 MiB-page
//!   and 64 B cache-line tracking granularity (Table 2, Fig 9).
//! * [`spatial`] — the CDF of accessed cache-lines per page (Fig 2).
//! * [`contiguity`] — the CDF of contiguous accessed-line segment lengths
//!   within a page (Fig 3).
//!
//! # Examples
//!
//! ```
//! use kona_trace::{Trace, TraceEvent, amplification::AmplificationAnalysis};
//! use kona_types::{MemAccess, Nanos, VirtAddr};
//!
//! let mut trace = Trace::new();
//! trace.push(TraceEvent::new(Nanos::ZERO, MemAccess::write(VirtAddr::new(0), 64)));
//! let amp = AmplificationAnalysis::over_events(trace.iter().copied());
//! // One 64-byte write dirties one line and one page: 4 KiB tracking
//! // amplifies 64 dirty bytes to 4096 tracked bytes.
//! assert_eq!(amp.amplification_4k(), 64.0);
//! assert_eq!(amp.amplification_line(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amplification;
pub mod contiguity;
pub mod io;
pub mod spatial;
mod stats;
mod trace;
mod window;

pub use stats::Cdf;
pub use trace::{Trace, TraceEvent};
pub use window::{Windows, WindowsIter};
