//! Small statistics helpers shared by the analyses.

use std::collections::BTreeMap;
use std::fmt;

/// An empirical CDF over integer-valued observations.
///
/// Built from a histogram of counts; [`Cdf::fraction_le`] answers "what
/// fraction of observations are ≤ x", which is exactly the y-axis of the
/// paper's Figs 2 and 3.
///
/// # Examples
///
/// ```
/// # use kona_trace::Cdf;
/// let mut cdf = Cdf::new();
/// cdf.add(1, 3); // three observations of value 1
/// cdf.add(4, 1);
/// assert_eq!(cdf.fraction_le(1), 0.75);
/// assert_eq!(cdf.fraction_le(4), 1.0);
/// assert_eq!(cdf.fraction_le(0), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cdf {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Adds `count` observations of `value`.
    pub fn add(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += count;
        self.total += count;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns `true` if no observations were added.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Fraction of observations with value ≤ `x` (0.0 when empty).
    pub fn fraction_le(&self, x: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self
            .counts
            .range(..=x)
            .map(|(_, &c)| c)
            .sum();
        below as f64 / self.total as f64
    }

    /// The smallest value v such that `fraction_le(v) >= q` (`None` when
    /// empty). `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (&v, &c) in &self.counts {
            acc += c;
            if acc >= target {
                return Some(v);
            }
        }
        self.counts.keys().next_back().copied()
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .map(|(&v, &c)| v as f64 * c as f64)
            .sum();
        sum / self.total as f64
    }

    /// Iterates over `(value, cumulative_fraction)` pairs in value order —
    /// the series a plotting frontend needs.
    pub fn points(&self) -> Vec<(u64, f64)> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|(&v, &c)| {
                acc += c;
                (v, acc as f64 / self.total as f64)
            })
            .collect()
    }
}

impl fmt::Display for Cdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cdf({} observations", self.total)?;
        if let (Some(p50), Some(p99)) = (self.quantile(0.5), self.quantile(0.99)) {
            write!(f, ", p50={p50}, p99={p99}")?;
        }
        f.write_str(")")
    }
}

impl FromIterator<u64> for Cdf {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut cdf = Cdf::new();
        for v in iter {
            cdf.add(v, 1);
        }
        cdf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::rng::{Rng, StdRng};

    #[test]
    fn fractions() {
        let cdf: Cdf = vec![1, 1, 2, 8].into_iter().collect();
        assert_eq!(cdf.total(), 4);
        assert_eq!(cdf.fraction_le(0), 0.0);
        assert_eq!(cdf.fraction_le(1), 0.5);
        assert_eq!(cdf.fraction_le(2), 0.75);
        assert_eq!(cdf.fraction_le(100), 1.0);
    }

    #[test]
    fn quantiles() {
        let cdf: Cdf = (1..=100).collect();
        assert_eq!(cdf.quantile(0.5), Some(50));
        assert_eq!(cdf.quantile(0.0), Some(1));
        assert_eq!(cdf.quantile(1.0), Some(100));
        assert_eq!(Cdf::new().quantile(0.5), None);
    }

    #[test]
    fn mean_and_points() {
        let cdf: Cdf = vec![2, 4].into_iter().collect();
        assert_eq!(cdf.mean(), 3.0);
        assert_eq!(cdf.points(), vec![(2, 0.5), (4, 1.0)]);
    }

    #[test]
    fn zero_count_ignored() {
        let mut cdf = Cdf::new();
        cdf.add(5, 0);
        assert!(cdf.is_empty());
    }

    #[test]
    fn display() {
        let cdf: Cdf = vec![1, 2, 3].into_iter().collect();
        assert!(cdf.to_string().contains("3 observations"));
    }

    /// The CDF is monotone and reaches 1.0 at the maximum value.
    #[test]
    fn prop_monotone() {
        let mut rng = StdRng::seed_from_u64(0x0CDF);
        for _ in 0..64 {
            let values: Vec<u64> = (0..rng.gen_range(1usize..100))
                .map(|_| rng.gen_range(0u64..1000))
                .collect();
            let cdf: Cdf = values.iter().copied().collect();
            let max = *values.iter().max().unwrap();
            let mut prev = 0.0;
            for x in 0..=max {
                let f = cdf.fraction_le(x);
                assert!(f >= prev);
                prev = f;
            }
            assert!((cdf.fraction_le(max) - 1.0).abs() < 1e-12);
        }
    }

    /// quantile() inverts fraction_le.
    #[test]
    fn prop_quantile_consistent() {
        let mut rng = StdRng::seed_from_u64(0x0CD0);
        for _ in 0..256 {
            let values: Vec<u64> = (0..rng.gen_range(1usize..50))
                .map(|_| rng.gen_range(0u64..100))
                .collect();
            let q = rng.gen_range(0.0..1.0);
            let cdf: Cdf = values.iter().copied().collect();
            let v = cdf.quantile(q).unwrap();
            assert!(cdf.fraction_le(v) >= q - 1e-12);
        }
    }
}
