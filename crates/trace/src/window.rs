//! Splitting traces into fixed real-time windows.
//!
//! The paper's methodology measures application behaviour "in discrete time
//! windows" — 10 s windows for the Table 2 amplification study and 1 s
//! windows for KTracker. [`Windows`] reproduces that: it yields consecutive
//! slices of a trace, each covering one window of simulated time.

use crate::trace::{Trace, TraceEvent};
use kona_types::Nanos;

/// A view of a trace split into fixed-duration windows.
///
/// Windows are aligned to the trace's first event time. Empty windows in
/// the middle of a trace are yielded as empty slices so window numbering
/// matches wall-clock time (the paper plots amplification per window number).
///
/// # Examples
///
/// ```
/// # use kona_trace::{Trace, TraceEvent, Windows};
/// # use kona_types::{MemAccess, Nanos, VirtAddr};
/// let mut t = Trace::new();
/// t.push(TraceEvent::new(Nanos::secs(0), MemAccess::read(VirtAddr::new(0), 8)));
/// t.push(TraceEvent::new(Nanos::secs(2), MemAccess::read(VirtAddr::new(8), 8)));
/// let windows: Vec<_> = Windows::new(&t, Nanos::secs(1)).collect();
/// assert_eq!(windows.len(), 3);
/// assert_eq!(windows[0].len(), 1);
/// assert!(windows[1].is_empty());
/// assert_eq!(windows[2].len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Windows<'a> {
    trace: &'a Trace,
    width: Nanos,
}

impl<'a> Windows<'a> {
    /// Creates a window view with the given window `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(trace: &'a Trace, width: Nanos) -> Self {
        assert!(width > Nanos::ZERO, "window width must be non-zero");
        Windows { trace, width }
    }

    /// Number of windows the trace spans.
    pub fn count(&self) -> usize {
        if self.trace.is_empty() {
            return 0;
        }
        (self.trace.duration().as_ns() / self.width.as_ns()) as usize + 1
    }
}

impl<'a> IntoIterator for Windows<'a> {
    type Item = &'a [TraceEvent];
    type IntoIter = WindowsIter<'a>;

    fn into_iter(self) -> WindowsIter<'a> {
        let origin = self
            .trace
            .as_slice()
            .first()
            .map(|e| e.time)
            .unwrap_or(Nanos::ZERO);
        WindowsIter {
            rest: self.trace.as_slice(),
            width: self.width,
            next_boundary: origin + self.width,
            done: self.trace.is_empty(),
        }
    }
}

impl<'a> Windows<'a> {
    /// Iterates over the window slices. Equivalent to `into_iter()` but
    /// usable on a borrow.
    pub fn iter(&self) -> WindowsIter<'a> {
        self.clone().into_iter()
    }
}

/// Iterator over window slices; see [`Windows`].
#[derive(Debug)]
pub struct WindowsIter<'a> {
    rest: &'a [TraceEvent],
    width: Nanos,
    next_boundary: Nanos,
    done: bool,
}

impl<'a> Iterator for WindowsIter<'a> {
    type Item = &'a [TraceEvent];

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let boundary = self.next_boundary;
        let split = self.rest.partition_point(|e| e.time < boundary);
        let (window, rest) = self.rest.split_at(split);
        self.rest = rest;
        self.next_boundary = boundary + self.width;
        if rest.is_empty() {
            self.done = true;
        }
        Some(window)
    }
}

// `Windows::collect()` convenience: allow `Windows::new(..).collect::<Vec<_>>()`
// through Iterator on the view itself.
impl<'a> Windows<'a> {
    /// Collects all window slices into a vector.
    pub fn collect<B: FromIterator<&'a [TraceEvent]>>(self) -> B {
        self.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::{MemAccess, VirtAddr};

    fn ev(sec: u64) -> TraceEvent {
        TraceEvent::new(Nanos::secs(sec), MemAccess::read(VirtAddr::new(sec * 8), 8))
    }

    #[test]
    fn empty_trace_yields_no_windows() {
        let t = Trace::new();
        assert_eq!(Windows::new(&t, Nanos::secs(1)).iter().count(), 0);
        assert_eq!(Windows::new(&t, Nanos::secs(1)).count(), 0);
    }

    #[test]
    fn single_window() {
        let t: Trace = vec![ev(0)].into_iter().collect();
        let w: Vec<_> = Windows::new(&t, Nanos::secs(10)).collect();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].len(), 1);
    }

    #[test]
    fn events_assigned_to_correct_windows() {
        let t: Trace = vec![ev(0), ev(0), ev(1), ev(3)].into_iter().collect();
        let w: Vec<_> = Windows::new(&t, Nanos::secs(1)).collect();
        assert_eq!(w.len(), 4);
        assert_eq!(w.iter().map(|s| s.len()).collect::<Vec<_>>(), vec![2, 1, 0, 1]);
        assert_eq!(Windows::new(&t, Nanos::secs(1)).count(), 4);
    }

    #[test]
    fn windows_align_to_first_event() {
        let mut t = Trace::new();
        t.push(ev(5));
        t.push(ev(6));
        let w: Vec<_> = Windows::new(&t, Nanos::secs(1)).collect();
        // First window starts at t=5s, so both events land in windows 0 and 1.
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].len(), 1);
        assert_eq!(w[1].len(), 1);
    }

    #[test]
    fn boundary_event_goes_to_next_window() {
        let t: Trace = vec![ev(0), ev(1)].into_iter().collect();
        let w: Vec<_> = Windows::new(&t, Nanos::secs(1)).collect();
        // An event exactly on the boundary belongs to the following window.
        assert_eq!(w[0].len(), 1);
        assert_eq!(w[1].len(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        let t = Trace::new();
        Windows::new(&t, Nanos::ZERO);
    }

    #[test]
    fn all_events_covered_exactly_once() {
        let t: Trace = (0..50).map(ev).collect();
        let total: usize = Windows::new(&t, Nanos::secs(7)).iter().map(|w| w.len()).sum();
        assert_eq!(total, 50);
    }
}
