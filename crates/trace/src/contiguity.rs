//! Contiguity analysis: contiguous accessed-line segments (Fig 3).
//!
//! The paper defines a *segment* as "a group of contiguous cache-lines
//! within a 4 KB page that were accessed (read or written) in the same
//! window" (§2.2). Segment lengths determine how efficiently the eviction
//! handler can aggregate dirty lines into large RDMA writes (§6.4), which
//! is why Fig 3 plots their CDF.

use crate::stats::Cdf;
use crate::trace::TraceEvent;
use kona_types::{AccessKind, FxHashMap, LineBitmap, MemAccess, PageGeometry};

/// Accumulates per-page accessed-line bitmaps and reports segment-length
/// distributions.
///
/// # Examples
///
/// ```
/// # use kona_trace::contiguity::ContiguityAnalysis;
/// # use kona_types::{MemAccess, VirtAddr};
/// let mut ca = ContiguityAnalysis::new();
/// // Lines 0-2 written contiguously, line 10 in isolation.
/// ca.record(MemAccess::write(VirtAddr::new(0), 192));
/// ca.record(MemAccess::write(VirtAddr::new(640), 8));
/// let cdf = ca.write_segment_cdf();
/// assert_eq!(cdf.total(), 2); // two segments
/// assert_eq!(cdf.fraction_le(1), 0.5);
/// assert_eq!(cdf.fraction_le(3), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ContiguityAnalysis {
    geometry: PageGeometry,
    read_pages: FxHashMap<u64, LineBitmap>,
    write_pages: FxHashMap<u64, LineBitmap>,
}

impl ContiguityAnalysis {
    /// Creates an analysis over 4 KiB pages.
    pub fn new() -> Self {
        ContiguityAnalysis {
            geometry: PageGeometry::base(),
            read_pages: FxHashMap::default(),
            write_pages: FxHashMap::default(),
        }
    }

    /// Builds an analysis over an event stream.
    pub fn over_events<I: IntoIterator<Item = TraceEvent>>(events: I) -> Self {
        let mut ca = ContiguityAnalysis::new();
        for e in events {
            ca.record(e.access);
        }
        ca
    }

    /// Records one access.
    pub fn record(&mut self, access: MemAccess) {
        let pages = match access.kind {
            AccessKind::Read => &mut self.read_pages,
            AccessKind::Write => &mut self.write_pages,
        };
        let lines_per_page = self.geometry.lines_per_page();
        for (page, line) in self.geometry.lines_in_range(access.addr, u64::from(access.len)) {
            pages
                .entry(page)
                .or_insert_with(|| LineBitmap::new(lines_per_page))
                .set(line);
        }
    }

    /// CDF of read-segment lengths (in cache lines).
    pub fn read_segment_cdf(&self) -> Cdf {
        Self::segment_cdf(&self.read_pages)
    }

    /// CDF of write-segment lengths (in cache lines).
    pub fn write_segment_cdf(&self) -> Cdf {
        Self::segment_cdf(&self.write_pages)
    }

    /// Mean write-segment length; the longer, the better eviction can batch.
    pub fn mean_write_segment_len(&self) -> f64 {
        self.write_segment_cdf().mean()
    }

    /// Fraction of write segments that span the entire page — dominant for
    /// sequential workloads in the paper.
    pub fn page_length_write_fraction(&self) -> f64 {
        let cdf = self.write_segment_cdf();
        if cdf.is_empty() {
            return 0.0;
        }
        let full = self.geometry.lines_per_page() as u64;
        1.0 - cdf.fraction_le(full - 1)
    }

    fn segment_cdf(pages: &FxHashMap<u64, LineBitmap>) -> Cdf {
        let mut cdf = Cdf::new();
        for bm in pages.values() {
            for (_, len) in bm.segments() {
                cdf.add(len as u64, 1);
            }
        }
        cdf
    }
}

impl Default for ContiguityAnalysis {
    fn default() -> Self {
        ContiguityAnalysis::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kona_types::VirtAddr;
    use kona_types::rng::{Rng, StdRng};

    #[test]
    fn isolated_lines_are_length_one_segments() {
        let mut ca = ContiguityAnalysis::new();
        ca.record(MemAccess::write(VirtAddr::new(0), 8));
        ca.record(MemAccess::write(VirtAddr::new(128), 8));
        let cdf = ca.write_segment_cdf();
        assert_eq!(cdf.total(), 2);
        assert_eq!(cdf.fraction_le(1), 1.0);
    }

    #[test]
    fn adjacent_lines_merge_into_one_segment() {
        let mut ca = ContiguityAnalysis::new();
        ca.record(MemAccess::write(VirtAddr::new(0), 8));
        ca.record(MemAccess::write(VirtAddr::new(64), 8));
        let cdf = ca.write_segment_cdf();
        assert_eq!(cdf.total(), 1);
        assert_eq!(cdf.quantile(1.0), Some(2));
    }

    #[test]
    fn full_page_is_one_64_line_segment() {
        let mut ca = ContiguityAnalysis::new();
        ca.record(MemAccess::write(VirtAddr::new(4096), 4096));
        assert_eq!(ca.write_segment_cdf().quantile(1.0), Some(64));
        assert_eq!(ca.page_length_write_fraction(), 1.0);
    }

    #[test]
    fn reads_and_writes_independent() {
        let mut ca = ContiguityAnalysis::new();
        ca.record(MemAccess::read(VirtAddr::new(0), 8));
        assert!(ca.write_segment_cdf().is_empty());
        assert_eq!(ca.read_segment_cdf().total(), 1);
    }

    #[test]
    fn segments_do_not_span_pages() {
        let mut ca = ContiguityAnalysis::new();
        // Last line of page 0 and first line of page 1.
        ca.record(MemAccess::write(VirtAddr::new(4096 - 64), 128));
        let cdf = ca.write_segment_cdf();
        assert_eq!(cdf.total(), 2);
        assert_eq!(cdf.fraction_le(1), 1.0);
    }

    #[test]
    fn mean_segment_len() {
        let mut ca = ContiguityAnalysis::new();
        ca.record(MemAccess::write(VirtAddr::new(0), 128)); // one 2-line segment
        ca.record(MemAccess::write(VirtAddr::new(4096), 64)); // one 1-line segment
        assert!((ca.mean_write_segment_len() - 1.5).abs() < 1e-12);
    }

    /// Total segment length equals the number of accessed lines.
    #[test]
    fn prop_segments_partition_lines() {
        let mut rng = StdRng::seed_from_u64(0xC047);
        for case in 0..64 {
            let mut ca = ContiguityAnalysis::new();
            let mut lines = std::collections::HashSet::new();
            for _ in 0..rng.gen_range(1usize..100) {
                let addr = rng.gen_range(0u64..1u64 << 16);
                let len = rng.gen_range(1u32..256);
                ca.record(MemAccess::write(VirtAddr::new(addr), len));
                lines.extend(
                    PageGeometry::base().lines_in_range(VirtAddr::new(addr), u64::from(len)),
                );
            }
            let cdf = ca.write_segment_cdf();
            let total_len: f64 = cdf.mean() * cdf.total() as f64;
            assert!((total_len - lines.len() as f64).abs() < 1e-6, "case {case}");
        }
    }
}
